//! # smack-repro
//!
//! Workspace root for the SMaCk reproduction: the runnable examples live in
//! `examples/` and the cross-crate integration tests in `tests/`. See the
//! member crates for the actual functionality:
//!
//! * [`smack_uarch`] — the SMT core simulator with the SMC detection unit,
//! * [`smack_crypto`] — bignum/RSA/SRP/SHA-256 substrates,
//! * [`smack`] — the attack layer (probes, channels, case studies),
//! * [`smack_victims`] — simulated victim programs,
//! * [`smack_mastik`] — the classic Prime+Probe baseline,
//! * [`smack_ml`] / [`smack_detection`] — kNN and the §6.1 detector.

pub use smack;
pub use smack_crypto;
pub use smack_detection;
pub use smack_mastik;
pub use smack_ml;
pub use smack_uarch;
pub use smack_victims;
