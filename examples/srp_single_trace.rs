//! Case Study III end to end: a full SRP login (OpenSSL-1.1.1w style),
//! with the server's `SRP_Calc_server_key` leaking its per-login secret
//! exponent through the L1i cache in a single trace (paper §5.3).
//!
//! Run with: `cargo run --example srp_single_trace`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::srp::{single_trace_attack, SrpAttackConfig};
use smack_crypto::srp::{register, SrpClient, SrpServer};
use smack_crypto::SrpGroup;
use smack_uarch::MicroArch;

fn main() {
    let group = SrpGroup::synthetic(1024);
    let mut rng = SmallRng::seed_from_u64(7);

    // Registration + an honest login, to show the protocol itself works.
    let verifier = register(&group, "alice", "hunter2", b"salt");
    let client = SrpClient::start(&group, &mut rng);
    let server = SrpServer::start(&group, &verifier, &mut rng);
    let server_key = server.calc_server_key(client.public_a());
    let client_key = client.calc_client_key(server.public_b(), "alice", "hunter2", server.salt());
    assert_eq!(server_key, client_key, "SRP agreement");
    println!("SRP handshake OK: client and server agree on the session secret");
    println!("server ephemeral secret b: {} bits (fresh per login!)", server.secret_b().bit_len());

    // The attack: one trace of the server-side exponentiation, using a
    // 4096-bit group for comfortable per-square resolution.
    let cfg = SrpAttackConfig::new(4096);
    let mut rng = SmallRng::seed_from_u64(8);
    let b = smack_crypto::Bignum::random_bits(&mut rng, 256);
    let out = single_trace_attack(MicroArch::TigerLake, &b, &cfg, 1).expect("attack runs");
    println!();
    println!(
        "single-trace attack at group size 4096: {} multiply events observed \
         ({} in truth), {:.0}% of recoverable exponent bits leaked",
        out.events,
        out.truth_events,
        out.leakage * 100.0
    );
    println!("(the paper reports 65-90% depending on group size)");
}
