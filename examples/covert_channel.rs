//! Send a message across SMT threads through the L1 instruction cache with
//! the Flush+iFlush covert channel (paper §5.1 / Table 1).
//!
//! Run with: `cargo run --example covert_channel`

use smack::channel::{run_channel, ChannelSpec};
use smack_uarch::{Machine, MicroArch, ProbeKind};

fn main() {
    let message = b"SMaCk!";
    let payload: Vec<bool> =
        message.iter().flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1)).collect();

    let mut machine = Machine::new(MicroArch::CascadeLake.profile());
    let spec = ChannelSpec::flush_reload(ProbeKind::Flush);
    let report = run_channel(&mut machine, &spec, &payload, false).expect("channel runs");

    let mut decoded_bytes = Vec::new();
    for chunk in report.decoded.chunks(8) {
        let mut byte = 0u8;
        for bit in chunk {
            byte = (byte << 1) | (*bit as u8);
        }
        decoded_bytes.push(byte);
    }
    println!("channel:   {}", report.name);
    println!("sent:      {:?}", String::from_utf8_lossy(message));
    println!("received:  {:?}", String::from_utf8_lossy(&decoded_bytes));
    println!("bandwidth: {:.1} kbit/s", report.kbit_per_s);
    println!("errors:    {}/{} ({:.2}%)", report.errors, report.bits, report.error_rate_pct);
}
