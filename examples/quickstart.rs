//! Quickstart: create a simulated Cascade Lake core, prepare an oracle
//! cache line (paper Listing 1), and watch a store to an L1i-resident line
//! trigger the SMC machine clear (paper Listing 2).
//!
//! Run with: `cargo run --example quickstart`

use smack::oracle::OraclePage;
use smack::probe::Prober;
use smack_uarch::{Addr, Machine, MicroArch, PerfEvent, Placement, ProbeKind, ThreadId};

fn main() {
    let mut machine = Machine::new(MicroArch::CascadeLake.profile());
    let attacker = ThreadId::T0;

    // An executable cache line the attacker controls.
    let oracle = OraclePage::build(Addr(0x0040_0000), 1);
    oracle.install(&mut machine);
    let line = oracle.line(0);

    // Listing 1: warm the TLB, flush, execute -> the line is L1i-resident.
    oracle.prepare_l1i(&mut machine, attacker, 0).expect("oracle prepares");
    println!("oracle line residency after preparation: {:?}", machine.residency(line));

    let mut prober = Prober::new(attacker);
    let before = machine.counters(attacker).snapshot();

    // Listing 2: mfence; rdtsc; movb $0x90,(line); mfence; rdtsc.
    let hot = prober.measure(&mut machine, ProbeKind::Store, line).expect("probe runs");
    let clears = machine.counters(attacker).delta(&before, PerfEvent::MachineClearsSmc);
    println!("store on L1i-resident line: {} cycles ({} SMC machine clear)", hot.cycles, clears);

    // Compare with the same store on an L2-resident line: no conflict.
    machine.place_line(line, Placement::L2);
    let cold = prober.measure(&mut machine, ProbeKind::Store, line).expect("probe runs");
    println!("store on L2-resident line:  {} cycles (no conflict)", cold.cycles);

    println!();
    println!(
        "margin: {} cycles — hundreds of cycles of signal, vs the 1-2 cycles a \
         classic L1i Prime+Probe gets. That margin is the paper's contribution.",
        hot.cycles.saturating_sub(cold.cycles)
    );
}
