//! §6.1 end to end: sample performance counters over benign and attacking
//! workloads and train the kNN detector; machine_clears.smc separates the
//! attacks almost perfectly, with false positives only on the
//! self-modifying `amg` workload.
//!
//! Run with: `cargo run --example detection`

use smack_detection::{collect_dataset, evaluate, DetectionConfig, FeatureSet};
use smack_uarch::MicroArch;

fn main() {
    let cfg =
        DetectionConfig { window_cycles: 80_000, windows_per_run: 6, ..DetectionConfig::default() };
    println!("collecting counter windows (20 benign workloads + 12 attack loops)...");
    let (benign, attacks) =
        collect_dataset(MicroArch::CascadeLake, &cfg).expect("dataset collects");
    println!("{} benign windows, {} attack windows", benign.len(), attacks.len());
    println!();
    for fs in FeatureSet::ALL {
        let r = evaluate(fs, &benign, &attacks, 99);
        println!("{:<34} accuracy {:.4}  F1 {:.4}  FPR {:.4}", fs.name(), r.accuracy, r.f1, r.fpr);
    }
    println!();
    println!(
        "(paper: machine_clears.smc reaches F1 0.987 at 0.85% FPR; \
              BR_MISP and LLC-miss detectors from prior work trail far behind)"
    );
}
