//! Case Study IV end to end: ISpectre leaks a secret string through the
//! instruction cache using speculative indirect calls (paper §5.4).
//!
//! Run with: `cargo run --example ispectre`

use smack::ispectre::{leak_secret, ISpectreConfig};
use smack_uarch::{MicroArch, ProbeKind};

fn main() {
    let secret = b"The Magic Words are Squeamish Ossifrage.";
    for kind in [ProbeKind::Store, ProbeKind::Flush] {
        let cfg = ISpectreConfig::new(kind);
        let report = leak_secret(MicroArch::CascadeLake, secret, &cfg, 42).expect("attack runs");
        println!(
            "{kind:<12} -> {:5.1}% of bytes recovered at {:>8.0} B/s ({} machine clears)",
            report.success_rate * 100.0,
            report.bytes_per_s,
            report.machine_clears
        );
    }
    println!();
    println!(
        "the leak lives in the L1 *instruction* cache, so data-cache-focused \
         Spectre defenses never see it (paper §5.4)."
    );
}
