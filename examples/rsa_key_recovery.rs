//! Case Study II end to end: a Libgcrypt-1.5.1-style RSA victim decrypts
//! on the sibling SMT thread while Prime+iFlush recovers the private
//! exponent's bits from L1i-set activity (paper §5.2).
//!
//! Run with: `cargo run --example rsa_key_recovery`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::rsa::{
    build_victim, collect_trace, decode_trace, majority_vote, score_bits, RsaAttackConfig,
};
use smack_crypto::RsaKeyPair;
use smack_uarch::{MicroArch, NoiseConfig, ProbeKind};

fn main() {
    let mut rng = SmallRng::seed_from_u64(2025);
    // An honest (small, for speed) RSA key pair; the attack sees only the
    // victim's instruction-cache footprint, never the key.
    let key = RsaKeyPair::generate(256, &mut rng);
    println!("victim RSA key: n = {}", key.n());
    println!("private exponent bits: {}", key.d().bit_len());

    let cfg =
        RsaAttackConfig { noise: NoiseConfig::quiet(), ..RsaAttackConfig::new(ProbeKind::Flush) };
    let victim = build_victim(&cfg);
    let mut decodes = Vec::new();
    for trace_idx in 0..6 {
        let trace = collect_trace(MicroArch::TigerLake, &victim, key.d(), &cfg, 100 + trace_idx)
            .expect("trace collects");
        let decoded = decode_trace(&trace, key.d().bit_len());
        let rate = score_bits(&decoded, key.d());
        println!("trace {trace_idx}: single-trace recovery {:.1}%", rate * 100.0);
        decodes.push(decoded);
    }
    let combined = majority_vote(&decodes, key.d().bit_len());
    let rate = score_bits(&combined, key.d());
    println!();
    println!(
        "majority vote over {} traces: {:.1}% of d's bits recovered",
        decodes.len(),
        rate * 100.0
    );
    println!("(the paper reports ~63% from one trace and 70% after ~10 traces)");
}
