//! The ISpectre victim gadget (paper Listing 5).
//!
//! A bounds-checked indirect call: for in-bounds indices the gadget calls
//! into the oracle page at `array[index] * 64`; for out-of-bounds indices
//! the bounds check architecturally skips the call — but after PHT
//! mistraining the call executes *speculatively*, fetching the oracle line
//! selected by the out-of-bounds (secret) byte into the L1i, where an
//! SMC-probe reload detects it.
//!
//! The bounds value is reached through a pointer indirection so that
//! flushing two lines gives the attacker a comfortably wide speculation
//! window (two dependent DRAM loads before the branch can resolve).

use smack_uarch::asm::{Assembler, Program};
use smack_uarch::isa::{MemRef, Reg};
use smack_uarch::Addr;

/// Number of oracle slots (one per possible secret byte value).
pub const ORACLE_SLOTS: usize = 256;

/// A built ISpectre victim: gadget code, oracle page and data layout.
#[derive(Clone, Debug)]
pub struct SpectreVictim {
    /// Gadget + oracle code.
    pub program: Program,
    /// Entry of `victim_function(index)`.
    pub entry: u64,
    /// Line holding the pointer to the bounds value.
    pub bounds_ptr: Addr,
    /// Line holding the bounds value itself.
    pub bounds: Addr,
    /// Base of the `notsecret` byte array.
    pub array: Addr,
    /// Base of the oracle code page (256 lines).
    pub oracle_base: Addr,
    /// Number of in-bounds entries in `notsecret`.
    pub array_len: u64,
}

impl SpectreVictim {
    /// Build the gadget with default addresses.
    pub fn build() -> SpectreVictim {
        Self::build_at(0x0300_0000, 0x0400_0000)
    }

    /// Build at explicit code/data bases.
    ///
    /// # Panics
    ///
    /// Panics if the bases are not page-aligned.
    pub fn build_at(code_base: u64, data_base: u64) -> SpectreVictim {
        assert_eq!(code_base % 4096, 0, "code base must be page-aligned");
        assert_eq!(data_base % 4096, 0, "data base must be page-aligned");
        let oracle_base = code_base + 0x10_000;
        let bounds_ptr = data_base;
        let bounds = data_base + 0x1000; // separate line & page
        let array = data_base + 0x2000;
        let array_len = 16u64;

        let mut a = Assembler::new(code_base);
        // victim_function(R1 = index):
        //   size = **bounds_ptr;  if index >= size goto done;
        //   call *(oracle_base + notsecret[index] * 64)
        a.label("victim_function")
            .mov_imm(Reg::R4, bounds_ptr)
            .load(Reg::R4, MemRef::base(Reg::R4)) // R4 = &bounds
            .load(Reg::R2, MemRef::base(Reg::R4)) // R2 = array_size (slow when flushed)
            .cmp(Reg::R1, Reg::R2)
            .jge("done")
            .mov_imm(Reg::R5, array)
            .add(Reg::R5, Reg::R1)
            .load_byte(Reg::R3, MemRef::base(Reg::R5))
            .shl_imm(Reg::R3, 6)
            .add_imm(Reg::R3, oracle_base as i64)
            .call_reg(Reg::R3)
            .label("done")
            .ret();
        // Oracle page: one two-instruction line per possible byte value.
        for slot in 0..ORACLE_SLOTS as u64 {
            a.org(oracle_base + slot * 64).nop().ret();
        }
        let program = a.assemble().expect("spectre victim assembles");
        SpectreVictim {
            program,
            entry: code_base,
            bounds_ptr: Addr(bounds_ptr),
            bounds: Addr(bounds),
            array: Addr(array),
            oracle_base: Addr(oracle_base),
            array_len,
        }
    }

    /// Address of oracle slot `byte`.
    pub fn oracle_slot(&self, byte: u8) -> Addr {
        Addr(self.oracle_base.0 + byte as u64 * 64)
    }

    /// Install the victim's data: the bounds pointer chain, the in-bounds
    /// array contents, and the secret bytes placed immediately after the
    /// array (so `index >= array_len` reads them out of bounds).
    pub fn stage(&self, machine: &mut smack_uarch::Machine, secret: &[u8]) {
        machine.load_program(&self.program);
        machine.write_u64(self.bounds_ptr, self.bounds.0);
        machine.write_u64(self.bounds, self.array_len);
        for i in 0..self.array_len {
            // In-bounds training values: slot = index % 16.
            machine.write_u8(Addr(self.array.0 + i), (i % 16) as u8);
        }
        for (i, b) in secret.iter().enumerate() {
            machine.write_u8(Addr(self.array.0 + self.array_len + i as u64), *b);
        }
    }

    /// The out-of-bounds index that reaches secret byte `i`.
    pub fn secret_index(&self, i: usize) -> u64 {
        self.array_len + i as u64
    }

    /// Declare the gadget's secret inputs for the static analyzer: the
    /// bytes past the end of `notsecret` (one page's worth — `stage`
    /// places the secret immediately after the in-bounds entries), and the
    /// oracle page as the range the indirect call may target (the gadget
    /// computes its targets, so immediate harvesting alone would only see
    /// slot 0).
    pub fn secret_spec(&self) -> smack_analysis::SecretSpec {
        smack_analysis::SecretSpec {
            tainted_memory: vec![smack_analysis::AddrRange::span(
                self.array.0 + self.array_len,
                4096 - self.array_len,
            )],
            indirect_targets: vec![smack_analysis::AddrRange::span(
                self.oracle_base.0,
                ORACLE_SLOTS as u64 * 64,
            )],
            ..smack_analysis::SecretSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::{Machine, MicroArch, ThreadId};

    const T0: ThreadId = ThreadId::T0;

    #[test]
    fn in_bounds_call_reaches_oracle_slot() {
        let v = SpectreVictim::build();
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        v.stage(&mut m, b"X");
        m.call(T0, v.entry, &[3]).unwrap();
        // notsecret[3] = 3 -> slot 3 executed -> line in L1i.
        assert!(m.residency(v.oracle_slot(3)).l1i);
        assert!(!m.residency(v.oracle_slot(9)).l1i);
    }

    #[test]
    fn out_of_bounds_is_architecturally_silent() {
        let v = SpectreVictim::build();
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        v.stage(&mut m, b"\x7f");
        // No training, bounds in cache: branch resolves immediately and the
        // OOB access never runs.
        m.call(T0, v.entry, &[v.secret_index(0)]).unwrap();
        assert!(!m.residency(v.oracle_slot(0x7f)).l1i);
    }

    #[test]
    fn mistrained_oob_call_leaks_into_l1i() {
        let v = SpectreVictim::build();
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        v.stage(&mut m, &[0xA5]);
        // Train the bounds check with in-bounds indices.
        for i in 0..8 {
            m.call(T0, v.entry, &[i % v.array_len]).unwrap();
        }
        // Flush the pointer chain and the oracle page.
        m.flush_line(v.bounds_ptr);
        m.flush_line(v.bounds);
        for s in 0..ORACLE_SLOTS {
            m.flush_line(v.oracle_slot(s as u8));
        }
        m.call(T0, v.entry, &[v.secret_index(0)]).unwrap();
        assert!(
            m.residency(v.oracle_slot(0xA5)).l1i,
            "speculatively fetched secret slot must remain in L1i"
        );
    }
}
