//! Synthetic cryptographic-library corpus for Case Study II step 1.
//!
//! The paper fingerprints 14 Libgcrypt and 20 OpenSSL versions by the L1i
//! sets their RSA decryption touches: each version lays its hot functions
//! out at different offsets, so the 64-set activity histogram is a stable
//! fingerprint. The reproduction generates, per version, a deterministic
//! layout of ~12 hot "functions" (cache lines) with per-function call
//! intensities; versions that are adjacent releases share most of their
//! layout (differing in one or two functions), reproducing the paper's
//! observation that *close versions are the hard cases*.

use smack_uarch::asm::{Assembler, Program};
use smack_uarch::isa::Reg;

/// Library family.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LibraryFamily {
    /// OpenSSL.
    OpenSsl,
    /// Libgcrypt.
    Libgcrypt,
}

impl LibraryFamily {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LibraryFamily::OpenSsl => "OpenSSL",
            LibraryFamily::Libgcrypt => "Libgcrypt",
        }
    }
}

/// One library version in the corpus.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LibraryVersion {
    /// Family this version belongs to.
    pub family: LibraryFamily,
    /// Human-readable version string.
    pub version: String,
    /// Deterministic layout seed.
    pub seed: u64,
}

impl LibraryVersion {
    /// Label shown in reports, e.g. `OpenSSL 1.1.1k`.
    pub fn label(&self) -> String {
        format!("{} {}", self.family.name(), self.version)
    }
}

const OPENSSL_VERSIONS: [&str; 20] = [
    "1.0.2u", "1.1.0l", "1.1.1a", "1.1.1c", "1.1.1d", "1.1.1f", "1.1.1g", "1.1.1i", "1.1.1k",
    "1.1.1l", "1.1.1n", "1.1.1q", "1.1.1t", "1.1.1w", "3.0.0", "3.0.2", "3.0.7", "3.0.8", "3.1.0",
    "3.1.2",
];

const LIBGCRYPT_VERSIONS: [&str; 14] = [
    "1.5.1", "1.5.4", "1.6.1", "1.6.3", "1.7.0", "1.7.6", "1.8.1", "1.8.4", "1.8.5", "1.9.0",
    "1.9.4", "1.10.0", "1.10.1", "1.10.2",
];

/// The full 34-version corpus (20 OpenSSL + 14 Libgcrypt), as in §5.2.
pub fn corpus() -> Vec<LibraryVersion> {
    let mut out = Vec::with_capacity(34);
    for (i, v) in OPENSSL_VERSIONS.iter().enumerate() {
        out.push(LibraryVersion {
            family: LibraryFamily::OpenSsl,
            version: (*v).to_owned(),
            seed: 0x0551_0000 + i as u64,
        });
    }
    for (i, v) in LIBGCRYPT_VERSIONS.iter().enumerate() {
        out.push(LibraryVersion {
            family: LibraryFamily::Libgcrypt,
            version: (*v).to_owned(),
            seed: 0x6c67_0000 + i as u64,
        });
    }
    out
}

fn mix(seed: u64, i: u64) -> u64 {
    // SplitMix64 finalizer.
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of hot functions per library victim.
pub const HOT_FUNCTIONS: usize = 12;

/// A built "RSA decryption with library version X" victim.
#[derive(Clone, Debug)]
pub struct LibraryVictim {
    /// Assembled program.
    pub program: Program,
    /// Entry point; takes the outer iteration count in `R1`.
    pub entry: u64,
    /// The (set, intensity) layout of the hot functions.
    pub layout: Vec<(usize, u32)>,
}

impl LibraryVictim {
    /// Corpus victims leak their *identity* through layout, not a secret
    /// through data flow: their call schedule is input-independent, so
    /// they declare no secrets and the analyzer proves them
    /// constant-footprint.
    pub fn secret_spec(&self) -> smack_analysis::SecretSpec {
        smack_analysis::SecretSpec::none()
    }
}

/// Build the victim program for a library version.
///
/// Adjacent versions within a family share most of their layout: function
/// `f`'s placement derives from `seed - (seed % 4)` for all but the last
/// two functions, so consecutive seeds only move a couple of lines.
/// `key_seed` perturbs call counts slightly, modeling different decryption
/// keys (the paper collects 8 measurements per version with varying keys).
pub fn build_victim(version: &LibraryVersion, code_base: u64, key_seed: u64) -> LibraryVictim {
    assert_eq!(code_base % 4096, 0, "code base must be page-aligned");
    let coarse = version.seed - (version.seed % 4);
    let mut layout = Vec::with_capacity(HOT_FUNCTIONS);
    for f in 0..HOT_FUNCTIONS as u64 {
        // Most functions placed by the coarse (shared) seed; the last two
        // by the exact seed, so close versions differ subtly.
        let s = if f < HOT_FUNCTIONS as u64 - 2 { coarse } else { version.seed };
        let set = (mix(s, f * 2 + 1) % 64) as usize;
        let intensity = 1 + (mix(s, f * 2 + 2) % 5) as u32;
        layout.push((set, intensity));
    }

    let mut a = Assembler::new(code_base);
    a.label("entry").label("outer");
    for (f, (_, intensity)) in layout.iter().enumerate() {
        let calls = intensity + ((key_seed >> f) & 1) as u32;
        for _ in 0..calls {
            a.call(format!("fn{f}"));
        }
    }
    a.add_imm(Reg::R1, -1).cmp_imm(Reg::R1, 0).jne("outer").halt();
    for (f, (set, _)) in layout.iter().enumerate() {
        let addr = code_base + 0x10_000 + (f as u64) * 0x1000 + (*set as u64) * 64;
        a.org(addr).label(&format!("fn{f}")).nop().delay(40).ret();
    }
    let program = a.assemble().expect("library victim assembles");
    LibraryVictim { program, entry: code_base, layout }
}

/// The ideal per-set activity profile of a version (used in tests; the
/// attack measures this through the cache instead of reading it).
pub fn expected_profile(version: &LibraryVersion) -> [u32; 64] {
    let victim = build_victim(version, 0x0700_0000, 0);
    let mut profile = [0u32; 64];
    for (set, intensity) in &victim.layout {
        profile[*set] += *intensity;
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::Addr;

    #[test]
    fn corpus_has_paper_counts() {
        let c = corpus();
        assert_eq!(c.len(), 34);
        assert_eq!(c.iter().filter(|v| v.family == LibraryFamily::OpenSsl).count(), 20);
        assert_eq!(c.iter().filter(|v| v.family == LibraryFamily::Libgcrypt).count(), 14);
        // Labels unique.
        let mut labels: Vec<_> = c.iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 34);
    }

    #[test]
    fn layouts_deterministic_and_version_specific() {
        let c = corpus();
        let a1 = build_victim(&c[0], 0x0700_0000, 0);
        let a2 = build_victim(&c[0], 0x0700_0000, 0);
        assert_eq!(a1.layout, a2.layout);
        let b = build_victim(&c[7], 0x0700_0000, 0);
        assert_ne!(a1.layout, b.layout);
    }

    #[test]
    fn adjacent_versions_share_most_layout() {
        let c = corpus();
        // Seeds 0 and 1 share the same coarse seed.
        let a = build_victim(&c[0], 0x0700_0000, 0);
        let b = build_victim(&c[1], 0x0700_0000, 0);
        let shared = a.layout.iter().zip(b.layout.iter()).filter(|(x, y)| x == y).count();
        assert!(shared >= HOT_FUNCTIONS - 2, "shared {shared}");
        assert_ne!(a.layout, b.layout, "but not identical");
    }

    #[test]
    fn victims_run_and_touch_expected_sets() {
        use smack_uarch::{Machine, MicroArch, ThreadId};
        let c = corpus();
        let v = build_victim(&c[3], 0x0700_0000, 1);
        let mut m = Machine::new(MicroArch::TigerLake.profile());
        m.load_program(&v.program);
        m.start_program(ThreadId::T1, v.entry, &[2]);
        m.run_until_halt(ThreadId::T1, 2_000_000).unwrap();
        // Every hot function's line must now be resident in L1i or have
        // passed through it (still in L2 at least).
        for (f, (set, _)) in v.layout.iter().enumerate() {
            let addr = Addr(0x0700_0000 + 0x10_000 + (f as u64) * 0x1000 + (*set as u64) * 64);
            let r = m.residency(addr);
            assert!(r.l2 || r.l1i, "fn{f} line visited");
        }
    }

    #[test]
    fn expected_profiles_mostly_distinct() {
        let c = corpus();
        let mut distinct = 0;
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                if expected_profile(&c[i]) != expected_profile(&c[j]) {
                    distinct += 1;
                }
            }
        }
        let pairs = c.len() * (c.len() - 1) / 2;
        assert!(distinct as f64 / pairs as f64 > 0.95, "{distinct}/{pairs}");
    }
}
