//! # smack-victims
//!
//! Victim programs for the SMaCk reproduction, written in the simulated ISA
//! of `smack-uarch`:
//!
//! * [`modexp`]: the RSA (Libgcrypt-1.5.1-style binary square-and-multiply)
//!   and SRP (OpenSSL-1.1.1w-style sliding-window) modular-exponentiation
//!   drivers. These read the secret exponent from *simulated memory* and
//!   make genuinely secret-dependent calls to square/multiply routines
//!   placed in attacker-chosen L1i sets — the attacker recovers the secret
//!   purely from cache timing.
//! * [`spectre`]: the ISpectre victim gadget (bounds check + indirect call
//!   through an attacker-influenced oracle offset, paper Listing 5).
//! * [`benign`]: twenty benign workloads standing in for the paper's
//!   Phoronix suite, including an `amg`-like self-modifying workload that
//!   reproduces the detector's false-positive case (§6.1).
//! * [`mod@corpus`]: a synthetic corpus of 14 Libgcrypt + 20 OpenSSL
//!   "library versions" whose code layouts produce distinct L1i-set
//!   activity fingerprints (Case Study II step 1).

pub mod benign;
pub mod corpus;
pub mod modexp;
pub mod spectre;

pub use benign::BenignWorkload;
pub use corpus::{corpus, LibraryFamily, LibraryVersion};
pub use modexp::{ModexpVictim, ModexpVictimBuilder};
pub use spectre::SpectreVictim;
