//! Modular-exponentiation victim programs.
//!
//! Both victims read the exponent as a bit array from simulated memory and
//! drive their square/multiply routines with real data-dependent control
//! flow; nothing about the secret is baked into the code. The square and
//! multiply routines live in *different* L1i sets (as `mpih_sqr_n` vs
//! `mul_n` do in Libgcrypt, and as the paper's attacks require): monitoring
//! the multiply set and counting idle gaps between activities recovers the
//! exponent's structure.
//!
//! The routines model their O(limbs²) Montgomery-arithmetic cost with a
//! `Delay` pseudo-instruction (see DESIGN.md §1) and append an op code to an
//! in-memory log so tests can cross-validate the executed schedule against
//! [`smack_crypto::modexp`]'s schedule extraction.

use smack_crypto::Bignum;
use smack_uarch::asm::{Assembler, Program};
use smack_uarch::isa::{MemRef, Reg};
use smack_uarch::Addr;

/// Which exponentiation algorithm the victim runs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ModexpAlgorithm {
    /// Left-to-right binary square-and-multiply (Libgcrypt 1.5.1 RSA).
    BinaryLtr,
    /// Sliding-window with the given window size (OpenSSL `BN_mod_exp_mont`).
    SlidingWindow {
        /// Window size in bits (OpenSSL uses up to 6).
        window: u64,
    },
    /// Constant-time Montgomery ladder: one square and one multiply per
    /// bit regardless of its value — the §6.2 countermeasure. The
    /// instruction-cache schedule carries no key information.
    MontgomeryLadder,
}

/// Op codes written to the in-memory schedule log.
pub const LOG_SQUARE: u8 = 1;
/// Multiply op code in the schedule log.
pub const LOG_MULTIPLY: u8 = 2;

/// Builder for a [`ModexpVictim`].
#[derive(Clone, Debug)]
pub struct ModexpVictimBuilder {
    algorithm: ModexpAlgorithm,
    code_base: u64,
    data_base: u64,
    sqr_set: usize,
    mul_set: usize,
    sqr_delay: u32,
    mul_delay: u32,
    l1i_sets: usize,
}

impl ModexpVictimBuilder {
    /// Start building a victim for `algorithm`.
    pub fn new(algorithm: ModexpAlgorithm) -> ModexpVictimBuilder {
        ModexpVictimBuilder {
            algorithm,
            code_base: 0x0100_0000,
            data_base: 0x0200_0000,
            sqr_set: 20,
            mul_set: 40,
            sqr_delay: 500,
            mul_delay: 500,
            l1i_sets: 64,
        }
    }

    /// Base address for the victim's code region (must be line-aligned).
    pub fn code_base(&mut self, base: u64) -> &mut Self {
        assert_eq!(base % 64, 0, "code base must be line-aligned");
        self.code_base = base;
        self
    }

    /// Base address for the exponent bit array and schedule log.
    pub fn data_base(&mut self, base: u64) -> &mut Self {
        self.data_base = base;
        self
    }

    /// L1i set for the square routine.
    pub fn sqr_set(&mut self, set: usize) -> &mut Self {
        self.sqr_set = set;
        self
    }

    /// L1i set for the multiply routine (the set the attacker monitors).
    pub fn mul_set(&mut self, set: usize) -> &mut Self {
        self.mul_set = set;
        self
    }

    /// Cycle cost of one square/multiply, modeling the O(limbs²)
    /// Montgomery arithmetic for a `bits`-bit modulus.
    pub fn operand_bits(&mut self, bits: usize) -> &mut Self {
        let d = Self::delay_for_bits(bits);
        self.sqr_delay = d;
        self.mul_delay = d;
        self
    }

    /// The per-operation delay model: ~500 cycles at 1024 bits, scaling
    /// quadratically with the limb count (paper §5.3 reports 500–600-cycle
    /// squares at group size 1024 and 20k+ at 6144).
    pub fn delay_for_bits(bits: usize) -> u32 {
        let r = bits as f64 / 1024.0;
        (500.0 * r * r) as u32
    }

    /// Build the victim for this machine geometry.
    ///
    /// # Panics
    ///
    /// Panics if the square and multiply sets collide with each other or
    /// with the driver's code lines.
    pub fn build(&self) -> ModexpVictim {
        assert_ne!(self.sqr_set, self.mul_set, "square/multiply sets must differ");
        let sets = self.l1i_sets;
        // Each routine also executes the line after its own (the loop
        // tail), so that line's set must not be the other routine's
        // monitored set.
        assert_ne!((self.sqr_set + 1) % sets, self.mul_set, "sqr loop tail hits the mul set");
        assert_ne!((self.mul_set + 1) % sets, self.sqr_set, "mul loop tail hits the sqr set");
        // Driver occupies the first few lines of the code region; routines
        // are placed one page up so their tags differ from everything else.
        let driver_base = self.code_base;
        let routine_page = self.code_base + 0x10_000;
        let sqr_addr = routine_page + (self.sqr_set as u64) * 64;
        let mul_addr = routine_page + 0x1000 + (self.mul_set as u64) * 64;
        let driver_sets: Vec<usize> =
            (0..8).map(|i| Addr(driver_base + i * 64).set_index(sets)).collect();
        assert!(
            !driver_sets.contains(&self.mul_set),
            "driver code collides with the monitored multiply set; move code_base or mul_set"
        );

        let exp_addr = self.data_base;
        let log_addr = self.data_base + 0x10_000;

        let mut a = Assembler::new(driver_base);
        match self.algorithm {
            ModexpAlgorithm::BinaryLtr => self.emit_binary(&mut a),
            ModexpAlgorithm::SlidingWindow { window } => self.emit_sliding(&mut a, window),
            ModexpAlgorithm::MontgomeryLadder => self.emit_ladder(&mut a),
        }
        // Square and multiply routines: log the op, then model the
        // O(limbs²) big-int work as a loop that keeps *executing* the
        // routine's own cache line for the whole operation — real `mul_n` /
        // `mpih_sqr_n` run their inner loop continuously, which is exactly
        // what makes the victim's set activity observable at any attacker
        // sampling phase (the paper's Figure 4 dips). The loop body spans
        // the routine's line and the next line, so every iteration
        // re-enters (and refetches) the monitored line.
        Self::emit_routine(&mut a, sqr_addr, "sqr", LOG_SQUARE, self.sqr_delay);
        Self::emit_routine(&mut a, mul_addr, "mul", LOG_MULTIPLY, self.mul_delay);
        let program = a.assemble().expect("victim assembles");
        ModexpVictim {
            program,
            entry: driver_base,
            exp_addr: Addr(exp_addr),
            log_addr: Addr(log_addr),
            sqr_line: Addr(sqr_addr),
            mul_line: Addr(mul_addr),
            sqr_set: self.sqr_set,
            mul_set: self.mul_set,
            algorithm: self.algorithm,
        }
    }

    /// Emit one big-int routine at `addr`: log byte, then `iters` loop
    /// turns of `delay(chunk)` with the loop tail on the *next* line so
    /// each turn refetches the routine's own line. Registers: R10 = log
    /// cursor (caller state), R11 = loop counter (scratch).
    fn emit_routine(a: &mut Assembler, addr: u64, name: &str, log_code: u8, delay: u32) {
        // ~64-cycle turns: coarse enough to stay cheap, fine enough that
        // the routine's line activity is continuous at attacker timescales.
        let iters = (delay / 64).max(1);
        let chunk = delay / iters;
        let entry = format!("{name}_n");
        let lbl_loop = format!("{name}_n_body");
        let lbl_tail = format!("{name}_n_tail");
        let lbl_done = format!("{name}_n_done");
        a.org(addr)
            .label(&entry)
            .push(smack_uarch::isa::Instr::StoreImm { mem: MemRef::base(Reg::R10), imm: log_code })
            .add_imm(Reg::R10, 1)
            .mov_imm(Reg::R11, iters as u64)
            .label(&lbl_loop)
            .delay(chunk)
            .add_imm(Reg::R11, -1)
            .cmp_imm(Reg::R11, 0)
            .je(lbl_done.as_str())
            .jmp(lbl_tail.as_str());
        a.org(addr + 64).label(&lbl_tail).jmp(lbl_loop.as_str()).label(&lbl_done).ret();
    }

    /// Binary left-to-right driver:
    /// `for i in (0..nbits).rev() { sqr(); if bit[i] { mul(); } }`.
    ///
    /// Registers: R1 = exp bit array, R2 = nbits, R10 = log cursor.
    /// Bits are stored LSB-first (byte `i` = bit `i`).
    fn emit_binary(&self, a: &mut Assembler) {
        a.label("entry")
            // R4 = i = nbits - 1, counts down; unsigned wrap ends the loop.
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, -1)
            .label("loop")
            .cmp(Reg::R4, Reg::R2)
            .jge("done") // i wrapped past zero
            .call("sqr_n")
            .mov(Reg::R5, Reg::R1)
            .add(Reg::R5, Reg::R4)
            .load_byte(Reg::R6, MemRef::base(Reg::R5))
            .cmp_imm(Reg::R6, 0)
            .je("skip")
            .call("mul_n")
            .label("skip")
            .add_imm(Reg::R4, -1)
            .jmp("loop")
            .label("done")
            .halt();
    }

    /// Montgomery-ladder driver: `for each bit { sqr(); mul(); }` with no
    /// secret-dependent control flow at all — the constant-time
    /// countermeasure of §6.2. (The bit still selects *operands* on real
    /// hardware, but never the instruction stream.)
    fn emit_ladder(&self, a: &mut Assembler) {
        a.label("entry")
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, -1)
            .label("loop")
            .cmp(Reg::R4, Reg::R2)
            .jge("done") // index wrapped below zero
            .call("sqr_n")
            .call("mul_n")
            .add_imm(Reg::R4, -1)
            .jmp("loop")
            .label("done")
            .halt();
    }

    /// Sliding-window driver mirroring paper Listing 4 / OpenSSL
    /// `BN_mod_exp_mont`.
    ///
    /// Registers: R1 = exp bits (LSB-first), R2 = nbits, R3 = window,
    /// R9 = started flag, R10 = log cursor.
    fn emit_sliding(&self, a: &mut Assembler, window: u64) {
        a.label("entry")
            .mov_imm(Reg::R3, window)
            .mov_imm(Reg::R9, 0) // started = false
            .mov(Reg::R4, Reg::R2)
            .add_imm(Reg::R4, -1) // wstart
            .label("outer")
            .cmp(Reg::R4, Reg::R2)
            .jge("done") // wstart wrapped below zero
            .mov(Reg::R5, Reg::R1)
            .add(Reg::R5, Reg::R4)
            .load_byte(Reg::R6, MemRef::base(Reg::R5))
            .cmp_imm(Reg::R6, 0)
            .jne("window")
            // Lone zero bit: square (once started) and move on.
            .cmp_imm(Reg::R9, 0)
            .je("zero_next")
            .call("sqr_n")
            .label("zero_next")
            .add_imm(Reg::R4, -1)
            .jmp("outer")
            // Window accumulation: find the furthest set bit within the
            // window (R7 = i, R8 = wend).
            .label("window")
            .mov_imm(Reg::R7, 1)
            .mov_imm(Reg::R8, 0)
            .label("scan")
            .cmp(Reg::R7, Reg::R3)
            .jge("scan_done")
            .cmp(Reg::R4, Reg::R7)
            .jlt("scan_done") // wstart - i < 0
            .mov(Reg::R5, Reg::R4)
            .sub(Reg::R5, Reg::R7)
            .add(Reg::R5, Reg::R1)
            .load_byte(Reg::R6, MemRef::base(Reg::R5))
            .cmp_imm(Reg::R6, 0)
            .je("scan_next")
            .mov(Reg::R8, Reg::R7) // wend = i
            .label("scan_next")
            .add_imm(Reg::R7, 1)
            .jmp("scan")
            .label("scan_done")
            // (wend + 1) squares once started.
            .cmp_imm(Reg::R9, 0)
            .je("after_sqrs")
            .mov_imm(Reg::R7, 0)
            .label("sqr_loop")
            .call("sqr_n")
            .add_imm(Reg::R7, 1)
            .cmp(Reg::R7, Reg::R8)
            .jcc(smack_uarch::isa::Cond::Le, "sqr_loop")
            .label("after_sqrs")
            .call("mul_n")
            .mov_imm(Reg::R9, 1) // started = true
            // wstart -= wend + 1
            .sub(Reg::R4, Reg::R8)
            .add_imm(Reg::R4, -1)
            .jmp("outer")
            .label("done")
            .halt();
    }
}

/// A built modular-exponentiation victim.
#[derive(Clone, Debug)]
pub struct ModexpVictim {
    /// The assembled program (driver + routines).
    pub program: Program,
    /// Entry point.
    pub entry: u64,
    /// Address of the exponent bit array (one byte per bit, LSB-first).
    pub exp_addr: Addr,
    /// Address of the schedule log the routines append to.
    pub log_addr: Addr,
    /// Code line of the square routine.
    pub sqr_line: Addr,
    /// Code line of the multiply routine (the attacker's monitored line).
    pub mul_line: Addr,
    /// L1i set of the square routine.
    pub sqr_set: usize,
    /// L1i set of the multiply routine.
    pub mul_set: usize,
    /// Algorithm this victim runs.
    pub algorithm: ModexpAlgorithm,
}

impl ModexpVictim {
    /// Write `exp` into simulated memory as the victim's bit array and
    /// return the `(entry, args)` pair to start it with.
    pub fn stage(&self, machine: &mut smack_uarch::Machine, exp: &Bignum) -> (u64, [u64; 2]) {
        let nbits = exp.bit_len();
        for i in 0..nbits {
            machine.write_u8(self.exp_addr.offset(i as i64), exp.bit(i) as u8);
        }
        // Zero the log and point R10 at it when starting.
        (self.entry, [self.exp_addr.0, nbits as u64])
    }

    /// Declare this victim's secret inputs for the static analyzer: the
    /// exponent bit region. The span covers the whole reservation (up to
    /// the schedule log) because the staged bit count varies per run.
    pub fn secret_spec(&self) -> smack_analysis::SecretSpec {
        smack_analysis::SecretSpec {
            tainted_memory: vec![smack_analysis::AddrRange::span(
                self.exp_addr.0,
                self.log_addr.0 - self.exp_addr.0,
            )],
            ..smack_analysis::SecretSpec::default()
        }
    }

    /// Start the victim on `tid`, with `exp` staged in memory.
    pub fn start(
        &self,
        machine: &mut smack_uarch::Machine,
        tid: smack_uarch::ThreadId,
        exp: &Bignum,
    ) {
        let (entry, args) = self.stage(machine, exp);
        machine.set_reg(tid, Reg::R10, self.log_addr.0);
        machine.start_program(tid, entry, &args);
    }

    /// Read back the executed schedule log (after the victim halts).
    pub fn read_log(&self, machine: &smack_uarch::Machine, tid: smack_uarch::ThreadId) -> Vec<u8> {
        let end = machine.reg(tid, Reg::R10);
        let len = (end - self.log_addr.0) as usize;
        machine.read_bytes(self.log_addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smack_crypto::modexp::{binary_ltr_schedule, sliding_window_schedule, ModexpOp};
    use smack_crypto::WindowSizing;
    use smack_uarch::{Machine, MicroArch, ThreadId};

    fn run_victim(victim: &ModexpVictim, exp: &Bignum) -> Vec<u8> {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        m.load_program(&victim.program);
        victim.start(&mut m, ThreadId::T1, exp);
        m.run_until_halt(ThreadId::T1, 50_000_000).expect("victim halts");
        victim.read_log(&m, ThreadId::T1)
    }

    fn ops_to_log(ops: &[ModexpOp]) -> Vec<u8> {
        ops.iter()
            .map(|o| match o {
                ModexpOp::Square => LOG_SQUARE,
                ModexpOp::Multiply => LOG_MULTIPLY,
            })
            .collect()
    }

    #[test]
    fn binary_victim_schedule_matches_crypto_ground_truth() {
        let mut rng = SmallRng::seed_from_u64(21);
        let victim = ModexpVictimBuilder::new(ModexpAlgorithm::BinaryLtr).build();
        for bits in [16usize, 64, 256] {
            let exp = Bignum::random_bits(&mut rng, bits);
            let log = run_victim(&victim, &exp);
            assert_eq!(log, ops_to_log(&binary_ltr_schedule(&exp)), "bits={bits}");
        }
    }

    #[test]
    fn sliding_victim_schedule_matches_crypto_ground_truth() {
        let mut rng = SmallRng::seed_from_u64(22);
        for bits in [80usize, 256, 700] {
            let window = WindowSizing::for_exponent_bits(bits) as u64;
            let victim =
                ModexpVictimBuilder::new(ModexpAlgorithm::SlidingWindow { window }).build();
            let exp = Bignum::random_bits(&mut rng, bits);
            let log = run_victim(&victim, &exp);
            assert_eq!(
                log,
                ops_to_log(&sliding_window_schedule(&exp).ops),
                "bits={bits} window={window}"
            );
        }
    }

    #[test]
    fn routines_live_in_requested_sets() {
        let mut b = ModexpVictimBuilder::new(ModexpAlgorithm::BinaryLtr);
        b.sqr_set(7).mul_set(53);
        let v = b.build();
        assert_eq!(v.sqr_line.set_index(64), 7);
        assert_eq!(v.mul_line.set_index(64), 53);
        assert_ne!(v.sqr_line.line(), v.mul_line.line());
    }

    #[test]
    fn delay_scales_quadratically() {
        let d1 = ModexpVictimBuilder::delay_for_bits(1024);
        let d2 = ModexpVictimBuilder::delay_for_bits(2048);
        let d6 = ModexpVictimBuilder::delay_for_bits(6144);
        assert_eq!(d1, 500);
        assert_eq!(d2, 2000);
        assert_eq!(d6, 18000);
        assert!(d6 > d2 && d2 > d1);
    }

    #[test]
    fn ladder_schedule_is_key_independent() {
        let victim = ModexpVictimBuilder::new(ModexpAlgorithm::MontgomeryLadder).build();
        let mut rng = SmallRng::seed_from_u64(23);
        let a = Bignum::random_bits(&mut rng, 64);
        let mut b = Bignum::random_bits(&mut rng, 64);
        // Force a different bit pattern with the same length.
        if a == b {
            b = b.add(&Bignum::one());
        }
        let log_a = run_victim(&victim, &a);
        let log_b = run_victim(&victim, &b);
        assert_eq!(log_a, log_b, "constant-time: identical op schedules");
        // One square + one multiply per bit.
        assert_eq!(log_a.len(), 2 * a.bit_len());
    }

    #[test]
    #[should_panic(expected = "sets must differ")]
    fn same_sets_rejected() {
        let mut b = ModexpVictimBuilder::new(ModexpAlgorithm::BinaryLtr);
        b.sqr_set(5).mul_set(5);
        b.build();
    }
}
