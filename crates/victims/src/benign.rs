//! Twenty benign workloads standing in for the paper's Phoronix suite
//! (§6.1), plus the `amg`-like self-modifying workload that causes the
//! detector's only false positives.
//!
//! Each workload is a small ISA program taking the iteration count in `R1`.
//! They are deliberately diverse in their counter signatures: arithmetic
//! loops, memory streaming, pointer chasing, branchy code, call-heavy code,
//! L1i-pressure walkers, benign data flushes, and one JIT-style workload
//! that stores to its own code lines and therefore triggers genuine SMC
//! machine clears.

use smack_uarch::asm::{Assembler, Program};
use smack_uarch::isa::{MemRef, Reg};

/// One benign workload from the suite.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BenignWorkload {
    /// Tight add/mul register arithmetic.
    ArithLoop,
    /// 8×8 integer matrix multiply over memory.
    MatMul,
    /// Random-ish pointer chase through a linked cycle.
    PointerChase,
    /// Load/store copy loop.
    MemCopy,
    /// Deep call/return chains.
    CallHeavy,
    /// Data-dependent branches (mispredict-heavy).
    Branchy,
    /// Sequential streaming reads.
    StreamSum,
    /// Large-stride reads (cache-miss heavy).
    StrideAccess,
    /// Iterative Fibonacci.
    Fibonacci,
    /// Xorshift-style mixing.
    HashMix,
    /// Bit-counting loop.
    BitCount,
    /// Insertion sort over a small array.
    InsertionSort,
    /// Byte scan with compares.
    StringScan,
    /// Additive checksum over a buffer.
    Checksum,
    /// Linear congruential PRNG.
    PrngLcg,
    /// Byte histogram.
    Histogram,
    /// Compute-shaped delays (models an FP kernel).
    SpinKernel,
    /// Calls across many code lines (benign L1i pressure).
    IcacheWalker,
    /// `clflush` over its own *data* buffer (benign flush usage).
    FlushData,
    /// JIT-style self-modifying workload (stores to its own code lines);
    /// the paper's `amg` analogue and the detector's false-positive source.
    Amg,
}

impl BenignWorkload {
    /// The whole suite, in a stable order.
    pub const ALL: [BenignWorkload; 20] = [
        BenignWorkload::ArithLoop,
        BenignWorkload::MatMul,
        BenignWorkload::PointerChase,
        BenignWorkload::MemCopy,
        BenignWorkload::CallHeavy,
        BenignWorkload::Branchy,
        BenignWorkload::StreamSum,
        BenignWorkload::StrideAccess,
        BenignWorkload::Fibonacci,
        BenignWorkload::HashMix,
        BenignWorkload::BitCount,
        BenignWorkload::InsertionSort,
        BenignWorkload::StringScan,
        BenignWorkload::Checksum,
        BenignWorkload::PrngLcg,
        BenignWorkload::Histogram,
        BenignWorkload::SpinKernel,
        BenignWorkload::IcacheWalker,
        BenignWorkload::FlushData,
        BenignWorkload::Amg,
    ];

    /// Workload name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BenignWorkload::ArithLoop => "arith-loop",
            BenignWorkload::MatMul => "matmul",
            BenignWorkload::PointerChase => "pointer-chase",
            BenignWorkload::MemCopy => "memcopy",
            BenignWorkload::CallHeavy => "call-heavy",
            BenignWorkload::Branchy => "branchy",
            BenignWorkload::StreamSum => "stream-sum",
            BenignWorkload::StrideAccess => "stride-access",
            BenignWorkload::Fibonacci => "fibonacci",
            BenignWorkload::HashMix => "hash-mix",
            BenignWorkload::BitCount => "bit-count",
            BenignWorkload::InsertionSort => "insertion-sort",
            BenignWorkload::StringScan => "string-scan",
            BenignWorkload::Checksum => "checksum",
            BenignWorkload::PrngLcg => "prng-lcg",
            BenignWorkload::Histogram => "histogram",
            BenignWorkload::SpinKernel => "spin-kernel",
            BenignWorkload::IcacheWalker => "icache-walker",
            BenignWorkload::FlushData => "flush-data",
            BenignWorkload::Amg => "amg",
        }
    }

    /// Whether this workload intentionally triggers SMC machine clears.
    pub fn is_self_modifying(self) -> bool {
        self == BenignWorkload::Amg
    }

    /// Benign workloads process no secrets: the analyzer should prove them
    /// constant-footprint with no hints at all.
    pub fn secret_spec(self) -> smack_analysis::SecretSpec {
        smack_analysis::SecretSpec::none()
    }

    /// Build the workload at `code_base` using scratch memory at
    /// `data_base`. The program takes the outer iteration count in `R1`.
    ///
    /// # Panics
    ///
    /// Panics if `code_base` is not page-aligned.
    pub fn build(self, code_base: u64, data_base: u64) -> Program {
        assert_eq!(code_base % 4096, 0, "code base must be page-aligned");
        let mut a = Assembler::new(code_base);
        a.label("entry");
        match self {
            BenignWorkload::ArithLoop => {
                a.mov_imm(Reg::R2, 3)
                    .mov_imm(Reg::R3, 7)
                    .label("l")
                    .add(Reg::R2, Reg::R3)
                    .mul(Reg::R3, Reg::R2)
                    .add(Reg::R2, Reg::R3)
                    .add(Reg::R2, Reg::R3)
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l");
            }
            BenignWorkload::MatMul => {
                // 8x8 matmul flattened: for it { for i { for j { c[i*8+j] += sum } } }
                a.label("outer")
                    .mov_imm(Reg::R2, 0) // i*8+j linear index
                    .label("cell")
                    .mov_imm(Reg::R3, 0) // k
                    .mov_imm(Reg::R4, 0) // acc
                    .label("dot")
                    .mov_imm(Reg::R5, data_base)
                    .add(Reg::R5, Reg::R3)
                    .load(Reg::R6, MemRef::base(Reg::R5))
                    .mul(Reg::R6, Reg::R6)
                    .add(Reg::R4, Reg::R6)
                    .add_imm(Reg::R3, 8)
                    .cmp_imm(Reg::R3, 64)
                    .jlt("dot")
                    .mov_imm(Reg::R5, data_base + 0x1000)
                    .add(Reg::R5, Reg::R2)
                    .store(Reg::R4, MemRef::base(Reg::R5))
                    .add_imm(Reg::R2, 8)
                    .cmp_imm(Reg::R2, 512)
                    .jlt("cell")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::PointerChase => {
                a.mov_imm(Reg::R2, data_base)
                    .label("l")
                    .load(Reg::R2, MemRef::base(Reg::R2))
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l");
            }
            BenignWorkload::MemCopy => {
                a.label("outer")
                    .mov_imm(Reg::R2, 0)
                    .label("l")
                    .mov_imm(Reg::R3, data_base)
                    .add(Reg::R3, Reg::R2)
                    .load(Reg::R4, MemRef::base(Reg::R3))
                    .mov_imm(Reg::R5, data_base + 0x4000)
                    .add(Reg::R5, Reg::R2)
                    .store(Reg::R4, MemRef::base(Reg::R5))
                    .add_imm(Reg::R2, 8)
                    .cmp_imm(Reg::R2, 1024)
                    .jlt("l")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::CallHeavy => {
                a.label("l")
                    .call("f1")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l")
                    .halt()
                    .label("f1")
                    .call("f2")
                    .call("f2")
                    .ret()
                    .label("f2")
                    .call("f3")
                    .ret()
                    .label("f3")
                    .add_imm(Reg::R2, 1)
                    .ret();
            }
            BenignWorkload::Branchy => {
                a.mov_imm(Reg::R2, 0x9e3779b97f4a7c15)
                    .mov_imm(Reg::R5, 1)
                    .label("l")
                    .mov(Reg::R3, Reg::R2)
                    .shr_imm(Reg::R3, 13)
                    .xor(Reg::R2, Reg::R3)
                    .mov(Reg::R4, Reg::R2)
                    .and(Reg::R4, Reg::R5)
                    .cmp_imm(Reg::R4, 0)
                    .je("even")
                    .add_imm(Reg::R6, 3)
                    .jmp("next")
                    .label("even")
                    .add_imm(Reg::R6, 1)
                    .label("next")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l");
            }
            BenignWorkload::StreamSum => {
                a.label("outer")
                    .mov_imm(Reg::R2, 0)
                    .label("l")
                    .mov_imm(Reg::R3, data_base)
                    .add(Reg::R3, Reg::R2)
                    .load(Reg::R4, MemRef::base(Reg::R3))
                    .add(Reg::R5, Reg::R4)
                    .add_imm(Reg::R2, 8)
                    .cmp_imm(Reg::R2, 4096)
                    .jlt("l")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::StrideAccess => {
                a.label("outer")
                    .mov_imm(Reg::R2, 0)
                    .label("l")
                    .mov_imm(Reg::R3, data_base)
                    .add(Reg::R3, Reg::R2)
                    .load(Reg::R4, MemRef::base(Reg::R3))
                    .add_imm(Reg::R2, 4096)
                    .cmp_imm(Reg::R2, 64 * 4096)
                    .jlt("l")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::Fibonacci => {
                a.mov_imm(Reg::R2, 0)
                    .mov_imm(Reg::R3, 1)
                    .label("l")
                    .mov(Reg::R4, Reg::R3)
                    .add(Reg::R3, Reg::R2)
                    .mov(Reg::R2, Reg::R4)
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l");
            }
            BenignWorkload::HashMix => {
                a.mov_imm(Reg::R2, 0x517cc1b727220a95)
                    .label("l")
                    .mov(Reg::R3, Reg::R2)
                    .shl_imm(Reg::R3, 13)
                    .xor(Reg::R2, Reg::R3)
                    .mov(Reg::R3, Reg::R2)
                    .shr_imm(Reg::R3, 7)
                    .xor(Reg::R2, Reg::R3)
                    .mov(Reg::R3, Reg::R2)
                    .shl_imm(Reg::R3, 17)
                    .xor(Reg::R2, Reg::R3)
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l");
            }
            BenignWorkload::BitCount => {
                a.mov_imm(Reg::R2, 0xdeadbeefcafebabe)
                    .label("l")
                    .mov(Reg::R3, Reg::R2)
                    .mov_imm(Reg::R4, 1)
                    .and(Reg::R3, Reg::R4)
                    .add(Reg::R5, Reg::R3)
                    .shr_imm(Reg::R2, 1)
                    .cmp_imm(Reg::R2, 0)
                    .jne("l")
                    .mov_imm(Reg::R2, 0xdeadbeefcafebabe)
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l");
            }
            BenignWorkload::InsertionSort => {
                // Repeatedly "sort" an 16-entry array with compare+store.
                a.label("outer")
                    .mov_imm(Reg::R2, 8)
                    .label("i")
                    .mov_imm(Reg::R3, data_base)
                    .add(Reg::R3, Reg::R2)
                    .load(Reg::R4, MemRef::base(Reg::R3))
                    .load(Reg::R5, MemRef::disp(Reg::R3, -8))
                    .cmp(Reg::R4, Reg::R5)
                    .jge("noswap")
                    .store(Reg::R4, MemRef::disp(Reg::R3, -8))
                    .store(Reg::R5, MemRef::base(Reg::R3))
                    .label("noswap")
                    .add_imm(Reg::R2, 8)
                    .cmp_imm(Reg::R2, 128)
                    .jlt("i")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::StringScan => {
                a.label("outer")
                    .mov_imm(Reg::R2, 0)
                    .label("l")
                    .mov_imm(Reg::R3, data_base)
                    .add(Reg::R3, Reg::R2)
                    .load_byte(Reg::R4, MemRef::base(Reg::R3))
                    .cmp_imm(Reg::R4, 42)
                    .je("found")
                    .add_imm(Reg::R2, 1)
                    .cmp_imm(Reg::R2, 512)
                    .jlt("l")
                    .label("found")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::Checksum => {
                a.label("outer")
                    .mov_imm(Reg::R2, 0)
                    .mov_imm(Reg::R5, 0)
                    .label("l")
                    .mov_imm(Reg::R3, data_base)
                    .add(Reg::R3, Reg::R2)
                    .load(Reg::R4, MemRef::base(Reg::R3))
                    .add(Reg::R5, Reg::R4)
                    .shl_imm(Reg::R5, 1)
                    .add_imm(Reg::R2, 8)
                    .cmp_imm(Reg::R2, 2048)
                    .jlt("l")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::PrngLcg => {
                a.mov_imm(Reg::R2, 12345)
                    .mov_imm(Reg::R3, 6364136223846793005)
                    .label("l")
                    .mul(Reg::R2, Reg::R3)
                    .add_imm(Reg::R2, 1442695040888963407)
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l");
            }
            BenignWorkload::Histogram => {
                a.label("outer")
                    .mov_imm(Reg::R2, 0)
                    .label("l")
                    .mov_imm(Reg::R3, data_base)
                    .add(Reg::R3, Reg::R2)
                    .load_byte(Reg::R4, MemRef::base(Reg::R3))
                    .shl_imm(Reg::R4, 3)
                    .add_imm(Reg::R4, (data_base + 0x8000) as i64)
                    .load(Reg::R5, MemRef::base(Reg::R4))
                    .add_imm(Reg::R5, 1)
                    .store(Reg::R5, MemRef::base(Reg::R4))
                    .add_imm(Reg::R2, 1)
                    .cmp_imm(Reg::R2, 256)
                    .jlt("l")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::SpinKernel => {
                a.label("l")
                    .delay(180)
                    .add_imm(Reg::R2, 1)
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l");
            }
            BenignWorkload::IcacheWalker => {
                // Call 16 routines spread across pages: benign L1i churn.
                a.label("l");
                for i in 0..16u64 {
                    a.call(format!("fn{i}"));
                }
                a.add_imm(Reg::R1, -1).cmp_imm(Reg::R1, 0).jne("l").halt();
                for i in 0..16u64 {
                    a.org(code_base + 0x1000 * (i + 1)).label(&format!("fn{i}"));
                    a.add_imm(Reg::R2, 1).ret();
                }
            }
            BenignWorkload::FlushData => {
                a.label("outer")
                    .mov_imm(Reg::R2, 0)
                    .label("l")
                    .mov_imm(Reg::R3, data_base)
                    .add(Reg::R3, Reg::R2)
                    .load(Reg::R4, MemRef::base(Reg::R3))
                    .clflush(MemRef::base(Reg::R3))
                    .add_imm(Reg::R2, 64)
                    .cmp_imm(Reg::R2, 1024)
                    .jlt("l")
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("outer");
            }
            BenignWorkload::Amg => {
                // JIT-style: patch a code line (its own `patch_target`)
                // then call it — a genuine SMC conflict every iteration.
                a.label("l")
                    .call("patch_target")
                    .mov_imm(Reg::R2, code_base + 0x2000)
                    .store_imm(MemRef::base(Reg::R2), 0x90)
                    .delay(400)
                    .add_imm(Reg::R1, -1)
                    .cmp_imm(Reg::R1, 0)
                    .jne("l")
                    .halt()
                    .org(code_base + 0x2000)
                    .label("patch_target")
                    .nop()
                    .nop()
                    .ret();
            }
        }
        match self {
            BenignWorkload::CallHeavy | BenignWorkload::IcacheWalker | BenignWorkload::Amg => {}
            _ => {
                a.halt();
            }
        }
        a.assemble().expect("benign workload assembles")
    }

    /// A reasonable scratch-data initializer for workloads that read
    /// memory: a self-looping pointer chain plus nonzero filler.
    pub fn stage_data(self, machine: &mut smack_uarch::Machine, data_base: u64) {
        match self {
            BenignWorkload::PointerChase => {
                // A small cycle of pointers with stride 0x140.
                let n = 32u64;
                for i in 0..n {
                    let at = data_base + i * 0x140;
                    let next = data_base + ((i + 7) % n) * 0x140;
                    machine.write_u64(smack_uarch::Addr(at), next);
                }
            }
            _ => {
                for i in 0..64u64 {
                    machine.write_u64(
                        smack_uarch::Addr(data_base + i * 8),
                        i.wrapping_mul(0x9e37_79b9) + 1,
                    );
                }
            }
        }
    }
}

impl std::fmt::Display for BenignWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::{Machine, MicroArch, PerfEvent, ThreadId};

    const T1: ThreadId = ThreadId::T1;

    #[test]
    fn all_workloads_assemble_and_halt() {
        for w in BenignWorkload::ALL {
            let mut m = Machine::new(MicroArch::CascadeLake.profile());
            let prog = w.build(0x0500_0000, 0x0600_0000);
            w.stage_data(&mut m, 0x0600_0000);
            m.load_program(&prog);
            m.start_program(T1, prog.entry(), &[3]);
            m.run_until_halt(T1, 5_000_000).unwrap_or_else(|e| panic!("{w}: {e}"));
        }
    }

    #[test]
    fn amg_triggers_machine_clears_others_do_not() {
        for w in [BenignWorkload::Amg, BenignWorkload::ArithLoop, BenignWorkload::FlushData] {
            let mut m = Machine::new(MicroArch::CascadeLake.profile());
            let prog = w.build(0x0500_0000, 0x0600_0000);
            w.stage_data(&mut m, 0x0600_0000);
            m.load_program(&prog);
            m.start_program(T1, prog.entry(), &[20]);
            m.run_until_halt(T1, 5_000_000).unwrap();
            let clears = m.counters(T1).read(PerfEvent::MachineClearsSmc);
            if w.is_self_modifying() {
                assert!(clears >= 10, "{w} should machine-clear, got {clears}");
            } else {
                assert_eq!(clears, 0, "{w} should not machine-clear");
            }
        }
    }

    #[test]
    fn workloads_have_distinct_counter_signatures() {
        // Spot check: stride access misses the LLC; arith does not.
        let run = |w: BenignWorkload| {
            let mut m = Machine::new(MicroArch::CascadeLake.profile());
            let prog = w.build(0x0500_0000, 0x0600_0000);
            w.stage_data(&mut m, 0x0600_0000);
            m.load_program(&prog);
            m.start_program(T1, prog.entry(), &[5]);
            m.run_until_halt(T1, 5_000_000).unwrap();
            m.counters(T1).read(PerfEvent::LlcMisses)
        };
        assert!(run(BenignWorkload::StrideAccess) > run(BenignWorkload::ArithLoop));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = BenignWorkload::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BenignWorkload::ALL.len());
    }
}
