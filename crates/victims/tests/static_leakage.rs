//! The static analyzer's verdicts on every shipped victim.
//!
//! This is the crate-level contract the `analyze` experiment later joins
//! with dynamic measurements: secret-processing victims with
//! secret-dependent schedules are `Leaky` (and the leaky lines include the
//! exact lines the attacks probe), the constant-time ladder and everything
//! without secrets is `ConstantFootprint`, and no shipped program violates
//! a superblock/SMC fusion invariant.

use smack_analysis::{analyze, Verdict};
use smack_victims::modexp::ModexpAlgorithm;
use smack_victims::spectre::ORACLE_SLOTS;
use smack_victims::{corpus, BenignWorkload, ModexpVictimBuilder, SpectreVictim};

#[test]
fn binary_ltr_is_leaky_at_the_multiply_line() {
    let v = ModexpVictimBuilder::new(ModexpAlgorithm::BinaryLtr).build();
    let r = analyze(&v.program, v.entry, &v.secret_spec());
    assert_eq!(r.verdict, Verdict::Leaky);
    assert!(
        r.leaky_lines.contains(&v.mul_line.0),
        "the guarded multiply routine is exactly what the attacker probes: {:x?}",
        r.leaky_lines
    );
    assert!(!r.tainted_branches.is_empty(), "the bit test is secret-dependent");
    assert!(r.audit.is_empty(), "fusion invariants hold: {:?}", r.audit);
}

#[test]
fn sliding_window_is_leaky() {
    let v = ModexpVictimBuilder::new(ModexpAlgorithm::SlidingWindow { window: 4 }).build();
    let r = analyze(&v.program, v.entry, &v.secret_spec());
    assert_eq!(r.verdict, Verdict::Leaky);
    assert!(r.leaky_lines.contains(&v.mul_line.0), "leaky: {:x?}", r.leaky_lines);
    assert!(r.audit.is_empty());
}

#[test]
fn montgomery_ladder_is_constant_footprint() {
    let v = ModexpVictimBuilder::new(ModexpAlgorithm::MontgomeryLadder).build();
    let r = analyze(&v.program, v.entry, &v.secret_spec());
    assert_eq!(
        r.verdict,
        Verdict::ConstantFootprint,
        "the countermeasure must be *proven* safe, not just measured safe; \
         leaky = {:x?}, branches = {:x?}",
        r.leaky_lines,
        r.tainted_branches
    );
    assert!(r.audit.is_empty());
}

#[test]
fn spectre_gadget_leaks_the_oracle_page() {
    let v = SpectreVictim::build();
    let r = analyze(&v.program, v.entry, &v.secret_spec());
    assert_eq!(r.verdict, Verdict::Leaky);
    assert!(!r.tainted_transfers.is_empty(), "the indirect call is secret-dependent");
    // Every oracle slot's line is leaky: which one is fetched encodes the
    // secret byte.
    for slot in [0usize, 1, 127, ORACLE_SLOTS - 1] {
        let line = v.oracle_slot(slot as u8).0;
        assert!(r.leaky_lines.contains(&line), "oracle slot {slot} missing from leaky set");
    }
    assert!(r.audit.is_empty());
}

#[test]
fn benign_workloads_are_constant_footprint_and_audit_clean() {
    for w in BenignWorkload::ALL {
        let prog = w.build(0x0500_0000, 0x0600_0000);
        let r = analyze(&prog, 0x0500_0000, &w.secret_spec());
        assert_eq!(
            r.verdict,
            Verdict::ConstantFootprint,
            "benign workload {w} misclassified; leaky = {:x?}",
            r.leaky_lines
        );
        assert!(r.audit.is_empty(), "workload {w} violates fusion invariants: {:?}", r.audit);
    }
}

#[test]
fn corpus_victims_are_constant_footprint() {
    for version in corpus::corpus().iter().step_by(5) {
        let v = corpus::build_victim(version, 0x0700_0000, 1);
        let r = analyze(&v.program, v.entry, &v.secret_spec());
        assert_eq!(r.verdict, Verdict::ConstantFootprint, "{} misclassified", version.label());
        assert!(r.audit.is_empty());
    }
}
