//! # smack-detection
//!
//! The paper's §6.1 countermeasure: dynamic detection of SMC-based attacks
//! from hardware performance counters.
//!
//! A system-wide agent samples core counters over fixed windows while
//! workloads run. Windows from the 20-workload benign suite are labelled 0;
//! windows collected while Prime+iProbe / Flush+iReload attack loops run
//! are labelled 1. A kNN (k = 3) classifies held-out windows, and the
//! experiment compares feature sets: the weak baselines from prior work
//! (branch-misprediction and LLC-miss counters, which barely react to an
//! L1i-resident attack) against the SMC-related counters
//! (`MACHINE_CLEARS.SMC` & friends), which separate almost perfectly —
//! except for false positives on the `amg`-like self-modifying benign
//! workload, exactly as the paper reports.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::calibrate::calibrate;
use smack::oracle::{EvictionSet, OraclePage};
use smack::probe::Prober;
use smack_ml::{train_test_split, BinaryConfusion, KnnClassifier, Sample};
use smack_uarch::{
    Addr, CounterBank, Machine, MicroArch, NoiseConfig, PerfEvent, ProbeKind, SmcBehavior, ThreadId,
};
use smack_victims::benign::BenignWorkload;

const MONITOR: ThreadId = ThreadId::T0;
const WORKER: ThreadId = ThreadId::T1;
const EVSET_BASE: u64 = 0x0a40_0000;
const SHARED_BASE: u64 = 0x0c40_0000;
const SCRATCH: u64 = 0x0d40_0000;
const BENIGN_CODE: u64 = 0x0500_0000;
const BENIGN_DATA: u64 = 0x0600_0000;

/// Which counters feed the classifier.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FeatureSet {
    /// `MACHINE_CLEARS.SMC` only — the paper's winning feature.
    MachineClearsSmc,
    /// `MACHINE_CLEARS.COUNT`.
    MachineClearsCount,
    /// `CYCLE_ACTIVITY.STALLS_TOTAL`.
    StallsTotal,
    /// `BR_MISP_RETIRED.ALL_BRANCHES` — prior work's Spectre detector.
    BranchMisp,
    /// LLC misses — prior work's cache-attack detector.
    LlcMisses,
    /// All SMC-related counters together.
    SmcCombined,
}

impl FeatureSet {
    /// Feature sets evaluated in the §6.1 comparison.
    pub const ALL: [FeatureSet; 6] = [
        FeatureSet::MachineClearsSmc,
        FeatureSet::MachineClearsCount,
        FeatureSet::StallsTotal,
        FeatureSet::BranchMisp,
        FeatureSet::LlcMisses,
        FeatureSet::SmcCombined,
    ];

    /// Display name (counter event names).
    pub fn name(self) -> &'static str {
        match self {
            FeatureSet::MachineClearsSmc => "machine_clears.smc",
            FeatureSet::MachineClearsCount => "machine_clears.count",
            FeatureSet::StallsTotal => "cycle_activity.stalls_total",
            FeatureSet::BranchMisp => "br_misp_retired.all_branches",
            FeatureSet::LlcMisses => "longest_lat_cache.miss",
            FeatureSet::SmcCombined => "smc-combined",
        }
    }

    /// Extract the feature vector from a counter-delta, normalized per
    /// 100k cycles.
    pub fn extract(self, delta: &CounterDelta) -> Vec<f64> {
        let n = |v: u64| v as f64 * 100_000.0 / delta.cycles.max(1) as f64;
        match self {
            FeatureSet::MachineClearsSmc => vec![n(delta.read(PerfEvent::MachineClearsSmc))],
            FeatureSet::MachineClearsCount => {
                vec![n(delta.read(PerfEvent::MachineClearsCount))]
            }
            FeatureSet::StallsTotal => {
                vec![n(delta.read(PerfEvent::CycleActivityStallsTotal))]
            }
            FeatureSet::BranchMisp => vec![n(delta.read(PerfEvent::BrMispRetired))],
            FeatureSet::LlcMisses => vec![n(delta.read(PerfEvent::LlcMisses))],
            FeatureSet::SmcCombined => vec![
                n(delta.read(PerfEvent::MachineClearsSmc)),
                n(delta.read(PerfEvent::MachineClearsCount)),
                n(delta.read(PerfEvent::CycleActivityStallsTotal)),
            ],
        }
    }
}

impl std::fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counter deltas over one sampling window.
#[derive(Clone, Debug)]
pub struct CounterDelta {
    /// Window length in cycles.
    pub cycles: u64,
    values: Vec<(PerfEvent, u64)>,
}

impl CounterDelta {
    fn from_banks(before: &CounterBank, after: &CounterBank, cycles: u64) -> CounterDelta {
        let values =
            PerfEvent::ALL.iter().map(|e| (*e, after.read(*e) - before.read(*e))).collect();
        CounterDelta { cycles, values }
    }

    /// Delta of one event over the window.
    pub fn read(&self, event: PerfEvent) -> u64 {
        self.values.iter().find(|(e, _)| *e == event).map(|(_, v)| *v).unwrap_or(0)
    }
}

/// Detection experiment configuration.
#[derive(Copy, Clone, Debug)]
pub struct DetectionConfig {
    /// Sampling window length in cycles (models the paper's 100 ms
    /// resolution, scaled to simulation time).
    pub window_cycles: u64,
    /// Windows collected per workload run.
    pub windows_per_run: usize,
    /// Noise model.
    pub noise: NoiseConfig,
}

impl Default for DetectionConfig {
    fn default() -> DetectionConfig {
        DetectionConfig {
            window_cycles: 150_000,
            windows_per_run: 12,
            noise: NoiseConfig::realistic(),
        }
    }
}

/// Collect counter windows while a benign workload runs on the worker
/// thread and the monitor thread idles.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn benign_windows(
    arch: MicroArch,
    workload: BenignWorkload,
    cfg: &DetectionConfig,
    seed: u64,
) -> Result<Vec<CounterDelta>, String> {
    let mut m = Machine::with_noise(arch.profile(), cfg.noise, seed);
    benign_windows_on(&mut m, workload, cfg)
}

/// [`benign_windows`] on a caller-supplied machine in its cold start state
/// (e.g. one checked out from a session pool).
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn benign_windows_on(
    m: &mut Machine,
    workload: BenignWorkload,
    cfg: &DetectionConfig,
) -> Result<Vec<CounterDelta>, String> {
    let prog = workload.build(BENIGN_CODE, BENIGN_DATA);
    workload.stage_data(m, BENIGN_DATA);
    m.load_program(&prog);
    m.start_program(WORKER, prog.entry(), &[u64::MAX / 2]);
    let mut out = Vec::with_capacity(cfg.windows_per_run);
    for _ in 0..cfg.windows_per_run {
        let before = m.counters_total();
        let t0 = m.clock(MONITOR);
        m.advance(MONITOR, cfg.window_cycles).map_err(|e| e.to_string())?;
        let cycles = m.clock(MONITOR) - t0;
        out.push(CounterDelta::from_banks(&before, &m.counters_total(), cycles));
    }
    m.park(WORKER);
    Ok(out)
}

/// The attack loops profiled as the malicious dataset (paper: 12
/// executions — 6 Prime+iProbe variants + 6 Flush+iReload variants).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AttackLoop {
    /// A Prime+iProbe loop with the given probe class.
    PrimeProbe(ProbeKind),
    /// A Flush+iReload loop with the given probe class.
    FlushReload(ProbeKind),
}

impl AttackLoop {
    /// The paper's twelve profiled attack executions.
    pub fn paper_set() -> Vec<AttackLoop> {
        let kinds = [
            ProbeKind::Flush,
            ProbeKind::FlushOpt,
            ProbeKind::Lock,
            ProbeKind::Prefetch,
            ProbeKind::Store,
            ProbeKind::Clwb,
        ];
        let mut v: Vec<AttackLoop> = kinds.iter().map(|k| AttackLoop::PrimeProbe(*k)).collect();
        v.extend([
            AttackLoop::FlushReload(ProbeKind::Flush),
            AttackLoop::FlushReload(ProbeKind::FlushOpt),
            AttackLoop::FlushReload(ProbeKind::Prefetch),
            AttackLoop::FlushReload(ProbeKind::Clwb),
            AttackLoop::FlushReload(ProbeKind::Load),
            AttackLoop::FlushReload(ProbeKind::PrefetchNta),
        ]);
        v
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            AttackLoop::PrimeProbe(k) => format!("prime+i{k}"),
            AttackLoop::FlushReload(k) => format!("flush+i{k}"),
        }
    }
}

/// Collect counter windows while an attack loop runs on the monitor thread
/// against a benign co-tenant on the worker thread.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn attack_windows(
    arch: MicroArch,
    attack: AttackLoop,
    cfg: &DetectionConfig,
    seed: u64,
) -> Result<Vec<CounterDelta>, String> {
    let mut m = Machine::with_noise(arch.profile(), cfg.noise, seed);
    attack_windows_on(&mut m, attack, cfg)
}

/// [`attack_windows`] on a caller-supplied machine in its cold start state
/// (e.g. one checked out from a session pool).
///
/// # Errors
///
/// Returns a message on simulator errors, including unsupported probe
/// classes.
pub fn attack_windows_on(
    m: &mut Machine,
    attack: AttackLoop,
    cfg: &DetectionConfig,
) -> Result<Vec<CounterDelta>, String> {
    let kind = match attack {
        AttackLoop::PrimeProbe(k) | AttackLoop::FlushReload(k) => k,
    };
    if m.profile().smc.get(kind) == SmcBehavior::Unsupported {
        return Err(format!("{} unsupported on {}", attack.name(), m.profile().arch));
    }
    // Co-tenant workload so benign activity is present in both datasets.
    let co = BenignWorkload::StreamSum;
    let prog = co.build(BENIGN_CODE, BENIGN_DATA);
    co.stage_data(m, BENIGN_DATA);
    m.load_program(&prog);
    m.start_program(WORKER, prog.entry(), &[u64::MAX / 2]);

    let mut prober = Prober::new(MONITOR);
    let evset = EvictionSet::for_machine(m, EVSET_BASE, 13);
    let shared = OraclePage::build(Addr(SHARED_BASE), 1);
    match attack {
        AttackLoop::PrimeProbe(_) => evset.install(m),
        AttackLoop::FlushReload(_) => shared.install(m),
    }
    // Real attack binaries run loop control and decoding logic between
    // probe rounds; model it with a small counted loop so the attack's
    // branch-counter footprint is realistic rather than trivially absent.
    let mut loop_asm = smack_uarch::asm::Assembler::new(0x0e40_0000);
    loop_asm
        .label("attacker_logic")
        .mov(smack_uarch::isa::Reg::R7, smack_uarch::isa::Reg::R1)
        .label("l")
        .add_imm(smack_uarch::isa::Reg::R8, 1)
        .add_imm(smack_uarch::isa::Reg::R7, -1)
        .cmp_imm(smack_uarch::isa::Reg::R7, 0)
        .jne("l")
        .ret();
    let loop_prog = loop_asm.assemble().expect("attacker logic assembles");
    m.load_program(&loop_prog);
    let attacker_logic = loop_prog.entry();
    // The calibration's *value* is unused (this harness never decodes),
    // but the pass itself is load-bearing: a real attack binary calibrates
    // at startup, and that warm-up's machine-state side effects are part
    // of the attack execution the detector profiles. Deliberately not
    // routed through the session CalibrationCache — the cache is for
    // attacks that consume thresholds, not for modeled attacker behavior.
    calibrate(m, MONITOR, kind, Addr(SCRATCH), 8).map_err(|e| e.to_string())?;

    let mut out = Vec::with_capacity(cfg.windows_per_run);
    for _ in 0..cfg.windows_per_run {
        let before = m.counters_total();
        let t0 = m.clock(MONITOR);
        while m.clock(MONITOR) - t0 < cfg.window_cycles {
            match attack {
                AttackLoop::PrimeProbe(k) => {
                    evset.prime(m, &mut prober).map_err(|e| e.to_string())?;
                    prober.wait(m, 700).map_err(|e| e.to_string())?;
                    evset.probe(m, &mut prober, k).map_err(|e| e.to_string())?;
                    m.call(MONITOR, attacker_logic, &[12]).map_err(|e| e.to_string())?;
                }
                AttackLoop::FlushReload(k) => {
                    // Keep the line bouncing into the L1i so the probe
                    // conflicts, as a live covert channel would.
                    prober.execute_line(m, shared.line(0)).map_err(|e| e.to_string())?;
                    prober.measure(m, k, shared.line(0)).map_err(|e| e.to_string())?;
                    m.call(MONITOR, attacker_logic, &[6]).map_err(|e| e.to_string())?;
                    prober.wait(m, 400).map_err(|e| e.to_string())?;
                }
            }
        }
        let cycles = m.clock(MONITOR) - t0;
        out.push(CounterDelta::from_banks(&before, &m.counters_total(), cycles));
    }
    m.park(WORKER);
    Ok(out)
}

/// Results of the detection evaluation for one feature set.
#[derive(Clone, Debug)]
pub struct DetectionReport {
    /// Feature set evaluated.
    pub features: FeatureSet,
    /// Classification accuracy.
    pub accuracy: f64,
    /// F1 score (attack = positive class).
    pub f1: f64,
    /// False-positive rate.
    pub fpr: f64,
    /// Confusion counts.
    pub confusion: BinaryConfusion,
    /// Number of benign windows evaluated.
    pub benign_windows: usize,
    /// Number of attack windows evaluated.
    pub attack_windows: usize,
}

/// One independent unit of the §6.1 dataset: a workload run plus its
/// fixed seed. The unit list is the single source of truth for the
/// dataset's composition and seeding, shared by the sequential
/// [`collect_dataset`] and any parallel collector fanning the units out.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DatasetUnit {
    /// A benign-suite workload (label 0).
    Benign(BenignWorkload, u64),
    /// An attack loop (label 1).
    Attack(AttackLoop, u64),
}

impl DatasetUnit {
    /// Whether this unit contributes benign (label-0) windows.
    pub fn is_benign(&self) -> bool {
        matches!(self, DatasetUnit::Benign(..))
    }

    /// The unit's canonical machine seed.
    pub fn seed(&self) -> u64 {
        match self {
            DatasetUnit::Benign(_, seed) | DatasetUnit::Attack(_, seed) => *seed,
        }
    }
}

/// The full dataset composition: every benign workload and every paper
/// attack loop, each with its canonical seed.
pub fn dataset_units() -> Vec<DatasetUnit> {
    let mut units: Vec<DatasetUnit> = BenignWorkload::ALL
        .iter()
        .enumerate()
        .map(|(i, w)| DatasetUnit::Benign(*w, 7_000 + i as u64))
        .collect();
    units.extend(
        AttackLoop::paper_set()
            .iter()
            .enumerate()
            .map(|(i, a)| DatasetUnit::Attack(*a, 9_000 + i as u64)),
    );
    units
}

/// Collect one unit's windows. `Ok(None)` means the unit's probe class
/// is unsupported on this part (the paper's N/A attack rows).
///
/// # Errors
///
/// Returns a message on simulator errors in benign runs; attack-side
/// unsupported-probe errors are folded into `Ok(None)`.
pub fn collect_unit(
    arch: MicroArch,
    unit: DatasetUnit,
    cfg: &DetectionConfig,
) -> Result<Option<Vec<CounterDelta>>, String> {
    match unit {
        DatasetUnit::Benign(w, seed) => benign_windows(arch, w, cfg, seed).map(Some),
        DatasetUnit::Attack(a, seed) => Ok(attack_windows(arch, a, cfg, seed).ok()),
    }
}

/// [`collect_unit`] on a caller-supplied machine in its cold start state:
/// the machine must have been created (or reset) with the unit's
/// [`DatasetUnit::seed`] and `cfg.noise` for the windows to match
/// [`collect_unit`]'s bit-for-bit.
///
/// # Errors
///
/// Returns a message on simulator errors in benign runs; attack-side
/// unsupported-probe errors are folded into `Ok(None)`.
pub fn collect_unit_on(
    m: &mut Machine,
    unit: DatasetUnit,
    cfg: &DetectionConfig,
) -> Result<Option<Vec<CounterDelta>>, String> {
    match unit {
        DatasetUnit::Benign(w, _) => benign_windows_on(m, w, cfg).map(Some),
        DatasetUnit::Attack(a, _) => Ok(attack_windows_on(m, a, cfg).ok()),
    }
}

/// Build the full benign + attack window dataset.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn collect_dataset(
    arch: MicroArch,
    cfg: &DetectionConfig,
) -> Result<(Vec<CounterDelta>, Vec<CounterDelta>), String> {
    let mut benign = Vec::new();
    let mut attacks = Vec::new();
    for unit in dataset_units() {
        let Some(windows) = collect_unit(arch, unit, cfg)? else { continue };
        if unit.is_benign() {
            benign.extend(windows);
        } else {
            attacks.extend(windows);
        }
    }
    Ok((benign, attacks))
}

/// Evaluate one feature set over a pre-collected dataset (80/20 split,
/// kNN k = 3, as in the paper).
pub fn evaluate(
    features: FeatureSet,
    benign: &[CounterDelta],
    attacks: &[CounterDelta],
    seed: u64,
) -> DetectionReport {
    let mut samples: Vec<Sample> =
        benign.iter().map(|d| Sample::new(features.extract(d), 0)).collect();
    samples.extend(attacks.iter().map(|d| Sample::new(features.extract(d), 1)));
    let mut rng = SmallRng::seed_from_u64(seed);
    let (train, test) = train_test_split(samples, 0.8, &mut rng);
    let model = KnnClassifier::fit(3, train);
    let confusion = BinaryConfusion::evaluate(&model, &test);
    DetectionReport {
        features,
        accuracy: confusion.accuracy(),
        f1: confusion.f1(),
        fpr: confusion.fpr(),
        confusion,
        benign_windows: benign.len(),
        attack_windows: attacks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DetectionConfig {
        DetectionConfig { window_cycles: 60_000, windows_per_run: 4, ..Default::default() }
    }

    #[test]
    fn attack_windows_show_machine_clears() {
        let cfg = small_cfg();
        let w = attack_windows(
            MicroArch::CascadeLake,
            AttackLoop::PrimeProbe(ProbeKind::Store),
            &cfg,
            1,
        )
        .unwrap();
        for d in &w {
            assert!(d.read(PerfEvent::MachineClearsSmc) > 10, "SMC storm expected");
        }
    }

    #[test]
    fn benign_windows_are_mostly_clear_free_except_amg() {
        let cfg = small_cfg();
        let quiet =
            benign_windows(MicroArch::CascadeLake, BenignWorkload::StreamSum, &cfg, 2).unwrap();
        for d in &quiet {
            assert_eq!(d.read(PerfEvent::MachineClearsSmc), 0);
        }
        let amg = benign_windows(MicroArch::CascadeLake, BenignWorkload::Amg, &cfg, 3).unwrap();
        let total: u64 = amg.iter().map(|d| d.read(PerfEvent::MachineClearsSmc)).sum();
        assert!(total > 0, "the amg workload self-modifies");
    }

    #[test]
    fn smc_counter_separates_much_better_than_llc() {
        let cfg = small_cfg();
        let benign: Vec<CounterDelta> = [
            BenignWorkload::StreamSum,
            BenignWorkload::StrideAccess,
            BenignWorkload::Branchy,
            BenignWorkload::Amg,
        ]
        .iter()
        .enumerate()
        .flat_map(|(i, w)| benign_windows(MicroArch::CascadeLake, *w, &cfg, 20 + i as u64).unwrap())
        .collect();
        let attacks: Vec<CounterDelta> =
            [AttackLoop::PrimeProbe(ProbeKind::Store), AttackLoop::FlushReload(ProbeKind::Flush)]
                .iter()
                .enumerate()
                .flat_map(|(i, a)| {
                    attack_windows(MicroArch::CascadeLake, *a, &cfg, 30 + i as u64).unwrap()
                })
                .collect();
        let smc = evaluate(FeatureSet::MachineClearsSmc, &benign, &attacks, 5);
        let llc = evaluate(FeatureSet::LlcMisses, &benign, &attacks, 5);
        assert!(smc.f1 >= 0.8, "smc F1 {}", smc.f1);
        assert!(smc.f1 >= llc.f1, "smc {} vs llc {}", smc.f1, llc.f1);
    }

    #[test]
    fn feature_extraction_normalizes_per_cycle() {
        let mut before = CounterBank::new();
        let mut after = CounterBank::new();
        before.add(PerfEvent::MachineClearsSmc, 5);
        after.add(PerfEvent::MachineClearsSmc, 105);
        let d = CounterDelta::from_banks(&before, &after, 100_000);
        assert_eq!(d.read(PerfEvent::MachineClearsSmc), 100);
        let f = FeatureSet::MachineClearsSmc.extract(&d);
        assert!((f[0] - 100.0).abs() < 1e-9);
    }
}
