//! Cross-module crypto tests: RSA/SRP flows exercising bignum, Montgomery,
//! modexp, schedules and hashing together.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack_crypto::modexp::{binary_ltr, binary_ltr_schedule, sliding_window_schedule, ModexpOp};
use smack_crypto::prime::is_probable_prime;
use smack_crypto::srp::{register, SrpClient, SrpServer};
use smack_crypto::{Bignum, RsaKeyPair, SrpGroup};

#[test]
fn rsa_schedule_length_matches_key_structure() {
    let mut rng = SmallRng::seed_from_u64(1);
    let key = RsaKeyPair::generate(96, &mut rng);
    let sched = binary_ltr_schedule(key.d());
    let squares = sched.iter().filter(|o| **o == ModexpOp::Square).count();
    let mults = sched.iter().filter(|o| **o == ModexpOp::Multiply).count();
    assert_eq!(squares, key.d().bit_len());
    assert_eq!(mults, (0..key.d().bit_len()).filter(|i| key.d().bit(*i)).count());
}

#[test]
fn rsa_primes_are_prime_and_distinct() {
    let mut rng = SmallRng::seed_from_u64(2);
    let key = RsaKeyPair::generate(128, &mut rng);
    assert!(is_probable_prime(key.p(), 16, &mut rng));
    assert!(is_probable_prime(key.q(), 16, &mut rng));
    assert_ne!(key.p(), key.q());
    assert_eq!(key.p().mul(key.q()), *key.n());
}

#[test]
fn srp_works_across_all_paper_group_sizes() {
    // Full handshakes on 1024 and 2048 (large groups are slow in tests but
    // exercised by the table2 harness).
    for bits in [1024usize, 2048] {
        let group = SrpGroup::synthetic(bits);
        let mut rng = SmallRng::seed_from_u64(bits as u64);
        let v = register(&group, "carol", "pw", b"s");
        let client = SrpClient::start(&group, &mut rng);
        let server = SrpServer::start(&group, &v, &mut rng);
        assert_eq!(
            server.calc_server_key(client.public_a()),
            client.calc_client_key(server.public_b(), "carol", "pw", server.salt()),
            "group {bits}"
        );
    }
}

#[test]
fn window_schedules_cover_every_key_bit_exactly_once() {
    let mut rng = SmallRng::seed_from_u64(3);
    for bits in [64usize, 240, 672] {
        let e = Bignum::random_bits(&mut rng, bits);
        let s = sliding_window_schedule(&e);
        let covered: u32 = s.steps.iter().map(|st| st.bits).sum();
        assert_eq!(covered as usize, bits);
        // Reconstructing the exponent from the steps gives the exponent
        // back: windows carry their values, zero steps carry zeros.
        let mut rebuilt = Bignum::zero();
        for step in &s.steps {
            for _ in 0..step.bits {
                rebuilt = rebuilt.shl_bits(1);
            }
            if let Some(w) = step.wvalue {
                rebuilt = rebuilt.add(&Bignum::from_u64(w));
            }
        }
        assert_eq!(rebuilt, e, "bits={bits}");
    }
}

#[test]
fn modexp_edge_cases() {
    let m = Bignum::from_u64(97);
    assert_eq!(binary_ltr(&Bignum::zero(), &Bignum::from_u64(5), &m), Bignum::zero());
    assert_eq!(binary_ltr(&Bignum::from_u64(5), &Bignum::zero(), &m), Bignum::one());
    assert_eq!(binary_ltr(&Bignum::from_u64(96), &Bignum::from_u64(2), &m), Bignum::one());
}
