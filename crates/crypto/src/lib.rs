//! # smack-crypto
//!
//! Pure-Rust cryptographic substrates for the SMaCk reproduction:
//!
//! * [`bn`]: arbitrary-precision unsigned integers (the offline crate set
//!   has no bignum crate, so the reproduction carries its own),
//! * [`mont`]: Montgomery multiplication contexts,
//! * [`modexp`]: the three modular-exponentiation algorithms the paper's
//!   case studies revolve around — the leaky Libgcrypt-1.5.1-style binary
//!   square-and-multiply, the leaky OpenSSL-1.1.1w-style sliding-window
//!   (`BN_mod_exp_mont` without `BN_FLG_CONSTTIME`), and a constant-time
//!   Montgomery ladder used for the countermeasure discussion — plus
//!   **operation-schedule extraction**, which is the ground truth the cache
//!   attacks try to recover,
//! * [`prime`]: Miller–Rabin primality and prime generation,
//! * [`sha256`]: SHA-256 (needed by SRP),
//! * [`rsa`]: RSA keygen/encrypt/decrypt in the style of the vulnerable
//!   Libgcrypt 1.5.1 implementation, and
//! * [`srp`]: the Secure Remote Password protocol modeled on OpenSSL
//!   1.1.1w, whose `SRP_Calc_server_key` is the paper's single-trace target.
//!
//! The SRP groups are deterministic synthetic moduli of the RFC 5054 bit
//! sizes (1024/2048/4096/6144): the paper's leakage depends only on the
//! operand bit length (per-limb multiplication cost), not on the specific
//! prime, and the offline environment has no copy of the RFC constants.
//! See DESIGN.md §1 for the substitution table.

pub mod bn;
pub mod modexp;
pub mod mont;
pub mod prime;
pub mod rsa;
pub mod sha256;
pub mod srp;

pub use bn::Bignum;
pub use modexp::{binary_ltr_schedule, sliding_window_schedule, ModexpOp, WindowSizing};
pub use mont::MontCtx;
pub use rsa::RsaKeyPair;
pub use sha256::Sha256;
pub use srp::{SrpGroup, SrpServer};
