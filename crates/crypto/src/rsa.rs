//! RSA in the style of the paper's victim (Libgcrypt 1.5.1).
//!
//! Decryption uses plain left-to-right binary square-and-multiply
//! ([`crate::modexp::binary_ltr`]) with **no** exponent blinding and **no**
//! constant-time guarantees — the exact property SMaCk's Case Study II
//! exploits to read the private exponent's bits out of the multiplication
//! schedule.

use rand::Rng;

use crate::bn::Bignum;
use crate::modexp::binary_ltr;
use crate::prime::gen_prime;

/// An RSA key pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaKeyPair {
    n: Bignum,
    e: Bignum,
    d: Bignum,
    p: Bignum,
    q: Bignum,
}

impl RsaKeyPair {
    /// Generate a key pair with an `bits`-bit modulus (use modest sizes in
    /// tests; prime generation is honest Miller–Rabin).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    pub fn generate(bits: usize, rng: &mut impl Rng) -> RsaKeyPair {
        assert!(bits >= 16, "modulus too small");
        let e = Bignum::from_u64(65537);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&Bignum::one()).mul(&q.sub(&Bignum::one()));
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            if d.bit_len() < 2 {
                continue;
            }
            return RsaKeyPair { n, e, d, p, q };
        }
    }

    /// Construct from known components (used to pin test vectors).
    pub fn from_components(n: Bignum, e: Bignum, d: Bignum, p: Bignum, q: Bignum) -> RsaKeyPair {
        RsaKeyPair { n, e, d, p, q }
    }

    /// Public modulus.
    pub fn n(&self) -> &Bignum {
        &self.n
    }

    /// Public exponent.
    pub fn e(&self) -> &Bignum {
        &self.e
    }

    /// Private exponent — the secret SMaCk's RSA case study recovers.
    pub fn d(&self) -> &Bignum {
        &self.d
    }

    /// Prime factor `p`.
    pub fn p(&self) -> &Bignum {
        &self.p
    }

    /// Prime factor `q`.
    pub fn q(&self) -> &Bignum {
        &self.q
    }

    /// Public operation: `m^e mod n`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= n`.
    pub fn encrypt(&self, m: &Bignum) -> Bignum {
        assert!(*m < self.n, "message must be below the modulus");
        binary_ltr(m, &self.e, &self.n)
    }

    /// Private operation: `c^d mod n` via the leaky square-and-multiply.
    pub fn decrypt(&self, c: &Bignum) -> Bignum {
        binary_ltr(c, &self.d, &self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_small_keys() {
        let mut rng = SmallRng::seed_from_u64(7);
        for bits in [64usize, 128] {
            let key = RsaKeyPair::generate(bits, &mut rng);
            for _ in 0..5 {
                let m = Bignum::random_below(&mut rng, key.n());
                let c = key.encrypt(&m);
                assert_eq!(key.decrypt(&c), m, "bits={bits}");
                assert_ne!(c, m, "encryption should not be identity (w.h.p.)");
            }
        }
    }

    #[test]
    fn medium_key_round_trip() {
        let mut rng = SmallRng::seed_from_u64(8);
        let key = RsaKeyPair::generate(256, &mut rng);
        let m = Bignum::from_hex("5ec2e7");
        assert_eq!(key.decrypt(&key.encrypt(&m)), m);
        // d really is e^-1 mod phi.
        let phi = key.p().sub(&Bignum::one()).mul(&key.q().sub(&Bignum::one()));
        assert_eq!(key.e().mul(key.d()).mod_reduce(&phi), Bignum::one());
    }

    #[test]
    fn components_round_trip() {
        let mut rng = SmallRng::seed_from_u64(9);
        let key = RsaKeyPair::generate(64, &mut rng);
        let rebuilt = RsaKeyPair::from_components(
            key.n().clone(),
            key.e().clone(),
            key.d().clone(),
            key.p().clone(),
            key.q().clone(),
        );
        assert_eq!(rebuilt, key);
    }
}
