//! Modular exponentiation algorithms and their operation schedules.
//!
//! The SMaCk case studies leak the *sequence of squares and multiplies*
//! executed by a victim's modular exponentiation:
//!
//! * Case study II (RSA, Libgcrypt 1.5.1): left-to-right binary
//!   square-and-multiply — one square per exponent bit, one extra multiply
//!   per set bit ([`binary_ltr`]).
//! * Case study III (SRP, OpenSSL 1.1.1w `BN_mod_exp_mont` without the
//!   constant-time flag): sliding-window exponentiation with window size up
//!   to 6 ([`sliding_window`]), where runs of squares between multiplies
//!   encode the exponent's bit structure, and the middle bits of each
//!   window stay unknown ("1XXXX1" in the paper's Figure 6).
//!
//! [`binary_ltr_schedule`] and [`sliding_window_schedule`] extract exactly
//! the operation sequence without doing any bignum arithmetic; the victim
//! programs in `smack-victims` are generated from the same control flow, and
//! the tests below cross-validate schedule against actual execution.

use crate::bn::Bignum;
use crate::mont::MontCtx;

/// One operation in a modular-exponentiation schedule.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ModexpOp {
    /// A Montgomery squaring (`bn_mul_mont_fixed_top(r, r, r, ...)`).
    Square,
    /// A Montgomery multiplication by a power of the base.
    Multiply,
}

/// OpenSSL's `BN_window_bits_for_exponent_size` policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct WindowSizing;

impl WindowSizing {
    /// Window size (in bits) used for an exponent of `bits` bits.
    pub fn for_exponent_bits(bits: usize) -> usize {
        if bits > 671 {
            6
        } else if bits > 239 {
            5
        } else if bits > 79 {
            4
        } else if bits > 23 {
            3
        } else {
            1
        }
    }
}

/// Left-to-right binary square-and-multiply, Libgcrypt-1.5.1 style.
///
/// Leaks one [`ModexpOp::Multiply`] per set exponent bit.
pub fn binary_ltr(base: &Bignum, exp: &Bignum, modulus: &Bignum) -> Bignum {
    let ctx = MontCtx::new(modulus);
    let g = ctx.to_mont(base);
    let mut r = ctx.one();
    for i in (0..exp.bit_len()).rev() {
        r = ctx.mul(&r, &r);
        if exp.bit(i) {
            r = ctx.mul(&r, &g);
        }
    }
    ctx.from_mont(&r)
}

/// The square/multiply schedule [`binary_ltr`] executes for `exp`.
pub fn binary_ltr_schedule(exp: &Bignum) -> Vec<ModexpOp> {
    let mut ops = Vec::with_capacity(exp.bit_len() * 3 / 2);
    for i in (0..exp.bit_len()).rev() {
        ops.push(ModexpOp::Square);
        if exp.bit(i) {
            ops.push(ModexpOp::Multiply);
        }
    }
    ops
}

/// Sliding-window exponentiation following OpenSSL 1.1.1w
/// `BN_mod_exp_mont` (Listing 4 in the paper).
pub fn sliding_window(base: &Bignum, exp: &Bignum, modulus: &Bignum) -> Bignum {
    if exp.is_zero() {
        return Bignum::one().mod_reduce(modulus);
    }
    let ctx = MontCtx::new(modulus);
    let window = WindowSizing::for_exponent_bits(exp.bit_len());
    // Precompute odd powers val[i] = g^(2i+1).
    let g = ctx.to_mont(base);
    let g2 = ctx.mul(&g, &g);
    let mut val = Vec::with_capacity(1 << (window - 1));
    val.push(g.clone());
    for i in 1..(1usize << (window - 1)) {
        let prev = &val[i - 1];
        val.push(ctx.mul(prev, &g2));
    }
    let mut r = ctx.one();
    let mut started = false;
    let mut wstart = exp.bit_len() as isize - 1;
    while wstart >= 0 {
        if !exp.bit(wstart as usize) {
            if started {
                r = ctx.mul(&r, &r);
            }
            wstart -= 1;
            continue;
        }
        // Scan for the furthest set bit within the window.
        let mut wvalue: u64 = 1;
        let mut wend: usize = 0;
        for i in 1..window {
            if (wstart as usize) < i {
                break;
            }
            if exp.bit(wstart as usize - i) {
                wvalue <<= i - wend;
                wvalue |= 1;
                wend = i;
            }
        }
        for _ in 0..=wend {
            if started {
                r = ctx.mul(&r, &r);
            } else {
                // First window: squaring one is skipped (OpenSSL keeps r=1
                // until the first multiply).
            }
        }
        if started {
            r = ctx.mul(&r, &val[(wvalue >> 1) as usize]);
        } else {
            r = val[(wvalue >> 1) as usize].clone();
            started = true;
        }
        wstart -= wend as isize + 1;
    }
    ctx.from_mont(&r)
}

/// One decoded step of a sliding-window schedule.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct WindowStep {
    /// Number of squarings executed before the multiply (equals the window
    /// width; zero multiplies means trailing squares).
    pub squares: u32,
    /// The odd window value multiplied in (`wvalue`), if any.
    pub wvalue: Option<u64>,
    /// Window width in bits covered by this step (1 for a lone `0` bit).
    pub bits: u32,
}

/// The full square/multiply schedule [`sliding_window`] executes, with the
/// flat op list and the per-bit knowledge mask an attacker can recover.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SlidingWindowSchedule {
    /// Flat operation sequence.
    pub ops: Vec<ModexpOp>,
    /// Steps, from most-significant processing order.
    pub steps: Vec<WindowStep>,
    /// For each exponent bit (little-endian index), whether the bit's value
    /// is recoverable from a perfect trace: zeros between windows and the
    /// first/last bit of every window are known; interior window bits are
    /// the paper's "X" bits.
    pub known_bits: Vec<bool>,
}

/// Extract the sliding-window schedule without any bignum arithmetic.
pub fn sliding_window_schedule(exp: &Bignum) -> SlidingWindowSchedule {
    let bits = exp.bit_len();
    if bits == 0 {
        return SlidingWindowSchedule::default();
    }
    let window = WindowSizing::for_exponent_bits(bits);
    let mut out =
        SlidingWindowSchedule { ops: Vec::new(), steps: Vec::new(), known_bits: vec![false; bits] };
    let mut started = false;
    let mut wstart = bits as isize - 1;
    while wstart >= 0 {
        let pos = wstart as usize;
        if !exp.bit(pos) {
            if started {
                out.ops.push(ModexpOp::Square);
            }
            out.steps.push(WindowStep { squares: u32::from(started), wvalue: None, bits: 1 });
            out.known_bits[pos] = true; // a lone zero is directly visible
            wstart -= 1;
            continue;
        }
        let mut wvalue: u64 = 1;
        let mut wend: usize = 0;
        for i in 1..window {
            if (wstart as usize) < i {
                break;
            }
            if exp.bit(pos - i) {
                wvalue <<= i - wend;
                wvalue |= 1;
                wend = i;
            }
        }
        let squares = if started { wend as u32 + 1 } else { 0 };
        for _ in 0..squares {
            out.ops.push(ModexpOp::Square);
        }
        out.ops.push(ModexpOp::Multiply);
        out.steps.push(WindowStep { squares, wvalue: Some(wvalue), bits: wend as u32 + 1 });
        // Window endpoints are set bits by construction; the attacker
        // learns them. Interior bits remain unknown unless the window is
        // width <= 2.
        out.known_bits[pos] = true;
        out.known_bits[pos - wend] = true;
        started = true;
        wstart -= wend as isize + 1;
    }
    out
}

/// Constant-time Montgomery-ladder exponentiation (the countermeasure
/// referenced in §6.2: no secret-dependent schedule).
pub fn montgomery_ladder(base: &Bignum, exp: &Bignum, modulus: &Bignum) -> Bignum {
    let ctx = MontCtx::new(modulus);
    let mut r0 = ctx.one();
    let mut r1 = ctx.to_mont(base);
    for i in (0..exp.bit_len()).rev() {
        if exp.bit(i) {
            r0 = ctx.mul(&r0, &r1);
            r1 = ctx.mul(&r1, &r1);
        } else {
            r1 = ctx.mul(&r0, &r1);
            r0 = ctx.mul(&r0, &r0);
        }
    }
    ctx.from_mont(&r0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bn(v: u64) -> Bignum {
        Bignum::from_u64(v)
    }

    fn pow_mod_u64(b: u64, e: u64, m: u64) -> u64 {
        let mut r: u128 = 1;
        let mut b = b as u128 % m as u128;
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                r = r * b % m as u128;
            }
            b = b * b % m as u128;
            e >>= 1;
        }
        r as u64
    }

    #[test]
    fn binary_ltr_small_values() {
        assert_eq!(binary_ltr(&bn(3), &bn(10), &bn(1001)), bn(pow_mod_u64(3, 10, 1001)));
        assert_eq!(binary_ltr(&bn(2), &bn(0), &bn(97)), bn(1));
        assert_eq!(binary_ltr(&bn(5), &bn(1), &bn(97)), bn(5));
    }

    #[test]
    fn binary_schedule_counts() {
        // exp = 0b1011 -> S M S S M S M  (square per bit, multiply per 1).
        let ops = binary_ltr_schedule(&bn(0b1011));
        assert_eq!(
            ops,
            vec![
                ModexpOp::Square,
                ModexpOp::Multiply,
                ModexpOp::Square,
                ModexpOp::Square,
                ModexpOp::Multiply,
                ModexpOp::Square,
                ModexpOp::Multiply,
            ]
        );
    }

    #[test]
    fn window_sizing_matches_openssl() {
        assert_eq!(WindowSizing::for_exponent_bits(2048), 6);
        assert_eq!(WindowSizing::for_exponent_bits(672), 6);
        assert_eq!(WindowSizing::for_exponent_bits(671), 5);
        assert_eq!(WindowSizing::for_exponent_bits(240), 5);
        assert_eq!(WindowSizing::for_exponent_bits(239), 4);
        assert_eq!(WindowSizing::for_exponent_bits(80), 4);
        assert_eq!(WindowSizing::for_exponent_bits(79), 3);
        assert_eq!(WindowSizing::for_exponent_bits(24), 3);
        assert_eq!(WindowSizing::for_exponent_bits(23), 1);
    }

    #[test]
    fn sliding_window_matches_binary() {
        let m = Bignum::from_hex("ffffffffffffffc5");
        let mut rng = SmallRng::seed_from_u64(3);
        for bits in [8usize, 24, 80, 240] {
            let e = Bignum::random_bits(&mut rng, bits);
            let b = Bignum::random_below(&mut rng, &m);
            assert_eq!(sliding_window(&b, &e, &m), binary_ltr(&b, &e, &m), "bits={bits}");
        }
    }

    #[test]
    fn ladder_matches_binary() {
        let m = Bignum::from_hex("ffffffffffffffc5");
        let mut rng = SmallRng::seed_from_u64(4);
        let e = Bignum::random_bits(&mut rng, 96);
        let b = Bignum::random_below(&mut rng, &m);
        assert_eq!(montgomery_ladder(&b, &e, &m), binary_ltr(&b, &e, &m));
    }

    #[test]
    fn schedule_known_bits_structure() {
        // 0b101001: window=1 for tiny exponents -> all bits known.
        let s = sliding_window_schedule(&bn(0b101001));
        assert!(s.known_bits.iter().all(|b| *b));
        // Large exponent with big windows: some interior bits unknown.
        let mut rng = SmallRng::seed_from_u64(5);
        let e = Bignum::random_bits(&mut rng, 1024);
        let s = sliding_window_schedule(&e);
        let known = s.known_bits.iter().filter(|b| **b).count();
        assert!(known > 300, "a healthy fraction of bits is recoverable");
        assert!(known < 1024, "window interiors must stay unknown");
        // The paper reports ~45% unknown bits for random keys.
        let unknown_frac = 1.0 - known as f64 / 1024.0;
        assert!(unknown_frac > 0.25 && unknown_frac < 0.60, "unknown fraction {unknown_frac}");
    }

    #[test]
    fn schedule_ops_match_execution_structure() {
        // The number of multiplies equals the number of windows; squares
        // equal (bits - leading-window bits) for started processing.
        let mut rng = SmallRng::seed_from_u64(6);
        let e = Bignum::random_bits(&mut rng, 512);
        let s = sliding_window_schedule(&e);
        let mults = s.ops.iter().filter(|o| **o == ModexpOp::Multiply).count();
        let windows = s.steps.iter().filter(|st| st.wvalue.is_some()).count();
        assert_eq!(mults, windows);
        // Every window value is odd.
        for st in &s.steps {
            if let Some(w) = st.wvalue {
                assert_eq!(w & 1, 1, "window values are odd by construction");
            }
        }
        // Total bits covered = exponent bit length.
        let covered: u32 = s.steps.iter().map(|st| st.bits).sum();
        assert_eq!(covered as usize, e.bit_len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_all_algorithms_agree(seed in any::<u64>()) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut m = Bignum::random_bits(&mut rng, 128);
            if m.is_even() { m = m.add(&Bignum::one()); }
            let e = Bignum::random_bits(&mut rng, 64);
            let b = Bignum::random_below(&mut rng, &m);
            let r1 = binary_ltr(&b, &e, &m);
            let r2 = sliding_window(&b, &e, &m);
            let r3 = montgomery_ladder(&b, &e, &m);
            prop_assert_eq!(&r1, &r2);
            prop_assert_eq!(&r1, &r3);
        }

        #[test]
        fn prop_binary_schedule_shape(seed in any::<u64>(), bits in 2usize..200) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let e = Bignum::random_bits(&mut rng, bits);
            let ops = binary_ltr_schedule(&e);
            let squares = ops.iter().filter(|o| **o == ModexpOp::Square).count();
            let mults = ops.iter().filter(|o| **o == ModexpOp::Multiply).count();
            prop_assert_eq!(squares, bits);
            let ones = (0..bits).filter(|i| e.bit(*i)).count();
            prop_assert_eq!(mults, ones);
        }
    }
}
