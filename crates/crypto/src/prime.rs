//! Miller–Rabin primality testing and prime generation.

use rand::Rng;

use crate::bn::Bignum;
use crate::modexp::binary_ltr;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 20] =
    [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
pub fn is_probable_prime(n: &Bignum, rounds: u32, rng: &mut impl Rng) -> bool {
    if n.is_zero() || *n == Bignum::one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = Bignum::from_u64(p);
        if *n == p {
            return true;
        }
        if n.mod_reduce(&p).is_zero() {
            return false;
        }
    }
    // n - 1 = d * 2^s
    let n_minus_1 = n.sub(&Bignum::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        s += 1;
    }
    'witness: for _ in 0..rounds {
        let a = Bignum::random_below(rng, &n_minus_1);
        if a < Bignum::from_u64(2) {
            continue;
        }
        let mut x = binary_ltr(&a, &d, n);
        if x == Bignum::one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn gen_prime(bits: usize, rng: &mut impl Rng) -> Bignum {
    assert!(bits >= 3, "prime must have at least 3 bits");
    loop {
        let mut candidate = Bignum::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add(&Bignum::one());
        }
        if candidate.bit_len() != bits {
            continue;
        }
        if is_probable_prime(&candidate, 12, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn known_primes_and_composites() {
        let mut rng = SmallRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 65537, 2147483647] {
            assert!(is_probable_prime(&Bignum::from_u64(p), 16, &mut rng), "{p} is prime");
        }
        for c in [0u64, 1, 4, 9, 561, 41041, 825265, 65536, 2147483647 * 3] {
            assert!(!is_probable_prime(&Bignum::from_u64(c), 16, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut rng = SmallRng::seed_from_u64(2);
        // First few Carmichael numbers fool Fermat but not Miller-Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_probable_prime(&Bignum::from_u64(c), 16, &mut rng), "{c}");
        }
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
        }
    }

    #[test]
    fn large_known_prime() {
        let mut rng = SmallRng::seed_from_u64(4);
        // 2^127 - 1 is a Mersenne prime.
        let m127 = Bignum::one().shl_bits(127).sub(&Bignum::one());
        assert!(is_probable_prime(&m127, 16, &mut rng));
        // 2^128 - 1 is composite.
        let m128 = Bignum::one().shl_bits(128).sub(&Bignum::one());
        assert!(!is_probable_prime(&m128, 16, &mut rng));
    }
}
