//! Montgomery multiplication (CIOS), mirroring OpenSSL's `BN_MONT_CTX`.
//!
//! All of the modular exponentiation algorithms in [`crate::modexp`] run on
//! top of this context, exactly as `BN_mod_exp_mont` does — which is what
//! makes their square/multiply schedules the secret-dependent signal SMaCk
//! observes through the instruction cache.

use crate::bn::Bignum;

/// Montgomery context for an odd modulus `n`.
///
/// ```
/// use smack_crypto::{Bignum, MontCtx};
/// let n = Bignum::from_u64(101);
/// let ctx = MontCtx::new(&n);
/// let a = ctx.to_mont(&Bignum::from_u64(7));
/// let b = ctx.to_mont(&Bignum::from_u64(5));
/// let ab = ctx.mul(&a, &b);
/// assert_eq!(ctx.from_mont(&ab), Bignum::from_u64(35));
/// ```
#[derive(Clone, Debug)]
pub struct MontCtx {
    n: Vec<u64>,
    n_bn: Bignum,
    n0inv: u64,
    r2: Vec<u64>,
    k: usize,
}

impl MontCtx {
    /// Build a context for the odd modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or < 3.
    pub fn new(n: &Bignum) -> MontCtx {
        assert!(!n.is_even(), "Montgomery modulus must be odd");
        assert!(*n > Bignum::from_u64(2), "modulus too small");
        let limbs = n.limbs().to_vec();
        let k = limbs.len();
        // n0inv = -n^-1 mod 2^64 via Newton iteration.
        let n0 = limbs[0];
        let mut x: u64 = 1;
        for _ in 0..6 {
            x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
        }
        debug_assert_eq!(n0.wrapping_mul(x), 1);
        let n0inv = x.wrapping_neg();
        // R^2 mod n, R = 2^(64k).
        let r2_bn = Bignum::one().shl_bits(2 * 64 * k).mod_reduce(n);
        let mut r2 = r2_bn.limbs().to_vec();
        r2.resize(k, 0);
        MontCtx { n: limbs, n_bn: n.clone(), n0inv, r2, k }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Bignum {
        &self.n_bn
    }

    /// Limb width of Montgomery residues.
    pub fn width(&self) -> usize {
        self.k
    }

    /// Montgomery product of two residues (each `k` limbs).
    pub fn mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert_eq!(a.len(), self.k);
        debug_assert_eq!(b.len(), self.k);
        let k = self.k;
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let cur = t[j] as u128 + (ai as u128) * (b[j] as u128) + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = t[k + 1].wrapping_add((cur >> 64) as u64);
            // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0inv);
            let mut carry: u128 = (t[0] as u128 + (m as u128) * (self.n[0] as u128)) >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + (m as u128) * (self.n[j] as u128) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
            t[k + 1] = 0;
        }
        t.truncate(k + 1);
        // Final conditional subtraction.
        let ge = t[k] > 0 || Self::cmp_limbs(&t[..k], &self.n) != std::cmp::Ordering::Less;
        let mut out = t;
        if ge {
            let mut borrow = 0u64;
            for (o, n) in out.iter_mut().zip(&self.n) {
                let (d1, b1) = o.overflowing_sub(*n);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *o = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
            out[k] = out[k].wrapping_sub(borrow);
        }
        out.truncate(k);
        out
    }

    fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
        debug_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Convert into the Montgomery domain: `x * R mod n`.
    pub fn to_mont(&self, x: &Bignum) -> Vec<u64> {
        let reduced = x.mod_reduce(&self.n_bn);
        let mut xs = reduced.limbs().to_vec();
        xs.resize(self.k, 0);
        self.mul(&xs, &self.r2)
    }

    /// Convert out of the Montgomery domain.
    pub fn from_mont(&self, x: &[u64]) -> Bignum {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        Bignum::from_limbs(self.mul(x, &one))
    }

    /// The Montgomery representation of one.
    pub fn one(&self) -> Vec<u64> {
        self.to_mont(&Bignum::one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_small() {
        let n = Bignum::from_u64(0xffff_ffff_ffff_ffc5); // odd
        let ctx = MontCtx::new(&n);
        for v in [0u64, 1, 2, 12345, 0xdead_beef] {
            let x = Bignum::from_u64(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x.mod_reduce(&n));
        }
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        let n = Bignum::from_hex("f123456789abcdef123456789abcdef1");
        let ctx = MontCtx::new(&n);
        let a = Bignum::from_hex("123456789abcdef");
        let b = Bignum::from_hex("fedcba9876543210fedcba");
        let ma = ctx.to_mont(&a);
        let mb = ctx.to_mont(&b);
        let got = ctx.from_mont(&ctx.mul(&ma, &mb));
        assert_eq!(got, a.mod_mul(&b, &n));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        MontCtx::new(&Bignum::from_u64(100));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_mont_mul_correct(seed in any::<u64>(), bits in 64usize..512) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut n = Bignum::random_bits(&mut rng, bits);
            if n.is_even() {
                n = n.add(&Bignum::one());
            }
            let ctx = MontCtx::new(&n);
            let a = Bignum::random_below(&mut rng, &n);
            let b = Bignum::random_below(&mut rng, &n);
            let got = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            prop_assert_eq!(got, a.mod_mul(&b, &n));
        }
    }
}
