//! The Secure Remote Password protocol (SRP-6a), modeled on OpenSSL
//! 1.1.1w's implementation.
//!
//! The paper's Case Study III targets `SRP_Calc_server_key` (Listing 3):
//! `S = (A * v^u)^b mod N`, computed with `BN_mod_exp_mont` *without* the
//! `BN_FLG_CONSTTIME` flag — so the sliding-window schedule of the secret
//! ephemeral exponent `b` leaks through the instruction cache, and because
//! `b` is fresh per login the attack must succeed in a **single trace**.
//!
//! Group moduli are deterministic synthetic values of the RFC 5054 bit
//! sizes (1024/2048/4096/6144); see the crate docs for why this
//! substitution preserves the leakage behaviour.

use rand::Rng;

use crate::bn::Bignum;
use crate::modexp::{sliding_window, SlidingWindowSchedule};
use crate::sha256::Sha256;

/// An SRP group `(N, g)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SrpGroup {
    bits: usize,
    n: Bignum,
    g: Bignum,
}

impl SrpGroup {
    /// The group sizes evaluated in the paper's Table 2.
    pub const PAPER_SIZES: [usize; 4] = [1024, 2048, 4096, 6144];

    /// Deterministic synthetic group of the given bit size.
    ///
    /// The modulus is expanded from SHA-256 of a domain-separation label,
    /// with the top and bottom bits forced so it is odd and exactly `bits`
    /// long. Exponentiation timing structure — all the paper measures —
    /// depends only on the operand width.
    pub fn synthetic(bits: usize) -> SrpGroup {
        assert!(bits >= 256, "group too small");
        let mut bytes = Vec::with_capacity(bits / 8);
        let mut counter = 0u32;
        while bytes.len() < bits / 8 {
            let mut h = Sha256::new();
            h.update(b"smack-srp-group");
            h.update(&(bits as u32).to_be_bytes());
            h.update(&counter.to_be_bytes());
            bytes.extend_from_slice(&h.finalize());
            counter += 1;
        }
        bytes.truncate(bits / 8);
        bytes[0] |= 0x80; // exact bit length
        let last = bytes.len() - 1;
        bytes[last] |= 0x01; // odd (Montgomery-friendly)
        let n = Bignum::from_bytes_be(&bytes);
        SrpGroup { bits, n, g: Bignum::from_u64(2) }
    }

    /// Bit size of the modulus.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The modulus `N`.
    pub fn n(&self) -> &Bignum {
        &self.n
    }

    /// The generator `g`.
    pub fn g(&self) -> &Bignum {
        &self.g
    }

    /// `PAD(x)`: big-endian, left-padded to the modulus length (RFC 5054).
    pub fn pad(&self, x: &Bignum) -> Vec<u8> {
        let len = self.bits / 8;
        let mut b = x.to_bytes_be();
        while b.len() < len {
            b.insert(0, 0);
        }
        b
    }

    /// The multiplier `k = H(N || PAD(g))`.
    pub fn k(&self) -> Bignum {
        let mut h = Sha256::new();
        h.update(&self.n.to_bytes_be());
        h.update(&self.pad(&self.g));
        Bignum::from_bytes_be(&h.finalize()).mod_reduce(&self.n)
    }
}

/// Hash-to-scalar helpers shared by the client and server sides.
fn hash_to_bn(parts: &[&[u8]], n: &Bignum) -> Bignum {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    Bignum::from_bytes_be(&h.finalize()).mod_reduce(n)
}

/// Compute the password-derived secret `x = H(salt || H(user ":" pwd))`.
pub fn compute_x(salt: &[u8], username: &str, password: &str) -> Bignum {
    let mut inner = Sha256::new();
    inner.update(username.as_bytes());
    inner.update(b":");
    inner.update(password.as_bytes());
    let inner = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(salt);
    outer.update(&inner);
    Bignum::from_bytes_be(&outer.finalize())
}

/// The server's stored password record `(client_id, v, salt)`.
#[derive(Clone, Debug)]
pub struct SrpVerifier {
    /// Account name.
    pub username: String,
    /// Verifier `v = g^x mod N`.
    pub v: Bignum,
    /// Salt.
    pub salt: Vec<u8>,
}

/// Register a user: derive the verifier from the password.
pub fn register(group: &SrpGroup, username: &str, password: &str, salt: &[u8]) -> SrpVerifier {
    let x = compute_x(salt, username, password);
    let v = sliding_window(group.g(), &x, group.n());
    SrpVerifier { username: username.to_owned(), v, salt: salt.to_vec() }
}

/// The server side of one SRP login.
#[derive(Clone, Debug)]
pub struct SrpServer {
    group: SrpGroup,
    verifier: SrpVerifier,
    b: Bignum,
    big_b: Bignum,
}

impl SrpServer {
    /// Start a login: generates the ephemeral secret `b` and computes
    /// `B = (k*v + g^b) mod N`.
    pub fn start(group: &SrpGroup, verifier: &SrpVerifier, rng: &mut impl Rng) -> SrpServer {
        let b = Bignum::random_below(rng, group.n());
        Self::start_with_b(group, verifier, b)
    }

    /// Start a login with a caller-chosen `b` (used by the attack harness
    /// to know the ground truth).
    pub fn start_with_b(group: &SrpGroup, verifier: &SrpVerifier, b: Bignum) -> SrpServer {
        let gb = sliding_window(group.g(), &b, group.n());
        let kv = group.k().mod_mul(&verifier.v, group.n());
        let big_b = kv.mod_add(&gb, group.n());
        SrpServer { group: group.clone(), verifier: verifier.clone(), b, big_b }
    }

    /// The public ephemeral `B` sent to the client.
    pub fn public_b(&self) -> &Bignum {
        &self.big_b
    }

    /// The secret ephemeral exponent `b` — the paper's single-trace target.
    pub fn secret_b(&self) -> &Bignum {
        &self.b
    }

    /// The salt to send to the client.
    pub fn salt(&self) -> &[u8] {
        &self.verifier.salt
    }

    /// `u = H(PAD(A) || PAD(B))`.
    pub fn scrambler(&self, big_a: &Bignum) -> Bignum {
        hash_to_bn(&[&self.group.pad(big_a), &self.group.pad(&self.big_b)], self.group.n())
    }

    /// `SRP_Calc_server_key`: `S = (A * v^u)^b mod N` via the leaky
    /// sliding-window exponentiation (Listing 3 + Listing 4).
    pub fn calc_server_key(&self, big_a: &Bignum) -> Bignum {
        let u = self.scrambler(big_a);
        // tmp = v^u mod N ; tmp = A * tmp mod N
        let tmp = sliding_window(&self.verifier.v, &u, self.group.n());
        let tmp = big_a.mod_mul(&tmp, self.group.n());
        // S = tmp^b mod N   <-- exponent is the per-login secret b
        sliding_window(&tmp, &self.b, self.group.n())
    }

    /// The sliding-window schedule the victim executes inside
    /// [`SrpServer::calc_server_key`] — the attack's ground truth.
    pub fn server_key_schedule(&self) -> SlidingWindowSchedule {
        crate::modexp::sliding_window_schedule(&self.b)
    }
}

/// The client side of one SRP login (used to validate protocol agreement).
#[derive(Clone, Debug)]
pub struct SrpClient {
    group: SrpGroup,
    a: Bignum,
    big_a: Bignum,
}

impl SrpClient {
    /// Start a login: generates `a`, computes `A = g^a mod N`.
    pub fn start(group: &SrpGroup, rng: &mut impl Rng) -> SrpClient {
        let a = Bignum::random_below(rng, group.n());
        let big_a = sliding_window(group.g(), &a, group.n());
        SrpClient { group: group.clone(), a, big_a }
    }

    /// The public ephemeral `A` sent to the server.
    pub fn public_a(&self) -> &Bignum {
        &self.big_a
    }

    /// Client shared secret: `S = (B - k*g^x)^(a + u*x) mod N`.
    pub fn calc_client_key(
        &self,
        big_b: &Bignum,
        username: &str,
        password: &str,
        salt: &[u8],
    ) -> Bignum {
        let n = self.group.n();
        let x = compute_x(salt, username, password);
        let u = hash_to_bn(&[&self.group.pad(&self.big_a), &self.group.pad(big_b)], n);
        let gx = sliding_window(self.group.g(), &x, n);
        let kgx = self.group.k().mod_mul(&gx, n);
        let base = big_b.mod_reduce(n).mod_sub(&kgx, n);
        let exp = self.a.add(&u.mul(&x));
        sliding_window(&base, &exp, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn synthetic_groups_are_deterministic_and_sized() {
        for bits in SrpGroup::PAPER_SIZES {
            let g1 = SrpGroup::synthetic(bits);
            let g2 = SrpGroup::synthetic(bits);
            assert_eq!(g1, g2);
            assert_eq!(g1.n().bit_len(), bits);
            assert!(!g1.n().is_even());
        }
        assert_ne!(SrpGroup::synthetic(1024).n(), SrpGroup::synthetic(2048).n());
    }

    #[test]
    fn pad_produces_modulus_length() {
        let g = SrpGroup::synthetic(1024);
        assert_eq!(g.pad(&Bignum::from_u64(5)).len(), 128);
        assert_eq!(g.pad(g.n()).len(), 128);
    }

    #[test]
    fn client_and_server_agree_on_the_key() {
        // Full protocol round trip on the smallest supported group: the
        // agreement identity ((g^a)(g^x)^u)^b == (g^b)^(a+ux) holds for any
        // odd modulus, prime or not.
        let group = SrpGroup::synthetic(1024);
        let mut rng = SmallRng::seed_from_u64(11);
        let verifier = register(&group, "alice", "correct horse battery", b"salty");
        let client = SrpClient::start(&group, &mut rng);
        let server = SrpServer::start(&group, &verifier, &mut rng);
        let s_server = server.calc_server_key(client.public_a());
        let s_client = client.calc_client_key(
            server.public_b(),
            "alice",
            "correct horse battery",
            server.salt(),
        );
        assert_eq!(s_server, s_client);
    }

    #[test]
    fn wrong_password_disagrees() {
        let group = SrpGroup::synthetic(1024);
        let mut rng = SmallRng::seed_from_u64(12);
        let verifier = register(&group, "alice", "right password", b"salt!");
        let client = SrpClient::start(&group, &mut rng);
        let server = SrpServer::start(&group, &verifier, &mut rng);
        let s_server = server.calc_server_key(client.public_a());
        let s_client =
            client.calc_client_key(server.public_b(), "alice", "wrong password", server.salt());
        assert_ne!(s_server, s_client);
    }

    #[test]
    fn schedule_matches_secret_b() {
        let group = SrpGroup::synthetic(1024);
        let verifier = register(&group, "bob", "pw", b"s");
        let b = Bignum::from_hex("b1005ec2e7deadbeef0123456789abcdef");
        let server = SrpServer::start_with_b(&group, &verifier, b.clone());
        let sched = server.server_key_schedule();
        assert_eq!(sched, crate::modexp::sliding_window_schedule(&b));
        assert!(!sched.ops.is_empty());
    }
}
