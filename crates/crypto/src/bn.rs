//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u64` limbs, always normalized (no trailing zero limbs;
//! zero is the empty limb vector). The algorithms favour clarity and easy
//! verification over speed: schoolbook multiplication and shift-subtract
//! division are ample for the key sizes the SMaCk experiments use, and the
//! hot path (modular exponentiation) goes through [`crate::mont`] anyway.

use std::cmp::Ordering;
use std::fmt;

use rand::Rng;

/// An arbitrary-precision unsigned integer.
///
/// ```
/// use smack_crypto::Bignum;
/// let a = Bignum::from_u64(7);
/// let b = Bignum::from_u64(6);
/// assert_eq!(a.mul(&b), Bignum::from_u64(42));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bignum {
    /// Little-endian limbs; invariant: the last limb is nonzero.
    limbs: Vec<u64>,
}

impl Bignum {
    /// Zero.
    pub fn zero() -> Bignum {
        Bignum { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Bignum {
        Bignum { limbs: vec![1] }
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Bignum {
        if v == 0 {
            Bignum::zero()
        } else {
            Bignum { limbs: vec![v] }
        }
    }

    /// From little-endian limbs (normalizes).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Bignum {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Bignum { limbs }
    }

    /// The little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// From big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Bignum {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut cur: u64 = 0;
        let mut shift = 0;
        for b in bytes.iter().rev() {
            cur |= (*b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(cur);
        }
        Bignum::from_limbs(limbs)
    }

    /// To big-endian bytes (minimal length; zero encodes as empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Parse a hexadecimal string (no prefix).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters.
    pub fn from_hex(s: &str) -> Bignum {
        let mut v = Bignum::zero();
        for c in s.chars() {
            let d = c.to_digit(16).unwrap_or_else(|| panic!("invalid hex digit {c:?}"));
            v = v.shl_bits(4);
            v = v.add(&Bignum::from_u64(d as u64));
        }
        v
    }

    /// Lowercase hexadecimal representation (no prefix; zero is "0").
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = format!("{:x}", self.limbs.last().expect("nonzero"));
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this even?
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Bit `i` (little-endian numbering; out-of-range bits are 0).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Set bit `i` to 1, growing as needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// `self + other`.
    pub fn add(&self, other: &Bignum) -> Bignum {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        Bignum::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Bignum) -> Bignum {
        assert!(self >= other, "bignum subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Bignum::from_limbs(out)
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &Bignum) -> Bignum {
        if self.is_zero() || other.is_zero() {
            return Bignum::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Bignum::from_limbs(out)
    }

    /// `self << bits`.
    pub fn shl_bits(&self, bits: usize) -> Bignum {
        if self.is_zero() || bits == 0 {
            return if bits == 0 { self.clone() } else { Bignum::zero() };
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        Bignum::from_limbs(out)
    }

    /// `self >> bits`.
    pub fn shr_bits(&self, bits: usize) -> Bignum {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return Bignum::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut l = self.limbs[i] >> bit_shift;
            if bit_shift > 0 && i + 1 < self.limbs.len() {
                l |= self.limbs[i + 1] << (64 - bit_shift);
            }
            out.push(l);
        }
        Bignum::from_limbs(out)
    }

    /// Shift-subtract division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &Bignum) -> (Bignum, Bignum) {
        assert!(!divisor.is_zero(), "bignum division by zero");
        if self < divisor {
            return (Bignum::zero(), self.clone());
        }
        let mut q = Bignum::zero();
        let mut r = Bignum::zero();
        for i in (0..self.bit_len()).rev() {
            r = r.shl_bits(1);
            if self.bit(i) {
                r.set_bit(0);
            }
            if r >= *divisor {
                r = r.sub(divisor);
                q.set_bit(i);
            }
        }
        (q, r)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_reduce(&self, m: &Bignum) -> Bignum {
        if self < m {
            return self.clone();
        }
        self.div_rem(m).1
    }

    /// `(self + other) mod m`. Inputs must already be `< m`.
    pub fn mod_add(&self, other: &Bignum, m: &Bignum) -> Bignum {
        let s = self.add(other);
        if s >= *m {
            s.sub(m)
        } else {
            s
        }
    }

    /// `(self - other) mod m`. Inputs must already be `< m`.
    pub fn mod_sub(&self, other: &Bignum, m: &Bignum) -> Bignum {
        if self >= other {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// `(self * other) mod m` (schoolbook + reduce; for hot paths use
    /// [`crate::mont::MontCtx`]).
    pub fn mod_mul(&self, other: &Bignum, m: &Bignum) -> Bignum {
        self.mul(other).mod_reduce(m)
    }

    /// Modular inverse `self^-1 mod m`, if it exists.
    pub fn mod_inverse(&self, m: &Bignum) -> Option<Bignum> {
        if m.is_zero() || self.is_zero() {
            return None;
        }
        let mut r0 = m.clone();
        let mut r1 = self.mod_reduce(m);
        let mut t0 = Bignum::zero();
        let mut t1 = Bignum::one();
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            let qt = q.mul(&t1).mod_reduce(m);
            let t2 = t0.mod_sub(&qt, m);
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 == Bignum::one() {
            Some(t0)
        } else {
            None
        }
    }

    /// Greatest common divisor.
    pub fn gcd(&self, other: &Bignum) -> Bignum {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.mod_reduce(&b);
            a = b;
            b = r;
        }
        a
    }

    /// A uniformly random value with exactly `bits` bits (top bit set).
    pub fn random_bits(rng: &mut impl Rng, bits: usize) -> Bignum {
        assert!(bits > 0, "need at least one bit");
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
        let last = limbs - 1;
        v[last] &= mask;
        v[last] |= 1u64 << (top_bits - 1);
        Bignum::from_limbs(v)
    }

    /// A uniformly random value in `[1, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m <= 1`.
    pub fn random_below(rng: &mut impl Rng, m: &Bignum) -> Bignum {
        assert!(*m > Bignum::one(), "modulus must exceed one");
        let bits = m.bit_len();
        loop {
            let limbs = bits.div_ceil(64);
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs - 1) * 64;
            let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
            let last = limbs - 1;
            v[last] &= mask;
            let c = Bignum::from_limbs(v);
            if !c.is_zero() && c < *m {
                return c;
            }
        }
    }
}

impl PartialOrd for Bignum {
    fn partial_cmp(&self, other: &Bignum) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bignum {
    fn cmp(&self, other: &Bignum) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            o => o,
        }
    }
}

impl fmt::Debug for Bignum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bignum(0x{})", self.to_hex())
    }
}

impl fmt::Display for Bignum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for Bignum {
    fn from(v: u64) -> Bignum {
        Bignum::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bn(v: u64) -> Bignum {
        Bignum::from_u64(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(bn(2).add(&bn(3)), bn(5));
        assert_eq!(bn(10).sub(&bn(4)), bn(6));
        assert_eq!(bn(7).mul(&bn(8)), bn(56));
        assert_eq!(bn(100).div_rem(&bn(7)), (bn(14), bn(2)));
    }

    #[test]
    fn carries_across_limbs() {
        let max = Bignum::from_u64(u64::MAX);
        let two = max.add(&Bignum::one());
        assert_eq!(two.limbs(), &[0, 1]);
        assert_eq!(two.sub(&Bignum::one()), max);
        let sq = max.mul(&max);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(sq.limbs(), &[1, u64::MAX - 1]);
    }

    #[test]
    fn hex_round_trip() {
        let v = Bignum::from_hex("deadbeef0123456789abcdef00000000ffffffffffffffff");
        assert_eq!(v.to_hex(), "deadbeef0123456789abcdef00000000ffffffffffffffff");
        assert_eq!(Bignum::zero().to_hex(), "0");
        assert_eq!(Bignum::from_hex("0"), Bignum::zero());
    }

    #[test]
    fn bytes_round_trip() {
        let v = Bignum::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(v.to_bytes_be(), vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
    }

    #[test]
    fn bits_and_shifts() {
        let v = Bignum::from_hex("8000000000000001");
        assert_eq!(v.bit_len(), 64);
        assert!(v.bit(0));
        assert!(v.bit(63));
        assert!(!v.bit(32));
        assert_eq!(v.shl_bits(4).to_hex(), "80000000000000010");
        assert_eq!(v.shr_bits(1).to_hex(), "4000000000000000");
        assert_eq!(v.shr_bits(64), Bignum::zero());
        assert_eq!(v.shl_bits(64).bit_len(), 128);
    }

    #[test]
    fn mod_inverse_known_values() {
        // 3^-1 mod 7 = 5
        assert_eq!(bn(3).mod_inverse(&bn(7)), Some(bn(5)));
        // gcd(4, 8) != 1 -> no inverse
        assert_eq!(bn(4).mod_inverse(&bn(8)), None);
        // e = 65537 mod small phi
        let e = bn(65537);
        let phi = bn(3120);
        if let Some(d) = e.mod_inverse(&phi) {
            assert_eq!(e.mul(&d).mod_reduce(&phi), Bignum::one());
        }
    }

    #[test]
    fn mod_sub_wraps() {
        let m = bn(17);
        assert_eq!(bn(3).mod_sub(&bn(5), &m), bn(15));
        assert_eq!(bn(5).mod_sub(&bn(3), &m), bn(2));
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = SmallRng::seed_from_u64(1);
        for bits in [1usize, 5, 63, 64, 65, 127, 128, 1024] {
            let v = Bignum::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = Bignum::from_hex("10000000000000000000001");
        for _ in 0..50 {
            let v = Bignum::random_below(&mut rng, &m);
            assert!(!v.is_zero() && v < m);
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_round_trip(a in proptest::collection::vec(any::<u64>(), 0..6),
                                   b in proptest::collection::vec(any::<u64>(), 0..6)) {
            let a = Bignum::from_limbs(a);
            let b = Bignum::from_limbs(b);
            let s = a.add(&b);
            prop_assert_eq!(s.sub(&b), a);
        }

        #[test]
        fn prop_mul_commutes_and_distributes(
            a in proptest::collection::vec(any::<u64>(), 0..4),
            b in proptest::collection::vec(any::<u64>(), 0..4),
            c in proptest::collection::vec(any::<u64>(), 0..4),
        ) {
            let a = Bignum::from_limbs(a);
            let b = Bignum::from_limbs(b);
            let c = Bignum::from_limbs(c);
            prop_assert_eq!(a.mul(&b), b.mul(&a));
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn prop_div_rem_invariant(
            a in proptest::collection::vec(any::<u64>(), 0..6),
            b in proptest::collection::vec(1u64..u64::MAX, 1..4),
        ) {
            let a = Bignum::from_limbs(a);
            let b = Bignum::from_limbs(b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
        }

        #[test]
        fn prop_shift_round_trip(a in proptest::collection::vec(any::<u64>(), 0..4),
                                 s in 0usize..130) {
            let a = Bignum::from_limbs(a);
            prop_assert_eq!(a.shl_bits(s).shr_bits(s), a);
        }

        #[test]
        fn prop_mod_inverse_is_inverse(
            a in proptest::collection::vec(any::<u64>(), 1..3),
            m in proptest::collection::vec(any::<u64>(), 1..3),
        ) {
            let a = Bignum::from_limbs(a);
            let m = Bignum::from_limbs(m);
            prop_assume!(m > Bignum::one());
            if let Some(inv) = a.mod_inverse(&m) {
                prop_assert_eq!(a.mul(&inv).mod_reduce(&m), Bignum::one());
            }
        }

        #[test]
        fn prop_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
            let v = Bignum::from_bytes_be(&bytes);
            let out = v.to_bytes_be();
            // Leading zeros are not preserved, so compare values.
            prop_assert_eq!(Bignum::from_bytes_be(&out), v);
        }

        #[test]
        fn prop_ord_total(a in proptest::collection::vec(any::<u64>(), 0..4),
                          b in proptest::collection::vec(any::<u64>(), 0..4)) {
            let a = Bignum::from_limbs(a);
            let b = Bignum::from_limbs(b);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => prop_assert!(b > a),
                std::cmp::Ordering::Equal => prop_assert_eq!(&a, &b),
                std::cmp::Ordering::Greater => prop_assert!(a > b),
            }
        }
    }
}
