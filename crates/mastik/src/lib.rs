//! # smack-mastik
//!
//! The comparison baseline: a Mastik-style classic L1 instruction-cache
//! Prime+Probe monitor (Yarom's Mastik toolkit, as used in the paper's
//! Figure 1 bottom row and Table 2).
//!
//! The monitor primes an L1i set by *executing* eviction lines and probes
//! by executing-and-timing them again. An evicted way refetches from L2 —
//! but the front-end hides nearly all of the L2 latency, leaving a 1–2
//! cycle margin (paper §4.1: "the L1i cache incurs an average of 34
//! cycles, and the L2 cache takes an average of 35 cycles"). Against even
//! mild timing jitter that margin drowns, which is exactly why SMaCk's
//! machine-clear margins (hundreds of cycles) matter.
//!
//! Because per-sample classification is unreliable, the monitor scores
//! each round by its *miss count* and flags activity adaptively against a
//! running baseline — the "threshold selected by matching the expected
//! number of cache misses" methodology the paper describes for its Mastik
//! comparison in §5.3.

use smack::oracle::EvictionSet;
use smack::probe::Prober;
use smack_uarch::{Machine, ProbeKind, StepError, ThreadId};

/// A classic L1i Prime+Probe monitor over one cache set.
#[derive(Debug)]
pub struct MastikMonitor {
    evset: EvictionSet,
    prober: Prober,
    threshold: u64,
    wait_cycles: u64,
    // Running statistics of the per-round miss-count score.
    count: f64,
    mean: f64,
    m2: f64,
}

impl MastikMonitor {
    /// Create a monitor for L1i set `set`, placing the eviction lines at
    /// `region_base`, and calibrate the per-way hit/miss threshold.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from calibration.
    pub fn new(
        machine: &mut Machine,
        tid: ThreadId,
        region_base: u64,
        set: usize,
        wait_cycles: u64,
    ) -> Result<MastikMonitor, StepError> {
        let evset = EvictionSet::for_machine(machine, region_base, set);
        evset.install(machine);
        for w in evset.ways() {
            machine.warm_tlb(tid, *w);
        }
        let mut prober = Prober::new(tid);
        // Calibrate: probe timings with all ways L1i-hot vs. one way
        // demoted to L2. The margin is tiny — that is the point.
        evset.prime(machine, &mut prober)?;
        let hot = evset.probe(machine, &mut prober, ProbeKind::Execute)?;
        let hot_mean = hot.iter().sum::<u64>() as f64 / hot.len() as f64;
        evset.prime(machine, &mut prober)?;
        // A victim fetch demotes the way to L2 (inclusive hierarchy), so
        // calibrate against exactly that state — the margin is 1-2 cycles.
        machine.place_line(evset.ways()[0], smack_uarch::Placement::L2);
        let cold = prober.measure(machine, ProbeKind::Execute, evset.ways()[0])?.cycles;
        let threshold = ((hot_mean + cold as f64) / 2.0).round() as u64;
        Ok(MastikMonitor { evset, prober, threshold, wait_cycles, count: 0.0, mean: 0.0, m2: 0.0 })
    }

    /// The calibrated per-way threshold (diagnostics).
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The monitored set.
    pub fn set(&self) -> usize {
        self.evset.set()
    }

    /// One prime → wait → probe round; returns the raw miss count.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn sample_score(&mut self, machine: &mut Machine) -> Result<u32, StepError> {
        self.evset.prime(machine, &mut self.prober)?;
        self.prober.wait(machine, self.wait_cycles)?;
        let timings = self.evset.probe(machine, &mut self.prober, ProbeKind::Execute)?;
        Ok(timings.iter().filter(|t| **t > self.threshold).count() as u32)
    }

    /// One monitoring round with adaptive activity detection: the round is
    /// "active" when its miss count exceeds the running baseline by more
    /// than 1.5 standard deviations.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn sample(&mut self, machine: &mut Machine) -> Result<bool, StepError> {
        let score = self.sample_score(machine)? as f64;
        // Welford's online mean/variance for the baseline.
        self.count += 1.0;
        let delta = score - self.mean;
        self.mean += delta / self.count;
        self.m2 += delta * (score - self.mean);
        if self.count < 8.0 {
            return Ok(false); // still building the baseline
        }
        let var = self.m2 / (self.count - 1.0);
        let sigma = var.sqrt().max(0.25);
        Ok(score > self.mean + 1.5 * sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::{MicroArch, NoiseConfig};

    const T0: ThreadId = ThreadId::T0;

    #[test]
    fn threshold_margin_is_tiny() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let mon = MastikMonitor::new(&mut m, T0, 0x10_0000, 9, 500).unwrap();
        // The L1i/L2 execute margin is 1-2 cycles; the threshold sits just
        // above the hot timing.
        assert!(mon.threshold() > 20 && mon.threshold() < 60, "{}", mon.threshold());
    }

    #[test]
    fn detects_eviction_without_noise() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let mut mon = MastikMonitor::new(&mut m, T0, 0x10_0000, 9, 500).unwrap();
        // Build a baseline of quiet rounds.
        for _ in 0..10 {
            assert_eq!(mon.sample_score(&mut m).unwrap(), 0, "quiet machine, no misses");
        }
        // A victim-like eviction produces a nonzero score.
        mon.evset.prime(&mut m, &mut Prober::new(T0)).unwrap();
        m.place_line(mon.evset.ways()[2], smack_uarch::Placement::L2);
        let t = mon.evset.probe(&mut m, &mut Prober::new(T0), ProbeKind::Execute).unwrap();
        let misses = t.iter().filter(|x| **x > mon.threshold()).count();
        assert_eq!(misses, 1);
    }

    #[test]
    fn jitter_drowns_the_margin() {
        // With realistic noise the per-way classification becomes
        // unreliable — the core weakness the paper exploits for its
        // comparison (Table 2's Mastik rows).
        let mut m =
            Machine::with_noise(MicroArch::CascadeLake.profile(), NoiseConfig::realistic(), 3);
        let mut mon = MastikMonitor::new(&mut m, T0, 0x10_0000, 9, 500).unwrap();
        let mut nonzero = 0;
        for _ in 0..40 {
            if mon.sample_score(&mut m).unwrap() > 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 4, "jitter should produce spurious misses, got {nonzero}/40");
    }

    #[test]
    fn adaptive_sampler_needs_a_baseline() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let mut mon = MastikMonitor::new(&mut m, T0, 0x10_0000, 9, 500).unwrap();
        for _ in 0..7 {
            assert!(!mon.sample(&mut m).unwrap(), "baseline rounds are never active");
        }
    }
}
