//! The analyzer's two load-bearing guarantees, checked against the
//! machine itself on arbitrary programs:
//!
//! 1. **Footprint soundness** — the static fetch footprint is a *may*
//!    over-approximation: every cache line the engine's fetch-line log
//!    records during a real run (quiet or under injected eviction noise)
//!    is in the analyzer's footprint. A `ConstantFootprint` verdict is a
//!    proof only if this holds.
//! 2. **Patch stability** — taint verdicts come from instruction def/use
//!    shape, not encodings: a same-length, same-def/use rewrite of a
//!    routine (the `add → xor` swap the SMC equivalence suite uses)
//!    changes neither the verdict, the leaky lines, nor the footprint,
//!    and the decoded side table accepts it without tripping the audit.
//!
//! The program generator mirrors `decoded_equivalence.rs` in the uarch
//! crate: random ALU/load/store bodies with forward skips, bounded inner
//! loops, and static + register-indirect calls to a fixed helper routine.

use proptest::prelude::*;
use smack_analysis::{analyze, audit_patches, SecretSpec};
use smack_uarch::asm::{Assembler, Program};
use smack_uarch::isa::{MemRef, Reg};
use smack_uarch::{DecodedProgram, Machine, MicroArch, NoiseConfig, ThreadId};

const T0: ThreadId = ThreadId::T0;
const CODE_BASE: u64 = 0x10_0000;
const HELPER_BASE: u64 = 0x1f_0000;
const DATA_BASE: u64 = 0x40_0000;

/// One random body instruction; registers stay in `R0..=R7`, `R8` holds
/// the data base, `R9` the helper address, `R10`/`R11` the loop counters.
#[derive(Clone, Debug)]
enum BodyOp {
    Alu(u8, u8, u8),
    MovImm(u8, u64),
    Load(u8, u8),
    Store(u8, u8),
    CmpImm(u8, u64),
    /// Forward `jcc` over the next op — generated programs always halt.
    SkipNext(u8),
    CallHelper,
    CallHelperReg,
    Clflush(u8),
    Nop,
    /// A bounded backward-branch inner loop.
    InnerLoop(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (0u8..5, 0u8..8, 0u8..8).prop_map(|(k, d, s)| BodyOp::Alu(k, d, s)),
        // Immediates stay below the code region so the audit's SMC
        // harvest never mistakes a random constant for a patch target.
        (0u8..8, 0u64..0x1_0000).prop_map(|(d, imm)| BodyOp::MovImm(d, imm)),
        (0u8..8, 0u8..16).prop_map(|(d, slot)| BodyOp::Load(d, slot)),
        (0u8..8, 0u8..16).prop_map(|(s, slot)| BodyOp::Store(s, slot)),
        (0u8..8, 0u64..4).prop_map(|(r, imm)| BodyOp::CmpImm(r, imm)),
        (0u8..5).prop_map(BodyOp::SkipNext),
        Just(BodyOp::CallHelper),
        Just(BodyOp::CallHelperReg),
        (0u8..16).prop_map(BodyOp::Clflush),
        Just(BodyOp::Nop),
        (0u8..8, 2u8..5).prop_map(|(r, n)| BodyOp::InnerLoop(r, n)),
    ]
}

fn reg(i: u8) -> Reg {
    Reg::from_index(i as usize)
}

fn cond(i: u8) -> smack_uarch::isa::Cond {
    use smack_uarch::isa::Cond;
    [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le][i as usize % 5]
}

/// The helper routine's first instruction — the patch site for the
/// stability property. `add` and `xor` encode to the same length and
/// have identical def/use sets.
#[derive(Copy, Clone, PartialEq, Debug)]
enum HelperBody {
    Add,
    Xor,
}

/// Assemble `ops` into a two-iteration outer loop around the random
/// body, with a `ret`-terminated helper routine for the call ops.
fn build_program(ops: &[BodyOp], helper: HelperBody) -> Program {
    let mut a = Assembler::new(CODE_BASE);
    a.mov_imm(Reg::R8, DATA_BASE).mov_label(Reg::R9, "helper").mov_imm(Reg::R10, 0).label("loop");
    let mut labels_after: Vec<Vec<String>> = vec![Vec::new(); ops.len()];
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, BodyOp::SkipNext(_)) && i + 1 < ops.len() {
            labels_after[i + 1].push(format!("skip{i}"));
        }
    }
    for (i, op) in ops.iter().enumerate() {
        match *op {
            BodyOp::Alu(kind, d, s) => {
                let (d, s) = (reg(d), reg(s));
                match kind {
                    0 => a.add(d, s),
                    1 => a.sub(d, s),
                    2 => a.mul(d, s),
                    3 => a.xor(d, s),
                    _ => a.or(d, s),
                };
            }
            BodyOp::MovImm(d, imm) => {
                a.mov_imm(reg(d), imm);
            }
            BodyOp::Load(d, slot) => {
                a.load(reg(d), MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::Store(s, slot) => {
                a.store(reg(s), MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::CmpImm(r, imm) => {
                a.cmp_imm(reg(r), imm);
            }
            BodyOp::SkipNext(c) => {
                if i + 1 < ops.len() {
                    a.jcc(cond(c), format!("skip{i}"));
                } else {
                    a.jcc(cond(c), "epilogue");
                }
            }
            BodyOp::CallHelper => {
                a.call("helper");
            }
            BodyOp::CallHelperReg => {
                a.call_reg(Reg::R9);
            }
            BodyOp::Clflush(slot) => {
                a.clflush(MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::Nop => {
                a.nop();
            }
            BodyOp::InnerLoop(r, n) => {
                a.mov_imm(Reg::R11, 0)
                    .label(&format!("inner{i}"))
                    .add_imm(reg(r), 1)
                    .add_imm(Reg::R11, 1)
                    .cmp_imm(Reg::R11, n as u64)
                    .jne(format!("inner{i}"));
            }
        }
        for l in &labels_after[i] {
            a.label(l);
        }
    }
    a.label("epilogue").add_imm(Reg::R10, 1).cmp_imm(Reg::R10, 2).jne("loop").halt();
    a.org(HELPER_BASE).label("helper");
    match helper {
        HelperBody::Add => a.add(Reg::R0, Reg::R1),
        HelperBody::Xor => a.xor(Reg::R0, Reg::R1),
    };
    a.nop().ret();
    a.assemble().expect("generated program assembles")
}

/// Run `prog` to completion on the map-lookup reference interpreter with
/// the fetch-line log on, returning the sorted, deduplicated set of cache
/// lines the engine actually fetched.
fn observed_lines(prog: &Program, noise_seed: Option<u64>) -> Vec<u64> {
    let profile = MicroArch::CascadeLake.profile();
    let mut m = match noise_seed {
        Some(seed) => Machine::with_noise(profile, NoiseConfig::realistic(), seed),
        None => Machine::new(profile),
    };
    m.set_decoded_fast_path(false);
    m.load_program(prog);
    m.set_fetch_log(true);
    m.start_program(T0, prog.entry(), &[]);
    m.run_until_halt(T0, 1_000_000).expect("program halts");
    let mut lines = m.take_fetch_log();
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// Every observed line is in `footprint` (both sorted).
fn covered(footprint: &[u64], observed: &[u64]) -> bool {
    observed.iter().all(|l| footprint.binary_search(l).is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Footprint soundness: for arbitrary programs — including dynamic
    /// `call *%r9` transfers the CFG only knows through immediate
    /// harvesting — every cache line the engine fetches is in the static
    /// footprint, with and without declared secrets, with and without
    /// injected eviction noise.
    #[test]
    fn prop_static_footprint_covers_observed_fetches(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let prog = build_program(&ops, HelperBody::Add);
        let spec = SecretSpec { tainted_regs: vec![Reg::R0], ..SecretSpec::default() };
        let report = analyze(&prog, prog.entry(), &spec);
        prop_assert!(report.audit.is_empty(), "audit: {:?}", report.audit);

        let quiet = observed_lines(&prog, None);
        prop_assert!(
            covered(&report.footprint, &quiet),
            "quiet run fetched lines outside the static footprint:\n  observed {quiet:x?}\n  footprint {:x?}",
            report.footprint
        );
        let noisy = observed_lines(&prog, Some(seed));
        prop_assert!(
            covered(&report.footprint, &noisy),
            "noisy run fetched lines outside the static footprint:\n  observed {noisy:x?}\n  footprint {:x?}",
            report.footprint
        );
    }

    /// Patch stability: rewriting the helper's `add` to the same-length,
    /// same-def/use `xor` — the SMC patch the equivalence suite applies
    /// mid-run — leaves the verdict, leaky lines, tainted transfer sites,
    /// and footprint identical, the decoded side table re-decodes the
    /// patch in place, and the patch audit stays clean.
    #[test]
    fn prop_verdicts_stable_across_same_shape_patch(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        taint_reg in 0u8..8,
    ) {
        let prog = build_program(&ops, HelperBody::Add);
        let patched = build_program(&ops, HelperBody::Xor);
        let spec =
            SecretSpec { tainted_regs: vec![reg(taint_reg)], ..SecretSpec::default() };
        let before = analyze(&prog, prog.entry(), &spec);
        let after = analyze(&patched, patched.entry(), &spec);
        prop_assert_eq!(before.verdict, after.verdict);
        prop_assert_eq!(&before.leaky_lines, &after.leaky_lines);
        prop_assert_eq!(&before.tainted_branches, &after.tainted_branches);
        prop_assert_eq!(&before.tainted_transfers, &after.tainted_transfers);
        prop_assert_eq!(&before.footprint, &after.footprint);

        // The same rewrite expressed as a decoded-table patch: the helper
        // head is a run head, so `patch` succeeds in place and the audit
        // has nothing to flag.
        let mut d = DecodedProgram::compile(&prog);
        let xor_instr = {
            let dp = DecodedProgram::compile(&patched);
            dp.get(dp.index_of(HELPER_BASE)).instr
        };
        prop_assert!(d.patch(HELPER_BASE, xor_instr), "same-length patch re-decodes in place");
        prop_assert!(audit_patches(&prog, &[(HELPER_BASE, xor_instr)]).is_empty());

        // Determinism: analyzing the same program twice is bit-identical.
        let again = analyze(&prog, prog.entry(), &spec);
        prop_assert_eq!(before.verdict, again.verdict);
        prop_assert_eq!(&before.leaky_lines, &again.leaky_lines);
        prop_assert_eq!(&before.footprint, &again.footprint);
    }
}
