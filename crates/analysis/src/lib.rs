//! Static leakage analysis for SMaCk victim programs.
//!
//! SMaCk's channel exists because a victim executes secret-dependent code
//! paths whose *instruction-cache footprints* differ (paper §5): the
//! attacker probes an L1i line and learns whether the victim fetched it.
//! The rest of this repository demonstrates that dynamically, with
//! thousands of measured trials per victim. This crate proves or refutes
//! the leak from program structure alone, in the style of a constant-time
//! verifier:
//!
//! 1. [`cfg`] builds an instruction-level control-flow graph from the same
//!    pre-decoded successor indices and cache-line ids the engine's fast
//!    path uses ([`smack_uarch::DecodedProgram`]), harvesting candidate
//!    targets for dynamic transfers (`call *%reg`, `ret`) from immediate
//!    operands and from declared [`SecretSpec::indirect_targets`] ranges.
//! 2. [`taint`] runs a forward dataflow over `Instr` def/use sets: the
//!    victim declares its secret inputs (registers and memory ranges) in a
//!    [`SecretSpec`]; taint flows through moves, ALU ops and loads into
//!    the flags, and every control transfer is classified secret-dependent
//!    or not. A light constant propagation resolves load addresses so
//!    loads of *public* memory stay clean.
//! 3. [`leakage`] turns tainted transfers into a verdict: for each
//!    secret-dependent branch, the cache lines fetched on one arm but not
//!    the other (walked up to the branch's postdominator, with callees
//!    summarized) are *leaky*; a tainted indirect call leaks the
//!    non-shared lines of its candidate targets. Leaky lines map to the
//!    probe classes that can observe them on a given microarchitecture.
//! 4. [`audit`] independently re-derives the superblock fusion invariants
//!    (no control transfer or probe instruction inside a fused run, line
//!    segments within one cache line, SMC patch targets on instruction
//!    boundaries and at run heads, patches length-preserving) as a lint
//!    over decoded programs.
//!
//! The analysis is a *may*-analysis throughout: the static fetch footprint
//! over-approximates any dynamic execution's fetched lines (including
//! speculative wrong-path fetches, whose targets are always CFG
//! successors or previously-executed addresses), and a `ConstantFootprint`
//! verdict therefore proves the absence of the channel, while `Leaky`
//! names the lines an attacker should probe. Soundness is locked by
//! proptests comparing against the reference interpreter's observed
//! fetch-line log.

pub mod audit;
pub mod cfg;
pub mod leakage;
pub mod taint;

use smack_uarch::asm::Program;
use smack_uarch::isa::Reg;
use smack_uarch::{ProbeKind, SmcBehavior, UarchProfile};

pub use audit::{audit, audit_patches, AuditViolation};
pub use cfg::Cfg;
pub use leakage::LeakageSummary;
pub use taint::TaintSummary;

/// A half-open byte range `[start, end)` of simulated memory.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AddrRange {
    /// First byte of the range.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

impl AddrRange {
    /// Build a range from a base and a length.
    pub fn span(start: u64, len: u64) -> AddrRange {
        AddrRange { start, end: start + len }
    }

    /// Whether `[addr, addr + size)` overlaps this range.
    pub fn overlaps(&self, addr: u64, size: u64) -> bool {
        addr < self.end && addr.wrapping_add(size) > self.start
    }
}

/// A victim's declaration of its secret inputs — the only hint the
/// analyzer takes. Victims without secrets declare [`SecretSpec::none`];
/// the analyzer then needs no heuristics to prove them constant-footprint.
#[derive(Clone, Debug, Default)]
pub struct SecretSpec {
    /// Registers holding secret values at program entry.
    pub tainted_regs: Vec<Reg>,
    /// Memory ranges holding secret bytes when the victim starts (e.g. the
    /// staged exponent bit array).
    pub tainted_memory: Vec<AddrRange>,
    /// Address ranges that dynamic control transfers (`call *%reg`) may
    /// target beyond what immediate harvesting finds — e.g. an oracle page
    /// of computed jump targets.
    pub indirect_targets: Vec<AddrRange>,
}

impl SecretSpec {
    /// No secrets: every load is public data and no transfer can be
    /// secret-dependent.
    pub fn none() -> SecretSpec {
        SecretSpec::default()
    }

    /// Whether the spec declares any secret input at all.
    pub fn declares_secrets(&self) -> bool {
        !self.tainted_regs.is_empty() || !self.tainted_memory.is_empty()
    }
}

/// The analyzer's verdict on one victim.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Some cache line's fetch depends on the secret; SMaCk applies.
    Leaky,
    /// The instruction-fetch footprint is the same for every secret value;
    /// no i-cache probe can learn anything.
    ConstantFootprint,
}

impl Verdict {
    /// Short label for tables and CSVs.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Leaky => "leaky",
            Verdict::ConstantFootprint => "constant",
        }
    }
}

/// Everything the analyzer derives about one program.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// The verdict.
    pub verdict: Verdict,
    /// Every cache line the program may ever fetch (sorted, deduplicated).
    /// Over-approximates the fetch-line log of any execution.
    pub footprint: Vec<u64>,
    /// Cache lines whose fetch depends on the secret (sorted): the lines
    /// an attacker should probe.
    pub leaky_lines: Vec<u64>,
    /// Program counters of secret-dependent conditional branches.
    pub tainted_branches: Vec<u64>,
    /// Program counters of secret-dependent indirect transfers.
    pub tainted_transfers: Vec<u64>,
    /// Superblock/SMC audit findings (empty = all invariants hold).
    pub audit: Vec<AuditViolation>,
}

/// Run the full pipeline — CFG construction, taint dataflow, leakage
/// verdict, fusion audit — on `prog` starting at `entry`.
pub fn analyze(prog: &Program, entry: u64, spec: &SecretSpec) -> AnalysisReport {
    let cfg = Cfg::build(prog, entry, spec);
    let taint = taint::propagate(&cfg, spec);
    let leak = leakage::summarize(&cfg, &taint);
    let audit = audit::audit(prog);
    AnalysisReport {
        verdict: if leak.leaky_lines.is_empty() {
            Verdict::ConstantFootprint
        } else {
            Verdict::Leaky
        },
        footprint: cfg.footprint(),
        leaky_lines: leak.leaky_lines,
        tainted_branches: leak.tainted_branches,
        tainted_transfers: leak.tainted_transfers,
        audit,
    }
}

/// The probe classes able to observe an L1i-resident leaky line on
/// `profile` — the ● (machine clear) and ◐ (timing-only) rows of the
/// paper's Table 3 for that part.
pub fn observing_probes(profile: &UarchProfile) -> Vec<ProbeKind> {
    ProbeKind::ALL
        .iter()
        .copied()
        .filter(|k| {
            matches!(profile.smc.get(*k), SmcBehavior::Triggers | SmcBehavior::LeaksWithoutSmc)
        })
        .collect()
}
