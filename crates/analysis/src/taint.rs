//! Secret-taint dataflow over `Instr` def/use sets.
//!
//! A forward worklist fixpoint over the [flow view](crate::cfg) of the
//! CFG. The abstract state per node entry is:
//!
//! - a 16-bit register taint mask,
//! - a flags-taint bit (`cmp` on a tainted operand taints the flags; a
//!   `jcc` consuming tainted flags is a secret-dependent branch),
//! - a per-register constant lattice (`Some(v)` = provably `v` on every
//!   path, `None` = unknown) used only to resolve load addresses, so a
//!   load of *public* memory does not pick up taint merely because some
//!   other range is secret.
//!
//! Memory is summarized, not tracked cell-by-cell: the declared
//! [`SecretSpec::tainted_memory`] ranges are secret; a load whose address
//! may fall in a secret range (unknown addresses *may*) taints its
//! destination. Storing a tainted register anywhere raises a global
//! `stored_secret` flag, after which every load is tainted — a coarse but
//! sound escape hatch none of the shipped victims trigger.
//!
//! The pass is a may-analysis: branch directions are never resolved, both
//! arms of every branch stay reachable, and joins are bitwise OR (taint) /
//! equality (constants). Verdicts are therefore stable under any
//! semantics-preserving re-decode of the same instruction stream.

use smack_uarch::isa::{Instr, MemRef, MemSize, Reg};

use crate::cfg::Cfg;
use crate::SecretSpec;

/// Abstract state at a node entry.
#[derive(Clone, PartialEq, Eq, Debug)]
struct State {
    taint: u16,
    flags_tainted: bool,
    consts: [Option<u64>; Reg::COUNT],
}

impl State {
    fn join(&mut self, other: &State) -> bool {
        let mut changed = false;
        let t = self.taint | other.taint;
        if t != self.taint {
            self.taint = t;
            changed = true;
        }
        if other.flags_tainted && !self.flags_tainted {
            self.flags_tainted = true;
            changed = true;
        }
        for (a, b) in self.consts.iter_mut().zip(other.consts.iter()) {
            if *a != *b && a.is_some() {
                *a = None;
                changed = true;
            }
        }
        changed
    }

    fn tainted(&self, r: Reg) -> bool {
        self.taint & (1 << r.index()) != 0
    }

    fn set_taint(&mut self, r: Reg, on: bool) {
        if on {
            self.taint |= 1 << r.index();
        } else {
            self.taint &= !(1 << r.index());
        }
    }
}

/// What the fixpoint concluded.
#[derive(Clone, Debug)]
pub struct TaintSummary {
    /// Nodes holding a `jcc` whose flags are tainted.
    pub tainted_branches: Vec<u32>,
    /// Nodes holding a `call *%reg` whose target register is tainted.
    pub tainted_transfers: Vec<u32>,
    /// Whether a tainted value was stored to memory (degrades load
    /// precision to "everything may be secret").
    pub stored_secret: bool,
}

fn mem_addr(consts: &[Option<u64>; Reg::COUNT], m: MemRef) -> Option<u64> {
    consts[m.base.index()].map(|b| b.wrapping_add(m.disp as u64))
}

fn load_is_tainted(spec: &SecretSpec, stored_secret: bool, addr: Option<u64>, size: u64) -> bool {
    if stored_secret {
        return true;
    }
    match addr {
        Some(a) => spec.tainted_memory.iter().any(|r| r.overlaps(a, size)),
        // Unknown address: may read any tainted range, if there is one.
        None => !spec.tainted_memory.is_empty(),
    }
}

/// Run the fixpoint. Returns the per-transfer classification.
pub fn propagate(cfg: &Cfg, spec: &SecretSpec) -> TaintSummary {
    let n = cfg.len() as usize;
    let mut entry_state = State { taint: 0, flags_tainted: false, consts: [None; Reg::COUNT] };
    for r in &spec.tainted_regs {
        entry_state.set_taint(*r, true);
    }

    // `stored_secret` is global and monotone; when it flips, the whole
    // fixpoint restarts with the degraded load rule (at most two rounds).
    let mut stored_secret = false;
    let mut states: Vec<Option<State>>;
    loop {
        states = vec![None; n];
        let mut flipped = false;
        if cfg.entry() < cfg.len() {
            states[cfg.entry() as usize] = Some(entry_state.clone());
        }
        let mut work: Vec<u32> = vec![cfg.entry()];
        let mut succs = Vec::new();
        while let Some(i) = work.pop() {
            if i >= cfg.len() {
                continue;
            }
            let Some(mut s) = states[i as usize].clone() else { continue };
            transfer(cfg.node(i).instr, &mut s, spec, &mut stored_secret, &mut flipped);
            cfg.flow_succs(i, &mut succs);
            for &j in &succs {
                if j >= cfg.len() {
                    continue;
                }
                let slot = &mut states[j as usize];
                let changed = match slot {
                    Some(t) => t.join(&s),
                    None => {
                        *slot = Some(s.clone());
                        true
                    }
                };
                if changed {
                    work.push(j);
                }
            }
        }
        if !flipped {
            break;
        }
    }

    let mut tainted_branches = Vec::new();
    let mut tainted_transfers = Vec::new();
    for i in 0..cfg.len() {
        let Some(s) = &states[i as usize] else { continue };
        match cfg.node(i).instr {
            Instr::Jcc { .. } if s.flags_tainted => tainted_branches.push(i),
            Instr::CallReg { target } if s.tainted(target) => tainted_transfers.push(i),
            _ => {}
        }
    }
    TaintSummary { tainted_branches, tainted_transfers, stored_secret }
}

/// Apply one instruction's def/use effect to the state.
fn transfer(
    instr: Instr,
    s: &mut State,
    spec: &SecretSpec,
    stored_secret: &mut bool,
    flipped: &mut bool,
) {
    let size = |sz: MemSize| match sz {
        MemSize::Byte => 1u64,
        MemSize::Quad => 8,
    };
    match instr {
        Instr::MovImm { dst, imm } => {
            s.set_taint(dst, false);
            s.consts[dst.index()] = Some(imm);
        }
        Instr::Mov { dst, src } => {
            let t = s.tainted(src);
            s.set_taint(dst, t);
            s.consts[dst.index()] = s.consts[src.index()];
        }
        Instr::Load { dst, mem, size: sz } => {
            let addr = mem_addr(&s.consts, mem);
            let t = load_is_tainted(spec, *stored_secret, addr, size(sz));
            s.set_taint(dst, t);
            s.consts[dst.index()] = None;
        }
        Instr::Store { src, mem: _, size: _ } => {
            if s.tainted(src) && !*stored_secret {
                *stored_secret = true;
                *flipped = true;
            }
        }
        Instr::StoreImm { .. } | Instr::LockInc { .. } => {}
        Instr::Add { dst, src }
        | Instr::Sub { dst, src }
        | Instr::Mul { dst, src }
        | Instr::And { dst, src }
        | Instr::Or { dst, src } => {
            let t = s.tainted(dst) || s.tainted(src);
            s.set_taint(dst, t);
            s.consts[dst.index()] = match (s.consts[dst.index()], s.consts[src.index()]) {
                (Some(a), Some(b)) => Some(match instr {
                    Instr::Add { .. } => a.wrapping_add(b),
                    Instr::Sub { .. } => a.wrapping_sub(b),
                    Instr::Mul { .. } => a.wrapping_mul(b),
                    Instr::And { .. } => a & b,
                    _ => a | b,
                }),
                _ => None,
            };
        }
        Instr::Xor { dst, src } => {
            if dst == src {
                // The zeroing idiom: the result is public 0.
                s.set_taint(dst, false);
                s.consts[dst.index()] = Some(0);
            } else {
                let t = s.tainted(dst) || s.tainted(src);
                s.set_taint(dst, t);
                s.consts[dst.index()] = match (s.consts[dst.index()], s.consts[src.index()]) {
                    (Some(a), Some(b)) => Some(a ^ b),
                    _ => None,
                };
            }
        }
        Instr::AddImm { dst, imm } => {
            s.consts[dst.index()] = s.consts[dst.index()].map(|v| v.wrapping_add(imm as u64));
        }
        Instr::ShlImm { dst, amount } => {
            s.consts[dst.index()] = s.consts[dst.index()].map(|v| v.wrapping_shl(amount as u32));
        }
        Instr::ShrImm { dst, amount } => {
            s.consts[dst.index()] = s.consts[dst.index()].map(|v| v.wrapping_shr(amount as u32));
        }
        Instr::Cmp { a, b } => {
            s.flags_tainted = s.tainted(a) || s.tainted(b);
        }
        Instr::CmpImm { a, .. } => {
            s.flags_tainted = s.tainted(a);
        }
        Instr::Rdtsc { dst } => {
            s.set_taint(dst, false);
            s.consts[dst.index()] = None;
        }
        // Control transfers and the remaining no-register-effect
        // instructions (fences, probes, delay, nop, halt) leave the
        // abstract state untouched.
        Instr::Nop
        | Instr::Halt
        | Instr::Jmp { .. }
        | Instr::Jcc { .. }
        | Instr::Call { .. }
        | Instr::CallReg { .. }
        | Instr::Ret
        | Instr::Mfence
        | Instr::Lfence
        | Instr::Clflush { .. }
        | Instr::Clflushopt { .. }
        | Instr::Clwb { .. }
        | Instr::PrefetchT0 { .. }
        | Instr::PrefetchNta { .. }
        | Instr::Delay { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddrRange;
    use smack_uarch::asm::Assembler;

    fn analyze_taint(
        build: impl FnOnce(&mut Assembler),
        entry: u64,
        spec: &SecretSpec,
    ) -> TaintSummary {
        let mut a = Assembler::new(entry);
        build(&mut a);
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p, entry, spec);
        propagate(&cfg, spec)
    }

    #[test]
    fn branch_on_secret_load_is_tainted() {
        let spec =
            SecretSpec { tainted_memory: vec![AddrRange::span(0x9000, 64)], ..SecretSpec::none() };
        let t = analyze_taint(
            |a| {
                a.load_byte(Reg::R6, MemRef::base(Reg::R5)) // unknown base: may be secret
                    .cmp_imm(Reg::R6, 0)
                    .je("skip")
                    .nop()
                    .label("skip")
                    .halt();
            },
            0x100,
            &spec,
        );
        assert_eq!(t.tainted_branches.len(), 1);
        assert!(t.tainted_transfers.is_empty());
    }

    #[test]
    fn load_of_known_public_address_stays_clean() {
        let spec =
            SecretSpec { tainted_memory: vec![AddrRange::span(0x9000, 64)], ..SecretSpec::none() };
        let t = analyze_taint(
            |a| {
                a.mov_imm(Reg::R5, 0x4000) // provably outside the secret range
                    .load_byte(Reg::R6, MemRef::base(Reg::R5))
                    .cmp_imm(Reg::R6, 0)
                    .je("skip")
                    .nop()
                    .label("skip")
                    .halt();
            },
            0x100,
            &spec,
        );
        assert!(t.tainted_branches.is_empty(), "constant propagation resolves the address");
    }

    #[test]
    fn no_declared_secrets_means_no_taint() {
        let t = analyze_taint(
            |a| {
                a.load_byte(Reg::R6, MemRef::base(Reg::R5))
                    .cmp_imm(Reg::R6, 0)
                    .je("skip")
                    .nop()
                    .label("skip")
                    .halt();
            },
            0x100,
            &SecretSpec::none(),
        );
        assert!(t.tainted_branches.is_empty());
    }

    #[test]
    fn taint_flows_through_alu_into_indirect_call() {
        let spec =
            SecretSpec { tainted_memory: vec![AddrRange::span(0x9000, 64)], ..SecretSpec::none() };
        let t = analyze_taint(
            |a| {
                a.load_byte(Reg::R3, MemRef::base(Reg::R5))
                    .shl_imm(Reg::R3, 6)
                    .add_imm(Reg::R3, 0x5000)
                    .call_reg(Reg::R3)
                    .halt();
            },
            0x100,
            &spec,
        );
        assert_eq!(t.tainted_transfers.len(), 1);
    }

    #[test]
    fn storing_a_secret_degrades_all_loads() {
        let spec = SecretSpec { tainted_regs: vec![Reg::R1], ..SecretSpec::none() };
        let t = analyze_taint(
            |a| {
                a.store(Reg::R1, MemRef::base(Reg::R2)) // secret escapes to memory
                    .mov_imm(Reg::R5, 0x4000)
                    .load_byte(Reg::R6, MemRef::base(Reg::R5))
                    .cmp_imm(Reg::R6, 0)
                    .je("skip")
                    .nop()
                    .label("skip")
                    .halt();
            },
            0x100,
            &spec,
        );
        assert!(t.stored_secret);
        assert_eq!(t.tainted_branches.len(), 1, "even a known address may now be secret");
    }

    #[test]
    fn xor_zeroing_clears_taint() {
        let spec = SecretSpec { tainted_regs: vec![Reg::R1], ..SecretSpec::none() };
        let t = analyze_taint(
            |a| {
                a.xor(Reg::R1, Reg::R1).cmp_imm(Reg::R1, 0).je("skip").nop().label("skip").halt();
            },
            0x100,
            &spec,
        );
        assert!(t.tainted_branches.is_empty());
    }
}
