//! Instruction-level control-flow graph over a decoded program.
//!
//! Nodes are the indices of [`smack_uarch::DecodedProgram`] — the analyzer
//! reuses the fall-through/static-target successor indices and cache-line
//! ids the engine's fast path already computes instead of re-deriving them
//! from raw addresses. A virtual *exit* node (index `len()`) absorbs
//! `halt`, returns with an empty call stack, and transfers to unmapped
//! addresses.
//!
//! Dynamic transfers get conservative target sets: `call *%reg` may reach
//! any *harvested candidate* — an immediate operand somewhere in the
//! program that names a decoded pc (the `mov_label`-into-register idiom),
//! or any decoded pc inside a declared [`SecretSpec::indirect_targets`]
//! range; when no candidate is found at all, every node is a candidate.
//! `ret` may resume at the fall-through of any call site. Both are
//! over-approximations, which is exactly what a may-analysis needs.
//!
//! Two successor views coexist:
//! - the **flow view** ([`Cfg::flow_succs`]) follows calls into their
//!   callees and returns to every return site — taint propagation and the
//!   reachable fetch footprint use it;
//! - the **walk view** ([`Cfg::walk_succs`]) steps *over* calls (the
//!   leakage pass adds callee line summaries separately) and ends paths at
//!   `ret` — postdominators and differential arm walks use it, so a
//!   branch's arms are compared within the function that branches.

use smack_uarch::asm::Program;
use smack_uarch::decoded::{DecodedInstr, NO_IDX};
use smack_uarch::isa::Instr;
use smack_uarch::DecodedProgram;

use crate::SecretSpec;

/// The analyzer's view of one program. See the [module docs](self).
pub struct Cfg {
    decoded: DecodedProgram,
    entry: u32,
    /// Candidate node indices for `call *%reg`, sorted and deduplicated.
    dynamic_targets: Vec<u32>,
    /// Fall-through node of every `call`/`call *%reg` site (where a `ret`
    /// may resume), sorted and deduplicated.
    return_sites: Vec<u32>,
}

impl Cfg {
    /// Compile `prog` and derive the graph metadata.
    pub fn build(prog: &Program, entry: u64, spec: &SecretSpec) -> Cfg {
        let decoded = DecodedProgram::compile(prog);
        let n = decoded.len() as u32;
        let entry = decoded.index_of(entry);

        let mut dynamic_targets: Vec<u32> = Vec::new();
        let mut return_sites: Vec<u32> = Vec::new();
        let mut has_callreg = false;
        for i in 0..n {
            let d = decoded.get(i);
            match d.instr {
                // Immediates that name a decoded pc are candidate computed
                // targets (covers the `mov_label` idiom used to feed
                // `call *%reg`).
                Instr::MovImm { imm, .. } => {
                    let idx = decoded.index_of(imm);
                    if idx != NO_IDX {
                        dynamic_targets.push(idx);
                    }
                }
                Instr::AddImm { imm, .. } => {
                    let idx = decoded.index_of(imm as u64);
                    if idx != NO_IDX {
                        dynamic_targets.push(idx);
                    }
                }
                Instr::Call { .. } if d.fall != NO_IDX => {
                    return_sites.push(d.fall);
                }
                Instr::CallReg { .. } => {
                    has_callreg = true;
                    if d.fall != NO_IDX {
                        return_sites.push(d.fall);
                    }
                }
                _ => {}
            }
        }
        for range in &spec.indirect_targets {
            for i in 0..n {
                let pc = decoded.get(i).pc;
                if pc >= range.start && pc < range.end {
                    dynamic_targets.push(i);
                }
            }
        }
        if has_callreg && dynamic_targets.is_empty() {
            // Nothing harvested: assume an indirect call can land anywhere.
            dynamic_targets.extend(0..n);
        }
        dynamic_targets.sort_unstable();
        dynamic_targets.dedup();
        return_sites.sort_unstable();
        return_sites.dedup();

        Cfg { decoded, entry, dynamic_targets, return_sites }
    }

    /// The compiled side table the graph is built over.
    pub fn decoded(&self) -> &DecodedProgram {
        &self.decoded
    }

    /// Number of instruction nodes (the virtual exit is index `len()`).
    pub fn len(&self) -> u32 {
        self.decoded.len() as u32
    }

    /// Whether the program decoded to nothing.
    pub fn is_empty(&self) -> bool {
        self.decoded.is_empty()
    }

    /// The virtual exit node.
    pub fn exit(&self) -> u32 {
        self.len()
    }

    /// Entry node (the exit node when the entry pc is unmapped).
    pub fn entry(&self) -> u32 {
        if self.entry == NO_IDX {
            self.exit()
        } else {
            self.entry
        }
    }

    /// The decoded entry at `idx`.
    pub fn node(&self, idx: u32) -> &DecodedInstr {
        self.decoded.get(idx)
    }

    /// Candidate nodes for `call *%reg`.
    pub fn dynamic_targets(&self) -> &[u32] {
        &self.dynamic_targets
    }

    fn push(&self, out: &mut Vec<u32>, idx: u32) {
        out.push(if idx == NO_IDX { self.exit() } else { idx });
    }

    /// Interprocedural successors of `idx` (flow view): calls enter their
    /// callee, `ret` resumes at every return site.
    pub fn flow_succs(&self, idx: u32, out: &mut Vec<u32>) {
        out.clear();
        if idx >= self.len() {
            return; // exit has no successors
        }
        let d = self.decoded.get(idx);
        match d.instr {
            Instr::Halt => out.push(self.exit()),
            Instr::Jmp { .. } | Instr::Call { .. } => self.push(out, d.target),
            Instr::Jcc { .. } => {
                self.push(out, d.fall);
                self.push(out, d.target);
            }
            Instr::CallReg { .. } => {
                out.extend_from_slice(&self.dynamic_targets);
                if self.dynamic_targets.is_empty() {
                    out.push(self.exit());
                }
            }
            Instr::Ret => {
                out.extend_from_slice(&self.return_sites);
                out.push(self.exit()); // empty call stack halts the thread
            }
            _ => self.push(out, d.fall),
        }
    }

    /// Intraprocedural successors of `idx` (walk view): calls step over to
    /// their return site, `ret` and `halt` end the path.
    pub fn walk_succs(&self, idx: u32, out: &mut Vec<u32>) {
        out.clear();
        if idx >= self.len() {
            return;
        }
        let d = self.decoded.get(idx);
        match d.instr {
            Instr::Halt | Instr::Ret => out.push(self.exit()),
            Instr::Jmp { .. } => self.push(out, d.target),
            Instr::Jcc { .. } => {
                self.push(out, d.fall);
                self.push(out, d.target);
            }
            Instr::Call { .. } | Instr::CallReg { .. } => self.push(out, d.fall),
            _ => self.push(out, d.fall),
        }
    }

    /// Every node reachable from the entry through the flow view
    /// (including the entry itself; the exit node is excluded).
    pub fn reachable(&self) -> Vec<u32> {
        let mut seen = vec![false; self.len() as usize + 1];
        let mut stack = vec![self.entry()];
        let mut succs = Vec::new();
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if seen[i as usize] {
                continue;
            }
            seen[i as usize] = true;
            if i < self.len() {
                out.push(i);
                self.flow_succs(i, &mut succs);
                stack.extend_from_slice(&succs);
            }
        }
        out.sort_unstable();
        out
    }

    /// The static fetch footprint: the line address of every reachable
    /// node, sorted and deduplicated. Over-approximates the fetch-line log
    /// of any execution started at the entry.
    pub fn footprint(&self) -> Vec<u64> {
        let mut lines: Vec<u64> =
            self.reachable().iter().map(|i| self.decoded.get(*i).line).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::asm::Assembler;
    use smack_uarch::isa::Reg;

    fn diamond() -> Program {
        let mut a = Assembler::new(0x1000);
        a.cmp_imm(Reg::R1, 0)
            .je("else_")
            .add_imm(Reg::R2, 1)
            .jmp("join")
            .label("else_")
            .add_imm(Reg::R2, 2)
            .label("join")
            .halt();
        a.assemble().unwrap()
    }

    #[test]
    fn jcc_has_both_arms_as_successors() {
        let p = diamond();
        let cfg = Cfg::build(&p, 0x1000, &SecretSpec::none());
        let je = (0..cfg.len()).find(|i| matches!(cfg.node(*i).instr, Instr::Jcc { .. })).unwrap();
        let mut s = Vec::new();
        cfg.flow_succs(je, &mut s);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|i| *i < cfg.len()));
    }

    #[test]
    fn reachability_covers_both_arms_and_footprint_is_line_granular() {
        let p = diamond();
        let cfg = Cfg::build(&p, 0x1000, &SecretSpec::none());
        assert_eq!(cfg.reachable().len(), cfg.len() as usize, "everything reachable");
        let fp = cfg.footprint();
        assert!(!fp.is_empty());
        assert!(fp.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        assert!(fp.iter().all(|l| l % 64 == 0), "line-aligned");
    }

    #[test]
    fn mov_label_feeds_callreg_candidates() {
        let mut a = Assembler::new(0x2000);
        a.mov_label(Reg::R9, "helper").call_reg(Reg::R9).halt().label("helper").nop().ret();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p, 0x2000, &SecretSpec::none());
        let helper_pc = p.label("helper").unwrap();
        let targets: Vec<u64> = cfg.dynamic_targets().iter().map(|i| cfg.node(*i).pc).collect();
        assert_eq!(targets, vec![helper_pc]);
        // The helper is reachable through the indirect call.
        let reach = cfg.reachable();
        let helper_idx = cfg.decoded().index_of(helper_pc);
        assert!(reach.contains(&helper_idx));
    }

    #[test]
    fn callreg_without_candidates_targets_everything() {
        let mut a = Assembler::new(0x3000);
        a.call_reg(Reg::R3).halt();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p, 0x3000, &SecretSpec::none());
        assert_eq!(cfg.dynamic_targets().len(), cfg.len() as usize);
    }

    #[test]
    fn walk_view_steps_over_calls_and_stops_at_ret() {
        let mut a = Assembler::new(0x4000);
        a.call("helper").halt().label("helper").nop().ret();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p, 0x4000, &SecretSpec::none());
        let call =
            (0..cfg.len()).find(|i| matches!(cfg.node(*i).instr, Instr::Call { .. })).unwrap();
        let ret = (0..cfg.len()).find(|i| matches!(cfg.node(*i).instr, Instr::Ret)).unwrap();
        let mut s = Vec::new();
        cfg.walk_succs(call, &mut s);
        assert_eq!(s, vec![cfg.node(call).fall], "call steps to its return site");
        cfg.walk_succs(ret, &mut s);
        assert_eq!(s, vec![cfg.exit()], "ret ends the walk");
        cfg.flow_succs(call, &mut s);
        assert_eq!(s, vec![cfg.node(call).target], "flow view enters the callee");
    }
}
