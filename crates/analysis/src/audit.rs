//! Static re-derivation of the superblock fusion invariants.
//!
//! The engine's superblock tier retires straight-line runs of fusable
//! instructions in one batch; correctness rests on invariants the decoder
//! establishes at compile time. This lint re-derives them from first
//! principles — directly from each [`Instr`], without trusting
//! [`MicroOp`](smack_uarch::decoded::MicroOp) lowering — and compares
//! against the compiled metadata:
//!
//! - **No control transfer or probe boundary inside a fused run.** Every
//!   instruction inside a run must be a pure register/flags/clock op:
//!   never a branch, call, return, halt, fence, probe
//!   (`Instr::probe_kind()`), memory access or `rdtsc`.
//! - **Runs chain only through adjacent fall-throughs**, and line
//!   segments never span a cache-line boundary.
//! - **The compiled `run_end`/`line_end` tables match the re-derivation**
//!   exactly — a mismatch means the fusion metadata and the instruction
//!   stream disagree (e.g. after a buggy in-place patch).
//! - **SMC patch targets sit on instruction boundaries and at run
//!   heads.** Candidate patch targets are harvested from immediate
//!   operands that point into the program's code lines (the
//!   `mov_imm reg, target; store (reg)` self-modifying idiom): a store
//!   landing mid-instruction would desynchronize decode, and one landing
//!   in the interior of a fused run could invalidate a superblock that
//!   already retired its head.
//! - **Planned patches are length-preserving** ([`audit_patches`]): the
//!   in-place `DecodedProgram::patch` contract.

use smack_uarch::asm::Program;
use smack_uarch::isa::Instr;
use smack_uarch::DecodedProgram;

/// One invariant violation found by the lint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AuditViolation {
    /// A fused run contains an instruction that must terminate fusion
    /// (control transfer, probe, memory access, fence, `rdtsc`, `halt`).
    NonFusableInRun {
        /// Address of the offending instruction.
        pc: u64,
    },
    /// A same-line segment extends across a cache-line boundary.
    RunCrossesLine {
        /// Address of the instruction whose segment leaks past its line.
        pc: u64,
    },
    /// The compiled fusion metadata disagrees with the re-derivation.
    MetadataMismatch {
        /// Address of the instruction with inconsistent metadata.
        pc: u64,
        /// Which table disagreed (`"run_end"` or `"line_end"`).
        what: &'static str,
    },
    /// A harvested SMC patch target points into the middle of an encoded
    /// instruction.
    PatchTargetMidInstruction {
        /// The target address.
        target: u64,
    },
    /// A harvested SMC patch target lands in the interior of a fused run.
    PatchTargetInsideRun {
        /// The target address.
        target: u64,
    },
    /// A planned patch changes the encoded instruction length.
    PatchChangesLength {
        /// The patch site.
        pc: u64,
        /// Old encoded length.
        old_len: u64,
        /// New encoded length.
        new_len: u64,
    },
    /// A planned patch aims at an address with no decoded instruction.
    PatchTargetUnmapped {
        /// The patch site.
        pc: u64,
    },
}

/// Whether `instr` may legally sit *inside* a fused superblock run,
/// re-derived from the instruction alone. Mirrors (and double-checks) the
/// `MicroOp::lower` whitelist: pure register/flags/clock operations only.
fn fusable(instr: &Instr) -> bool {
    if instr.probe_kind().is_some() {
        return false; // probe boundary
    }
    matches!(
        instr,
        Instr::Nop
            | Instr::MovImm { .. }
            | Instr::Mov { .. }
            | Instr::Add { .. }
            | Instr::AddImm { .. }
            | Instr::Sub { .. }
            | Instr::Mul { .. }
            | Instr::And { .. }
            | Instr::Or { .. }
            | Instr::Xor { .. }
            | Instr::ShlImm { .. }
            | Instr::ShrImm { .. }
            | Instr::Cmp { .. }
            | Instr::CmpImm { .. }
            | Instr::Delay { .. }
    )
}

/// Whether a run may chain from entry `i` to `i + 1`: both fusable, and
/// `i` falls through to the adjacent table entry.
fn chains(d: &DecodedProgram, i: u32) -> bool {
    (i as usize) + 1 < d.len()
        && fusable(&d.get(i).instr)
        && fusable(&d.get(i + 1).instr)
        && d.get(i).fall == i + 1
}

/// Run the lint over `prog`. An empty result means every fusion invariant
/// holds for this program.
pub fn audit(prog: &Program) -> Vec<AuditViolation> {
    let d = DecodedProgram::compile(prog);
    let n = d.len() as u32;
    let mut v = Vec::new();

    // Re-derive run/segment ends tail-to-head, exactly like the decoder
    // claims to, but from the raw instructions.
    let mut run_end = vec![0u32; n as usize];
    let mut line_end = vec![0u32; n as usize];
    for i in (0..n).rev() {
        if !fusable(&d.get(i).instr) {
            run_end[i as usize] = i;
            line_end[i as usize] = i;
            continue;
        }
        if chains(&d, i) {
            run_end[i as usize] = run_end[i as usize + 1];
            line_end[i as usize] =
                if d.get(i).line == d.get(i + 1).line { line_end[i as usize + 1] } else { i + 1 };
        } else {
            run_end[i as usize] = i + 1;
            line_end[i as usize] = i + 1;
        }
    }

    for i in 0..n {
        let e = d.get(i);
        // Interior instructions of the *compiled* run must be fusable.
        for j in i..d.run_end(i) {
            if !fusable(&d.get(j).instr) {
                v.push(AuditViolation::NonFusableInRun { pc: d.get(j).pc });
            }
        }
        // Compiled line segments must stay on one cache line.
        for j in i..d.line_end(i) {
            if d.get(j).line != e.line {
                v.push(AuditViolation::RunCrossesLine { pc: d.get(j).pc });
            }
        }
        // And the compiled tables must match the re-derivation.
        if d.run_end(i) != run_end[i as usize] {
            v.push(AuditViolation::MetadataMismatch { pc: e.pc, what: "run_end" });
        }
        if d.line_end(i) != line_end[i as usize] {
            v.push(AuditViolation::MetadataMismatch { pc: e.pc, what: "line_end" });
        }
    }

    // Harvest candidate SMC patch targets: immediates that point into the
    // program's code lines (the self-modifying store idiom materializes
    // its target address with mov_imm/add_imm).
    let code_lines: std::collections::HashSet<u64> = (0..n).map(|i| d.get(i).line).collect();
    let has_code_store = (0..n).any(|i| {
        matches!(
            d.get(i).instr,
            Instr::Store { .. } | Instr::StoreImm { .. } | Instr::LockInc { .. }
        )
    });
    if has_code_store {
        for i in 0..n {
            let imm = match d.get(i).instr {
                Instr::MovImm { imm, .. } => imm,
                Instr::AddImm { imm, .. } => imm as u64,
                _ => continue,
            };
            if !code_lines.contains(&(imm & !63)) {
                continue;
            }
            let idx = d.index_of(imm);
            if idx == smack_uarch::decoded::NO_IDX {
                // Inside a code line but not on an instruction boundary —
                // only a violation if it lands *within* an encoded
                // instruction (gaps between regions are fine).
                let mid = (0..n).any(|j| {
                    let e = d.get(j);
                    imm > e.pc && imm < e.pc + e.len
                });
                if mid {
                    v.push(AuditViolation::PatchTargetMidInstruction { target: imm });
                }
            } else if idx > 0 && d.run_end(idx - 1) > idx {
                v.push(AuditViolation::PatchTargetInsideRun { target: imm });
            }
        }
    }
    v
}

/// Lint a planned set of in-place patches against `prog`: each site must
/// be a decoded instruction and keep its encoded length (the
/// `DecodedProgram::patch` contract), and must not land in the interior
/// of a fused run.
pub fn audit_patches(prog: &Program, patches: &[(u64, Instr)]) -> Vec<AuditViolation> {
    let d = DecodedProgram::compile(prog);
    let mut v = Vec::new();
    for (pc, instr) in patches {
        let idx = d.index_of(*pc);
        if idx == smack_uarch::decoded::NO_IDX {
            v.push(AuditViolation::PatchTargetUnmapped { pc: *pc });
            continue;
        }
        let old = d.get(idx);
        if old.len != instr.len() {
            v.push(AuditViolation::PatchChangesLength {
                pc: *pc,
                old_len: old.len,
                new_len: instr.len(),
            });
        }
        if idx > 0 && d.run_end(idx - 1) > idx {
            v.push(AuditViolation::PatchTargetInsideRun { target: *pc });
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::asm::Assembler;
    use smack_uarch::isa::{MemRef, Reg};

    #[test]
    fn clean_programs_pass() {
        let mut a = Assembler::new(0x1000);
        a.mov_imm(Reg::R0, 0)
            .label("loop")
            .add_imm(Reg::R0, 1)
            .cmp_imm(Reg::R0, 4)
            .jne("loop")
            .clflush(MemRef::base(Reg::R1))
            .halt();
        assert!(audit(&a.assemble().unwrap()).is_empty());
    }

    #[test]
    fn smc_store_to_run_head_is_fine() {
        // The amg idiom: materialize a code address, store to it. The
        // target starts its own run, so the lint stays quiet.
        let mut a = Assembler::new(0x2000);
        a.mov_imm(Reg::R2, 0x2000 + 0x400).store_imm(MemRef::base(Reg::R2), 0x90).halt();
        a.org(0x2000 + 0x400).nop().nop().ret();
        assert!(audit(&a.assemble().unwrap()).is_empty());
    }

    #[test]
    fn smc_store_mid_instruction_is_flagged() {
        // Target one byte into a 5-byte mov_imm: mid-instruction.
        let mut a = Assembler::new(0x3000);
        a.mov_imm(Reg::R2, 0x3000 + 0x401).store_imm(MemRef::base(Reg::R2), 0x90).halt();
        a.org(0x3000 + 0x400).mov_imm(Reg::R0, 7).ret();
        let v = audit(&a.assemble().unwrap());
        assert!(v.iter().any(|x| matches!(
            x,
            AuditViolation::PatchTargetMidInstruction { target } if *target == 0x3401
        )));
    }

    #[test]
    fn smc_store_into_run_interior_is_flagged() {
        // Target the second of three chained ALU ops: run interior.
        let mut a = Assembler::new(0x4000);
        a.mov_imm(Reg::R2, 0).store_imm(MemRef::base(Reg::R2), 1).halt();
        a.org(0x4000 + 0x400)
            .add(Reg::R0, Reg::R1)
            .add(Reg::R0, Reg::R1)
            .add(Reg::R0, Reg::R1)
            .halt();
        // Point the first mov at the middle add (3-byte adds).
        let mid = 0x4000 + 0x400 + 3;
        let mut b = Assembler::new(0x4000);
        b.mov_imm(Reg::R2, mid).store_imm(MemRef::base(Reg::R2), 1).halt();
        b.org(0x4000 + 0x400)
            .add(Reg::R0, Reg::R1)
            .add(Reg::R0, Reg::R1)
            .add(Reg::R0, Reg::R1)
            .halt();
        let v = audit(&b.assemble().unwrap());
        assert!(v.iter().any(|x| matches!(
            x,
            AuditViolation::PatchTargetInsideRun { target } if *target == mid
        )));
    }

    #[test]
    fn planned_patches_checked_for_length_and_mapping() {
        let mut a = Assembler::new(0x5000);
        a.add(Reg::R0, Reg::R1).halt();
        let p = a.assemble().unwrap();
        // add → lfence keeps the 3-byte length: clean.
        assert!(audit_patches(&p, &[(0x5000, Instr::Lfence)]).is_empty());
        // add → nop shrinks the encoding: flagged.
        let v = audit_patches(&p, &[(0x5000, Instr::Nop)]);
        assert!(matches!(v[0], AuditViolation::PatchChangesLength { .. }));
        // Unmapped site: flagged.
        let v = audit_patches(&p, &[(0xdead, Instr::Nop)]);
        assert!(matches!(v[0], AuditViolation::PatchTargetUnmapped { .. }));
    }
}
