//! From tainted transfers to leaky cache lines.
//!
//! For a secret-dependent conditional branch, what the attacker can learn
//! is exactly the *difference* between the instruction lines fetched on
//! the taken path and on the fall-through path, up to the point where the
//! two reconverge. This pass computes, per tainted `jcc`:
//!
//! - the branch's postdominator set over the [walk view](crate::cfg)
//!   (iterative intersection dataflow with a virtual exit — small victim
//!   programs make the O(n²/64) bitset fixpoint a non-issue);
//! - the set of lines reachable from each arm, walking the same view,
//!   *stopping* at any postdominator of the branch (the reconvergence
//!   frontier) and splicing in a whole-callee line summary at every call
//!   site instead of following return edges (which would smear one arm's
//!   walk into the other's through unrelated call sites);
//! - the symmetric difference of the two arm sets — the lines whose fetch
//!   reveals the branch direction.
//!
//! A tainted `call *%reg` leaks which candidate target it jumped to: the
//! lines reachable in exactly one candidate's summary (union minus
//! intersection) are leaky. A single-candidate indirect call leaks
//! nothing.
//!
//! Everything is a may-analysis over-approximation: extra lines can
//! appear in the leaky set (e.g. the driver line holding the guarded
//! call), but a victim with *no* tainted transfer has a provably
//! secret-independent fetch footprint.

use std::collections::HashMap;

use smack_uarch::isa::Instr;

use crate::cfg::Cfg;
use crate::taint::TaintSummary;

/// The leakage verdict inputs derived from one program.
#[derive(Clone, Debug)]
pub struct LeakageSummary {
    /// Cache lines whose fetch depends on the secret (sorted, deduped).
    pub leaky_lines: Vec<u64>,
    /// Program counters of the secret-dependent conditional branches.
    pub tainted_branches: Vec<u64>,
    /// Program counters of the secret-dependent indirect transfers.
    pub tainted_transfers: Vec<u64>,
}

/// Dense bitset over CFG nodes (incl. the virtual exit).
#[derive(Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn empty(n: usize) -> BitSet {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    fn full(n: usize) -> BitSet {
        let mut b = BitSet { words: vec![u64::MAX; n.div_ceil(64)] };
        // Mask the tail so equality checks stay meaningful.
        let tail = n % 64;
        if tail != 0 {
            if let Some(last) = b.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        b
    }

    fn contains(&self, i: u32) -> bool {
        self.words[i as usize / 64] & (1 << (i % 64)) != 0
    }

    fn insert(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }

    fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let v = *a & *b;
            if v != *a {
                *a = v;
                changed = true;
            }
        }
        changed
    }
}

/// Postdominator sets over the walk view: `pdom[v]` contains every node
/// that lies on *all* walk paths from `v` to the exit.
fn postdominators(cfg: &Cfg) -> Vec<BitSet> {
    let n = cfg.len() as usize + 1; // + virtual exit
    let exit = cfg.exit();
    let mut pdom: Vec<BitSet> = (0..n).map(|_| BitSet::full(n)).collect();
    let mut only_exit = BitSet::empty(n);
    only_exit.insert(exit);
    pdom[exit as usize] = only_exit;

    let mut changed = true;
    let mut succs = Vec::new();
    while changed {
        changed = false;
        // Reverse instruction order approximates reverse topological order
        // of the walk view, so most programs converge in a few sweeps.
        for v in (0..cfg.len()).rev() {
            cfg.walk_succs(v, &mut succs);
            let mut acc: Option<BitSet> = None;
            for &s in &succs {
                match &mut acc {
                    None => acc = Some(pdom[s as usize].clone()),
                    Some(a) => {
                        a.intersect_with(&pdom[s as usize]);
                    }
                }
            }
            let mut new = acc.unwrap_or_else(|| BitSet::empty(n));
            new.insert(v);
            if new != pdom[v as usize] {
                pdom[v as usize] = new;
                changed = true;
            }
        }
    }
    pdom
}

/// Memoized whole-callee line summary: every line reachable from
/// `entry_idx` walking intraprocedurally, with nested calls spliced in as
/// their own summaries. Cycles (recursion) are broken by seeding the memo
/// with an empty set.
struct Summaries<'a> {
    cfg: &'a Cfg,
    memo: HashMap<u32, Vec<u64>>,
}

impl<'a> Summaries<'a> {
    fn new(cfg: &'a Cfg) -> Summaries<'a> {
        Summaries { cfg, memo: HashMap::new() }
    }

    fn lines(&mut self, entry_idx: u32) -> Vec<u64> {
        if let Some(cached) = self.memo.get(&entry_idx) {
            return cached.clone();
        }
        self.memo.insert(entry_idx, Vec::new());
        let mut lines = walk_lines(self.cfg, entry_idx, None, self);
        lines.sort_unstable();
        lines.dedup();
        self.memo.insert(entry_idx, lines.clone());
        lines
    }
}

/// Lines fetched walking from `start` (inclusive), stopping at (and
/// excluding) any node in `stops`, splicing callee summaries at call
/// sites.
fn walk_lines(cfg: &Cfg, start: u32, stops: Option<&BitSet>, sums: &mut Summaries) -> Vec<u64> {
    let mut lines = Vec::new();
    let mut seen = vec![false; cfg.len() as usize + 1];
    let mut stack = vec![start];
    let mut succs = Vec::new();
    while let Some(i) = stack.pop() {
        if i >= cfg.len() || seen[i as usize] {
            continue;
        }
        if let Some(stops) = stops {
            if stops.contains(i) {
                continue;
            }
        }
        seen[i as usize] = true;
        let d = cfg.node(i);
        lines.push(d.line);
        match d.instr {
            Instr::Call { .. } if d.target != smack_uarch::decoded::NO_IDX => {
                lines.extend(sums.lines(d.target));
            }
            Instr::CallReg { .. } => {
                for &t in cfg.dynamic_targets() {
                    lines.extend(sums.lines(t));
                }
            }
            _ => {}
        }
        cfg.walk_succs(i, &mut succs);
        stack.extend_from_slice(&succs);
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

fn symmetric_difference(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    out.extend(a.iter().filter(|l| b.binary_search(l).is_err()));
    out.extend(b.iter().filter(|l| a.binary_search(l).is_err()));
    out
}

/// Compute the leaky-line set from the taint classification.
pub fn summarize(cfg: &Cfg, taint: &TaintSummary) -> LeakageSummary {
    let mut leaky: Vec<u64> = Vec::new();
    let mut sums = Summaries::new(cfg);
    let pdom = if taint.tainted_branches.is_empty() { None } else { Some(postdominators(cfg)) };

    for &b in &taint.tainted_branches {
        let d = cfg.node(b);
        // Stop each arm's walk at the branch's postdominators — minus the
        // branch itself, which trivially postdominates nothing useful.
        let mut stops = pdom.as_ref().expect("computed above")[b as usize].clone();
        let mut without_self = BitSet::empty(cfg.len() as usize + 1);
        without_self.insert(b);
        for (w, m) in stops.words.iter_mut().zip(without_self.words.iter()) {
            *w &= !*m;
        }
        let fall = if d.fall == smack_uarch::decoded::NO_IDX { cfg.exit() } else { d.fall };
        let tgt = if d.target == smack_uarch::decoded::NO_IDX { cfg.exit() } else { d.target };
        let a = walk_lines(cfg, fall, Some(&stops), &mut sums);
        let t = walk_lines(cfg, tgt, Some(&stops), &mut sums);
        leaky.extend(symmetric_difference(&a, &t));
    }

    for &c in &taint.tainted_transfers {
        let targets = cfg.dynamic_targets();
        if targets.len() < 2 {
            continue; // one possible target: nothing secret-selective
        }
        let per_target: Vec<Vec<u64>> = targets.iter().map(|t| sums.lines(*t)).collect();
        let mut union: Vec<u64> = per_target.iter().flatten().copied().collect();
        union.sort_unstable();
        union.dedup();
        let shared: Vec<u64> = union
            .iter()
            .copied()
            .filter(|l| per_target.iter().all(|s| s.binary_search(l).is_ok()))
            .collect();
        leaky.extend(union.iter().filter(|l| shared.binary_search(l).is_err()));
        let _ = c;
    }

    leaky.sort_unstable();
    leaky.dedup();
    LeakageSummary {
        leaky_lines: leaky,
        tainted_branches: taint.tainted_branches.iter().map(|i| cfg.node(*i).pc).collect(),
        tainted_transfers: taint.tainted_transfers.iter().map(|i| cfg.node(*i).pc).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::propagate;
    use crate::{AddrRange, SecretSpec};
    use smack_uarch::asm::Assembler;
    use smack_uarch::isa::{MemRef, Reg};
    use smack_uarch::Addr;

    fn summarize_program(
        build: impl FnOnce(&mut Assembler),
        entry: u64,
        spec: &SecretSpec,
    ) -> (LeakageSummary, Cfg) {
        let mut a = Assembler::new(entry);
        build(&mut a);
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p, entry, spec);
        let taint = propagate(&cfg, spec);
        let s = summarize(&cfg, &taint);
        (s, cfg)
    }

    #[test]
    fn guarded_call_leaks_the_callee_lines() {
        // if secret { far_routine() } — the classic square-and-multiply
        // shape; the far routine's line must be leaky.
        let spec =
            SecretSpec { tainted_memory: vec![AddrRange::span(0x9000, 64)], ..SecretSpec::none() };
        let far = 0x1000 + 0x800; // a line of its own
        let (s, _) = summarize_program(
            |a| {
                a.load_byte(Reg::R6, MemRef::base(Reg::R5))
                    .cmp_imm(Reg::R6, 0)
                    .je("skip")
                    .call("far")
                    .label("skip")
                    .halt();
                a.org(far).label("far").nop().ret();
            },
            0x1000,
            &spec,
        );
        assert!(!s.leaky_lines.is_empty());
        assert!(s.leaky_lines.contains(&Addr(far).line().0), "the guarded callee line leaks");
        assert_eq!(s.tainted_branches.len(), 1);
    }

    #[test]
    fn balanced_branch_with_shared_lines_leaks_nothing_extra() {
        // Both arms stay on the same cache line and reconverge: the
        // symmetric difference of the arm walks is empty.
        let spec = SecretSpec { tainted_regs: vec![Reg::R1], ..SecretSpec::none() };
        let (s, _) = summarize_program(
            |a| {
                a.cmp_imm(Reg::R1, 0)
                    .je("else_")
                    .add_imm(Reg::R2, 1)
                    .jmp("join")
                    .label("else_")
                    .add_imm(Reg::R2, 2)
                    .label("join")
                    .halt();
            },
            0x1000,
            &spec,
        );
        assert_eq!(s.tainted_branches.len(), 1, "the branch is secret-dependent");
        assert!(s.leaky_lines.is_empty(), "but no *line* distinguishes the arms");
    }

    #[test]
    fn untainted_program_has_no_leaky_lines() {
        let (s, _) = summarize_program(
            |a| {
                a.load_byte(Reg::R6, MemRef::base(Reg::R5))
                    .cmp_imm(Reg::R6, 0)
                    .je("skip")
                    .call("far")
                    .label("skip")
                    .halt();
                a.org(0x1000 + 0x400).label("far").nop().ret();
            },
            0x1000,
            &SecretSpec::none(),
        );
        assert!(s.leaky_lines.is_empty());
        assert!(s.tainted_branches.is_empty());
    }

    #[test]
    fn tainted_indirect_call_leaks_nonshared_target_lines() {
        // Two candidate targets on distinct lines, selected by a secret.
        let spec = SecretSpec { tainted_regs: vec![Reg::R3], ..SecretSpec::none() };
        let (s, cfg) = summarize_program(
            |a| {
                a.mov_label(Reg::R8, "t0").mov_label(Reg::R9, "t1").call_reg(Reg::R3).halt();
                a.org(0x1000 + 0x440).label("t0").nop().ret();
                a.org(0x1000 + 0x880).label("t1").nop().ret();
            },
            0x1000,
            &spec,
        );
        assert_eq!(cfg.dynamic_targets().len(), 2);
        assert_eq!(s.tainted_transfers.len(), 1);
        assert_eq!(s.leaky_lines.len(), 2, "each candidate's own line leaks");
    }

    #[test]
    fn loops_reconverge_through_postdominators() {
        // The modexp driver shape: a loop whose body conditionally calls a
        // routine. The routine's line must leak; the loop head must not
        // prevent convergence.
        let spec = SecretSpec {
            tainted_memory: vec![AddrRange::span(0x9000, 4096)],
            ..SecretSpec::none()
        };
        let far = 0x2000u64 + 0xc0;
        let (s, _) = summarize_program(
            |a| {
                a.mov_imm(Reg::R4, 8)
                    .label("loop")
                    .cmp_imm(Reg::R4, 0)
                    .je("done")
                    .load_byte(Reg::R6, MemRef::base(Reg::R5))
                    .cmp_imm(Reg::R6, 0)
                    .je("skip")
                    .call("far")
                    .label("skip")
                    .add_imm(Reg::R4, -1)
                    .jmp("loop")
                    .label("done")
                    .halt();
                a.org(far).label("far").nop().ret();
            },
            0x2000,
            &spec,
        );
        assert_eq!(s.tainted_branches.len(), 1);
        assert!(s.leaky_lines.contains(&Addr(far).line().0));
    }
}
