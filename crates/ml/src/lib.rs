//! # smack-ml
//!
//! The small machine-learning toolbox SMaCk uses twice:
//!
//! * Case Study II step 1 fingerprints cryptographic library versions with
//!   a k-nearest-neighbour model over L1i-set activity vectors (k = 3,
//!   Euclidean distance, cross-validated) and step 2 detects the
//!   multiplication set with a binary kNN;
//! * §6.1 trains a benign-vs-attack detector over performance-counter
//!   windows and reports accuracy / F-score / false-positive rate.
//!
//! Nothing here is SMaCk-specific: [`KnnClassifier`], dataset splitting,
//! k-fold cross-validation and the usual classification metrics.

use rand::seq::SliceRandom;
use rand::Rng;

/// One labelled feature vector.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Feature values.
    pub features: Vec<f64>,
    /// Class label.
    pub label: usize,
}

impl Sample {
    /// Create a sample.
    pub fn new(features: Vec<f64>, label: usize) -> Sample {
        Sample { features, label }
    }
}

/// Euclidean distance between two feature vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature dimensionality mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// k-nearest-neighbour classifier with Euclidean distance and majority
/// voting (ties broken by the nearest neighbour among tied classes).
///
/// ```
/// use smack_ml::{KnnClassifier, Sample};
/// let train = vec![
///     Sample::new(vec![0.0, 0.0], 0),
///     Sample::new(vec![0.1, 0.1], 0),
///     Sample::new(vec![5.0, 5.0], 1),
///     Sample::new(vec![5.1, 4.9], 1),
/// ];
/// let knn = KnnClassifier::fit(3, train);
/// assert_eq!(knn.predict(&[0.2, 0.0]), 0);
/// assert_eq!(knn.predict(&[4.9, 5.2]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct KnnClassifier {
    k: usize,
    train: Vec<Sample>,
}

impl KnnClassifier {
    /// Store the training set (kNN is a lazy learner).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the training set is empty.
    pub fn fit(k: usize, train: Vec<Sample>) -> KnnClassifier {
        assert!(k > 0, "k must be positive");
        assert!(!train.is_empty(), "training set must be nonempty");
        KnnClassifier { k, train }
    }

    /// Number of neighbours considered.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Predict the label of a feature vector.
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut dists: Vec<(f64, usize)> =
            self.train.iter().map(|s| (euclidean(&s.features, features), s.label)).collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let k = self.k.min(dists.len());
        let neighbours = &dists[..k];
        let max_label = neighbours.iter().map(|(_, l)| *l).max().expect("nonempty");
        let mut votes = vec![0usize; max_label + 1];
        for (_, l) in neighbours {
            votes[*l] += 1;
        }
        let best = *votes.iter().max().expect("nonempty");
        // Tie break: nearest neighbour whose class has `best` votes.
        neighbours
            .iter()
            .find(|(_, l)| votes[*l] == best)
            .map(|(_, l)| *l)
            .expect("nonempty neighbours")
    }

    /// Accuracy over a labelled test set.
    pub fn accuracy(&self, test: &[Sample]) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let correct = test.iter().filter(|s| self.predict(&s.features) == s.label).count();
        correct as f64 / test.len() as f64
    }
}

/// Shuffle and split a dataset into `(train, test)` with `train_fraction`
/// going to the training set.
///
/// # Panics
///
/// Panics if `train_fraction` is outside `[0, 1]`.
pub fn train_test_split(
    mut samples: Vec<Sample>,
    train_fraction: f64,
    rng: &mut impl Rng,
) -> (Vec<Sample>, Vec<Sample>) {
    assert!((0.0..=1.0).contains(&train_fraction), "fraction out of range");
    samples.shuffle(rng);
    let cut = ((samples.len() as f64) * train_fraction).round() as usize;
    let test = samples.split_off(cut.min(samples.len()));
    (samples, test)
}

/// Mean k-fold cross-validation accuracy of a kNN with `k` neighbours.
///
/// # Panics
///
/// Panics if `folds < 2`.
pub fn cross_validate(samples: &[Sample], folds: usize, k: usize, rng: &mut impl Rng) -> f64 {
    assert!(folds >= 2, "need at least two folds");
    let mut shuffled = samples.to_vec();
    shuffled.shuffle(rng);
    let mut total = 0.0;
    for f in 0..folds {
        let test: Vec<Sample> = shuffled
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds == f)
            .map(|(_, s)| s.clone())
            .collect();
        let train: Vec<Sample> = shuffled
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds != f)
            .map(|(_, s)| s.clone())
            .collect();
        if train.is_empty() || test.is_empty() {
            continue;
        }
        total += KnnClassifier::fit(k, train).accuracy(&test);
    }
    total / folds as f64
}

/// Binary-classification outcome counts (label 1 = positive/attack).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Evaluate a classifier on a binary test set.
    ///
    /// # Panics
    ///
    /// Panics if a label other than 0/1 appears.
    pub fn evaluate(model: &KnnClassifier, test: &[Sample]) -> BinaryConfusion {
        let mut c = BinaryConfusion::default();
        for s in test {
            let pred = model.predict(&s.features);
            match (s.label, pred) {
                (1, 1) => c.tp += 1,
                (0, 1) => c.fp += 1,
                (0, 0) => c.tn += 1,
                (1, 0) => c.fn_ += 1,
                _ => panic!("binary evaluation requires labels 0/1"),
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)`.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall `tp / (tp + fn)`.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// False-positive rate `fp / (fp + tn)`.
    pub fn fpr(&self) -> f64 {
        if self.fp + self.tn == 0 {
            return 0.0;
        }
        self.fp as f64 / (self.fp + self.tn) as f64
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn clusters(rng: &mut SmallRng, n_per: usize, centers: &[(f64, f64)]) -> Vec<Sample> {
        let mut out = Vec::new();
        for (label, (cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                let dx: f64 = rng.gen_range(-0.5..0.5);
                let dy: f64 = rng.gen_range(-0.5..0.5);
                out.push(Sample::new(vec![cx + dx, cy + dy], label));
            }
        }
        out
    }

    #[test]
    fn knn_separates_clusters() {
        let mut rng = SmallRng::seed_from_u64(1);
        let data = clusters(&mut rng, 30, &[(0.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let (train, test) = train_test_split(data, 0.8, &mut rng);
        let knn = KnnClassifier::fit(3, train);
        assert!(knn.accuracy(&test) > 0.95);
    }

    #[test]
    fn cross_validation_high_on_separable_data() {
        let mut rng = SmallRng::seed_from_u64(2);
        let data = clusters(&mut rng, 20, &[(0.0, 0.0), (8.0, 8.0)]);
        let acc = cross_validate(&data, 5, 3, &mut rng);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn k1_memorizes_training_points() {
        let train =
            vec![Sample::new(vec![1.0], 0), Sample::new(vec![2.0], 1), Sample::new(vec![3.0], 0)];
        let knn = KnnClassifier::fit(1, train.clone());
        for s in &train {
            assert_eq!(knn.predict(&s.features), s.label);
        }
    }

    #[test]
    fn binary_metrics_known_values() {
        let c = BinaryConfusion { tp: 8, fp: 2, tn: 88, fn_: 2 };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
        assert!((c.fpr() - 2.0 / 90.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_do_not_divide_by_zero() {
        let c = BinaryConfusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn split_respects_fraction() {
        let mut rng = SmallRng::seed_from_u64(3);
        let data: Vec<Sample> = (0..100).map(|i| Sample::new(vec![i as f64], i % 2)).collect();
        let (train, test) = train_test_split(data, 0.8, &mut rng);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn distance_requires_same_dims() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }
}
