//! The fused probe tier must be invisible to everything built on top of
//! [`Prober`]: measurements, waits, calibration thresholds, and whole
//! covert-channel transmissions must be bit-identical whether probe
//! sequences retire through the fused engine pass or per-step injection.

use smack::{calibrate_with_cold, run_channel, ChannelSpec, Prober};
use smack_uarch::{
    Addr, Machine, MicroArch, NoiseConfig, PerfEvent, Placement, ProbeKind, ThreadId,
};

const T0: ThreadId = ThreadId::T0;
const SCRATCH: Addr = Addr(0x3_0000);

fn machine(fused: bool) -> Machine {
    let mut m = Machine::new(MicroArch::CascadeLake.profile());
    m.set_fused_probes(fused);
    m
}

fn noisy_machine(fused: bool, seed: u64) -> Machine {
    let mut m =
        Machine::with_noise(MicroArch::CascadeLake.profile(), NoiseConfig::realistic(), seed);
    m.set_fused_probes(fused);
    m
}

/// Counter values both configurations must agree on: everything except
/// the fast-path / fallback bookkeeping pair.
fn hw_counters(m: &Machine) -> Vec<(&'static str, u64)> {
    let mut out = Vec::new();
    for tid in [ThreadId::T0, ThreadId::T1] {
        for e in PerfEvent::ALL {
            if !matches!(e, PerfEvent::SimProbeFastPath | PerfEvent::SimProbeFallback) {
                out.push((e.name(), m.counters(tid).read(e)));
            }
        }
    }
    out
}

/// One measurement loop shared by both configurations: every probe class
/// against hot and cold placements, with prime→probe waits in between.
fn measure_all_kinds(m: &mut Machine) -> Vec<(ProbeKind, u64, u64)> {
    // A real routine at the scratch line, so the Execute probe has
    // something to call (and write-class probes hit an instruction line).
    let oracle = smack::OraclePage::build(SCRATCH, 1);
    oracle.install(m);
    let line = oracle.line(0);
    let mut prober = Prober::new(T0);
    m.warm_tlb(T0, line);
    let mut out = Vec::new();
    for kind in ProbeKind::ALL {
        for placement in [Placement::L1i, Placement::L2, Placement::DramOnly] {
            m.place_line(line, placement);
            let t = prober.measure(m, kind, line).expect("CascadeLake supports all classes");
            prober.wait(m, 700).expect("wait");
            out.push((t.kind, t.cycles, m.clock(T0)));
        }
    }
    out
}

#[test]
fn prober_measurements_match_per_step_for_all_kinds() {
    let mut fused = machine(true);
    let mut stepped = machine(false);
    let a = measure_all_kinds(&mut fused);
    let b = measure_all_kinds(&mut stepped);
    assert_eq!(a, b, "probe timings or clocks diverged under fusion");
    assert_eq!(hw_counters(&fused), hw_counters(&stepped));
    // Every class but Execute (whose timed call cannot fuse) took the
    // fast path; the per-step machine never did.
    let fast = fused.counters(T0).read(PerfEvent::SimProbeFastPath);
    assert_eq!(fast, (ProbeKind::ALL.len() as u64 - 1) * 3);
    assert_eq!(stepped.counters(T0).read(PerfEvent::SimProbeFastPath), 0);
}

#[test]
fn prober_measurements_match_under_noise() {
    for seed in [1u64, 42, 0xdead_beef] {
        let mut fused = noisy_machine(true, seed);
        let mut stepped = noisy_machine(false, seed);
        assert_eq!(
            measure_all_kinds(&mut fused),
            measure_all_kinds(&mut stepped),
            "seed {seed} diverged"
        );
        assert_eq!(hw_counters(&fused), hw_counters(&stepped), "seed {seed} counters diverged");
    }
}

#[test]
fn prober_wait_matches_chunked_advance() {
    let mut fused = machine(true);
    let mut stepped = machine(false);
    let mut pf = Prober::new(T0);
    let mut ps = Prober::new(T0);
    for cycles in [0u64, 1, 199, 200, 201, 1_000, 123_457] {
        pf.wait(&mut fused, cycles).unwrap();
        ps.wait(&mut stepped, cycles).unwrap();
        assert_eq!(fused.clock(T0), stepped.clock(T0), "after wait({cycles})");
    }
    assert_eq!(hw_counters(&fused), hw_counters(&stepped));
}

#[test]
fn calibrated_thresholds_unchanged_under_fusion() {
    for cold in [Placement::L2, Placement::DramOnly] {
        for kind in ProbeKind::ALL {
            let a = calibrate_with_cold(&mut machine(true), T0, kind, SCRATCH, 16, cold).unwrap();
            let b = calibrate_with_cold(&mut machine(false), T0, kind, SCRATCH, 16, cold).unwrap();
            assert_eq!(a, b, "{kind} calibration diverged with cold={cold:?}");
        }
    }
}

#[test]
fn covert_channel_reports_identical_under_fusion() {
    let payload: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
    for spec in
        [ChannelSpec::prime_probe(ProbeKind::Store), ChannelSpec::flush_reload(ProbeKind::Flush)]
    {
        let mut fused = machine(true);
        let mut stepped = machine(false);
        let a = run_channel(&mut fused, &spec, &payload, true).unwrap();
        let b = run_channel(&mut stepped, &spec, &payload, true).unwrap();
        assert_eq!(a, b, "{} diverged under fusion", spec.name());
        assert!(
            fused.counters(T0).read(PerfEvent::SimProbeFastPath) > 0,
            "{}: channel never took the fast path",
            spec.name()
        );
    }
}
