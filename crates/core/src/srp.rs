//! Case Study III: single-trace attack on OpenSSL's SRP server key
//! (paper §5.3, Figure 6, Table 2).
//!
//! `SRP_Calc_server_key` exponentiates with the per-login ephemeral secret
//! `b` through the non-constant-time sliding-window `BN_mod_exp_mont`, so
//! the attacker gets exactly **one** trace per key. The attacker monitors
//! the multiply routine's L1i set and measures the run of squares between
//! consecutive multiplies; each run length is one of the paper's seven
//! patterns (`0`, `1`, `11`, `1X1`, …, `1XXXX1`). Larger groups mean
//! quadratically slower squares, i.e. more samples per square and a
//! cleaner trace — which is why the paper's leakage *rises* with group
//! size (65% → 90%).
//!
//! The sampler is pluggable (a closure) so the same harness runs the
//! SMC-based Prime+iStore attack and the Mastik-style classic Prime+Probe
//! baseline for the Table 2 comparison.

use smack_crypto::modexp::SlidingWindowSchedule;
use smack_crypto::{Bignum, WindowSizing};
use smack_uarch::{Machine, MicroArch, NoiseConfig, ProbeKind, ThreadId};
use smack_victims::modexp::{ModexpAlgorithm, ModexpVictim, ModexpVictimBuilder};

use crate::calibrate::{calibrate, CalibratedProbe};
use crate::oracle::EvictionSet;
use crate::probe::Prober;
use crate::session::Session;

const ATTACKER: ThreadId = ThreadId::T0;
const VICTIM: ThreadId = ThreadId::T1;
const EVSET_BASE: u64 = 0x0a20_0000;
const SCRATCH: u64 = 0x0d20_0000;

/// SRP attack configuration.
#[derive(Copy, Clone, Debug)]
pub struct SrpAttackConfig {
    /// SMC probe class (the paper uses Prime+iStore).
    pub kind: ProbeKind,
    /// Wait between prime and probe.
    pub wait_cycles: u64,
    /// τ_w jitter amplitude: the trace waits `wait_cycles ± wait_jitter`
    /// cycles, drawn deterministically from the machine seed (see
    /// [`crate::probe::jittered_wait`]). Zero keeps the historical fixed
    /// exposure window.
    pub wait_jitter: u64,
    /// How many LRU-first ways to probe per round.
    pub probe_ways: usize,
    /// Noise model.
    pub noise: NoiseConfig,
    /// SRP group size in bits.
    pub group_bits: usize,
}

impl SrpAttackConfig {
    /// Paper-like defaults for a group size. The prime→probe wait is tuned
    /// per group size (as §5.3 tunes its empty-loop length to the target).
    pub fn new(group_bits: usize) -> SrpAttackConfig {
        let wait_cycles = match group_bits {
            0..=1024 => 600,
            1025..=2048 => 300,
            2049..=4096 => 600,
            _ => 300,
        };
        SrpAttackConfig {
            kind: ProbeKind::Store,
            wait_cycles,
            wait_jitter: 0,
            probe_ways: 1,
            noise: NoiseConfig::realistic(),
            group_bits,
        }
    }
}

/// Build the sliding-window victim for a group size and exponent width.
///
/// OpenSSL sizes the window by the *exponent's* bit length, while the
/// per-operation cost scales with the *group* (modulus) size.
pub fn build_victim(group_bits: usize, exp_bits: usize) -> ModexpVictim {
    let window = WindowSizing::for_exponent_bits(exp_bits) as u64;
    let mut b = ModexpVictimBuilder::new(ModexpAlgorithm::SlidingWindow { window });
    b.operand_bits(group_bits);
    b.build()
}

/// Collect activity samples `(attacker_clock, active)` for one run of the
/// victim computing with secret exponent `b`, using a caller-supplied
/// sampler (one prime/wait/probe round per call).
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn collect_events<F>(
    machine: &mut Machine,
    victim: &ModexpVictim,
    b: &Bignum,
    mut sample: F,
    max_samples: usize,
) -> Result<Vec<(u64, bool)>, String>
where
    F: FnMut(&mut Machine) -> Result<bool, String>,
{
    victim.start(machine, VICTIM, b);
    let mut out = Vec::new();
    while machine.state(VICTIM) == smack_uarch::ThreadState::Running && out.len() < max_samples {
        let at = machine.clock(ATTACKER);
        let active = sample(machine)?;
        out.push((at, active));
    }
    Ok(out)
}

/// The standard SMC sampler: installs an eviction set over the victim's
/// multiply set and returns a closure running one prime → τ_w → probe
/// round.
///
/// # Errors
///
/// Returns a message when setup fails (e.g. unsupported probe class).
pub fn smc_sampler(
    machine: &mut Machine,
    victim: &ModexpVictim,
    cfg: &SrpAttackConfig,
) -> Result<impl FnMut(&mut Machine) -> Result<bool, String>, String> {
    smc_sampler_inner(machine, victim, cfg, None, 0)
}

fn smc_sampler_inner(
    machine: &mut Machine,
    victim: &ModexpVictim,
    cfg: &SrpAttackConfig,
    cal_override: Option<CalibratedProbe>,
    seed: u64,
) -> Result<impl FnMut(&mut Machine) -> Result<bool, String>, String> {
    machine.set_noise(cfg.noise);
    machine.load_program(&victim.program);
    let ev = EvictionSet::for_machine(machine, EVSET_BASE, victim.mul_set);
    ev.install(machine);
    for w in ev.ways() {
        machine.warm_tlb(ATTACKER, *w);
    }
    let cal = match cal_override {
        Some(cal) => cal,
        None => calibrate(machine, ATTACKER, cfg.kind, smack_uarch::Addr(SCRATCH), 12)
            .map_err(|e| e.to_string())?,
    };
    let kind = cfg.kind;
    let wait = crate::probe::jittered_wait(cfg.wait_cycles, cfg.wait_jitter, seed);
    let ways = cfg.probe_ways;
    let mut prober = Prober::new(ATTACKER);
    Ok(move |m: &mut Machine| -> Result<bool, String> {
        ev.prime(m, &mut prober).map_err(|e| e.to_string())?;
        prober.wait(m, wait).map_err(|e| e.to_string())?;
        let timings = ev.probe_first(m, &mut prober, kind, ways).map_err(|e| e.to_string())?;
        Ok(timings.iter().any(|t| !cal.is_hit(*t)))
    })
}

/// Multiply-cluster start times: bursts are clustered exactly as in
/// [`crate::decode`] (the per-multiply refetch doublet merges away), and
/// each cluster's first sample time is reported — the Figure 6 x-axis.
pub fn event_times(samples: &[(u64, bool)]) -> Vec<u64> {
    let actives: Vec<bool> = samples.iter().map(|(_, a)| *a).collect();
    let Some((bursts, _)) = crate::decode::extract_bursts(&actives) else {
        return Vec::new();
    };
    bursts.iter().map(|b| samples[b.first].0).collect()
}

/// Estimate the per-gap square-run lengths `Ŝ_j` from the raw samples.
///
/// Each multiply is one activity burst (see [`crate::decode`]); between
/// consecutive multiplies the victim runs one multiply plus the span's
/// squares, so `Ŝ = round(start_gap / unit) - 1`.
pub fn measured_square_runs(samples: &[(u64, bool)]) -> Vec<u32> {
    let actives: Vec<bool> = samples.iter().map(|(_, a)| *a).collect();
    let Some((bursts, unit)) = crate::decode::extract_bursts(&actives) else {
        return Vec::new();
    };
    crate::decode::ops_between_bursts(&bursts, unit)
        .into_iter()
        .map(|ops| (ops - 1).max(1))
        .collect()
}

/// Ground-truth square-run structure between consecutive multiplies.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TruthSpan {
    /// Squares executed between the previous multiply and this one
    /// (zero-bit squares plus the window's squares).
    pub squares: u32,
    /// Exponent bits covered by this span.
    pub bits: u32,
    /// How many of those bits are recoverable (zeros + window endpoints).
    pub known_bits: u32,
}

/// Walk a sliding-window schedule into per-multiply [`TruthSpan`]s
/// (excluding the first window, which executes no squares).
pub fn truth_spans(schedule: &SlidingWindowSchedule) -> Vec<TruthSpan> {
    let mut spans = Vec::new();
    let mut squares = 0u32;
    let mut bits = 0u32;
    let mut known = 0u32;
    let mut seen_first_window = false;
    for step in &schedule.steps {
        match step.wvalue {
            None => {
                // Lone zero bit: one square (once started), fully known.
                squares += step.squares;
                bits += 1;
                known += 1;
            }
            Some(_) => {
                let w = step.bits;
                bits += w;
                known += if w == 1 { 1 } else { 2 };
                squares += step.squares;
                if seen_first_window {
                    spans.push(TruthSpan { squares, bits, known_bits: known });
                }
                seen_first_window = true;
                squares = 0;
                bits = 0;
                known = 0;
            }
        }
    }
    // An even exponent ends in lone zero bits after the last window: their
    // squares run until the exponentiation returns, so they form one final
    // (fully known) span. Without this the trailing bits vanish from the
    // ground truth and spans no longer cover the exponent.
    if seen_first_window && bits > 0 {
        spans.push(TruthSpan { squares, bits, known_bits: known });
    }
    spans
}

/// Leakage rate: the fraction of *recoverable* bits lying in spans whose
/// square-run length was measured exactly (the attacker recovers a span's
/// zeros and window endpoints if and only if it times the run correctly).
///
/// Measured and true span sequences are aligned with a weighted
/// longest-common-subsequence, so a missed or spurious multiply event
/// costs only its own span rather than shifting every later span out of
/// credit — the standard alignment used when evaluating partial key
/// recovery.
pub fn leakage_rate(measured: &[u32], truth: &[TruthSpan]) -> f64 {
    let total: u32 = truth.iter().map(|s| s.known_bits).sum();
    if total == 0 {
        return 0.0;
    }
    // dp[i][j] = best recovered known-bits using measured[..i], truth[..j].
    let n = measured.len();
    let m = truth.len();
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            let mut best = dp[i - 1][j].max(dp[i][j - 1]);
            if measured[i - 1] == truth[j - 1].squares {
                best = best.max(dp[i - 1][j - 1] + truth[j - 1].known_bits);
            }
            dp[i][j] = best;
        }
    }
    let recall = dp[n][m] as f64 / total as f64;
    // Spurious events make the alignment cherry-pick: discount traces that
    // report more multiply events than the schedule contains (a
    // precision-style correction; a perfect trace is unaffected).
    let precision_factor = if n > m { m as f64 / n as f64 } else { 1.0 };
    recall * precision_factor
}

/// Outcome of one single-trace SRP attack.
#[derive(Clone, Debug)]
pub struct SrpAttackOutcome {
    /// Leakage rate over recoverable bits.
    pub leakage: f64,
    /// Number of multiply events observed.
    pub events: usize,
    /// Number of multiply events in the ground truth.
    pub truth_events: usize,
    /// Raw samples (for Figure 6 rendering).
    pub samples: Vec<(u64, bool)>,
}

/// Run the full single-trace attack with the SMC sampler, building (and
/// calibrating on) a fresh machine — the standalone path; session-driven
/// harnesses use [`single_trace_attack_in`].
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn single_trace_attack(
    arch: MicroArch,
    b: &Bignum,
    cfg: &SrpAttackConfig,
    seed: u64,
) -> Result<SrpAttackOutcome, String> {
    let mut machine = Machine::with_noise(arch.profile(), cfg.noise, seed);
    single_trace_attack_on(&mut machine, b, cfg, None, seed)
}

/// Run the full single-trace attack inside a [`Session`]: the machine
/// comes from the pool (in its cold start state) and the probe threshold
/// from the calibration cache. The session's noise model should match
/// `cfg.noise`.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn single_trace_attack_in(
    session: &mut Session<'_>,
    b: &Bignum,
    cfg: &SrpAttackConfig,
) -> Result<SrpAttackOutcome, String> {
    session.require_noise(cfg.noise)?;
    let cal =
        session.calibrated(cfg.kind, smack_uarch::Placement::L2).map_err(|e| e.to_string())?;
    let seed = session.scenario().seed();
    single_trace_attack_on(session.machine(), b, cfg, Some(cal), seed)
}

fn single_trace_attack_on(
    machine: &mut Machine,
    b: &Bignum,
    cfg: &SrpAttackConfig,
    cal_override: Option<CalibratedProbe>,
    seed: u64,
) -> Result<SrpAttackOutcome, String> {
    let victim = build_victim(cfg.group_bits, b.bit_len());
    let sampler = smc_sampler_inner(machine, &victim, cfg, cal_override, seed)?;
    let max_samples = cfg.group_bits * 60 + 10_000;
    let samples = collect_events(machine, &victim, b, sampler, max_samples)?;
    let events = event_times(&samples);
    let measured = measured_square_runs(&samples);
    let schedule = smack_crypto::modexp::sliding_window_schedule(b);
    let truth = truth_spans(&schedule);
    Ok(SrpAttackOutcome {
        leakage: leakage_rate(&measured, &truth),
        events: events.len(),
        truth_events: truth.len() + 1,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smack_crypto::modexp::sliding_window_schedule;

    #[test]
    fn truth_spans_cover_the_exponent() {
        let mut rng = SmallRng::seed_from_u64(41);
        let b = Bignum::random_bits(&mut rng, 512);
        let schedule = sliding_window_schedule(&b);
        let spans = truth_spans(&schedule);
        // Spans plus the first window cover all bits.
        let span_bits: u32 = spans.iter().map(|s| s.bits).sum();
        let first_window_bits =
            schedule.steps.iter().find(|s| s.wvalue.is_some()).expect("has a window").bits;
        assert_eq!(span_bits + first_window_bits, b.bit_len() as u32);
        // Every span's squares equal its bit count (one square per bit).
        for s in &spans {
            assert_eq!(s.squares, s.bits);
            assert!(s.known_bits <= s.bits);
        }
    }

    #[test]
    fn perfect_measurement_gives_full_leakage() {
        let mut rng = SmallRng::seed_from_u64(42);
        let b = Bignum::random_bits(&mut rng, 256);
        let truth = truth_spans(&sliding_window_schedule(&b));
        let perfect: Vec<u32> = truth.iter().map(|s| s.squares).collect();
        assert!((leakage_rate(&perfect, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_errors_reduce_leakage() {
        let mut rng = SmallRng::seed_from_u64(43);
        let b = Bignum::random_bits(&mut rng, 256);
        let truth = truth_spans(&sliding_window_schedule(&b));
        let mut off: Vec<u32> = truth.iter().map(|s| s.squares).collect();
        for v in off.iter_mut().step_by(2) {
            *v += 1;
        }
        let rate = leakage_rate(&off, &truth);
        assert!(rate < 0.7, "half-wrong measurement: {rate}");
    }

    #[test]
    fn square_run_estimation_from_synthetic_samples() {
        // Unit = 4 samples; each multiply is a 4-sample activity burst
        // starting at ops 0, 4 and 9: start gaps of 4 and 5 operations,
        // i.e. square runs of 3 and 4.
        let mut actives = [false; 48];
        for burst_start in [0usize, 16, 36] {
            for s in 0..4 {
                actives[burst_start + s] = true;
            }
        }
        let samples: Vec<(u64, bool)> =
            actives.iter().enumerate().map(|(i, a)| (i as u64 * 100, *a)).collect();
        let runs = measured_square_runs(&samples);
        assert_eq!(runs, vec![3, 4]);
    }

    #[test]
    fn single_trace_attack_on_small_group() {
        let mut rng = SmallRng::seed_from_u64(44);
        // A 4096-bit group gives comfortable per-square resolution; the
        // attack should catch a solid majority of the recoverable bits
        // (the paper reports 83% at this size).
        let b = Bignum::random_bits(&mut rng, 160);
        let cfg = SrpAttackConfig { noise: NoiseConfig::quiet(), ..SrpAttackConfig::new(4096) };
        let out = single_trace_attack(MicroArch::TigerLake, &b, &cfg, 3).expect("attack runs");
        assert!(out.leakage > 0.5, "leakage {}", out.leakage);
        assert!(out.events > 10);
    }
}
