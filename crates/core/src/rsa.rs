//! Case Study II: RSA key recovery with Prime+iProbe (paper §5.2,
//! Figures 4 and 5).
//!
//! The victim runs a Libgcrypt-1.5.1-style binary square-and-multiply
//! decryption on the sibling thread; squares and multiplies call routines
//! in *different* L1i sets. The attacker owns an eviction set over the
//! multiply set and loops prime → wait(τ_w) → SMC-probe. A multiplication
//! evicts one attacker way, which then probes *without* a machine-clear
//! conflict — a low timing in an otherwise-high probe round.
//!
//! Decoding rides on the schedule structure: every exponent bit costs one
//! square, and every set bit adds one multiply, so the number of idle
//! samples between consecutive multiply events encodes the run of zero
//! bits in between (the paper's "three samples for `11`, plus two per `0`"
//! observation). A missed or spurious event perturbs decoded bits only
//! *locally* (the run lengths re-synchronize), which is what makes
//! majority voting across a handful of traces effective (Figure 5).

use smack_crypto::Bignum;
use smack_uarch::{Machine, MicroArch, NoiseConfig, ProbeKind, ThreadId};
use smack_victims::modexp::{ModexpAlgorithm, ModexpVictim, ModexpVictimBuilder};

use crate::calibrate::calibrate;
use crate::oracle::EvictionSet;
use crate::probe::Prober;

const ATTACKER: ThreadId = ThreadId::T0;
const VICTIM: ThreadId = ThreadId::T1;
const EVSET_BASE: u64 = 0x0a10_0000;
const SCRATCH: u64 = 0x0d10_0000;

/// Attack configuration.
#[derive(Copy, Clone, Debug)]
pub struct RsaAttackConfig {
    /// SMC probe class (the paper evaluates Flush, Store, Lock and Clwb).
    pub kind: ProbeKind,
    /// Wait between prime and probe (the paper's ~700-iteration loop).
    pub wait_cycles: u64,
    /// How many LRU-first ways to probe per round (probing fewer ways
    /// shortens the sample period; LRU replacement makes the first primed
    /// ways the eviction victims).
    pub probe_ways: usize,
    /// Noise model for the run.
    pub noise: NoiseConfig,
    /// RSA modulus size in bits (cost model for the victim's routines).
    pub operand_bits: usize,
}

impl RsaAttackConfig {
    /// Paper-like defaults for a probe class.
    pub fn new(kind: ProbeKind) -> RsaAttackConfig {
        RsaAttackConfig {
            kind,
            wait_cycles: 100,
            probe_ways: 1,
            noise: NoiseConfig::realistic(),
            operand_bits: 2048,
        }
    }
}

/// One attacker sample.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ActivitySample {
    /// Attacker clock at the start of the sample.
    pub at: u64,
    /// Lowest per-way probe timing in the round (the Figure 4 y-axis).
    pub min_timing: u64,
    /// Whether a victim fetch evicted one of the attacker's ways.
    pub active: bool,
}

/// A collected trace plus metadata.
#[derive(Clone, Debug)]
pub struct RsaTrace {
    /// Samples in time order.
    pub samples: Vec<ActivitySample>,
    /// Victim cycles the decryption took under attack.
    pub victim_cycles: u64,
}

/// Build the standard victim for this attack.
pub fn build_victim(cfg: &RsaAttackConfig) -> ModexpVictim {
    let mut b = ModexpVictimBuilder::new(ModexpAlgorithm::BinaryLtr);
    b.operand_bits(cfg.operand_bits);
    b.build()
}

/// Collect one trace of the victim decrypting with exponent `exp`.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn collect_trace(
    arch: MicroArch,
    victim: &ModexpVictim,
    exp: &Bignum,
    cfg: &RsaAttackConfig,
    seed: u64,
) -> Result<RsaTrace, String> {
    let mut m = Machine::with_noise(arch.profile(), cfg.noise, seed);
    m.load_program(&victim.program);
    let ev = EvictionSet::for_machine(&m, EVSET_BASE, victim.mul_set);
    ev.install(&mut m);
    for w in ev.ways() {
        m.warm_tlb(ATTACKER, *w);
    }
    let cal = calibrate(&mut m, ATTACKER, cfg.kind, smack_uarch::Addr(SCRATCH), 12)
        .map_err(|e| e.to_string())?;
    let mut prober = Prober::new(ATTACKER);

    // Stagger the attacker's phase: on real hardware consecutive traces
    // never align with the victim identically, and the decoder's rounding
    // benefits from that diversity during majority voting.
    m.advance(ATTACKER, seed % 997).map_err(|e| e.to_string())?;
    victim.start(&mut m, VICTIM, exp);
    let victim_start = m.clock(VICTIM);
    let mut samples = Vec::new();
    let max_samples = exp.bit_len() * 40 + 4_000;
    while m.state(VICTIM) == smack_uarch::ThreadState::Running && samples.len() < max_samples {
        let at = m.clock(ATTACKER);
        ev.prime(&mut m, &mut prober).map_err(|e| e.to_string())?;
        prober.wait(&mut m, cfg.wait_cycles).map_err(|e| e.to_string())?;
        let timings = ev
            .probe_first(&mut m, &mut prober, cfg.kind, cfg.probe_ways)
            .map_err(|e| e.to_string())?;
        let active = timings.iter().any(|t| !cal.is_hit(*t));
        let min_timing = *timings.iter().min().expect("nonempty ways");
        samples.push(ActivitySample { at, min_timing, active });
    }
    let victim_cycles = m.clock(VICTIM) - victim_start;
    Ok(RsaTrace { samples, victim_cycles })
}

/// Raw multiply-event sample indices (burst starts — one burst per
/// multiplication; see [`crate::decode`]).
pub fn events_from_samples(samples: &[ActivitySample]) -> Vec<usize> {
    let actives: Vec<bool> = samples.iter().map(|s| s.active).collect();
    crate::decode::burst_starts(&actives)
}

/// Decode a trace into exponent bits (MSB-first).
///
/// Each multiplication is one activity burst (the victim's `mul_n` keeps
/// executing its line for the whole operation — see [`crate::decode`]).
/// Between two set bits with `z` zero bits in between, the victim runs
/// one multiply plus `z + 1` squares, so consecutive burst starts are
/// `z + 2` operations apart: `zeros = round(gap / unit) - 2`.
pub fn decode_trace(trace: &RsaTrace, nbits: usize) -> Vec<bool> {
    let actives: Vec<bool> = samples_to_actives(&trace.samples);
    let Some((bursts, unit)) = crate::decode::extract_bursts(&actives) else {
        return vec![false; nbits];
    };
    let mut bits = Vec::with_capacity(nbits);
    bits.push(true); // the MSB is always set and always multiplies
    for ops in crate::decode::ops_between_bursts(&bursts, unit) {
        let zeros = (ops as usize).saturating_sub(2);
        bits.extend(std::iter::repeat_n(false, zeros.min(nbits)));
        bits.push(true);
    }
    bits.truncate(nbits);
    while bits.len() < nbits {
        bits.push(false);
    }
    bits
}

fn samples_to_actives(samples: &[ActivitySample]) -> Vec<bool> {
    samples.iter().map(|s| s.active).collect()
}

/// Fraction of `truth`'s bits (MSB-first) matching `decoded`.
pub fn score_bits(decoded: &[bool], truth: &Bignum) -> f64 {
    let nbits = truth.bit_len();
    if nbits == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..nbits {
        let truth_bit = truth.bit(nbits - 1 - i); // MSB-first
        if decoded.get(i).copied().unwrap_or(false) == truth_bit {
            correct += 1;
        }
    }
    correct as f64 / nbits as f64
}

/// Alignment-tolerant recovery score: the decoded and true bit strings are
/// compared as run-length sequences under a longest-common-subsequence
/// alignment, so a single ±1 error in one zero-run costs only that run
/// instead of desynchronizing every later position (how partial key
/// recovery is scored in practice — a solver consumes runs, not absolute
/// positions). Excess decoded runs are discounted precision-style.
pub fn score_bits_aligned(decoded: &[bool], truth: &Bignum) -> f64 {
    let nbits = truth.bit_len();
    if nbits == 0 {
        return 0.0;
    }
    let truth_bits: Vec<bool> = (0..nbits).map(|i| truth.bit(nbits - 1 - i)).collect();
    let d_runs = to_runs(decoded);
    let t_runs = to_runs(&truth_bits);
    if t_runs.is_empty() {
        return 0.0;
    }
    // Weighted LCS: aligned runs of the same alternation parity credit the
    // bits they share. A run decoded one too long/short still recovered
    // the overlapping bits, so near-misses earn `min(d, t)`.
    let n = d_runs.len();
    let m = t_runs.len();
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            let mut best = dp[i - 1][j].max(dp[i][j - 1]);
            // Parity encodes ones/zeros alternation (runs start with ones).
            if i % 2 == j % 2 && d_runs[i - 1].abs_diff(t_runs[j - 1]) <= 1 {
                best = best.max(dp[i - 1][j - 1] + d_runs[i - 1].min(t_runs[j - 1]));
            }
            dp[i][j] = best;
        }
    }
    let recall = dp[n][m] as f64 / nbits as f64;
    let precision_factor = if n > m { m as f64 / n as f64 } else { 1.0 };
    recall * precision_factor
}

/// Majority-vote combination of several decoded traces.
///
/// Bit errors in a single trace are mostly ±1 errors in individual
/// zero-run lengths, which *shift* all later positions — so positional
/// voting alone degrades after the first disagreement. Instead, traces are
/// combined at the zero-run level: among traces whose run structure
/// matches the modal run count, each run length is the per-index median.
/// When no quorum of same-structure traces exists, positional voting is
/// the fallback.
pub fn majority_vote(decodes: &[Vec<bool>], nbits: usize) -> Vec<bool> {
    if decodes.len() >= 3 {
        if let Some(bits) = run_median_vote(decodes, nbits) {
            return bits;
        }
    }
    (0..nbits)
        .map(|i| {
            let ones = decodes.iter().filter(|d| d.get(i).copied().unwrap_or(false)).count();
            2 * ones > decodes.len()
        })
        .collect()
}

/// Alternating run lengths starting with the MSB's run of ones:
/// `[ones, zeros, ones, zeros, ...]`.
fn to_runs(bits: &[bool]) -> Vec<u32> {
    let mut runs = Vec::new();
    let mut current = match bits.first() {
        Some(true) => true,
        _ => return runs,
    };
    let mut len = 0u32;
    for b in bits {
        if *b == current {
            len += 1;
        } else {
            runs.push(len);
            current = *b;
            len = 1;
        }
    }
    runs.push(len);
    runs
}

fn run_median_vote(decodes: &[Vec<bool>], nbits: usize) -> Option<Vec<bool>> {
    let runs: Vec<Vec<u32>> = decodes.iter().map(|d| to_runs(d)).collect();
    let mut counts = std::collections::HashMap::new();
    for r in &runs {
        *counts.entry(r.len()).or_insert(0usize) += 1;
    }
    let (modal_len, quorum) = counts.into_iter().max_by_key(|(len, c)| (*c, *len))?;
    if quorum < decodes.len().div_ceil(2) || modal_len == 0 {
        return None;
    }
    let cohort: Vec<&Vec<u32>> = runs.iter().filter(|r| r.len() == modal_len).collect();
    let mut voted = Vec::with_capacity(modal_len);
    for i in 0..modal_len {
        let mut vals: Vec<u32> = cohort.iter().map(|r| r[i]).collect();
        vals.sort_unstable();
        voted.push(vals[vals.len() / 2]);
    }
    // Rebuild bits: runs alternate ones/zeros starting with ones.
    let mut bits = Vec::with_capacity(nbits);
    let mut ones = true;
    for len in voted {
        for _ in 0..len {
            bits.push(ones);
        }
        ones = !ones;
    }
    bits.truncate(nbits);
    while bits.len() < nbits {
        bits.push(false);
    }
    Some(bits)
}

/// Figure 5: collect traces one by one (distinct noise seeds) until the
/// majority-vote recovery reaches `target` (e.g. 0.70), up to `max_traces`.
/// Returns `(traces_used, per-count recovery rates)`; `traces_used` is
/// `None` if the target was never reached.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn traces_needed(
    arch: MicroArch,
    exp: &Bignum,
    cfg: &RsaAttackConfig,
    target: f64,
    max_traces: usize,
) -> Result<(Option<usize>, Vec<f64>), String> {
    let victim = build_victim(cfg);
    let mut decodes = Vec::new();
    let mut rates = Vec::new();
    for t in 0..max_traces {
        let trace = collect_trace(arch, &victim, exp, cfg, 1000 + t as u64)?;
        decodes.push(decode_trace(&trace, exp.bit_len()));
        let combined = majority_vote(&decodes, exp.bit_len());
        let rate = score_bits(&combined, exp);
        rates.push(rate);
        if rate >= target {
            return Ok((Some(t + 1), rates));
        }
    }
    Ok((None, rates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quiet_cfg(kind: ProbeKind) -> RsaAttackConfig {
        RsaAttackConfig {
            kind,
            wait_cycles: 100,
            probe_ways: 1,
            noise: NoiseConfig::quiet(),
            operand_bits: 2048,
        }
    }

    #[test]
    fn single_trace_recovers_paper_level_bits() {
        // The paper's Figure 5 reports ~63% single-trace recovery for
        // Prime+iFlush; quiet simulation should land in that band or above.
        let mut rng = SmallRng::seed_from_u64(31);
        let exp = Bignum::random_bits(&mut rng, 192);
        let cfg = quiet_cfg(ProbeKind::Flush);
        let victim = build_victim(&cfg);
        let trace =
            collect_trace(MicroArch::TigerLake, &victim, &exp, &cfg, 1).expect("trace collects");
        let decoded = decode_trace(&trace, exp.bit_len());
        let rate = score_bits(&decoded, &exp);
        assert!(rate > 0.5, "quiet single-trace recovery {rate}");
        // The victim was slowed by the machine-clear storm, as §7 describes.
        assert!(trace.victim_cycles > 0);
    }

    #[test]
    fn majority_voting_does_not_degrade() {
        // The paper reaches 70% with ~10 traces; our simulated traces have
        // partially systematic errors (the same exposure-window multiply
        // misses recur), so voting plateaus — see EXPERIMENTS.md. The
        // combination must stay in the single-trace band and not degrade.
        let mut rng = SmallRng::seed_from_u64(32);
        let exp = Bignum::random_bits(&mut rng, 160);
        let cfg = RsaAttackConfig::new(ProbeKind::Flush);
        let (_, rates) = traces_needed(MicroArch::TigerLake, &exp, &cfg, 0.70, 8).expect("runs");
        let first = rates[0];
        let best = rates.iter().cloned().fold(0.0f64, f64::max);
        assert!(first > 0.45, "single-trace band: {first}");
        assert!(best >= first - 0.03, "voting must not degrade: {rates:?}");
    }

    #[test]
    fn event_extraction_merges_consecutive_actives() {
        let mk = |active: &[bool]| -> Vec<ActivitySample> {
            active
                .iter()
                .enumerate()
                .map(|(i, a)| ActivitySample { at: i as u64, min_timing: 0, active: *a })
                .collect()
        };
        let ev = events_from_samples(&mk(&[false, true, true, false, false, true, false]));
        assert_eq!(ev, vec![1, 5]);
        let ev = events_from_samples(&mk(&[true, false, true, true]));
        assert_eq!(ev, vec![0, 2]);
        assert!(events_from_samples(&mk(&[false, false])).is_empty());
    }

    #[test]
    fn score_bits_exact_on_perfect_decode() {
        let exp = Bignum::from_hex("b5"); // 10110101
        let decoded = vec![true, false, true, true, false, true, false, true];
        assert!((score_bits(&decoded, &exp) - 1.0).abs() < 1e-12);
        let flipped = vec![true, true, true, true, false, true, false, true];
        assert!((score_bits(&flipped, &exp) - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn majority_vote_fixes_local_errors() {
        let truth = vec![true, false, true, true];
        let t1 = vec![true, false, true, true];
        let t2 = vec![true, true, true, true]; // one error
        let t3 = vec![true, false, true, false]; // a different error
        let combined = majority_vote(&[t1, t2, t3], 4);
        assert_eq!(combined, truth);
    }

    #[test]
    fn noisy_traces_improve_with_more_votes() {
        let mut rng = SmallRng::seed_from_u64(33);
        let exp = Bignum::random_bits(&mut rng, 128);
        let cfg = RsaAttackConfig {
            noise: NoiseConfig::noisy(),
            ..RsaAttackConfig::new(ProbeKind::Store)
        };
        let (_, rates) = traces_needed(MicroArch::TigerLake, &exp, &cfg, 0.99, 7).expect("runs");
        assert!(!rates.is_empty());
        let first = rates[0];
        let best = rates.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            best >= first - 0.02,
            "voting should not degrade recovery: first {first}, best {best}"
        );
    }
}
