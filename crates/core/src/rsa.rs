//! Case Study II: RSA key recovery with Prime+iProbe (paper §5.2,
//! Figures 4 and 5).
//!
//! The victim runs a Libgcrypt-1.5.1-style binary square-and-multiply
//! decryption on the sibling thread; squares and multiplies call routines
//! in *different* L1i sets. The attacker owns an eviction set over the
//! multiply set and loops prime → wait(τ_w) → SMC-probe. A multiplication
//! evicts one attacker way, which then probes *without* a machine-clear
//! conflict — a low timing in an otherwise-high probe round.
//!
//! Decoding rides on the schedule structure: every exponent bit costs one
//! square, and every set bit adds one multiply, so the number of idle
//! samples between consecutive multiply events encodes the run of zero
//! bits in between (the paper's "three samples for `11`, plus two per `0`"
//! observation). A missed or spurious event perturbs decoded bits only
//! *locally* (the run lengths re-synchronize), which is what makes
//! majority voting across a handful of traces effective (Figure 5).

use smack_crypto::Bignum;
use smack_uarch::{Machine, MicroArch, NoiseConfig, ProbeKind, ThreadId};
use smack_victims::modexp::{ModexpAlgorithm, ModexpVictim, ModexpVictimBuilder};

use crate::calibrate::{calibrate, CalibratedProbe};
use crate::decode::{align_runs, to_runs};
use crate::oracle::EvictionSet;
use crate::probe::Prober;
use crate::session::Session;

const ATTACKER: ThreadId = ThreadId::T0;
const VICTIM: ThreadId = ThreadId::T1;
const EVSET_BASE: u64 = 0x0a10_0000;
const SCRATCH: u64 = 0x0d10_0000;

/// Attack configuration.
#[derive(Copy, Clone, Debug)]
pub struct RsaAttackConfig {
    /// SMC probe class (the paper evaluates Flush, Store, Lock and Clwb).
    pub kind: ProbeKind,
    /// Wait between prime and probe (the paper's ~700-iteration loop).
    pub wait_cycles: u64,
    /// τ_w jitter amplitude: each trace waits
    /// `wait_cycles ± wait_jitter` cycles, drawn deterministically from
    /// the trace seed (see [`crate::probe::jittered_wait`]). Zero (the
    /// default) keeps the historical fixed exposure window; nonzero
    /// decorrelates systematic decode misses across traces so majority
    /// voting can outvote them.
    pub wait_jitter: u64,
    /// How many LRU-first ways to probe per round (probing fewer ways
    /// shortens the sample period; LRU replacement makes the first primed
    /// ways the eviction victims).
    pub probe_ways: usize,
    /// Noise model for the run.
    pub noise: NoiseConfig,
    /// RSA modulus size in bits (cost model for the victim's routines).
    pub operand_bits: usize,
}

impl RsaAttackConfig {
    /// Paper-like defaults for a probe class.
    pub fn new(kind: ProbeKind) -> RsaAttackConfig {
        RsaAttackConfig {
            kind,
            wait_cycles: 100,
            wait_jitter: 0,
            probe_ways: 1,
            noise: NoiseConfig::realistic(),
            operand_bits: 2048,
        }
    }
}

/// One attacker sample.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ActivitySample {
    /// Attacker clock at the start of the sample.
    pub at: u64,
    /// Lowest per-way probe timing in the round (the Figure 4 y-axis).
    pub min_timing: u64,
    /// Whether a victim fetch evicted one of the attacker's ways.
    pub active: bool,
}

/// A collected trace plus metadata.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RsaTrace {
    /// Samples in time order.
    pub samples: Vec<ActivitySample>,
    /// Victim cycles the decryption took under attack.
    pub victim_cycles: u64,
}

/// Build the standard victim for this attack.
pub fn build_victim(cfg: &RsaAttackConfig) -> ModexpVictim {
    let mut b = ModexpVictimBuilder::new(ModexpAlgorithm::BinaryLtr);
    b.operand_bits(cfg.operand_bits);
    b.build()
}

/// Collect one trace of the victim decrypting with exponent `exp`,
/// building (and calibrating on) a fresh machine — the standalone path;
/// session-driven harnesses use [`collect_trace_in`].
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn collect_trace(
    arch: MicroArch,
    victim: &ModexpVictim,
    exp: &Bignum,
    cfg: &RsaAttackConfig,
    seed: u64,
) -> Result<RsaTrace, String> {
    let mut m = Machine::with_noise(arch.profile(), cfg.noise, seed);
    collect_trace_on(&mut m, victim, exp, cfg, seed, None)
}

/// Collect one trace inside a [`Session`]: the machine comes from the pool
/// (in its cold start state — [`Session::renew`] between traces) and the
/// probe threshold from the calibration cache. The session's noise model
/// should match `cfg.noise`, and its seed staggers the attacker phase just
/// as [`collect_trace`]'s `seed` does.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn collect_trace_in(
    session: &mut Session<'_>,
    victim: &ModexpVictim,
    exp: &Bignum,
    cfg: &RsaAttackConfig,
) -> Result<RsaTrace, String> {
    session.require_noise(cfg.noise)?;
    // `calibrate`'s default cold state is L2 (a just-evicted line).
    let cal =
        session.calibrated(cfg.kind, smack_uarch::Placement::L2).map_err(|e| e.to_string())?;
    let seed = session.scenario().seed();
    collect_trace_on(session.machine(), victim, exp, cfg, seed, Some(cal))
}

/// Collect one trace on a caller-provided machine, optionally with a
/// pre-computed calibration (`None` calibrates inline, like
/// [`collect_trace`]). The low-level entry for drivers that manage their
/// own machines — e.g. the burst-determinism regression tests, which pin
/// [`Machine::set_burst_steps`] per machine.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn collect_trace_on(
    m: &mut Machine,
    victim: &ModexpVictim,
    exp: &Bignum,
    cfg: &RsaAttackConfig,
    seed: u64,
    cal_override: Option<CalibratedProbe>,
) -> Result<RsaTrace, String> {
    m.load_program(&victim.program);
    let ev = EvictionSet::for_machine(m, EVSET_BASE, victim.mul_set);
    ev.install(m);
    for w in ev.ways() {
        m.warm_tlb(ATTACKER, *w);
    }
    let cal = match cal_override {
        Some(cal) => cal,
        None => calibrate(m, ATTACKER, cfg.kind, smack_uarch::Addr(SCRATCH), 12)
            .map_err(|e| e.to_string())?,
    };
    let mut prober = Prober::new(ATTACKER);
    let wait_cycles = crate::probe::jittered_wait(cfg.wait_cycles, cfg.wait_jitter, seed);

    // Stagger the attacker's phase: on real hardware consecutive traces
    // never align with the victim identically, and the decoder's rounding
    // benefits from that diversity during majority voting.
    m.advance(ATTACKER, seed % 997).map_err(|e| e.to_string())?;
    victim.start(m, VICTIM, exp);
    let victim_start = m.clock(VICTIM);
    let mut samples = Vec::new();
    let max_samples = exp.bit_len() * 40 + 4_000;
    while m.state(VICTIM) == smack_uarch::ThreadState::Running && samples.len() < max_samples {
        let at = m.clock(ATTACKER);
        ev.prime(m, &mut prober).map_err(|e| e.to_string())?;
        prober.wait(m, wait_cycles).map_err(|e| e.to_string())?;
        let timings =
            ev.probe_first(m, &mut prober, cfg.kind, cfg.probe_ways).map_err(|e| e.to_string())?;
        let active = timings.iter().any(|t| !cal.is_hit(*t));
        let min_timing = *timings.iter().min().expect("nonempty ways");
        samples.push(ActivitySample { at, min_timing, active });
    }
    let victim_cycles = m.clock(VICTIM) - victim_start;
    Ok(RsaTrace { samples, victim_cycles })
}

/// Raw multiply-event sample indices (burst starts — one burst per
/// multiplication; see [`crate::decode`]).
pub fn events_from_samples(samples: &[ActivitySample]) -> Vec<usize> {
    let actives: Vec<bool> = samples.iter().map(|s| s.active).collect();
    crate::decode::burst_starts(&actives)
}

/// Decode a trace into exponent bits (MSB-first).
///
/// Each multiplication is one activity burst (the victim's `mul_n` keeps
/// executing its line for the whole operation — see [`crate::decode`]).
/// Between two set bits with `z` zero bits in between, the victim runs
/// one multiply plus `z + 1` squares, so consecutive burst starts are
/// `z + 2` operations apart: `zeros = round(gap / unit) - 2`.
pub fn decode_trace(trace: &RsaTrace, nbits: usize) -> Vec<bool> {
    let actives: Vec<bool> = samples_to_actives(&trace.samples);
    let Some((bursts, unit)) = crate::decode::extract_bursts(&actives) else {
        return vec![false; nbits];
    };
    let mut bits = Vec::with_capacity(nbits);
    bits.push(true); // the MSB is always set and always multiplies
    for ops in crate::decode::ops_between_bursts(&bursts, unit) {
        let zeros = (ops as usize).saturating_sub(2);
        bits.extend(std::iter::repeat_n(false, zeros.min(nbits)));
        bits.push(true);
    }
    bits.truncate(nbits);
    while bits.len() < nbits {
        bits.push(false);
    }
    bits
}

fn samples_to_actives(samples: &[ActivitySample]) -> Vec<bool> {
    samples.iter().map(|s| s.active).collect()
}

/// Fraction of `truth`'s bits (MSB-first) matching `decoded`.
pub fn score_bits(decoded: &[bool], truth: &Bignum) -> f64 {
    let nbits = truth.bit_len();
    if nbits == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..nbits {
        let truth_bit = truth.bit(nbits - 1 - i); // MSB-first
        if decoded.get(i).copied().unwrap_or(false) == truth_bit {
            correct += 1;
        }
    }
    correct as f64 / nbits as f64
}

/// Alignment-tolerant recovery score: the decoded and true bit strings are
/// compared as run-length sequences under a longest-common-subsequence
/// alignment, so a single ±1 error in one zero-run costs only that run
/// instead of desynchronizing every later position (how partial key
/// recovery is scored in practice — a solver consumes runs, not absolute
/// positions). Excess decoded runs are discounted precision-style.
pub fn score_bits_aligned(decoded: &[bool], truth: &Bignum) -> f64 {
    let nbits = truth.bit_len();
    if nbits == 0 {
        return 0.0;
    }
    let truth_bits: Vec<bool> = (0..nbits).map(|i| truth.bit(nbits - 1 - i)).collect();
    let d_runs = to_runs(decoded);
    let t_runs = to_runs(&truth_bits);
    if t_runs.is_empty() {
        return 0.0;
    }
    // Aligned runs of the same alternation parity credit the bits they
    // share: a run decoded one too long/short still recovered the
    // overlapping bits, so each landmark pair earns `min(d, t)`. The
    // alignment itself is the shared [`align_runs`] DP that majority
    // voting anchors on.
    let recovered: u32 =
        align_runs(&t_runs, &d_runs).iter().map(|(t, d_len)| t_runs[*t].min(*d_len)).sum();
    let recall = recovered as f64 / nbits as f64;
    let precision_factor =
        if d_runs.len() > t_runs.len() { t_runs.len() as f64 / d_runs.len() as f64 } else { 1.0 };
    recall * precision_factor
}

/// Majority-vote combination of several decoded traces.
///
/// Bit errors in a single trace are mostly ±1 errors in individual
/// zero-run lengths, which *shift* all later positions — so positional
/// voting alone degrades after the first disagreement. Instead, traces are
/// combined at the level of shared burst landmarks: every trace's
/// run-length sequence is *aligned* to a reference trace (the same
/// weighted longest-common-subsequence alignment [`score_bits_aligned`]
/// scores with), and each reference run takes the median of the lengths
/// aligned to it. A trace that missed or hallucinated a multiply event
/// still votes on every landmark it shares with the reference, instead of
/// being discarded for having the wrong run *count* (which is what made
/// voting plateau below the paper's 10-trace 70% on noisier probe
/// classes). Positional voting remains the fallback for fewer than three
/// traces or structureless decodes.
pub fn majority_vote(decodes: &[Vec<bool>], nbits: usize) -> Vec<bool> {
    if decodes.len() >= 3 {
        if let Some(bits) = landmark_vote(decodes, nbits) {
            return bits;
        }
    }
    (0..nbits)
        .map(|i| {
            let ones = decodes.iter().filter(|d| d.get(i).copied().unwrap_or(false)).count();
            2 * ones > decodes.len()
        })
        .collect()
}

/// Landmark-anchored run voting (see [`majority_vote`]): pick the trace
/// whose run count is the median as the reference, align every other
/// trace's runs to it, and take the per-landmark median length.
fn landmark_vote(decodes: &[Vec<bool>], nbits: usize) -> Option<Vec<bool>> {
    let runs: Vec<Vec<u32>> = decodes.iter().map(|d| to_runs(d)).collect();
    // Reference: the trace with the median run count (ties to the earlier
    // trace, keeping the choice deterministic).
    let mut by_len: Vec<usize> = (0..runs.len()).collect();
    by_len.sort_by_key(|i| (runs[*i].len(), *i));
    let ref_idx = by_len[by_len.len() / 2];
    let reference = &runs[ref_idx];
    if reference.is_empty() {
        return None;
    }
    // Each landmark starts with the reference's own vote.
    let mut votes: Vec<Vec<u32>> = reference.iter().map(|len| vec![*len]).collect();
    for (t, r) in runs.iter().enumerate() {
        if t == ref_idx {
            continue;
        }
        for (landmark, len) in align_runs(reference, r) {
            votes[landmark].push(len);
        }
    }
    let mut bits = Vec::with_capacity(nbits);
    let mut ones = true;
    for vals in &mut votes {
        vals.sort_unstable();
        let len = vals[vals.len() / 2];
        for _ in 0..len {
            bits.push(ones);
        }
        ones = !ones;
    }
    bits.truncate(nbits);
    while bits.len() < nbits {
        bits.push(false);
    }
    Some(bits)
}

/// Figure 5: collect traces one by one (distinct noise seeds) until the
/// majority-vote recovery reaches `target` (e.g. 0.70), up to `max_traces`.
/// Returns `(traces_used, per-count recovery rates)`; `traces_used` is
/// `None` if the target was never reached.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn traces_needed(
    arch: MicroArch,
    exp: &Bignum,
    cfg: &RsaAttackConfig,
    target: f64,
    max_traces: usize,
) -> Result<(Option<usize>, Vec<f64>), String> {
    let victim = build_victim(cfg);
    let mut decodes = Vec::new();
    let mut rates = Vec::new();
    for t in 0..max_traces {
        let trace = collect_trace(arch, &victim, exp, cfg, 1000 + t as u64)?;
        decodes.push(decode_trace(&trace, exp.bit_len()));
        let combined = majority_vote(&decodes, exp.bit_len());
        let rate = score_bits(&combined, exp);
        rates.push(rate);
        if rate >= target {
            return Ok((Some(t + 1), rates));
        }
    }
    Ok((None, rates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quiet_cfg(kind: ProbeKind) -> RsaAttackConfig {
        RsaAttackConfig {
            kind,
            wait_cycles: 100,
            wait_jitter: 0,
            probe_ways: 1,
            noise: NoiseConfig::quiet(),
            operand_bits: 2048,
        }
    }

    #[test]
    fn single_trace_recovers_paper_level_bits() {
        // The paper's Figure 5 reports ~63% single-trace recovery for
        // Prime+iFlush; quiet simulation should land in that band or above.
        let mut rng = SmallRng::seed_from_u64(31);
        let exp = Bignum::random_bits(&mut rng, 192);
        let cfg = quiet_cfg(ProbeKind::Flush);
        let victim = build_victim(&cfg);
        let trace =
            collect_trace(MicroArch::TigerLake, &victim, &exp, &cfg, 1).expect("trace collects");
        let decoded = decode_trace(&trace, exp.bit_len());
        let rate = score_bits(&decoded, &exp);
        assert!(rate > 0.5, "quiet single-trace recovery {rate}");
        // The victim was slowed by the machine-clear storm, as §7 describes.
        assert!(trace.victim_cycles > 0);
    }

    #[test]
    fn majority_voting_does_not_degrade() {
        // The paper reaches 70% with ~10 traces; our simulated traces have
        // partially systematic errors (the same exposure-window multiply
        // misses recur), so voting plateaus — see EXPERIMENTS.md. The
        // combination must stay in the single-trace band and not degrade.
        let mut rng = SmallRng::seed_from_u64(32);
        let exp = Bignum::random_bits(&mut rng, 160);
        let cfg = RsaAttackConfig::new(ProbeKind::Flush);
        let (_, rates) = traces_needed(MicroArch::TigerLake, &exp, &cfg, 0.70, 8).expect("runs");
        let first = rates[0];
        let best = rates.iter().cloned().fold(0.0f64, f64::max);
        assert!(first > 0.45, "single-trace band: {first}");
        assert!(best >= first - 0.03, "voting must not degrade: {rates:?}");
    }

    #[test]
    fn event_extraction_merges_consecutive_actives() {
        let mk = |active: &[bool]| -> Vec<ActivitySample> {
            active
                .iter()
                .enumerate()
                .map(|(i, a)| ActivitySample { at: i as u64, min_timing: 0, active: *a })
                .collect()
        };
        let ev = events_from_samples(&mk(&[false, true, true, false, false, true, false]));
        assert_eq!(ev, vec![1, 5]);
        let ev = events_from_samples(&mk(&[true, false, true, true]));
        assert_eq!(ev, vec![0, 2]);
        assert!(events_from_samples(&mk(&[false, false])).is_empty());
    }

    #[test]
    fn score_bits_exact_on_perfect_decode() {
        let exp = Bignum::from_hex("b5"); // 10110101
        let decoded = vec![true, false, true, true, false, true, false, true];
        assert!((score_bits(&decoded, &exp) - 1.0).abs() < 1e-12);
        let flipped = vec![true, true, true, true, false, true, false, true];
        assert!((score_bits(&flipped, &exp) - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn aligned_score_prefers_shared_bits_over_pair_count() {
        // truth 10111 (runs [1,1,3]) vs decoded 111010 (runs [3,1,1,1]):
        // the single truth-r3/decoded-r1 pair shares 3 bits and must beat
        // the two-pair alignment sharing only 2 — a many-small-pairs
        // alignment must never outrank a fewer-bigger-pairs one.
        let truth = Bignum::from_hex("17"); // 10111
        let decoded = vec![true, true, true, false, true, false];
        let want = (3.0 / 5.0) * (3.0 / 4.0); // recall * precision factor
        assert!((score_bits_aligned(&decoded, &truth) - want).abs() < 1e-12);
    }

    #[test]
    fn landmark_vote_outvotes_disjoint_run_errors() {
        // truth: 1 000 1 00 1 0000 1  (runs [1,3,1,2,1,4,1], 13 bits).
        let truth_runs = [1usize, 3, 1, 2, 1, 4, 1];
        let bits_of = |runs: &[usize]| -> Vec<bool> {
            let mut bits = Vec::new();
            let mut ones = true;
            for r in runs {
                bits.extend(std::iter::repeat_n(ones, *r));
                ones = !ones;
            }
            bits.truncate(13);
            while bits.len() < 13 {
                bits.push(false);
            }
            bits
        };
        let truth = bits_of(&truth_runs);
        // t1 over-counts the first zero run, t2 under-counts the second —
        // each error *shifts* every later position, so positional voting
        // is wrong for most of the tail; aligned landmarks still carry a
        // 2-of-3 majority per run.
        let t1 = bits_of(&[1, 4, 1, 2, 1, 4, 1]);
        let t2 = bits_of(&[1, 3, 1, 1, 1, 4, 1]);
        let t3 = truth.clone();
        let combined = majority_vote(&[t1, t2, t3], 13);
        assert_eq!(combined, truth);
    }

    #[test]
    fn majority_vote_fixes_local_errors() {
        let truth = vec![true, false, true, true];
        let t1 = vec![true, false, true, true];
        let t2 = vec![true, true, true, true]; // one error
        let t3 = vec![true, false, true, false]; // a different error
        let combined = majority_vote(&[t1, t2, t3], 4);
        assert_eq!(combined, truth);
    }

    #[test]
    fn noisy_traces_improve_with_more_votes() {
        let mut rng = SmallRng::seed_from_u64(33);
        let exp = Bignum::random_bits(&mut rng, 128);
        let cfg = RsaAttackConfig {
            noise: NoiseConfig::noisy(),
            ..RsaAttackConfig::new(ProbeKind::Store)
        };
        let (_, rates) = traces_needed(MicroArch::TigerLake, &exp, &cfg, 0.99, 7).expect("runs");
        assert!(!rates.is_empty());
        let first = rates[0];
        let best = rates.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            best >= first - 0.02,
            "voting should not degrade recovery: first {first}, best {best}"
        );
    }
}
