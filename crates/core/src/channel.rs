//! SMC covert channels (paper §5.1, Table 1, Figure 3).
//!
//! Two families:
//!
//! * **Prime+iProbe** — the receiver owns an L1i eviction set; the sender
//!   transmits `1` by executing a line that maps to the same set (evicting
//!   one receiver way) and `0` by idling. The receiver's SMC probe sees the
//!   evicted way as the one timing *without* a machine-clear conflict.
//! * **Flush+iReload** — sender and receiver share one executable line
//!   (page-deduplication scenario); the sender executes it for `1`, and the
//!   receiver's SMC probe conflicts (slow) exactly when the line is
//!   L1i-resident. Write-class probes (store/lock) are inapplicable: the
//!   shared page is read/execute-only, as in the paper's N/A rows.
//!
//! Transmission is slot-synchronized on the shared TSC: the receiver takes
//! a few samples per bit slot and decodes `1` if any sample shows activity.

use smack_uarch::{
    Addr, Machine, NoiseConfig, Placement, ProbeKind, SmcBehavior, StepError, ThreadId,
};

use crate::calibrate::{calibrate_with_cold, CalibratedProbe};
use crate::oracle::{EvictionSet, OraclePage};
use crate::probe::Prober;
use crate::session::Session;

/// Covert-channel family.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ChannelFamily {
    /// Prime+iProbe over an L1i eviction set.
    PrimeProbe,
    /// Flush+iReload over a shared executable line.
    FlushReload,
}

/// A covert-channel configuration.
#[derive(Copy, Clone, Debug)]
pub struct ChannelSpec {
    /// Family.
    pub family: ChannelFamily,
    /// SMC probe class used by the receiver.
    pub kind: ProbeKind,
    /// Monitored L1i set (Prime+iProbe only).
    pub set: usize,
    /// Receiver samples per bit slot.
    pub samples_per_bit: u32,
    /// Sender line executions per `1` bit (the paper's `N_l`).
    pub loads_per_one: u32,
    /// Receiver wait between prime and probe (the paper's `τ_w`), cycles.
    pub wait_cycles: u64,
}

impl ChannelSpec {
    /// A Prime+iProbe channel with paper-like defaults.
    pub fn prime_probe(kind: ProbeKind) -> ChannelSpec {
        ChannelSpec {
            family: ChannelFamily::PrimeProbe,
            kind,
            set: 21,
            samples_per_bit: 3,
            loads_per_one: 40,
            wait_cycles: 1_000,
        }
    }

    /// A Flush+iReload channel with paper-like defaults.
    pub fn flush_reload(kind: ProbeKind) -> ChannelSpec {
        ChannelSpec {
            family: ChannelFamily::FlushReload,
            kind,
            set: 0,
            samples_per_bit: 3,
            loads_per_one: 40,
            wait_cycles: 1_400,
        }
    }

    /// The paper's Table 1 channel list, in row order (including the two
    /// inapplicable rows, which [`ChannelSpec::applicability`] rejects).
    pub fn table1() -> Vec<ChannelSpec> {
        vec![
            ChannelSpec::prime_probe(ProbeKind::Flush),
            ChannelSpec::prime_probe(ProbeKind::FlushOpt),
            ChannelSpec::prime_probe(ProbeKind::Lock),
            ChannelSpec::prime_probe(ProbeKind::Prefetch),
            ChannelSpec::prime_probe(ProbeKind::Store),
            ChannelSpec::prime_probe(ProbeKind::Clwb),
            ChannelSpec::flush_reload(ProbeKind::Flush),
            ChannelSpec::flush_reload(ProbeKind::FlushOpt),
            ChannelSpec::flush_reload(ProbeKind::Lock),
            ChannelSpec::flush_reload(ProbeKind::Prefetch),
            ChannelSpec::flush_reload(ProbeKind::Store),
            ChannelSpec::flush_reload(ProbeKind::Clwb),
        ]
    }

    /// Paper-style channel name, e.g. `Prime+iFlush` or `Flush+iStore`.
    pub fn name(&self) -> String {
        let family = match self.family {
            ChannelFamily::PrimeProbe => "Prime",
            ChannelFamily::FlushReload => "Flush",
        };
        let kind = match self.kind {
            ProbeKind::Flush => "Flush",
            ProbeKind::FlushOpt => "Flushopt",
            ProbeKind::Store => "Store",
            ProbeKind::Lock => "Lock",
            ProbeKind::Prefetch => "Prefetch",
            ProbeKind::PrefetchNta => "Prefetchnta",
            ProbeKind::Clwb => "Clwb",
            ProbeKind::Load => "Load",
            ProbeKind::Execute => "Reload",
        };
        format!("{family}+i{kind}")
    }

    /// Whether this channel is applicable on `machine` (paper's "App."
    /// column): the probe must exist, trigger SMC conflicts, and — for
    /// Flush+iReload — not require write access to the shared page.
    pub fn applicability(&self, machine: &Machine) -> Result<(), &'static str> {
        match machine.profile().smc.get(self.kind) {
            SmcBehavior::Unsupported => return Err("instruction unsupported"),
            SmcBehavior::Triggers => {}
            _ => return Err("no SMC conflict on this microarchitecture"),
        }
        if self.family == ChannelFamily::FlushReload && self.kind.writes_target() {
            return Err("shared code page is read/execute-only");
        }
        Ok(())
    }
}

/// One receiver sample in a recorded trace (Figure 3).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TracePoint {
    /// Receiver clock at the start of the sample.
    pub at: u64,
    /// The decision timing: minimum way timing (Prime+iProbe) or the probe
    /// timing (Flush+iReload).
    pub timing: u64,
    /// Whether the sample detected sender activity.
    pub activity: bool,
    /// Bit-slot index this sample belongs to.
    pub slot: usize,
}

/// Outcome of one covert-channel run.
#[derive(Clone, PartialEq, Debug)]
pub struct ChannelReport {
    /// Channel name (paper row label).
    pub name: String,
    /// Bits transmitted.
    pub bits: usize,
    /// Bit errors.
    pub errors: usize,
    /// Error rate in percent.
    pub error_rate_pct: f64,
    /// Bandwidth in kbit/s at the profile's nominal frequency.
    pub kbit_per_s: f64,
    /// Total cycles the transmission took.
    pub cycles: u64,
    /// Decoded bits.
    pub decoded: Vec<bool>,
    /// Optional per-sample trace (Figure 3).
    pub trace: Vec<TracePoint>,
}

const RECEIVER: ThreadId = ThreadId::T0;
const SENDER: ThreadId = ThreadId::T1;
const EVSET_BASE: u64 = 0x0a00_0000;
const SENDER_BASE: u64 = 0x0b00_0000;
const SHARED_BASE: u64 = 0x0c00_0000;
const SCRATCH_BASE: u64 = 0x0d00_0000;

/// The cold placement the receiver's probe sees in each family:
/// Prime+iProbe reads just-evicted (L2-resident) lines, Flush+iReload
/// reads flushed-to-DRAM lines.
fn cold_placement(family: ChannelFamily) -> Placement {
    match family {
        ChannelFamily::PrimeProbe => Placement::L2,
        ChannelFamily::FlushReload => Placement::DramOnly,
    }
}

/// Run a covert channel transmitting `payload`, recording a trace when
/// `record_trace` is set. Calibrates the receiver's probe threshold on
/// this machine (the standalone path; session-driven harnesses use
/// [`run_channel_in`] and the shared calibration cache instead).
///
/// # Errors
///
/// Returns a description when the channel is inapplicable (the paper's N/A
/// rows), or propagates simulator errors as strings.
pub fn run_channel(
    machine: &mut Machine,
    spec: &ChannelSpec,
    payload: &[bool],
    record_trace: bool,
) -> Result<ChannelReport, String> {
    spec.applicability(machine).map_err(|e| format!("{}: {e}", spec.name()))?;
    run_channel_inner(machine, spec, payload, record_trace, None)
}

/// Run a covert channel inside a [`Session`]: the machine comes from the
/// pool and the receiver's threshold from the calibration cache (computed
/// once per `(profile, probe class, cold placement, noise)` per process).
///
/// # Errors
///
/// Returns a description when the channel is inapplicable (the paper's N/A
/// rows), or propagates simulator errors as strings.
pub fn run_channel_in(
    session: &mut Session<'_>,
    spec: &ChannelSpec,
    payload: &[bool],
    record_trace: bool,
) -> Result<ChannelReport, String> {
    // Applicability first, like the standalone path: an N/A row must
    // report its reason, not a calibration error, and must not cost a
    // calibration pass.
    spec.applicability(session.machine()).map_err(|e| format!("{}: {e}", spec.name()))?;
    // Channels always transmit under the noisy model (see below), so the
    // threshold must be calibrated under it too.
    let cal = session
        .calibrated_for(spec.kind, cold_placement(spec.family), NoiseConfig::noisy())
        .map_err(|e| format!("{}: {e}", spec.name()))?;
    run_channel_inner(session.machine(), spec, payload, record_trace, Some(cal))
}

/// The transmission body shared by both entry points. Callers have
/// already checked [`ChannelSpec::applicability`].
fn run_channel_inner(
    machine: &mut Machine,
    spec: &ChannelSpec,
    payload: &[bool],
    record_trace: bool,
    cal_override: Option<CalibratedProbe>,
) -> Result<ChannelReport, String> {
    machine.set_noise(NoiseConfig::noisy());
    let step = |e: StepError| format!("{}: {e}", spec.name());

    let mut prober = Prober::new(RECEIVER);
    // --- setup ------------------------------------------------------------
    let (evset, target) = match spec.family {
        ChannelFamily::PrimeProbe => {
            let ev = EvictionSet::for_machine(machine, EVSET_BASE, spec.set);
            ev.install(machine);
            for w in ev.ways() {
                machine.warm_tlb(RECEIVER, *w);
            }
            // The sender's own line mapping to the same set.
            let sender_line = Addr(SENDER_BASE + (spec.set as u64) * 64);
            let page = OraclePage::build(sender_line, 1);
            page.install(machine);
            machine.warm_tlb(SENDER, sender_line);
            (Some(ev), sender_line)
        }
        ChannelFamily::FlushReload => {
            let shared = OraclePage::build(Addr(SHARED_BASE), 1);
            shared.install(machine);
            machine.warm_tlb(RECEIVER, shared.line(0));
            machine.warm_tlb(SENDER, shared.line(0));
            (None, shared.line(0))
        }
    };
    let cal = match cal_override {
        Some(cal) => cal,
        None => {
            let cold = cold_placement(spec.family);
            calibrate_with_cold(machine, RECEIVER, spec.kind, Addr(SCRATCH_BASE), 16, cold)
                .map_err(step)?
        }
    };

    // --- measure one idle sample to size the bit slot ----------------------
    let sample_probe =
        |machine: &mut Machine, prober: &mut Prober| -> Result<(u64, bool), StepError> {
            match spec.family {
                ChannelFamily::PrimeProbe => {
                    let ev = evset.as_ref().expect("prime+probe has an eviction set");
                    ev.prime(machine, prober)?;
                    prober.wait(machine, spec.wait_cycles)?;
                    let timings = ev.probe(machine, prober, spec.kind)?;
                    // Activity = at least one way did NOT conflict (it was
                    // evicted by the sender's fetch).
                    let misses = timings.iter().filter(|t| !cal.is_hit(**t)).count();
                    let min = *timings.iter().min().expect("nonempty ways");
                    Ok((min, misses >= 1))
                }
                ChannelFamily::FlushReload => {
                    let t = prober.measure(machine, spec.kind, target)?.cycles;
                    // Prefetch-based reloads need an explicit flush afterwards
                    // (paper: prefetch requires clflush before the next round).
                    if matches!(spec.kind, ProbeKind::Prefetch | ProbeKind::PrefetchNta) {
                        prober.flush_line(machine, target)?;
                    }
                    prober.wait(machine, spec.wait_cycles)?;
                    Ok((t, cal.is_hit(t)))
                }
            }
        };

    let t0 = machine.clock(RECEIVER);
    let (_, _) = sample_probe(machine, &mut prober).map_err(step)?;
    let sample_cost = (machine.clock(RECEIVER) - t0).max(1);
    // Every conflicting probe stalls the *sender* by `sibling_stall` cycles
    // (the machine clear flushes the whole physical core), so the bit slot
    // must leave room for the sender to get its N_l executions in.
    let clears_per_sample = match spec.family {
        ChannelFamily::PrimeProbe => machine.l1i_ways() as u64,
        ChannelFamily::FlushReload => 1,
    };
    let stall_allowance = spec.samples_per_bit as u64
        * clears_per_sample
        * machine.profile().clear.sibling_stall as u64;
    let bit_period = sample_cost * spec.samples_per_bit as u64 + sample_cost / 2 + stall_allowance;
    // Spread the sender's N_l executions across the whole slot so that
    // every receiver prime→wait window overlaps at least one of them.
    let sender_gap = (bit_period / spec.loads_per_one.max(1) as u64).max(60);

    // --- transmit -----------------------------------------------------------
    // The receiver's sample is split into phases so that the sender's
    // executions interleave *inside* the prime→probe wait window, by clock
    // order — on real SMT hardware the two threads genuinely overlap.
    #[derive(Copy, Clone)]
    enum Phase {
        Setup,
        Wait { until: u64, started_at: u64 },
        Measure { started_at: u64 },
    }
    let epoch = machine.clock(RECEIVER).max(machine.clock(SENDER));
    let mut decoded = Vec::with_capacity(payload.len());
    // One timing buffer reused across every probe round of the trial.
    let mut timings = Vec::new();
    let mut trace = Vec::new();
    let mut errors = 0usize;
    let mut phase = Phase::Setup;
    for (slot, bit) in payload.iter().enumerate() {
        let slot_end = epoch + (slot as u64 + 1) * bit_period;
        let mut sent = 0u32;
        let mut saw_activity = false;
        loop {
            let rc = machine.clock(RECEIVER);
            let sc = machine.clock(SENDER);
            if rc >= slot_end && sc >= slot_end {
                break;
            }
            if sc <= rc && sc < slot_end {
                // Sender's turn. Stop sending a guard band before the slot
                // boundary so a late fetch cannot bleed into the next bit.
                if *bit && sent < spec.loads_per_one && sc + sample_cost < slot_end {
                    machine.run_call(SENDER, target.0).map_err(step)?;
                    machine.advance(SENDER, sender_gap).map_err(step)?;
                    sent += 1;
                } else {
                    // Nothing left to send this slot: none of the send
                    // conditions can come back while the clock only grows,
                    // so the sender keeps idling until its clock passes the
                    // receiver's. Batch that whole run of 200-cycle chunks
                    // into one advance — `Machine::advance` is exactly
                    // partition-invariant, so one call with the chunks'
                    // total is bit-identical to issuing them one by one.
                    let chunks = (rc - sc) / 200 + 1;
                    let gap = (slot_end - sc).min(chunks * 200);
                    machine.advance(SENDER, gap).map_err(step)?;
                }
            } else if rc < slot_end {
                // Receiver's turn: advance one phase of the sample.
                match phase {
                    Phase::Setup => {
                        if let Some(ev) = evset.as_ref() {
                            ev.prime(machine, &mut prober).map_err(step)?;
                        }
                        phase = Phase::Wait {
                            until: machine.clock(RECEIVER) + spec.wait_cycles,
                            started_at: rc,
                        };
                    }
                    Phase::Wait { until, started_at } => {
                        if rc < until {
                            // The receiver holds its turn until its clock
                            // reaches the sender's (or the sender is done
                            // for the slot), so all the 150-cycle chunks
                            // up to that point run back-to-back — batch
                            // them into one partition-invariant advance.
                            let gap = if sc < slot_end && sc > rc {
                                let chunks = (sc - rc).div_ceil(150);
                                (until - rc).min(chunks * 150)
                            } else if sc >= slot_end {
                                until - rc
                            } else {
                                (until - rc).min(150)
                            };
                            machine.advance(RECEIVER, gap).map_err(step)?;
                        } else {
                            phase = Phase::Measure { started_at };
                        }
                    }
                    Phase::Measure { started_at } => {
                        let (timing, activity) = match spec.family {
                            ChannelFamily::PrimeProbe => {
                                let ev = evset.as_ref().expect("eviction set");
                                let n = ev.ways().len();
                                ev.probe_first_into(
                                    machine,
                                    &mut prober,
                                    spec.kind,
                                    n,
                                    &mut timings,
                                )
                                .map_err(step)?;
                                let misses = timings.iter().filter(|t| !cal.is_hit(**t)).count();
                                let min = *timings.iter().min().expect("nonempty");
                                (min, misses >= 1)
                            }
                            ChannelFamily::FlushReload => {
                                let t = prober.measure(machine, spec.kind, target).map_err(step)?;
                                if matches!(spec.kind, ProbeKind::Prefetch | ProbeKind::PrefetchNta)
                                {
                                    prober.flush_line(machine, target).map_err(step)?;
                                }
                                (t.cycles, cal.is_hit(t.cycles))
                            }
                        };
                        saw_activity |= activity;
                        if record_trace {
                            trace.push(TracePoint { at: started_at, timing, activity, slot });
                        }
                        phase = Phase::Setup;
                    }
                }
            } else {
                // Receiver finished the slot; let the sender catch up to
                // the boundary in one batched advance (the chunked loop
                // this replaces ran uninterrupted, so partition invariance
                // makes the single call bit-identical).
                machine.advance(SENDER, slot_end.saturating_sub(sc)).map_err(step)?;
            }
        }
        decoded.push(saw_activity);
        if saw_activity != *bit {
            errors += 1;
        }
    }
    let cycles = machine.clock(RECEIVER).max(machine.clock(SENDER)) - epoch;
    let seconds = machine.profile().cycles_to_seconds(cycles);
    let kbit_per_s = payload.len() as f64 / seconds / 1000.0;
    Ok(ChannelReport {
        name: spec.name(),
        bits: payload.len(),
        errors,
        error_rate_pct: 100.0 * errors as f64 / payload.len().max(1) as f64,
        kbit_per_s,
        cycles,
        decoded,
        trace,
    })
}

/// Deterministic pseudo-random payload for channel benchmarks.
pub fn random_payload(bits: usize, seed: u64) -> Vec<bool> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..bits)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::MicroArch;

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(ChannelSpec::prime_probe(ProbeKind::Flush).name(), "Prime+iFlush");
        assert_eq!(ChannelSpec::flush_reload(ProbeKind::FlushOpt).name(), "Flush+iFlushopt");
        assert_eq!(ChannelSpec::table1().len(), 12);
    }

    #[test]
    fn inapplicable_rows_are_rejected() {
        let m = Machine::new(MicroArch::CascadeLake.profile());
        assert!(ChannelSpec::flush_reload(ProbeKind::Lock).applicability(&m).is_err());
        assert!(ChannelSpec::flush_reload(ProbeKind::Store).applicability(&m).is_err());
        assert!(ChannelSpec::prime_probe(ProbeKind::Store).applicability(&m).is_ok());
        // clwb does not exist before Cascade Lake.
        let old = Machine::new(MicroArch::Broadwell.profile());
        assert!(ChannelSpec::prime_probe(ProbeKind::Clwb).applicability(&old).is_err());
    }

    #[test]
    fn prime_probe_store_channel_transmits() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let payload = random_payload(120, 7);
        let r = run_channel(&mut m, &ChannelSpec::prime_probe(ProbeKind::Store), &payload, false)
            .unwrap();
        assert!(r.error_rate_pct < 5.0, "error rate {}", r.error_rate_pct);
        assert!(r.kbit_per_s > 20.0, "bandwidth {}", r.kbit_per_s);
    }

    #[test]
    fn flush_reload_is_faster_than_prime_probe() {
        let mut m1 = Machine::new(MicroArch::CascadeLake.profile());
        let mut m2 = Machine::new(MicroArch::CascadeLake.profile());
        let payload = random_payload(120, 9);
        let pp = run_channel(&mut m1, &ChannelSpec::prime_probe(ProbeKind::Flush), &payload, false)
            .unwrap();
        let fr =
            run_channel(&mut m2, &ChannelSpec::flush_reload(ProbeKind::Flush), &payload, false)
                .unwrap();
        assert!(
            fr.kbit_per_s > pp.kbit_per_s * 2.0,
            "F+R {} vs P+P {}",
            fr.kbit_per_s,
            pp.kbit_per_s
        );
        assert!(fr.error_rate_pct < 5.0);
        assert!(pp.error_rate_pct < 5.0);
    }

    #[test]
    fn trace_recording_collects_samples() {
        let mut m = Machine::new(MicroArch::TigerLake.profile());
        let payload = vec![true, false, true, true, false];
        let r = run_channel(&mut m, &ChannelSpec::prime_probe(ProbeKind::Store), &payload, true)
            .unwrap();
        assert!(r.trace.len() >= payload.len(), "at least one sample per slot");
        assert_eq!(r.decoded.len(), payload.len());
    }

    #[test]
    fn payload_is_deterministic() {
        assert_eq!(random_payload(64, 3), random_payload(64, 3));
        assert_ne!(random_payload(64, 3), random_payload(64, 4));
    }
}
