//! Shared trace-decoding utilities for the RSA and SRP attacks.
//!
//! Both attacks observe the victim's multiply routine through eviction
//! events. Two microarchitectural facts shape the sample stream:
//!
//! 1. The multiply routine *executes continuously* for the whole
//!    multiplication (its inner loop keeps refetching its own code line),
//!    so every attacker sample whose prime→probe window overlaps a
//!    multiplication reads as active: one multiplication = one contiguous
//!    **burst** of active samples (the paper's Figure 4 dips).
//! 2. Squares and multiplies cost the same Montgomery-multiplication time,
//!    so burst start-to-start distances are near-integer multiples of one
//!    operation — and always at least two (a multiply is always followed
//!    by at least one square before the next multiply).
//!
//! The decoder therefore self-calibrates: the median burst *length* is a
//! first estimate of the one-operation unit (a multiplication spans one
//! operation), refined by comb-fitting the start-to-start gaps.

/// Indices of activity-burst starts (consecutive active samples form one
/// burst).
pub fn burst_starts(actives: &[bool]) -> Vec<usize> {
    let mut events = Vec::new();
    let mut prev = false;
    for (i, a) in actives.iter().enumerate() {
        if *a && !prev {
            events.push(i);
        }
        prev = *a;
    }
    events
}

/// A maximal run of consecutive active samples — one multiplication.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Burst {
    /// Sample index of the first active sample.
    pub first: usize,
    /// Sample index of the last active sample.
    pub last: usize,
}

impl Burst {
    /// Burst length in samples (always at least one).
    #[allow(clippy::len_without_is_empty)] // a burst contains >= 1 sample
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }
}

/// Extract activity bursts, bridging single-sample dropouts (a sample
/// whose prime→probe window happened to miss the victim's refetch).
pub fn bursts(actives: &[bool]) -> Vec<Burst> {
    let mut out: Vec<Burst> = Vec::new();
    for (i, a) in actives.iter().enumerate() {
        if !*a {
            continue;
        }
        match out.last_mut() {
            Some(b) if i - b.last <= 2 => b.last = i,
            _ => out.push(Burst { first: i, last: i }),
        }
    }
    out
}

/// Estimate the one-operation unit (in samples) from the bursts.
///
/// Seed: the median burst length (a multiplication spans one operation).
/// Refine: three rounds of weighted comb fitting against the *inactive*
/// gaps between bursts, whose lengths are near-integer unit multiples.
/// Inactive gaps are used (rather than start-to-start distances) because
/// they stay correct even when a burst's leading samples are clipped —
/// e.g. the trace-start transient around the very first multiplication.
pub fn estimate_unit(bursts: &[Burst]) -> Option<f64> {
    if bursts.is_empty() {
        return None;
    }
    let mut lens: Vec<f64> = bursts.iter().map(|b| b.len() as f64).collect();
    lens.sort_by(|a, b| a.partial_cmp(b).expect("lengths are finite"));
    let mut unit = lens[lens.len() / 2].max(1.0);
    let gaps: Vec<f64> = inactive_gaps(bursts);
    if gaps.is_empty() {
        return Some(unit);
    }
    for _ in 0..3 {
        let mut num = 0.0;
        let mut den = 0.0;
        for g in &gaps {
            let m = (g / unit).round().max(1.0);
            num += g;
            den += m;
        }
        unit = num / den;
    }
    Some(unit)
}

/// The inactive stretches between consecutive bursts, in samples.
fn inactive_gaps(bursts: &[Burst]) -> Vec<f64> {
    bursts.windows(2).map(|w| (w[1].first - w[0].last - 1) as f64).collect()
}

/// Operations between consecutive multiplies: the inactive gap spans the
/// squares (`round(gap / unit)`, at least one) and the multiply itself
/// adds one more.
pub fn ops_between_bursts(bursts: &[Burst], unit: f64) -> Vec<u32> {
    inactive_gaps(bursts).into_iter().map(|g| ((g / unit).round() as u32).max(1) + 1).collect()
}

/// Full pipeline: burst extraction and unit estimation. Returns `None`
/// when fewer than two bursts exist (no gap structure to decode).
pub fn extract_bursts(actives: &[bool]) -> Option<(Vec<Burst>, f64)> {
    let bs = bursts(actives);
    if bs.len() < 2 {
        return None;
    }
    let unit = estimate_unit(&bs)?;
    Some((bs, unit))
}

// ---------------------------------------------------------------------------
// Run-length landmarks
// ---------------------------------------------------------------------------
//
// A decoded bit string is equivalently a sequence of alternating run
// lengths, and each run boundary is a burst landmark the attacker actually
// observed (a multiply event). Scoring and multi-trace voting both work at
// this level, because a ±1 error in one run length shifts every later
// *position* while leaving every other *landmark* intact.

/// Alternating run lengths starting with the MSB's run of ones:
/// `[ones, zeros, ones, zeros, ...]`. Empty when the bits do not start
/// with a one (decodes always set the MSB).
pub fn to_runs(bits: &[bool]) -> Vec<u32> {
    let mut runs = Vec::new();
    let mut current = match bits.first() {
        Some(true) => true,
        _ => return runs,
    };
    let mut len = 0u32;
    for b in bits {
        if *b == current {
            len += 1;
        } else {
            runs.push(len);
            current = *b;
            len = 1;
        }
    }
    runs.push(len);
    runs
}

/// Align `other`'s run sequence onto `reference`'s with a weighted
/// longest-common-subsequence: runs may pair only when they share
/// alternation parity (both ones-runs or both zeros-runs) and differ by at
/// most one bit, and the alignment maximizes the bits shared by the paired
/// runs (`min(reference, other)` per pair — every run is nonempty, so each
/// pair still contributes, and no bonus term is needed that could trade
/// shared bits for pair count). Returns `(reference index, other's
/// length)` pairs in reference order — the shared burst landmarks two
/// traces agree on.
pub fn align_runs(reference: &[u32], other: &[u32]) -> Vec<(usize, u32)> {
    let n = reference.len();
    let m = other.len();
    let matches = |i: usize, j: usize| -> bool {
        i % 2 == j % 2 && reference[i - 1].abs_diff(other[j - 1]) <= 1
    };
    let pair_score = |i: usize, j: usize| -> u32 { reference[i - 1].min(other[j - 1]) };
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            let mut best = dp[i - 1][j].max(dp[i][j - 1]);
            if matches(i, j) {
                best = best.max(dp[i - 1][j - 1] + pair_score(i, j));
            }
            dp[i][j] = best;
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        if matches(i, j) && dp[i][j] == dp[i - 1][j - 1] + pair_score(i, j) {
            out.push((i - 1, other[j - 1]));
            i -= 1;
            j -= 1;
        } else if dp[i - 1][j] >= dp[i][j - 1] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lay out bursts of `len` units at the given op offsets, `spp`
    /// samples per op.
    fn actives_from_ops(mult_ops: &[usize], total_ops: usize, spp: usize) -> Vec<bool> {
        let mut v = vec![false; total_ops * spp + spp];
        for m in mult_ops {
            for s in 0..spp {
                v[m * spp + s] = true;
            }
        }
        v
    }

    #[test]
    fn burst_extraction_merges_consecutive() {
        let a = [false, true, true, false, false, false, true, false];
        assert_eq!(burst_starts(&a), vec![1, 6]);
        let bs = bursts(&a);
        assert_eq!(bs, vec![Burst { first: 1, last: 2 }, Burst { first: 6, last: 6 }]);
        assert_eq!(bs[0].len(), 2);
    }

    #[test]
    fn bursts_bridge_single_dropouts() {
        // One mul with a mid-burst dropout at index 3.
        let a = [false, true, true, false, true, true, false, false, false, true];
        let bs = bursts(&a);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0], Burst { first: 1, last: 5 });
    }

    #[test]
    fn unit_from_burst_lengths_and_gaps() {
        // Multiplies at ops 0, 2, 5, 9 with 4 samples per op.
        let a = actives_from_ops(&[0, 2, 5, 9], 11, 4);
        let (bs, unit) = extract_bursts(&a).expect("bursts exist");
        assert_eq!(bs.len(), 4);
        assert!((unit - 4.0).abs() < 0.4, "unit {unit}");
        assert_eq!(ops_between_bursts(&bs, unit), vec![2, 3, 4]);
    }

    #[test]
    fn unit_survives_ragged_burst_edges() {
        // Same ops, but burst lengths jittered by ±1 sample.
        let mut a = actives_from_ops(&[0, 2, 5, 9], 11, 5);
        a[4] = false; // shorten first burst
        a[25] = true; // lengthen third
        let (bs, unit) = extract_bursts(&a).expect("bursts exist");
        assert_eq!(bs.len(), 4);
        assert_eq!(ops_between_bursts(&bs, unit), vec![2, 3, 4]);
    }

    #[test]
    fn no_bursts_no_decode() {
        assert!(extract_bursts(&[false; 32]).is_none());
        assert!(extract_bursts(&[false, true, false]).is_none());
    }

    #[test]
    fn runs_round_trip() {
        assert_eq!(to_runs(&[true, false, false, true, true]), vec![1, 2, 2]);
        assert!(to_runs(&[false, true]).is_empty(), "decodes always set the MSB");
        assert!(to_runs(&[]).is_empty());
    }

    #[test]
    fn alignment_tolerates_off_by_one_runs() {
        let reference = [1u32, 3, 1, 2, 1];
        let offset = [1u32, 4, 1, 2, 1];
        let pairs = align_runs(&reference, &offset);
        assert_eq!(pairs, vec![(0, 1), (1, 4), (2, 1), (3, 2), (4, 1)]);
    }

    #[test]
    fn alignment_skips_spurious_landmarks() {
        // `other` hallucinated an extra multiply inside the second zero
        // run: [1,5,...] became [1,2,1,2,...]. The surviving landmarks
        // still align; the spurious pair is dropped.
        let reference = [1u32, 5, 1, 3, 1];
        let other = [1u32, 2, 1, 2, 1, 3, 1];
        let pairs = align_runs(&reference, &other);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(3, 3)), "later landmarks re-synchronize: {pairs:?}");
        assert!(pairs.len() < reference.len(), "the corrupted run cannot align");
    }

    #[test]
    fn alignment_respects_parity() {
        // A ones-run never aligns with a zeros-run even when lengths match.
        let pairs = align_runs(&[2, 2], &[2]);
        assert_eq!(pairs, vec![(0, 2)]);
    }
}
