//! Shared trace-decoding utilities for the RSA and SRP attacks.
//!
//! Both attacks observe the victim's multiply routine through eviction
//! events. Two microarchitectural facts shape the event stream:
//!
//! 1. Every multiplication produces a *doublet*: the fetch at the call, and
//!    a refetch when the victim's pipeline resumes after the attacker's
//!    machine clear evicted the line mid-operation. The two bursts are one
//!    operation apart.
//! 2. Squares and multiplies cost the same Montgomery-multiplication time,
//!    so all event spacings are near-integer multiples of one operation.
//!
//! The decoder therefore self-calibrates: the *modal* inter-event gap is
//! exactly the one-operation unit (the doublet guarantees this mode), then
//! events within ~1.5 units collapse into per-multiply clusters, and the
//! gaps between cluster starts count operations.

/// Indices of activity-burst starts (consecutive active samples form one
/// burst).
pub fn burst_starts(actives: &[bool]) -> Vec<usize> {
    let mut events = Vec::new();
    let mut prev = false;
    for (i, a) in actives.iter().enumerate() {
        if *a && !prev {
            events.push(i);
        }
        prev = *a;
    }
    events
}

/// The most common inter-event gap — the one-operation unit, thanks to the
/// refetch doublet. Returns `None` for fewer than two events.
pub fn modal_gap(events: &[usize]) -> Option<f64> {
    if events.len() < 2 {
        return None;
    }
    let mut counts = std::collections::HashMap::new();
    for w in events.windows(2) {
        *counts.entry(w[1] - w[0]).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|(gap, count)| (*count, std::cmp::Reverse(*gap)))
        .map(|(gap, _)| gap.max(1) as f64)
}

/// Estimate the one-operation unit by comb fitting: every gap should be a
/// near-integer multiple of the unit. Candidates are fractions of the
/// smallest gap (`g_min / k`); each is refined by a weighted average and
/// scored by the mean distance of `gap / unit` from the nearest integer.
///
/// This handles both regimes: when the refetch doublet is resolvable the
/// smallest gap *is* one unit (`k = 1` wins); when one operation is around
/// one sample, odd/even gap structure selects the right divisor.
pub fn estimate_unit(events: &[usize]) -> Option<f64> {
    if events.len() < 2 {
        return None;
    }
    let gaps: Vec<f64> = events.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
    let g_min = gaps.iter().cloned().fold(f64::MAX, f64::min).max(1.0);
    // Sample quantization makes `unit = 1` fit any integer gap sequence
    // perfectly, so minimal error alone is degenerate: prefer the LARGEST
    // unit whose comb error is acceptable, falling back to minimal error.
    const ACCEPTABLE_ERR: f64 = 0.17;
    let mut fallback: Option<(f64, f64)> = None; // (error, unit)
    for k in 1..=6u32 {
        let mut unit = g_min / k as f64;
        if unit < 0.9 {
            break;
        }
        // Refine: least-squares-style weighted average over assumed
        // multiplicities.
        for _ in 0..3 {
            let mut num = 0.0;
            let mut den = 0.0;
            for g in &gaps {
                let m = (g / unit).round().max(1.0);
                num += g;
                den += m;
            }
            unit = num / den;
        }
        let err = gaps
            .iter()
            .map(|g| {
                let r = g / unit;
                (r - r.round()).abs()
            })
            .sum::<f64>()
            / gaps.len() as f64;
        if err < ACCEPTABLE_ERR {
            return Some(unit);
        }
        if fallback.map_or(true, |(e, _)| err < e) {
            fallback = Some((err, unit));
        }
    }
    fallback.map(|(_, u)| u)
}

/// Collapse events into clusters: a new cluster starts when the gap from
/// the previous event exceeds `threshold` (in samples). Returns cluster
/// start indices.
pub fn cluster_starts(events: &[usize], threshold: f64) -> Vec<usize> {
    let mut out = Vec::new();
    let mut prev: Option<usize> = None;
    for e in events {
        match prev {
            Some(p) if (*e - p) as f64 <= threshold => {}
            _ => out.push(*e),
        }
        prev = Some(*e);
    }
    out
}

/// Per-cluster operation counts: `round(gap / unit)` operations between
/// consecutive cluster starts.
pub fn ops_between_clusters(clusters: &[usize], unit: f64) -> Vec<u32> {
    clusters
        .windows(2)
        .map(|w| (((w[1] - w[0]) as f64) / unit).round().max(1.0) as u32)
        .collect()
}

/// Full pipeline: burst extraction, unit estimation, clustering. Returns
/// `(cluster_starts, unit)` or `None` when fewer than two events exist.
pub fn extract_clusters(actives: &[bool]) -> Option<(Vec<usize>, f64)> {
    let events = burst_starts(actives);
    let unit = estimate_unit(&events)?;
    let clusters = cluster_starts(&events, 1.55 * unit);
    Some((clusters, unit))
}

/// A maximal run of events spaced at most ~1.5 units apart.
///
/// Chains carry structure: every multiply emits a *call* fetch and (after
/// the attacker's machine clear evicted the line mid-operation) a *ret*
/// refetch one unit later — so an isolated multiply is a 2-event chain, and
/// `k` back-to-back multiplies (adjacent set bits / width-1 windows) are a
/// `2k`-event chain at uniform unit spacing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Chain {
    /// Sample index of the first event (the first multiply's call fetch).
    pub first: usize,
    /// Sample index of the last event (the last multiply's ret refetch).
    pub last: usize,
    /// Number of events in the chain.
    pub events: usize,
}

impl Chain {
    /// Multiplications represented by this chain (call/ret event pairs,
    /// rounding up for a lost event).
    pub fn multiplies(&self) -> usize {
        self.events.div_ceil(2)
    }
}

/// Group events into [`Chain`]s with the given spacing threshold.
pub fn chains(events: &[usize], threshold: f64) -> Vec<Chain> {
    let mut out: Vec<Chain> = Vec::new();
    for e in events {
        match out.last_mut() {
            Some(c) if (*e - c.last) as f64 <= threshold => {
                c.last = *e;
                c.events += 1;
            }
            _ => out.push(Chain { first: *e, last: *e, events: 1 }),
        }
    }
    out
}

/// Full chain pipeline: burst extraction, unit estimation, chaining.
pub fn extract_chains(actives: &[bool]) -> Option<(Vec<Chain>, f64)> {
    let events = burst_starts(actives);
    let unit = estimate_unit(&events)?;
    Some((chains(&events, 1.55 * unit), unit))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actives_from_events(events: &[usize], len: usize) -> Vec<bool> {
        let mut v = vec![false; len];
        for e in events {
            v[*e] = true;
        }
        v
    }

    #[test]
    fn burst_extraction_merges_consecutive() {
        let a = [false, true, true, false, true, false, false, true];
        assert_eq!(burst_starts(&a), vec![1, 4, 7]);
    }

    #[test]
    fn modal_gap_finds_doublet_unit() {
        // Doublets at unit 5: events at 0,5 20,25 45,50.
        let events = vec![0, 5, 20, 25, 45, 50];
        assert_eq!(modal_gap(&events), Some(5.0));
        assert_eq!(modal_gap(&[3]), None);
    }

    #[test]
    fn clustering_folds_doublets() {
        let events = vec![0, 5, 20, 25, 45, 50];
        let clusters = cluster_starts(&events, 1.55 * 5.0);
        assert_eq!(clusters, vec![0, 20, 45]);
        // Ops between clusters at unit 5: 4 and 5 operations.
        assert_eq!(ops_between_clusters(&clusters, 5.0), vec![4, 5]);
    }

    #[test]
    fn end_to_end_extraction() {
        // Three multiply doublets at unit 4, cluster starts 3 and 4 ops
        // apart: events (10,14), (22,26), (38,42).
        let events = vec![10, 14, 22, 26, 38, 42];
        let actives = actives_from_events(&events, 48);
        let (clusters, unit) = extract_clusters(&actives).expect("events exist");
        assert!((unit - 4.0).abs() < 0.3, "unit {unit}");
        assert_eq!(clusters, vec![10, 22, 38]);
        assert_eq!(ops_between_clusters(&clusters, unit), vec![3, 4]);
    }

    #[test]
    fn unit_estimation_survives_quantized_regime() {
        // One op per sample: gaps are small integers with odd values
        // present, so the unit must resolve to ~1 sample.
        let events = vec![0, 2, 5, 7, 10, 15, 17, 20];
        let unit = estimate_unit(&events).expect("events exist");
        assert!(unit < 1.4, "unit {unit}");
    }

    #[test]
    fn unit_refinement_tracks_fractional_units() {
        // True unit 3.25: events at round(k * 3.25) for doublet pattern.
        let true_unit = 3.25f64;
        let mults = [0u32, 1, 8, 9, 12, 13, 22, 23, 30, 31];
        let events: Vec<usize> =
            mults.iter().map(|m| (*m as f64 * true_unit).round() as usize).collect();
        let unit = estimate_unit(&events).expect("events exist");
        // Gap rounding injects up to ±0.5-sample noise per event, so the
        // estimate lands near — not exactly on — the fractional unit.
        assert!((unit - true_unit).abs() < 0.45, "unit {unit}");
    }

    #[test]
    fn chains_carry_multiply_counts() {
        // unit 4: isolated mul (10,14), then a '11' run (30,34,38,42),
        // then a lone-call mul with a lost ret (60).
        let events = vec![10, 14, 30, 34, 38, 42, 60];
        let cs = chains(&events, 1.55 * 4.0);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0], Chain { first: 10, last: 14, events: 2 });
        assert_eq!(cs[0].multiplies(), 1);
        assert_eq!(cs[1], Chain { first: 30, last: 42, events: 4 });
        assert_eq!(cs[1].multiplies(), 2);
        assert_eq!(cs[2].multiplies(), 1);
        // Gap from chain end to next chain start measures the squares.
        assert_eq!(cs[1].first - cs[0].last, 16); // 4 ops
    }

    #[test]
    fn no_events_no_clusters() {
        assert!(extract_clusters(&[false; 32]).is_none());
        assert!(extract_clusters(&[false, true, false]).is_none());
    }
}
