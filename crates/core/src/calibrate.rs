//! Hot/cold threshold calibration for each probe class.
//!
//! Mirrors the paper's methodology: measure the probe against a line that
//! is resident in the L1i ("hot" — conflict) and against one that is only
//! in L2 ("cold" — the state a just-evicted or just-probed line is in), and
//! place the decision threshold between the two populations. For classes
//! that trigger the SMC machine clear the hot side is *slower*; for
//! leak-without-SMC classes (paper's ◐) it is *faster*.

use smack_uarch::{Addr, Machine, Placement, ProbeKind, SmcBehavior, StepError, ThreadId};

use crate::oracle::OraclePage;
use crate::probe::Prober;

/// A calibrated probe: class, decision threshold and polarity.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CalibratedProbe {
    /// Probe class.
    pub kind: ProbeKind,
    /// Decision threshold in cycles.
    pub threshold: u64,
    /// `true` when a hot (L1i-resident) line measures *above* the
    /// threshold (SMC-triggering classes); `false` for inverted classes.
    pub hot_is_high: bool,
    /// Mean hot timing observed during calibration.
    pub hot_mean: f64,
    /// Mean cold timing observed during calibration.
    pub cold_mean: f64,
}

impl CalibratedProbe {
    /// Classify one measurement: `true` = the line was hot (L1i-resident).
    pub fn is_hit(&self, cycles: u64) -> bool {
        if self.hot_is_high {
            cycles >= self.threshold
        } else {
            cycles < self.threshold
        }
    }

    /// The separation margin between the calibrated populations.
    pub fn margin(&self) -> f64 {
        (self.hot_mean - self.cold_mean).abs()
    }
}

/// Calibrate `kind` with the default cold state (L2-resident — the state a
/// just-evicted line is in during Prime+iProbe).
///
/// # Errors
///
/// Returns [`StepError::Unsupported`] for instructions the profile lacks.
pub fn calibrate(
    machine: &mut Machine,
    tid: ThreadId,
    kind: ProbeKind,
    scratch: Addr,
    samples: usize,
) -> Result<CalibratedProbe, StepError> {
    calibrate_with_cold(machine, tid, kind, scratch, samples, Placement::L2)
}

/// Calibrate `kind` on this machine using a scratch oracle at `scratch`
/// (line-aligned, unused address range), with `samples` per state and an
/// explicit cold placement (Flush+iReload probes see flushed-to-DRAM lines
/// as cold; Prime+iProbe sees L2-resident lines).
///
/// # Errors
///
/// Returns [`StepError::Unsupported`] for instructions the profile lacks.
pub fn calibrate_with_cold(
    machine: &mut Machine,
    tid: ThreadId,
    kind: ProbeKind,
    scratch: Addr,
    samples: usize,
    cold: Placement,
) -> Result<CalibratedProbe, StepError> {
    let oracle = OraclePage::build(scratch, 1);
    oracle.install(machine);
    let line = oracle.line(0);
    machine.warm_tlb(tid, line);
    let mut prober = Prober::new(tid);
    let mut hot_sum = 0u64;
    let mut cold_sum = 0u64;
    for _ in 0..samples {
        machine.place_line(line, Placement::L1i);
        hot_sum += prober.measure(machine, kind, line)?.cycles;
        machine.place_line(line, cold);
        cold_sum += prober.measure(machine, kind, line)?.cycles;
    }
    let hot_mean = hot_sum as f64 / samples as f64;
    let cold_mean = cold_sum as f64 / samples as f64;
    let behavior = machine.profile().smc.get(kind);
    let hot_is_high = match behavior {
        SmcBehavior::Triggers => true,
        _ => hot_mean >= cold_mean,
    };
    let threshold = ((hot_mean + cold_mean) / 2.0).round() as u64;
    Ok(CalibratedProbe { kind, threshold, hot_is_high, hot_mean, cold_mean })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::MicroArch;

    const T0: ThreadId = ThreadId::T0;

    #[test]
    fn smc_classes_calibrate_hot_high_with_wide_margin() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        for kind in [ProbeKind::Store, ProbeKind::Flush, ProbeKind::Lock, ProbeKind::Clwb] {
            let c = calibrate(&mut m, T0, kind, Addr(0x3_0000), 20).unwrap();
            assert!(c.hot_is_high, "{kind}");
            assert!(c.margin() > 100.0, "{kind}: margin {}", c.margin());
            assert!(c.is_hit((c.hot_mean + 1.0) as u64));
            assert!(!c.is_hit((c.cold_mean + 1.0) as u64));
        }
    }

    #[test]
    fn execute_class_has_small_margin_on_l2() {
        // The Mastik problem: L1i vs L2 differ by only a couple of cycles.
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let c = calibrate(&mut m, T0, ProbeKind::Execute, Addr(0x3_0000), 20).unwrap();
        assert!(c.margin() < 10.0, "execute margin {}", c.margin());
    }

    #[test]
    fn calibration_is_deterministic_without_noise() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let a = calibrate(&mut m, T0, ProbeKind::Store, Addr(0x3_0000), 10).unwrap();
        let b = calibrate(&mut m, T0, ProbeKind::Store, Addr(0x3_0000), 10).unwrap();
        assert_eq!(a.threshold, b.threshold);
    }
}
