//! Case Study II steps 1–2: library-version fingerprinting and
//! multiplication-set detection (paper §5.2, Figure 4's feature vectors).
//!
//! The attacker sweeps all 64 L1i sets with Prime+iStore, counting
//! activities per set while the victim's decryption loop runs. The 64-dim
//! activity vector fingerprints the library version (kNN, k=3, Euclidean —
//! exactly the paper's model), and a binary kNN over per-set activity
//! statistics finds the multiplication set.

use rand::SeedableRng;
use smack_ml::{cross_validate, KnnClassifier, Sample};
use smack_uarch::{Machine, MicroArch, NoiseConfig, ProbeKind, ThreadId};
use smack_victims::corpus::{build_victim, LibraryVersion};

use crate::calibrate::calibrate;
use crate::oracle::{EvictionSet, OraclePage};
use crate::probe::Prober;

const ATTACKER: ThreadId = ThreadId::T0;
const VICTIM: ThreadId = ThreadId::T1;
const EVSET_BASE: u64 = 0x0a30_0000;
const VICTIM_BASE: u64 = 0x0700_0000;
const SCRATCH: u64 = 0x0d30_0000;

/// Fingerprinting configuration.
#[derive(Copy, Clone, Debug)]
pub struct SweepConfig {
    /// Probe class (the paper uses Prime+iStore).
    pub kind: ProbeKind,
    /// Samples collected per set (the paper uses 100 per set).
    pub samples_per_set: usize,
    /// Wait between prime and probe.
    pub wait_cycles: u64,
    /// Noise model.
    pub noise: NoiseConfig,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            kind: ProbeKind::Store,
            samples_per_set: 10,
            wait_cycles: 700,
            noise: NoiseConfig::realistic(),
        }
    }
}

/// Sweep all 64 L1i sets while a library victim runs; returns the per-set
/// activity counts (the kNN feature vector).
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn activity_vector(
    arch: MicroArch,
    version: &LibraryVersion,
    key_seed: u64,
    cfg: &SweepConfig,
    seed: u64,
) -> Result<Vec<f64>, String> {
    let mut m = Machine::with_noise(arch.profile(), cfg.noise, seed);
    let victim = build_victim(version, VICTIM_BASE, key_seed);
    m.load_program(&victim.program);

    // One shared oracle region covers every set (64 sets x 8 ways).
    let sets = m.l1i_sets();
    let ways = m.l1i_ways();
    let region = OraclePage::build(smack_uarch::Addr(EVSET_BASE), sets * ways);
    region.install(&mut m);
    let cal = calibrate(&mut m, ATTACKER, cfg.kind, smack_uarch::Addr(SCRATCH), 10)
        .map_err(|e| e.to_string())?;
    let mut prober = Prober::new(ATTACKER);

    // Keep the decryption loop running throughout the sweep.
    m.start_program(VICTIM, victim.entry, &[u64::MAX / 2]);

    let mut vector = Vec::with_capacity(sets);
    for set in 0..sets {
        let ev = EvictionSet::build(EVSET_BASE, set, ways);
        for w in ev.ways() {
            m.warm_tlb(ATTACKER, *w);
        }
        let mut activity = 0u32;
        for _ in 0..cfg.samples_per_set {
            ev.prime(&mut m, &mut prober).map_err(|e| e.to_string())?;
            prober.wait(&mut m, cfg.wait_cycles).map_err(|e| e.to_string())?;
            let timings = ev.probe(&mut m, &mut prober, cfg.kind).map_err(|e| e.to_string())?;
            if timings.iter().any(|t| !cal.is_hit(*t)) {
                activity += 1;
            }
        }
        vector.push(activity as f64);
    }
    m.park(VICTIM);
    Ok(vector)
}

/// Report from the library-identification experiment.
#[derive(Clone, Debug)]
pub struct LibraryIdReport {
    /// Offline cross-validation accuracy (paper: 100%).
    pub cv_accuracy: f64,
    /// Online single-measurement identification accuracy (paper: 97%).
    pub online_accuracy: f64,
    /// Number of library versions classified.
    pub versions: usize,
}

/// Run the full library-identification experiment over `versions`, with
/// `offline_per_version` training measurements and `online_per_version`
/// held-out identification attempts.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn library_id_experiment(
    arch: MicroArch,
    versions: &[LibraryVersion],
    offline_per_version: usize,
    online_per_version: usize,
    cfg: &SweepConfig,
) -> Result<LibraryIdReport, String> {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (label, version) in versions.iter().enumerate() {
        for k in 0..offline_per_version {
            let v = activity_vector(arch, version, k as u64, cfg, 100 + k as u64)?;
            train.push(Sample::new(v, label));
        }
        for k in 0..online_per_version {
            let v = activity_vector(arch, version, 1000 + k as u64, cfg, 900 + k as u64)?;
            test.push(Sample::new(v, label));
        }
    }
    let mut cv_rng = rand::rngs::SmallRng::seed_from_u64(7);
    let cv_accuracy = cross_validate(&train, 3, 3, &mut cv_rng);
    let model = KnnClassifier::fit(3, train);
    let online_accuracy = model.accuracy(&test);
    Ok(LibraryIdReport { cv_accuracy, online_accuracy, versions: versions.len() })
}

/// Step 2: detect which set hosts the multiplication routine. Collects
/// per-set activity while an RSA victim decrypts and classifies
/// mul-set vs other-set feature vectors with a binary kNN.
///
/// Returns the detection accuracy on a held-out split.
///
/// # Errors
///
/// Returns a message on simulator errors.
pub fn mul_set_detection_accuracy(
    arch: MicroArch,
    measurements_per_class: usize,
    cfg: &SweepConfig,
) -> Result<f64, String> {
    use smack_crypto::Bignum;
    use smack_victims::modexp::{ModexpAlgorithm, ModexpVictimBuilder};

    let mut samples = Vec::new();
    for i in 0..measurements_per_class {
        // Fresh machine + victim per measurement, with varying keys.
        let mul_set = 8 + (i * 7) % 48;
        let other_set = (mul_set + 17) % 64;
        let mut builder = ModexpVictimBuilder::new(ModexpAlgorithm::BinaryLtr);
        builder.mul_set(mul_set).sqr_set((mul_set + 31) % 64).operand_bits(2048);
        let victim = builder.build();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(500 + i as u64);
        let exp = Bignum::random_bits(&mut rng, 96);

        for (set, label) in [(mul_set, 1usize), (other_set, 0usize)] {
            let mut m = Machine::with_noise(arch.profile(), cfg.noise, 42 + i as u64);
            m.load_program(&victim.program);
            let ev = EvictionSet::for_machine(&m, EVSET_BASE, set);
            ev.install(&mut m);
            for w in ev.ways() {
                m.warm_tlb(ATTACKER, *w);
            }
            let cal = calibrate(&mut m, ATTACKER, cfg.kind, smack_uarch::Addr(SCRATCH), 8)
                .map_err(|e| e.to_string())?;
            let mut prober = Prober::new(ATTACKER);
            victim.start(&mut m, VICTIM, &exp);
            let mut activity = 0u32;
            let mut total = 0u32;
            while m.state(VICTIM) == smack_uarch::ThreadState::Running && total < 400 {
                ev.prime(&mut m, &mut prober).map_err(|e| e.to_string())?;
                prober.wait(&mut m, cfg.wait_cycles).map_err(|e| e.to_string())?;
                let t = ev.probe(&mut m, &mut prober, cfg.kind).map_err(|e| e.to_string())?;
                if t.iter().any(|x| !cal.is_hit(*x)) {
                    activity += 1;
                }
                total += 1;
            }
            let rate = activity as f64 / total.max(1) as f64;
            samples.push(Sample::new(vec![activity as f64, rate * 100.0], label));
        }
    }
    let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
    let (train, test) = smack_ml::train_test_split(samples, 0.8, &mut rng);
    let model = KnnClassifier::fit(3, train);
    Ok(model.accuracy(&test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_victims::corpus::corpus;

    #[test]
    fn activity_vectors_reflect_library_layout() {
        let c = corpus();
        let cfg = SweepConfig { samples_per_set: 6, ..SweepConfig::default() };
        let v = activity_vector(MicroArch::TigerLake, &c[0], 0, &cfg, 1).unwrap();
        assert_eq!(v.len(), 64);
        let total: f64 = v.iter().sum();
        assert!(total > 0.0, "victim activity must be visible");
        // The hot sets of the layout should rank among the most active.
        let layout = build_victim(&c[0], VICTIM_BASE, 0).layout;
        let hottest_layout_set = layout.iter().max_by_key(|(_, i)| *i).expect("nonempty").0;
        let measured_rank = {
            let mut idx: Vec<usize> = (0..64).collect();
            idx.sort_by(|a, b| v[*b].partial_cmp(&v[*a]).expect("finite"));
            idx.iter().position(|s| *s == hottest_layout_set).expect("set present")
        };
        assert!(measured_rank < 24, "hottest layout set ranked {measured_rank}");
    }

    #[test]
    fn distinct_versions_produce_distinct_vectors() {
        let c = corpus();
        let cfg = SweepConfig { samples_per_set: 6, ..SweepConfig::default() };
        let a = activity_vector(MicroArch::TigerLake, &c[0], 0, &cfg, 1).unwrap();
        let b = activity_vector(MicroArch::TigerLake, &c[20], 0, &cfg, 1).unwrap();
        let dist = smack_ml::euclidean(&a, &b);
        assert!(dist > 3.0, "distance {dist}");
    }

    #[test]
    fn small_library_id_experiment_classifies_well() {
        let c = corpus();
        let subset: Vec<_> = c.into_iter().step_by(9).collect(); // 4 versions
        let cfg = SweepConfig { samples_per_set: 6, ..SweepConfig::default() };
        // The paper uses 8 offline measurements per version; a kNN with
        // k=3 needs at least ~5 per class for folds to keep a same-class
        // majority available.
        let report = library_id_experiment(MicroArch::TigerLake, &subset, 5, 1, &cfg).unwrap();
        assert!(report.online_accuracy >= 0.75, "online {}", report.online_accuracy);
        assert!(report.cv_accuracy >= 0.7, "cv {}", report.cv_accuracy);
    }

    #[test]
    fn mul_set_detection_beats_chance() {
        let cfg = SweepConfig { samples_per_set: 6, ..SweepConfig::default() };
        let acc = mul_set_detection_accuracy(MicroArch::TigerLake, 6, &cfg).unwrap();
        assert!(acc >= 0.7, "accuracy {acc}");
    }
}
