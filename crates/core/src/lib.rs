//! # smack
//!
//! The SMaCk attack layer: everything from the paper's §4 and §5 built on
//! the `smack-uarch` simulator.
//!
//! * [`probe`]: the nine timed probe primitives of Listing 2, with the
//!   `mfence; rdtsc; op; mfence; rdtsc` measurement harness.
//! * [`oracle`]: oracle code pages (Listing 1) and L1i eviction sets.
//! * [`characterize`]: the Figure 1 timing characterization and the
//!   Figure 2 performance-counter reverse engineering.
//! * [`calibrate`]: hot/cold threshold calibration for each probe class.
//! * [`session`]: the session layer — a pool of reset-and-reuse machines
//!   plus a calibration cache keyed by
//!   `(profile, probe class, cold placement, noise)`, so a campaign
//!   calibrates once per microarchitecture instead of once per trial.
//! * [`channel`]: Prime+iProbe and Flush+iReload covert channels (Table 1,
//!   Figure 3).
//! * [`rsa`]: the RSA key-recovery attack of Case Study II (Figures 4, 5).
//! * [`srp`]: the OpenSSL SRP single-trace attack of Case Study III
//!   (Figure 6, Table 2).
//! * [`ispectre`]: the ISpectre transient-execution attack of Case Study IV
//!   (Tables 3, 4).
//! * [`fingerprint`]: library-version fingerprinting and multiplication-set
//!   detection (Case Study II steps 1–2).

pub mod calibrate;
pub mod channel;
pub mod characterize;
pub mod decode;
pub mod fingerprint;
pub mod ispectre;
pub mod oracle;
pub mod probe;
pub mod rsa;
pub mod session;
pub mod srp;

pub use calibrate::{calibrate, calibrate_with_cold, CalibratedProbe};
pub use channel::{run_channel, ChannelFamily, ChannelReport, ChannelSpec};
pub use oracle::{EvictionSet, OraclePage};
pub use probe::Prober;
pub use session::{CalibrationCache, Scenario, Session, Sessions};
