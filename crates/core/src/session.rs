//! The session layer: reusable machines plus a profile-keyed calibration
//! cache.
//!
//! SMaCk's methodology calibrates a probe's hot/cold decision threshold
//! **once per microarchitecture** and reuses it for the whole campaign
//! (paper §4, Figure 1) — the same one-time threshold discipline
//! Flush+Flush uses for its decision boundary. The experiment harnesses,
//! by contrast, historically paid a full `Machine` construction *and* a
//! fresh calibration pass per trial. This module separates experiment
//! *definition* from *execution*:
//!
//! * a [`Scenario`] says what a trial needs — microarchitecture (or an
//!   ablation-perturbed custom profile), noise model, machine seed;
//! * a [`Sessions`] registry owns a [`MachinePool`] of reset-and-reuse
//!   machines and a [`CalibrationCache`] of [`CalibratedProbe`]s computed
//!   once per `(profile, probe class, cold placement, noise)`;
//! * a [`Session`] is one checked-out machine plus access to the shared
//!   caches — what every trial closure receives.
//!
//! Calibration is computed on a *separate* pooled machine with a fixed
//! seed, never on the trial machine, so (a) the cached value is a pure
//! function of its key — a cache hit and a fresh computation are equal by
//! construction — and (b) a trial's RNG stream is identical whether its
//! calibration was a hit or a miss, which keeps parallel experiment output
//! bit-identical to sequential output. Ablations that perturb probe costs
//! get distinct profile fingerprints (and can force the issue with
//! [`Session::recalibrate`]).
//!
//! The cache optionally persists to disk ([`CalibrationCache::attach_disk`];
//! `SMACK_CALIB_DIR` attaches it to [`Sessions::global`]): one versioned,
//! profile-fingerprint-keyed file per microarchitecture, written when a
//! calibration is computed and consulted before computing. Sharded harness
//! runs point every worker process at the same directory so calibration
//! stays warm across processes, not just across trials — and because each
//! entry is a pure function of its key, loading a persisted value instead
//! of recomputing is unobservable in experiment output.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use smack_uarch::{
    Addr, Machine, MachinePool, MicroArch, NoiseConfig, Placement, PooledMachine, ProbeKind,
    StepError, ThreadId, UarchProfile,
};

use crate::calibrate::{calibrate_with_cold, CalibratedProbe};

/// Seed for the dedicated calibration machines. Fixed so that a cached
/// calibration is a deterministic function of its cache key alone.
const CAL_SEED: u64 = 0xca11b;

/// Samples per state for session calibrations (matches the covert-channel
/// harness's historical sample count, the largest in the tree).
const CAL_SAMPLES: usize = 16;

/// Scratch oracle address for session calibrations (line-aligned, in the
/// same unused range the per-attack scratch constants live in).
const CAL_SCRATCH: Addr = Addr(0x0dca_0000);

/// Calibration machines always probe from thread 0, like every attacker
/// in the tree.
const CAL_THREAD: ThreadId = ThreadId::T0;

/// What one experiment trial needs from the session layer: which machine
/// to simulate, under which noise model, from which seed.
///
/// `Scenario::new(arch)` mirrors `Machine::new(profile)` — quiet noise and
/// the same default seed — so refactoring a `Machine::new` call site to a
/// scenario preserves its output bit-for-bit.
#[derive(Clone, Debug)]
pub struct Scenario {
    arch: MicroArch,
    profile: Option<UarchProfile>,
    noise: NoiseConfig,
    seed: u64,
}

/// `Machine::new`'s noise seed, kept in sync so scenario-built machines
/// match `Machine::new` exactly.
const DEFAULT_SEED: u64 = 0x5eed;

impl Scenario {
    /// A scenario on the stock profile for `arch`, with quiet noise and
    /// the `Machine::new` default seed.
    pub fn new(arch: MicroArch) -> Scenario {
        Scenario { arch, profile: None, noise: NoiseConfig::quiet(), seed: DEFAULT_SEED }
    }

    /// A scenario on a custom (e.g. ablation-perturbed) profile.
    pub fn custom(profile: UarchProfile) -> Scenario {
        Scenario {
            arch: profile.arch,
            profile: Some(profile),
            noise: NoiseConfig::quiet(),
            seed: DEFAULT_SEED,
        }
    }

    /// Replace the noise model.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Scenario {
        self.noise = noise;
        self
    }

    /// Replace the machine seed.
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// The microarchitecture.
    pub fn arch(&self) -> MicroArch {
        self.arch
    }

    /// The noise model.
    pub fn noise(&self) -> NoiseConfig {
        self.noise
    }

    /// The machine seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The full profile (custom if set, stock otherwise).
    pub fn profile(&self) -> UarchProfile {
        self.profile.clone().unwrap_or_else(|| self.arch.profile())
    }
}

/// Cache key: everything a calibration result depends on.
type CalKey = (u64, ProbeKind, Placement, u64);

/// Format version of the on-disk calibration files. Bump whenever the
/// calibration algorithm or the serialization changes; files with any
/// other version are ignored (and rewritten on the next store).
const DISK_FORMAT_VERSION: u32 = 1;

/// One profile's on-disk entries, ordered by `(kind, cold, noise)` so the
/// serialized file is byte-identical no matter which order the entries
/// were computed in.
type DiskEntries = BTreeMap<(usize, usize, u64), Result<CalibratedProbe, StepError>>;

/// The optional on-disk layer behind [`CalibrationCache`]: one versioned
/// file per profile fingerprint under the attached directory, written
/// whenever a calibration is computed and loaded (once per profile per
/// process) before computing — so a shard process spawned after another
/// has warmed the cache starts with every calibration already solved.
#[derive(Debug)]
struct DiskLayer {
    dir: PathBuf,
    /// Profile fingerprints whose file has been read this process.
    loaded: HashSet<u64>,
    /// In-memory mirror of each profile file (for whole-file rewrites).
    entries: HashMap<u64, DiskEntries>,
}

impl DiskLayer {
    fn file_for(&self, profile_fp: u64) -> PathBuf {
        self.dir.join(format!("v{DISK_FORMAT_VERSION}-{profile_fp:016x}.calib"))
    }

    /// Read a profile's file into the mirror, once per process. Corrupt,
    /// missing or version-mismatched files are treated as empty.
    fn ensure_loaded(&mut self, profile_fp: u64) {
        if !self.loaded.insert(profile_fp) {
            return;
        }
        let path = self.file_for(profile_fp);
        let entries = self.entries.entry(profile_fp).or_default();
        for (key, value) in read_profile_file(&path, profile_fp) {
            entries.entry(key).or_insert(value);
        }
    }

    /// Rewrite a profile's file atomically, merged with whatever is on
    /// disk *right now*. Concurrent workers sharing one `SMACK_CALIB_DIR`
    /// race here: each re-reads the file, folds its own entries over it,
    /// and renames a fresh temp file into place. Losing the rename race
    /// only means the winner's superset (values are pure functions of
    /// their key, so merge order cannot change any value) — never a lost
    /// update and never an error.
    fn persist(&self, profile_fp: u64) {
        let Some(entries) = self.entries.get(&profile_fp) else {
            return;
        };
        let path = self.file_for(profile_fp);
        let mut merged: DiskEntries = read_profile_file(&path, profile_fp).into_iter().collect();
        for (key, value) in entries {
            merged.insert(*key, value.clone());
        }
        let mut out =
            format!("# smack calibration cache v{DISK_FORMAT_VERSION} {profile_fp:016x}\n");
        for (key, value) in &merged {
            out.push_str(&serialize_disk_entry(*key, value));
            out.push('\n');
        }
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let tmp = self.dir.join(format!(".tmp-{:016x}-{}", profile_fp, std::process::id()));
        if std::fs::write(&tmp, out).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }
}

/// Parse a profile's on-disk cache file. Corrupt, missing or
/// version-mismatched files read as empty; corrupt lines are skipped.
/// Shared by the load path and the persist-time merge so both sides
/// agree on what the file says.
fn read_profile_file(path: &Path, profile_fp: u64) -> Vec<DiskEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut lines = text.lines();
    let header = format!("# smack calibration cache v{DISK_FORMAT_VERSION} {profile_fp:016x}");
    if lines.next() != Some(header.as_str()) {
        return Vec::new();
    }
    lines.filter_map(parse_disk_entry).collect()
}

/// Stable index of a cold placement for serialization.
fn placement_index(p: Placement) -> usize {
    Placement::ALL.iter().position(|x| *x == p).expect("placement is in ALL")
}

/// `<kind> <cold> <noise> ok <threshold> <hot_is_high> <hot_mean> <cold_mean>`
/// or `<kind> <cold> <noise> unsupported <kind>`; floats as exact bit
/// patterns, everything else decimal/hex.
fn serialize_disk_entry(
    (kind, cold, noise): (usize, usize, u64),
    value: &Result<CalibratedProbe, StepError>,
) -> String {
    match value {
        Ok(c) => format!(
            "{kind} {cold} {noise:016x} ok {} {} {:016x} {:016x}",
            c.threshold,
            u8::from(c.hot_is_high),
            c.hot_mean.to_bits(),
            c.cold_mean.to_bits()
        ),
        Err(StepError::Unsupported { kind: k }) => {
            format!("{kind} {cold} {noise:016x} unsupported {}", k.index())
        }
        // Other errors are not deterministic cache material; they are
        // filtered out before reaching the disk layer.
        Err(_) => unreachable!("only Unsupported errors are persisted"),
    }
}

/// One parsed disk line: the `(kind, cold, noise)` key plus its value.
type DiskEntry = ((usize, usize, u64), Result<CalibratedProbe, StepError>);

fn parse_disk_entry(line: &str) -> Option<DiskEntry> {
    let mut f = line.split_ascii_whitespace();
    let kind_idx = f.next()?.parse::<usize>().ok()?;
    let cold_idx = f.next()?.parse::<usize>().ok()?;
    let noise = u64::from_str_radix(f.next()?, 16).ok()?;
    if kind_idx >= ProbeKind::ALL.len() || cold_idx >= Placement::ALL.len() {
        return None;
    }
    let value = match f.next()? {
        "ok" => {
            let threshold = f.next()?.parse::<u64>().ok()?;
            let hot_is_high = f.next()? == "1";
            let hot_mean = f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?);
            let cold_mean = f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?);
            Ok(CalibratedProbe {
                kind: ProbeKind::ALL[kind_idx],
                threshold,
                hot_is_high,
                hot_mean,
                cold_mean,
            })
        }
        "unsupported" => {
            let k = f.next()?.parse::<usize>().ok()?;
            if k >= ProbeKind::ALL.len() {
                return None;
            }
            Err(StepError::Unsupported { kind: ProbeKind::ALL[k] })
        }
        _ => return None,
    };
    if f.next().is_some() {
        return None;
    }
    Some(((kind_idx, cold_idx, noise), value))
}

/// One per-key compute slot. The `OnceLock` serializes concurrent misses
/// on the *same* key (the second thread blocks and reads the first's
/// result) while leaving distinct keys fully parallel — so a calibration
/// really runs at most once per key per process.
type CalSlot = Arc<OnceLock<Result<CalibratedProbe, StepError>>>;

/// The process-wide store of [`CalibratedProbe`]s, keyed by
/// `(profile fingerprint, probe class, cold placement, noise)`.
///
/// Unsupported-probe errors are cached too: they are just as deterministic
/// as successful calibrations, and an experiment sweeping all probe
/// classes hits the `×` cells repeatedly.
#[derive(Debug, Default)]
pub struct CalibrationCache {
    slots: Mutex<HashMap<CalKey, CalSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk: Mutex<Option<DiskLayer>>,
}

impl CalibrationCache {
    /// An empty cache.
    pub fn new() -> CalibrationCache {
        CalibrationCache::default()
    }

    /// Attach the persistent on-disk layer rooted at `dir` (one versioned
    /// file per profile fingerprint). From now on, a lookup that misses in
    /// memory consults the directory before calibrating, and every
    /// computed calibration is written back — so subsequent processes
    /// (e.g. later shards of a sharded run) start warm. Because a cached
    /// value is a pure function of its key, attaching the layer never
    /// changes any experiment output.
    pub fn attach_disk(&self, dir: impl Into<PathBuf>) {
        *self.disk.lock().expect("calibration disk layer poisoned") =
            Some(DiskLayer { dir: dir.into(), loaded: HashSet::new(), entries: HashMap::new() });
    }

    /// The attached disk directory, if any.
    pub fn disk_dir(&self) -> Option<PathBuf> {
        self.disk.lock().expect("calibration disk layer poisoned").as_ref().map(|d| d.dir.clone())
    }

    /// Lookups served from the in-memory cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run a calibration so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups served from the persistent on-disk layer so far (loaded
    /// instead of computed; counted once per key per process).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Disk-layer lookup for one key (loading the profile's file on first
    /// touch).
    fn disk_lookup(&self, key: CalKey) -> Option<Result<CalibratedProbe, StepError>> {
        let mut guard = self.disk.lock().expect("calibration disk layer poisoned");
        let layer = guard.as_mut()?;
        let (profile_fp, kind, cold, noise) = key;
        layer.ensure_loaded(profile_fp);
        layer.entries.get(&profile_fp)?.get(&(kind.index(), placement_index(cold), noise)).cloned()
    }

    /// Write one computed entry through to the disk layer (no-op without
    /// one, or for error values other than `Unsupported`, which are the
    /// only deterministic errors).
    fn disk_store(&self, key: CalKey, value: &Result<CalibratedProbe, StepError>) {
        if matches!(value, Err(e) if !matches!(e, StepError::Unsupported { .. })) {
            return;
        }
        let mut guard = self.disk.lock().expect("calibration disk layer poisoned");
        let Some(layer) = guard.as_mut() else {
            return;
        };
        let (profile_fp, kind, cold, noise) = key;
        layer.ensure_loaded(profile_fp);
        layer
            .entries
            .entry(profile_fp)
            .or_default()
            .insert((kind.index(), placement_index(cold), noise), value.clone());
        layer.persist(profile_fp);
    }

    /// Distinct keys resident in the cache.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("calibration cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot(&self, key: CalKey) -> CalSlot {
        self.slots.lock().expect("calibration cache poisoned").entry(key).or_default().clone()
    }

    fn replace(&self, key: CalKey, value: Result<CalibratedProbe, StepError>) {
        let slot: CalSlot = Arc::default();
        slot.set(value).expect("fresh slot is empty");
        self.slots.lock().expect("calibration cache poisoned").insert(key, slot);
    }
}

/// The shared session registry: one machine pool plus one calibration
/// cache. Experiment harnesses use the process-wide [`Sessions::global`];
/// tests build private registries to observe counters in isolation.
#[derive(Debug, Default)]
pub struct Sessions {
    pool: MachinePool,
    calibrations: CalibrationCache,
}

impl Sessions {
    /// An empty registry.
    pub fn new() -> Sessions {
        Sessions::default()
    }

    /// The process-wide registry. All `fig*`/`table*` experiments draw
    /// from this one, so machine reuse and cached calibrations span the
    /// whole `all` run: calibration cost drops from
    /// O(trials × probe classes) to O(profiles × probe classes).
    ///
    /// When the `SMACK_CALIB_DIR` environment variable names a directory,
    /// the persistent calibration layer is attached on first use — the
    /// mechanism sharded harness runs use to share calibrations across
    /// their worker processes (see [`CalibrationCache::attach_disk`]).
    pub fn global() -> &'static Sessions {
        static GLOBAL: OnceLock<Sessions> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let sessions = Sessions::new();
            if let Ok(dir) = std::env::var("SMACK_CALIB_DIR") {
                if !dir.is_empty() {
                    sessions.attach_disk_cache(dir);
                }
            }
            sessions
        })
    }

    /// Attach the persistent calibration layer rooted at `dir` — see
    /// [`CalibrationCache::attach_disk`].
    pub fn attach_disk_cache(&self, dir: impl AsRef<Path>) {
        self.calibrations.attach_disk(dir.as_ref().to_path_buf());
    }

    /// Check out a session for `scenario`: a pooled machine in the exact
    /// `Machine::with_noise(profile, noise, seed)` state plus access to
    /// the shared calibration cache.
    pub fn session(&self, scenario: &Scenario) -> Session<'_> {
        let profile = scenario.profile();
        let profile_fp = profile.fingerprint();
        let machine = self.pool.checkout(&profile, scenario.noise, scenario.seed);
        Session { machine, owner: self, scenario: scenario.clone(), profile_fp }
    }

    /// The machine pool (for stats and diagnostics).
    pub fn pool(&self) -> &MachinePool {
        &self.pool
    }

    /// The calibration cache (for stats and diagnostics).
    pub fn calibrations(&self) -> &CalibrationCache {
        &self.calibrations
    }

    fn calibrated(
        &self,
        scenario: &Scenario,
        profile_fp: u64,
        kind: ProbeKind,
        cold: Placement,
        noise: NoiseConfig,
    ) -> Result<CalibratedProbe, StepError> {
        let key = (profile_fp, kind, cold, noise.fingerprint());
        let slot = self.calibrations.slot(key);
        // 0 = served from memory, 1 = loaded from disk, 2 = computed.
        let mut outcome = 0u8;
        let result = slot.get_or_init(|| {
            if let Some(loaded) = self.calibrations.disk_lookup(key) {
                outcome = 1;
                loaded
            } else {
                outcome = 2;
                let computed = self.compute(scenario, kind, cold, noise);
                self.calibrations.disk_store(key, &computed);
                computed
            }
        });
        match outcome {
            0 => self.calibrations.hits.fetch_add(1, Ordering::Relaxed),
            1 => self.calibrations.disk_hits.fetch_add(1, Ordering::Relaxed),
            _ => self.calibrations.misses.fetch_add(1, Ordering::Relaxed),
        };
        result.clone()
    }

    fn recalibrated(
        &self,
        scenario: &Scenario,
        profile_fp: u64,
        kind: ProbeKind,
        cold: Placement,
        noise: NoiseConfig,
    ) -> Result<CalibratedProbe, StepError> {
        let key = (profile_fp, kind, cold, noise.fingerprint());
        let result = self.compute(scenario, kind, cold, noise);
        self.calibrations.misses.fetch_add(1, Ordering::Relaxed);
        self.calibrations.replace(key, result.clone());
        self.calibrations.disk_store(key, &result);
        result
    }

    /// Run one calibration on a dedicated pooled machine with the fixed
    /// [`CAL_SEED`], so the result depends only on (profile, kind, cold,
    /// noise) — never on trial state.
    fn compute(
        &self,
        scenario: &Scenario,
        kind: ProbeKind,
        cold: Placement,
        noise: NoiseConfig,
    ) -> Result<CalibratedProbe, StepError> {
        let profile = scenario.profile();
        let mut machine = self.pool.checkout(&profile, noise, CAL_SEED);
        calibrate_with_cold(&mut machine, CAL_THREAD, kind, CAL_SCRATCH, CAL_SAMPLES, cold)
    }
}

/// One trial's execution context: a pooled machine plus the shared
/// calibration cache. Obtained from [`Sessions::session`]; the machine
/// returns to the pool when the session drops.
#[derive(Debug)]
pub struct Session<'s> {
    machine: PooledMachine<'s>,
    owner: &'s Sessions,
    scenario: Scenario,
    profile_fp: u64,
}

impl Session<'_> {
    /// The machine, in whatever state the trial has driven it to.
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The scenario this session was checked out for (its seed tracks
    /// [`Session::renew`]).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Reset the machine to the cold start state under a new seed — the
    /// in-trial equivalent of checking out a fresh session, used by
    /// experiments that collect several independent traces per trial.
    pub fn renew(&mut self, seed: u64) {
        self.scenario.seed = seed;
        self.machine.reset(self.scenario.noise, seed);
    }

    /// Guard for the `_in` attack entry points: the session must have
    /// been checked out under the attack config's noise model, or cached
    /// calibrations and the machine's RNG stream would silently disagree
    /// with the config. A hard error (not a debug assertion) because the
    /// harnesses only ever run in release builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn require_noise(&self, noise: NoiseConfig) -> Result<(), String> {
        if self.scenario.noise.fingerprint() == noise.fingerprint() {
            Ok(())
        } else {
            Err(format!(
                "session noise {:?} does not match the attack's noise model {:?}",
                self.scenario.noise, noise
            ))
        }
    }

    /// The cached [`CalibratedProbe`] for `(profile, kind, cold)` under
    /// the scenario's noise model, calibrating on a dedicated machine on
    /// first use. Never touches this session's machine or RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Unsupported`] (cached, like successes) when
    /// the profile lacks the probe instruction.
    pub fn calibrated(
        &self,
        kind: ProbeKind,
        cold: Placement,
    ) -> Result<CalibratedProbe, StepError> {
        self.calibrated_for(kind, cold, self.scenario.noise)
    }

    /// Like [`Session::calibrated`], but under an explicit noise model —
    /// for harnesses that switch the machine's noise after checkout (the
    /// covert channels force `noisy`).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Unsupported`] when the profile lacks the
    /// probe instruction.
    pub fn calibrated_for(
        &self,
        kind: ProbeKind,
        cold: Placement,
        noise: NoiseConfig,
    ) -> Result<CalibratedProbe, StepError> {
        self.owner.calibrated(&self.scenario, self.profile_fp, kind, cold, noise)
    }

    /// Force a fresh calibration and overwrite the cache entry — the
    /// escape hatch for ablations that perturb probe costs behind the
    /// cache's back (a perturbed *profile* already gets its own key; this
    /// is for perturbations the profile fingerprint cannot see).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Unsupported`] when the profile lacks the
    /// probe instruction.
    pub fn recalibrate(
        &self,
        kind: ProbeKind,
        cold: Placement,
    ) -> Result<CalibratedProbe, StepError> {
        self.owner.recalibrated(&self.scenario, self.profile_fp, kind, cold, self.scenario.noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_defaults_mirror_machine_new() {
        let s = Scenario::new(MicroArch::CascadeLake);
        assert_eq!(s.seed(), 0x5eed);
        assert_eq!(s.noise().fingerprint(), NoiseConfig::quiet().fingerprint());
    }

    #[test]
    fn calibration_runs_once_per_key() {
        let sessions = Sessions::new();
        let scenario = Scenario::new(MicroArch::CascadeLake);
        let mut probes = Vec::new();
        for seed in 0..5 {
            let session = sessions.session(&scenario.clone().with_seed(seed));
            probes.push(session.calibrated(ProbeKind::Store, Placement::L2).unwrap());
        }
        assert_eq!(sessions.calibrations().misses(), 1, "one compute for five trials");
        assert_eq!(sessions.calibrations().hits(), 4);
        assert!(probes.windows(2).all(|w| w[0] == w[1]), "cached values are stable");
    }

    #[test]
    fn distinct_keys_calibrate_separately() {
        let sessions = Sessions::new();
        let scenario = Scenario::new(MicroArch::CascadeLake);
        let session = sessions.session(&scenario);
        session.calibrated(ProbeKind::Store, Placement::L2).unwrap();
        session.calibrated(ProbeKind::Store, Placement::DramOnly).unwrap();
        session.calibrated(ProbeKind::Flush, Placement::L2).unwrap();
        session.calibrated_for(ProbeKind::Store, Placement::L2, NoiseConfig::noisy()).unwrap();
        assert_eq!(sessions.calibrations().misses(), 4);
        assert_eq!(sessions.calibrations().len(), 4);
    }

    #[test]
    fn cached_equals_freshly_computed() {
        let sessions = Sessions::new();
        let session = sessions.session(&Scenario::new(MicroArch::TigerLake));
        for kind in [ProbeKind::Store, ProbeKind::Flush, ProbeKind::Lock] {
            for cold in [Placement::L2, Placement::DramOnly] {
                let cached = session.calibrated(kind, cold).unwrap();
                let fresh = session.recalibrate(kind, cold).unwrap();
                assert_eq!(cached, fresh, "{kind}/{cold}");
            }
        }
    }

    #[test]
    fn unsupported_probes_cache_their_error() {
        let sessions = Sessions::new();
        let session = sessions.session(&Scenario::new(MicroArch::SandyBridge));
        for _ in 0..3 {
            let err = session.calibrated(ProbeKind::FlushOpt, Placement::L2).unwrap_err();
            assert_eq!(err, StepError::Unsupported { kind: ProbeKind::FlushOpt });
        }
        assert_eq!(sessions.calibrations().misses(), 1);
        assert_eq!(sessions.calibrations().hits(), 2);
    }

    #[test]
    fn custom_profiles_do_not_share_cache_entries() {
        let sessions = Sessions::new();
        let stock = sessions.session(&Scenario::new(MicroArch::CascadeLake));
        let a = stock.calibrated(ProbeKind::Store, Placement::L2).unwrap();

        let mut profile = MicroArch::CascadeLake.profile();
        let mut costs = profile.probe_costs.get(ProbeKind::Store);
        costs.smc_extra += 100;
        profile.probe_costs.set(ProbeKind::Store, costs);
        let perturbed = sessions.session(&Scenario::custom(profile));
        let b = perturbed.calibrated(ProbeKind::Store, Placement::L2).unwrap();

        assert_eq!(sessions.calibrations().misses(), 2, "perturbed profile is its own key");
        assert!(b.threshold > a.threshold, "perturbed costs shift the threshold");
    }

    /// A scratch directory for one disk-cache test, cleaned on entry.
    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smack-calib-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_cache_round_trips_across_instances() {
        let dir = scratch_dir("roundtrip");
        let scenario = Scenario::new(MicroArch::CascadeLake);

        // First process: computes and persists.
        let first = Sessions::new();
        first.attach_disk_cache(&dir);
        let computed = first
            .session(&scenario)
            .calibrated(ProbeKind::Store, Placement::L2)
            .expect("calibrates");
        assert_eq!(first.calibrations().misses(), 1);
        assert_eq!(first.calibrations().disk_hits(), 0);
        let files: Vec<_> = std::fs::read_dir(&dir).expect("cache dir exists").collect();
        assert_eq!(files.len(), 1, "one profile-keyed file");

        // Second process (fresh registry, same directory): loads, never
        // computes, and the loaded value equals the computed one exactly.
        let second = Sessions::new();
        second.attach_disk_cache(&dir);
        let loaded = second
            .session(&scenario)
            .calibrated(ProbeKind::Store, Placement::L2)
            .expect("loads from disk");
        assert_eq!(loaded, computed, "disk hit == computed value");
        assert_eq!(second.calibrations().misses(), 0, "nothing recomputed");
        assert_eq!(second.calibrations().disk_hits(), 1);
        // Further lookups of the same key stay in-memory hits.
        second.session(&scenario).calibrated(ProbeKind::Store, Placement::L2).expect("memory hit");
        assert_eq!(second.calibrations().disk_hits(), 1);
        assert_eq!(second.calibrations().hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_round_trips_unsupported_errors() {
        let dir = scratch_dir("unsupported");
        let scenario = Scenario::new(MicroArch::SandyBridge);
        let first = Sessions::new();
        first.attach_disk_cache(&dir);
        let err = first
            .session(&scenario)
            .calibrated(ProbeKind::FlushOpt, Placement::L2)
            .expect_err("unsupported");

        let second = Sessions::new();
        second.attach_disk_cache(&dir);
        let loaded = second
            .session(&scenario)
            .calibrated(ProbeKind::FlushOpt, Placement::L2)
            .expect_err("unsupported from disk");
        assert_eq!(loaded, err);
        assert_eq!(second.calibrations().misses(), 0);
        assert_eq!(second.calibrations().disk_hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_disk_files_are_ignored() {
        let dir = scratch_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let scenario = Scenario::new(MicroArch::TigerLake);
        let fp = scenario.profile().fingerprint();
        // A file with the right name but a wrong version header, plus
        // garbage entries: both must be ignored, not trusted or crashed on.
        std::fs::write(
            dir.join(format!("v{DISK_FORMAT_VERSION}-{fp:016x}.calib")),
            "# smack calibration cache v999 bogus\n0 0 zzzz ok broken\n",
        )
        .unwrap();
        let sessions = Sessions::new();
        sessions.attach_disk_cache(&dir);
        sessions
            .session(&scenario)
            .calibrated(ProbeKind::Store, Placement::L2)
            .expect("recomputes past the bad file");
        assert_eq!(sessions.calibrations().misses(), 1, "bad file forced a compute");
        assert_eq!(sessions.calibrations().disk_hits(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_processes_merge_instead_of_clobbering() {
        let dir = scratch_dir("merge");
        // Two caches simulate two worker processes sharing one
        // SMACK_CALIB_DIR: both load the (empty) file before either
        // persists — the classic lost-update interleaving.
        let a = CalibrationCache::default();
        a.attach_disk(&dir);
        let b = CalibrationCache::default();
        b.attach_disk(&dir);
        let fp = 0x42_u64;
        let key_a = (fp, ProbeKind::Store, Placement::L2, 7);
        let key_b = (fp, ProbeKind::Lock, Placement::L2, 7);
        let val = |kind| {
            Ok(CalibratedProbe {
                kind,
                threshold: 5,
                hot_is_high: true,
                hot_mean: 9.0,
                cold_mean: 1.0,
            })
        };
        assert!(a.disk_lookup(key_a).is_none());
        assert!(b.disk_lookup(key_b).is_none());
        a.disk_store(key_a, &val(ProbeKind::Store));
        // Without the persist-time re-read this write would clobber a's
        // entry: b's in-memory mirror never saw it.
        b.disk_store(key_b, &val(ProbeKind::Lock));
        // A third process sees both entries.
        let c = CalibrationCache::default();
        c.attach_disk(&dir);
        assert_eq!(c.disk_lookup(key_a), Some(val(ProbeKind::Store)));
        assert_eq!(c.disk_lookup(key_b), Some(val(ProbeKind::Lock)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_entry_serialization_round_trips() {
        let probe = CalibratedProbe {
            kind: ProbeKind::Lock,
            threshold: 321,
            hot_is_high: true,
            hot_mean: 402.125,
            cold_mean: 77.5,
        };
        let key = (ProbeKind::Lock.index(), placement_index(Placement::DramOnly), 0xabcd_u64);
        let line = serialize_disk_entry(key, &Ok(probe));
        let (parsed_key, parsed) = parse_disk_entry(&line).expect("parses");
        assert_eq!(parsed_key, key);
        assert_eq!(parsed.unwrap(), probe);

        let err: Result<CalibratedProbe, StepError> =
            Err(StepError::Unsupported { kind: ProbeKind::Clwb });
        let line = serialize_disk_entry(key, &err);
        let (_, parsed) = parse_disk_entry(&line).expect("parses");
        assert_eq!(parsed.unwrap_err(), StepError::Unsupported { kind: ProbeKind::Clwb });

        assert!(parse_disk_entry("not a line").is_none());
        assert!(parse_disk_entry("9999 0 00 ok 1 1 0 0").is_none(), "kind out of range");
    }

    #[test]
    fn renew_resets_the_machine() {
        let sessions = Sessions::new();
        let mut session = sessions.session(&Scenario::new(MicroArch::CascadeLake));
        session.machine().write_u64(Addr(0x9000), 42);
        session.renew(99);
        assert_eq!(session.scenario().seed(), 99);
        assert_eq!(session.machine().read_u64(Addr(0x9000)), 0);
    }
}
