//! The session layer: reusable machines plus a profile-keyed calibration
//! cache.
//!
//! SMaCk's methodology calibrates a probe's hot/cold decision threshold
//! **once per microarchitecture** and reuses it for the whole campaign
//! (paper §4, Figure 1) — the same one-time threshold discipline
//! Flush+Flush uses for its decision boundary. The experiment harnesses,
//! by contrast, historically paid a full `Machine` construction *and* a
//! fresh calibration pass per trial. This module separates experiment
//! *definition* from *execution*:
//!
//! * a [`Scenario`] says what a trial needs — microarchitecture (or an
//!   ablation-perturbed custom profile), noise model, machine seed;
//! * a [`Sessions`] registry owns a [`MachinePool`] of reset-and-reuse
//!   machines and a [`CalibrationCache`] of [`CalibratedProbe`]s computed
//!   once per `(profile, probe class, cold placement, noise)`;
//! * a [`Session`] is one checked-out machine plus access to the shared
//!   caches — what every trial closure receives.
//!
//! Calibration is computed on a *separate* pooled machine with a fixed
//! seed, never on the trial machine, so (a) the cached value is a pure
//! function of its key — a cache hit and a fresh computation are equal by
//! construction — and (b) a trial's RNG stream is identical whether its
//! calibration was a hit or a miss, which keeps parallel experiment output
//! bit-identical to sequential output. Ablations that perturb probe costs
//! get distinct profile fingerprints (and can force the issue with
//! [`Session::recalibrate`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use smack_uarch::{
    Addr, Machine, MachinePool, MicroArch, NoiseConfig, Placement, PooledMachine, ProbeKind,
    StepError, ThreadId, UarchProfile,
};

use crate::calibrate::{calibrate_with_cold, CalibratedProbe};

/// Seed for the dedicated calibration machines. Fixed so that a cached
/// calibration is a deterministic function of its cache key alone.
const CAL_SEED: u64 = 0xca11b;

/// Samples per state for session calibrations (matches the covert-channel
/// harness's historical sample count, the largest in the tree).
const CAL_SAMPLES: usize = 16;

/// Scratch oracle address for session calibrations (line-aligned, in the
/// same unused range the per-attack scratch constants live in).
const CAL_SCRATCH: Addr = Addr(0x0dca_0000);

/// Calibration machines always probe from thread 0, like every attacker
/// in the tree.
const CAL_THREAD: ThreadId = ThreadId::T0;

/// What one experiment trial needs from the session layer: which machine
/// to simulate, under which noise model, from which seed.
///
/// `Scenario::new(arch)` mirrors `Machine::new(profile)` — quiet noise and
/// the same default seed — so refactoring a `Machine::new` call site to a
/// scenario preserves its output bit-for-bit.
#[derive(Clone, Debug)]
pub struct Scenario {
    arch: MicroArch,
    profile: Option<UarchProfile>,
    noise: NoiseConfig,
    seed: u64,
}

/// `Machine::new`'s noise seed, kept in sync so scenario-built machines
/// match `Machine::new` exactly.
const DEFAULT_SEED: u64 = 0x5eed;

impl Scenario {
    /// A scenario on the stock profile for `arch`, with quiet noise and
    /// the `Machine::new` default seed.
    pub fn new(arch: MicroArch) -> Scenario {
        Scenario { arch, profile: None, noise: NoiseConfig::quiet(), seed: DEFAULT_SEED }
    }

    /// A scenario on a custom (e.g. ablation-perturbed) profile.
    pub fn custom(profile: UarchProfile) -> Scenario {
        Scenario {
            arch: profile.arch,
            profile: Some(profile),
            noise: NoiseConfig::quiet(),
            seed: DEFAULT_SEED,
        }
    }

    /// Replace the noise model.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Scenario {
        self.noise = noise;
        self
    }

    /// Replace the machine seed.
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// The microarchitecture.
    pub fn arch(&self) -> MicroArch {
        self.arch
    }

    /// The noise model.
    pub fn noise(&self) -> NoiseConfig {
        self.noise
    }

    /// The machine seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The full profile (custom if set, stock otherwise).
    pub fn profile(&self) -> UarchProfile {
        self.profile.clone().unwrap_or_else(|| self.arch.profile())
    }
}

/// Cache key: everything a calibration result depends on.
type CalKey = (u64, ProbeKind, Placement, u64);

/// One per-key compute slot. The `OnceLock` serializes concurrent misses
/// on the *same* key (the second thread blocks and reads the first's
/// result) while leaving distinct keys fully parallel — so a calibration
/// really runs at most once per key per process.
type CalSlot = Arc<OnceLock<Result<CalibratedProbe, StepError>>>;

/// The process-wide store of [`CalibratedProbe`]s, keyed by
/// `(profile fingerprint, probe class, cold placement, noise)`.
///
/// Unsupported-probe errors are cached too: they are just as deterministic
/// as successful calibrations, and an experiment sweeping all probe
/// classes hits the `×` cells repeatedly.
#[derive(Debug, Default)]
pub struct CalibrationCache {
    slots: Mutex<HashMap<CalKey, CalSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CalibrationCache {
    /// An empty cache.
    pub fn new() -> CalibrationCache {
        CalibrationCache::default()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run a calibration so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct keys resident in the cache.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("calibration cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot(&self, key: CalKey) -> CalSlot {
        self.slots.lock().expect("calibration cache poisoned").entry(key).or_default().clone()
    }

    fn replace(&self, key: CalKey, value: Result<CalibratedProbe, StepError>) {
        let slot: CalSlot = Arc::default();
        slot.set(value).expect("fresh slot is empty");
        self.slots.lock().expect("calibration cache poisoned").insert(key, slot);
    }
}

/// The shared session registry: one machine pool plus one calibration
/// cache. Experiment harnesses use the process-wide [`Sessions::global`];
/// tests build private registries to observe counters in isolation.
#[derive(Debug, Default)]
pub struct Sessions {
    pool: MachinePool,
    calibrations: CalibrationCache,
}

impl Sessions {
    /// An empty registry.
    pub fn new() -> Sessions {
        Sessions::default()
    }

    /// The process-wide registry. All `fig*`/`table*` experiments draw
    /// from this one, so machine reuse and cached calibrations span the
    /// whole `all` run: calibration cost drops from
    /// O(trials × probe classes) to O(profiles × probe classes).
    pub fn global() -> &'static Sessions {
        static GLOBAL: OnceLock<Sessions> = OnceLock::new();
        GLOBAL.get_or_init(Sessions::new)
    }

    /// Check out a session for `scenario`: a pooled machine in the exact
    /// `Machine::with_noise(profile, noise, seed)` state plus access to
    /// the shared calibration cache.
    pub fn session(&self, scenario: &Scenario) -> Session<'_> {
        let profile = scenario.profile();
        let profile_fp = profile.fingerprint();
        let machine = self.pool.checkout(&profile, scenario.noise, scenario.seed);
        Session { machine, owner: self, scenario: scenario.clone(), profile_fp }
    }

    /// The machine pool (for stats and diagnostics).
    pub fn pool(&self) -> &MachinePool {
        &self.pool
    }

    /// The calibration cache (for stats and diagnostics).
    pub fn calibrations(&self) -> &CalibrationCache {
        &self.calibrations
    }

    fn calibrated(
        &self,
        scenario: &Scenario,
        profile_fp: u64,
        kind: ProbeKind,
        cold: Placement,
        noise: NoiseConfig,
    ) -> Result<CalibratedProbe, StepError> {
        let key = (profile_fp, kind, cold, noise.fingerprint());
        let slot = self.calibrations.slot(key);
        let mut missed = false;
        let result = slot.get_or_init(|| {
            missed = true;
            self.compute(scenario, kind, cold, noise)
        });
        if missed {
            self.calibrations.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.calibrations.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    fn recalibrated(
        &self,
        scenario: &Scenario,
        profile_fp: u64,
        kind: ProbeKind,
        cold: Placement,
        noise: NoiseConfig,
    ) -> Result<CalibratedProbe, StepError> {
        let key = (profile_fp, kind, cold, noise.fingerprint());
        let result = self.compute(scenario, kind, cold, noise);
        self.calibrations.misses.fetch_add(1, Ordering::Relaxed);
        self.calibrations.replace(key, result.clone());
        result
    }

    /// Run one calibration on a dedicated pooled machine with the fixed
    /// [`CAL_SEED`], so the result depends only on (profile, kind, cold,
    /// noise) — never on trial state.
    fn compute(
        &self,
        scenario: &Scenario,
        kind: ProbeKind,
        cold: Placement,
        noise: NoiseConfig,
    ) -> Result<CalibratedProbe, StepError> {
        let profile = scenario.profile();
        let mut machine = self.pool.checkout(&profile, noise, CAL_SEED);
        calibrate_with_cold(&mut machine, CAL_THREAD, kind, CAL_SCRATCH, CAL_SAMPLES, cold)
    }
}

/// One trial's execution context: a pooled machine plus the shared
/// calibration cache. Obtained from [`Sessions::session`]; the machine
/// returns to the pool when the session drops.
#[derive(Debug)]
pub struct Session<'s> {
    machine: PooledMachine<'s>,
    owner: &'s Sessions,
    scenario: Scenario,
    profile_fp: u64,
}

impl Session<'_> {
    /// The machine, in whatever state the trial has driven it to.
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The scenario this session was checked out for (its seed tracks
    /// [`Session::renew`]).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Reset the machine to the cold start state under a new seed — the
    /// in-trial equivalent of checking out a fresh session, used by
    /// experiments that collect several independent traces per trial.
    pub fn renew(&mut self, seed: u64) {
        self.scenario.seed = seed;
        self.machine.reset(self.scenario.noise, seed);
    }

    /// Guard for the `_in` attack entry points: the session must have
    /// been checked out under the attack config's noise model, or cached
    /// calibrations and the machine's RNG stream would silently disagree
    /// with the config. A hard error (not a debug assertion) because the
    /// harnesses only ever run in release builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn require_noise(&self, noise: NoiseConfig) -> Result<(), String> {
        if self.scenario.noise.fingerprint() == noise.fingerprint() {
            Ok(())
        } else {
            Err(format!(
                "session noise {:?} does not match the attack's noise model {:?}",
                self.scenario.noise, noise
            ))
        }
    }

    /// The cached [`CalibratedProbe`] for `(profile, kind, cold)` under
    /// the scenario's noise model, calibrating on a dedicated machine on
    /// first use. Never touches this session's machine or RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Unsupported`] (cached, like successes) when
    /// the profile lacks the probe instruction.
    pub fn calibrated(
        &self,
        kind: ProbeKind,
        cold: Placement,
    ) -> Result<CalibratedProbe, StepError> {
        self.calibrated_for(kind, cold, self.scenario.noise)
    }

    /// Like [`Session::calibrated`], but under an explicit noise model —
    /// for harnesses that switch the machine's noise after checkout (the
    /// covert channels force `noisy`).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Unsupported`] when the profile lacks the
    /// probe instruction.
    pub fn calibrated_for(
        &self,
        kind: ProbeKind,
        cold: Placement,
        noise: NoiseConfig,
    ) -> Result<CalibratedProbe, StepError> {
        self.owner.calibrated(&self.scenario, self.profile_fp, kind, cold, noise)
    }

    /// Force a fresh calibration and overwrite the cache entry — the
    /// escape hatch for ablations that perturb probe costs behind the
    /// cache's back (a perturbed *profile* already gets its own key; this
    /// is for perturbations the profile fingerprint cannot see).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Unsupported`] when the profile lacks the
    /// probe instruction.
    pub fn recalibrate(
        &self,
        kind: ProbeKind,
        cold: Placement,
    ) -> Result<CalibratedProbe, StepError> {
        self.owner.recalibrated(&self.scenario, self.profile_fp, kind, cold, self.scenario.noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_defaults_mirror_machine_new() {
        let s = Scenario::new(MicroArch::CascadeLake);
        assert_eq!(s.seed(), 0x5eed);
        assert_eq!(s.noise().fingerprint(), NoiseConfig::quiet().fingerprint());
    }

    #[test]
    fn calibration_runs_once_per_key() {
        let sessions = Sessions::new();
        let scenario = Scenario::new(MicroArch::CascadeLake);
        let mut probes = Vec::new();
        for seed in 0..5 {
            let session = sessions.session(&scenario.clone().with_seed(seed));
            probes.push(session.calibrated(ProbeKind::Store, Placement::L2).unwrap());
        }
        assert_eq!(sessions.calibrations().misses(), 1, "one compute for five trials");
        assert_eq!(sessions.calibrations().hits(), 4);
        assert!(probes.windows(2).all(|w| w[0] == w[1]), "cached values are stable");
    }

    #[test]
    fn distinct_keys_calibrate_separately() {
        let sessions = Sessions::new();
        let scenario = Scenario::new(MicroArch::CascadeLake);
        let session = sessions.session(&scenario);
        session.calibrated(ProbeKind::Store, Placement::L2).unwrap();
        session.calibrated(ProbeKind::Store, Placement::DramOnly).unwrap();
        session.calibrated(ProbeKind::Flush, Placement::L2).unwrap();
        session.calibrated_for(ProbeKind::Store, Placement::L2, NoiseConfig::noisy()).unwrap();
        assert_eq!(sessions.calibrations().misses(), 4);
        assert_eq!(sessions.calibrations().len(), 4);
    }

    #[test]
    fn cached_equals_freshly_computed() {
        let sessions = Sessions::new();
        let session = sessions.session(&Scenario::new(MicroArch::TigerLake));
        for kind in [ProbeKind::Store, ProbeKind::Flush, ProbeKind::Lock] {
            for cold in [Placement::L2, Placement::DramOnly] {
                let cached = session.calibrated(kind, cold).unwrap();
                let fresh = session.recalibrate(kind, cold).unwrap();
                assert_eq!(cached, fresh, "{kind}/{cold}");
            }
        }
    }

    #[test]
    fn unsupported_probes_cache_their_error() {
        let sessions = Sessions::new();
        let session = sessions.session(&Scenario::new(MicroArch::SandyBridge));
        for _ in 0..3 {
            let err = session.calibrated(ProbeKind::FlushOpt, Placement::L2).unwrap_err();
            assert_eq!(err, StepError::Unsupported { kind: ProbeKind::FlushOpt });
        }
        assert_eq!(sessions.calibrations().misses(), 1);
        assert_eq!(sessions.calibrations().hits(), 2);
    }

    #[test]
    fn custom_profiles_do_not_share_cache_entries() {
        let sessions = Sessions::new();
        let stock = sessions.session(&Scenario::new(MicroArch::CascadeLake));
        let a = stock.calibrated(ProbeKind::Store, Placement::L2).unwrap();

        let mut profile = MicroArch::CascadeLake.profile();
        let mut costs = profile.probe_costs.get(ProbeKind::Store);
        costs.smc_extra += 100;
        profile.probe_costs.set(ProbeKind::Store, costs);
        let perturbed = sessions.session(&Scenario::custom(profile));
        let b = perturbed.calibrated(ProbeKind::Store, Placement::L2).unwrap();

        assert_eq!(sessions.calibrations().misses(), 2, "perturbed profile is its own key");
        assert!(b.threshold > a.threshold, "perturbed costs shift the threshold");
    }

    #[test]
    fn renew_resets_the_machine() {
        let sessions = Sessions::new();
        let mut session = sessions.session(&Scenario::new(MicroArch::CascadeLake));
        session.machine().write_u64(Addr(0x9000), 42);
        session.renew(99);
        assert_eq!(session.scenario().seed(), 99);
        assert_eq!(session.machine().read_u64(Addr(0x9000)), 0);
    }
}
