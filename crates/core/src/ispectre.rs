//! Case Study IV: the ISpectre transient-execution attack (paper §5.4,
//! Tables 3 and 4).
//!
//! Spectre v1 with an *instruction-cache* transmission channel: the
//! mistrained victim speculatively executes an indirect call whose target
//! line is selected by the secret byte; the line survives the squash in
//! the L1i, where an SMC probe conflicts (machine clear, slow) while every
//! other oracle line probes fast. Because the leak lives in the L1i,
//! data-cache-focused Spectre defenses never see it.
//!
//! The per-round decoder is self-calibrating: it compares each slot's
//! probe time to the round's median and accepts the outlier in the
//! direction the probe class predicts (slow for SMC-triggering classes,
//! fast for plain-timing classes). Probe classes with no usable timing
//! difference — like execute-reload, whose own probing warms every slot it
//! visits — never produce a confident outlier, reproducing the `#` cells
//! of Table 3.

use smack_uarch::trace::Event;
use smack_uarch::{Machine, MicroArch, NoiseConfig, ProbeKind, SmcBehavior, ThreadId};
use smack_victims::spectre::{SpectreVictim, ORACLE_SLOTS};

use crate::probe::Prober;
use crate::session::Session;

const ATTACKER: ThreadId = ThreadId::T0;

/// ISpectre configuration.
#[derive(Copy, Clone, Debug)]
pub struct ISpectreConfig {
    /// Probe class used for the reload phase.
    pub kind: ProbeKind,
    /// Branch-predictor training calls per attack round.
    pub train_rounds: u32,
    /// Attack rounds (votes) per secret byte.
    pub rounds_per_byte: u32,
    /// Minimum outlier margin in cycles for a confident decode.
    pub min_margin: u64,
    /// Noise model.
    pub noise: NoiseConfig,
}

impl ISpectreConfig {
    /// Paper-like defaults for a probe class.
    pub fn new(kind: ProbeKind) -> ISpectreConfig {
        ISpectreConfig {
            kind,
            train_rounds: 6,
            rounds_per_byte: 3,
            min_margin: 45,
            noise: NoiseConfig::realistic(),
        }
    }
}

/// Result of an ISpectre run.
#[derive(Clone, Debug)]
pub struct ISpectreReport {
    /// Probe class used.
    pub kind: ProbeKind,
    /// Secret length in bytes.
    pub bytes: usize,
    /// Correctly recovered bytes.
    pub correct: usize,
    /// Recovery rate (0..1).
    pub success_rate: f64,
    /// Leakage rate in bytes per second at the nominal frequency.
    pub bytes_per_s: f64,
    /// SMC machine clears observed during the run.
    pub machine_clears: u64,
}

/// Table 3 cell classification.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Applicability {
    /// ● — the attack works and runs on SMC machine clears.
    Smc,
    /// ◐ — the secret leaks without any SMC conflict (plain timing).
    LeakWithoutSmc,
    /// # — no reliable leak.
    NoLeak,
    /// × — the probe instruction does not exist on this part.
    Unsupported,
}

impl Applicability {
    /// The paper's Table 3 symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Applicability::Smc => "●",
            Applicability::LeakWithoutSmc => "◐",
            Applicability::NoLeak => "#",
            Applicability::Unsupported => "×",
        }
    }
}

/// Decode one probe round: find the confident outlier slot.
///
/// `hot_is_high` says whether the secret-selected (L1i-resident) slot is
/// expected to probe slower (SMC classes) or faster (plain-timing classes).
///
/// The decoder is aware of the next-line instruction prefetcher: fetching
/// slot `s` streams slot `s+1` into L2, so for plain-timing probes the two
/// read similarly fast. When the top two scores are adjacent, the earlier
/// slot is the real one; the shadow slot is excluded from the ambiguity
/// check.
pub fn decode_round(timings: &[u64], hot_is_high: bool, min_margin: u64) -> Option<u8> {
    assert_eq!(timings.len(), ORACLE_SLOTS, "one timing per oracle slot");
    let mut sorted = timings.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let score = |t: u64| -> i64 {
        if hot_is_high {
            t as i64 - median as i64
        } else {
            median as i64 - t as i64
        }
    };
    let scores: Vec<i64> = timings.iter().map(|t| score(*t)).collect();
    let mut best = 0usize;
    for (i, s) in scores.iter().enumerate() {
        if *s > scores[best] {
            best = i;
        }
    }
    let half_margin = (min_margin / 2) as i64;
    // If the predecessor scores nearly as high, `best` is the prefetch
    // shadow of `best - 1`.
    if best > 0 && scores[best - 1] >= scores[best] - half_margin {
        best -= 1;
    }
    let best_score = scores[best];
    let runner_up = scores
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != best && *i != best + 1)
        .map(|(_, s)| *s)
        .max()
        .unwrap_or(i64::MIN);
    if best_score >= min_margin as i64 && best_score - runner_up >= half_margin {
        Some(best as u8)
    } else {
        None
    }
}

fn expected_hot_is_high(machine: &Machine, kind: ProbeKind) -> bool {
    machine.profile().smc.get(kind) == SmcBehavior::Triggers
}

/// Probe classes whose reload leaves the slot cached on the data side and
/// therefore needs a cleanup flush to keep cold slots cold. `clwb` never
/// evicts, so on parts where it does not machine-clear (no L1i
/// invalidation either) it also needs the flush.
fn needs_cleanup_flush(kind: ProbeKind, behavior: SmcBehavior) -> bool {
    matches!(kind, ProbeKind::Load | ProbeKind::Prefetch | ProbeKind::PrefetchNta)
        || (kind == ProbeKind::Clwb && behavior != SmcBehavior::Triggers)
}

/// Run the full ISpectre attack against `secret`, on a fresh machine —
/// the standalone path; session-driven harnesses use [`leak_secret_in`].
///
/// # Errors
///
/// Returns a message for unsupported probe classes or simulator errors.
pub fn leak_secret(
    arch: MicroArch,
    secret: &[u8],
    cfg: &ISpectreConfig,
    seed: u64,
) -> Result<ISpectreReport, String> {
    let mut m = Machine::with_noise(arch.profile(), cfg.noise, seed);
    leak_secret_on(&mut m, secret, cfg)
}

/// Run the full ISpectre attack inside a [`Session`] (the machine must be
/// in its cold start state — [`Session::renew`] between attacks). The
/// session's noise model should match `cfg.noise`.
///
/// # Errors
///
/// Returns a message for unsupported probe classes or simulator errors.
pub fn leak_secret_in(
    session: &mut Session<'_>,
    secret: &[u8],
    cfg: &ISpectreConfig,
) -> Result<ISpectreReport, String> {
    session.require_noise(cfg.noise)?;
    leak_secret_on(session.machine(), secret, cfg)
}

fn leak_secret_on(
    m: &mut Machine,
    secret: &[u8],
    cfg: &ISpectreConfig,
) -> Result<ISpectreReport, String> {
    if m.profile().smc.get(cfg.kind) == SmcBehavior::Unsupported {
        return Err(format!("{} unsupported on {}", cfg.kind, m.profile().arch));
    }
    m.enable_trace(1 << 20);
    let victim = SpectreVictim::build();
    victim.stage(m, secret);
    let mut prober = Prober::new(ATTACKER);
    for s in 0..ORACLE_SLOTS {
        m.warm_tlb(ATTACKER, victim.oracle_slot(s as u8));
    }
    let hot_is_high = expected_hot_is_high(m, cfg.kind);
    let behavior = m.profile().smc.get(cfg.kind);
    let err = |e: smack_uarch::StepError| e.to_string();

    // Warm-up pass: bring every slot into the data-side steady state the
    // probe loop maintains.
    for s in 0..ORACLE_SLOTS {
        let line = victim.oracle_slot(s as u8);
        prober.measure(m, cfg.kind, line).map_err(err)?;
        if needs_cleanup_flush(cfg.kind, behavior) {
            prober.flush_line(m, line).map_err(err)?;
        }
    }

    let start = m.clock(ATTACKER);
    let mut correct = 0usize;
    for (i, truth) in secret.iter().enumerate() {
        let mut votes = [0u32; ORACLE_SLOTS];
        for _ in 0..cfg.rounds_per_byte {
            // Mistrain the bounds check with in-bounds calls.
            for t in 0..cfg.train_rounds {
                m.call(ATTACKER, victim.entry, &[t as u64 % victim.array_len]).map_err(err)?;
            }
            // The training calls executed oracle slots the attacker chose
            // itself (`notsecret[i]`) — and the next-line prefetcher warmed
            // each one's successor. Scrub both back to the cold steady
            // state so only the speculative fetch stands out.
            let mut scrub: Vec<u64> = Vec::new();
            for t in 0..cfg.train_rounds {
                let slot = t as u64 % victim.array_len;
                scrub.push(slot);
                scrub.push((slot + 1).min(ORACLE_SLOTS as u64 - 1));
            }
            scrub.sort_unstable();
            scrub.dedup();
            for slot in scrub {
                let line = victim.oracle_slot(slot as u8);
                prober.measure(m, cfg.kind, line).map_err(err)?;
                if needs_cleanup_flush(cfg.kind, behavior) {
                    prober.flush_line(m, line).map_err(err)?;
                }
            }
            // Delay the bounds resolution, then fire the OOB call.
            m.flush_line(victim.bounds_ptr);
            m.flush_line(victim.bounds);
            m.call(ATTACKER, victim.entry, &[victim.secret_index(i)]).map_err(err)?;
            // Reload every oracle slot.
            let mut timings = Vec::with_capacity(ORACLE_SLOTS);
            for s in 0..ORACLE_SLOTS {
                let line = victim.oracle_slot(s as u8);
                timings.push(prober.measure(m, cfg.kind, line).map_err(err)?.cycles);
                if needs_cleanup_flush(cfg.kind, behavior) {
                    prober.flush_line(m, line).map_err(err)?;
                }
            }
            if let Some(b) = decode_round(&timings, hot_is_high, cfg.min_margin) {
                votes[b as usize] += 1;
            }
        }
        let (guess, count) =
            votes.iter().enumerate().max_by_key(|(_, c)| **c).expect("nonempty votes");
        if count > &0 && guess == *truth as usize {
            correct += 1;
        }
    }
    let cycles = m.clock(ATTACKER) - start;
    let seconds = m.profile().cycles_to_seconds(cycles);
    // Count only clears caused by the probe class itself: auxiliary
    // cleanup flushes can conflict too, but the Table 3 ●/◐ distinction is
    // about whether the *reload primitive* rides on SMC.
    let machine_clears = m
        .take_trace()
        .iter()
        .filter(|e| matches!(e, Event::MachineClear { kind, .. } if *kind == cfg.kind))
        .count() as u64;
    Ok(ISpectreReport {
        kind: cfg.kind,
        bytes: secret.len(),
        correct,
        success_rate: correct as f64 / secret.len().max(1) as f64,
        bytes_per_s: secret.len() as f64 / seconds,
        machine_clears,
    })
}

/// Empirically classify a `(microarchitecture, probe class)` cell of
/// Table 3 by running a short leak.
///
/// # Errors
///
/// Returns a message on simulator errors other than unsupported
/// instructions (which classify as ×).
pub fn applicability(arch: MicroArch, kind: ProbeKind, seed: u64) -> Result<Applicability, String> {
    if arch.profile().smc.get(kind) == SmcBehavior::Unsupported {
        return Ok(Applicability::Unsupported);
    }
    let cfg = ISpectreConfig::new(kind);
    classify(leak_secret(arch, &applicability_secret(), &cfg, seed)?)
}

/// [`applicability`] inside a [`Session`]: the machine must be in its
/// cold start state ([`Session::renew`] between probe classes) and the
/// session's noise must be the [`ISpectreConfig::new`] default.
///
/// # Errors
///
/// Returns a message on simulator errors other than unsupported
/// instructions (which classify as ×).
pub fn applicability_in(
    session: &mut Session<'_>,
    kind: ProbeKind,
) -> Result<Applicability, String> {
    if session.machine().profile().smc.get(kind) == SmcBehavior::Unsupported {
        return Ok(Applicability::Unsupported);
    }
    let cfg = ISpectreConfig::new(kind);
    classify(leak_secret_in(session, &applicability_secret(), &cfg)?)
}

fn applicability_secret() -> Vec<u8> {
    (0..8u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect()
}

fn classify(report: ISpectreReport) -> Result<Applicability, String> {
    if report.success_rate < 0.5 {
        return Ok(Applicability::NoLeak);
    }
    if report.machine_clears > 0 {
        Ok(Applicability::Smc)
    } else {
        Ok(Applicability::LeakWithoutSmc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_round_finds_high_outlier() {
        let mut t = vec![100u64; ORACLE_SLOTS];
        t[0xA5] = 400;
        assert_eq!(decode_round(&t, true, 45), Some(0xA5));
        // Low outlier with inverted polarity.
        let mut t = vec![250u64; ORACLE_SLOTS];
        t[0x17] = 40;
        assert_eq!(decode_round(&t, false, 45), Some(0x17));
    }

    #[test]
    fn decode_round_rejects_flat_and_ambiguous() {
        let t = vec![100u64; ORACLE_SLOTS];
        assert_eq!(decode_round(&t, true, 45), None);
        let mut t = vec![100u64; ORACLE_SLOTS];
        t[3] = 400;
        t[9] = 390; // two similar outliers: ambiguous
        assert_eq!(decode_round(&t, true, 45), None);
    }

    #[test]
    fn store_ispectre_leaks_on_cascade_lake() {
        let secret = b"SMaCk!";
        let cfg = ISpectreConfig::new(ProbeKind::Store);
        let r = leak_secret(MicroArch::CascadeLake, secret, &cfg, 5).expect("attack runs");
        assert!(r.success_rate >= 0.8, "success {}", r.success_rate);
        assert!(r.machine_clears > 0, "store attack rides on SMC clears");
        assert!(r.bytes_per_s > 0.0);
    }

    #[test]
    fn load_leaks_without_smc() {
        let secret = b"ab";
        let cfg = ISpectreConfig::new(ProbeKind::Load);
        let r = leak_secret(MicroArch::CascadeLake, secret, &cfg, 6).expect("attack runs");
        assert!(r.success_rate >= 0.5, "success {}", r.success_rate);
        assert_eq!(r.machine_clears, 0, "plain loads never machine-clear");
    }

    #[test]
    fn execute_reload_does_not_leak() {
        let secret = b"zz";
        let cfg = ISpectreConfig::new(ProbeKind::Execute);
        let r = leak_secret(MicroArch::CascadeLake, secret, &cfg, 7).expect("attack runs");
        assert!(r.success_rate < 0.5, "execute must not leak, got {}", r.success_rate);
    }

    #[test]
    fn applicability_matches_table3_spot_cells() {
        // Store triggers SMC everywhere.
        assert_eq!(
            applicability(MicroArch::CascadeLake, ProbeKind::Store, 1).unwrap(),
            Applicability::Smc
        );
        // clwb does not exist on Broadwell.
        assert_eq!(
            applicability(MicroArch::Broadwell, ProbeKind::Clwb, 2).unwrap(),
            Applicability::Unsupported
        );
        // Flush on EPYC leaks without SMC (the AMD-SB-7024 machine).
        assert_eq!(
            applicability(MicroArch::AmdEpyc7232P, ProbeKind::Flush, 3).unwrap(),
            Applicability::LeakWithoutSmc
        );
        // Execute never leaks.
        assert_eq!(
            applicability(MicroArch::CascadeLake, ProbeKind::Execute, 4).unwrap(),
            Applicability::NoLeak
        );
    }
}
