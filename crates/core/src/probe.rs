//! The nine timed probe primitives (paper Listing 2).
//!
//! Each probe is the instruction sequence
//! `mfence; rdtsc -> R14; <op>; mfence; rdtsc -> R15`, executed as injected
//! attacker code; the measurement is `R15 - R14`, exactly as the paper
//! measures with inline assembly.

use smack_uarch::isa::{Instr, MemRef, MemSize, Reg};
use smack_uarch::{Addr, CompiledProbe, Machine, ProbeKind, StepError, ThreadId};

/// Register conventions for probe sequences.
const ADDR_REG: Reg = Reg::R13;
const T_START: Reg = Reg::R14;
const T_END: Reg = Reg::R15;

/// The timed instruction sequence for one probe of `kind`.
///
/// The target address is taken from `R13`; timings land in `R14`/`R15`.
/// The sequences are built at compile time: a prober issues millions of
/// measurements per experiment, so the hot path must not allocate.
pub fn probe_sequence(kind: ProbeKind) -> &'static [Instr; 5] {
    const MEM: MemRef = MemRef { base: ADDR_REG, disp: 0 };
    const fn seq(op: Instr) -> [Instr; 5] {
        [
            Instr::Mfence,
            Instr::Rdtsc { dst: T_START },
            op,
            Instr::Mfence,
            Instr::Rdtsc { dst: T_END },
        ]
    }
    match kind {
        ProbeKind::Load => {
            const S: [Instr; 5] = seq(Instr::Load { dst: Reg::R12, mem: MEM, size: MemSize::Quad });
            &S
        }
        ProbeKind::Flush => {
            const S: [Instr; 5] = seq(Instr::Clflush { mem: MEM });
            &S
        }
        ProbeKind::FlushOpt => {
            const S: [Instr; 5] = seq(Instr::Clflushopt { mem: MEM });
            &S
        }
        ProbeKind::Store => {
            const S: [Instr; 5] = seq(Instr::StoreImm { mem: MEM, imm: 0x90 });
            &S
        }
        ProbeKind::Lock => {
            const S: [Instr; 5] = seq(Instr::LockInc { mem: MEM });
            &S
        }
        ProbeKind::Prefetch => {
            const S: [Instr; 5] = seq(Instr::PrefetchT0 { mem: MEM });
            &S
        }
        ProbeKind::PrefetchNta => {
            const S: [Instr; 5] = seq(Instr::PrefetchNta { mem: MEM });
            &S
        }
        ProbeKind::Execute => {
            const S: [Instr; 5] = seq(Instr::CallReg { target: ADDR_REG });
            &S
        }
        ProbeKind::Clwb => {
            const S: [Instr; 5] = seq(Instr::Clwb { mem: MEM });
            &S
        }
    }
}

/// τ_w exposure-window jitter: the per-trace prime→probe wait derived
/// from a base wait, a jitter amplitude, and the trace seed.
///
/// The remaining RSA/SRP recovery gap is *systematic* decode error: when
/// every trace samples the victim with the identical exposure window, the
/// same multiply events fall through the same cracks in every trace, and
/// no amount of majority voting can recover them. Jittering τ_w per trace
/// moves the sampling phase so those misses decorrelate across traces.
/// The draw is a pure function of `seed` (splitmix64), so parallel and
/// sharded runs see the same wait for the same trace, and `jitter == 0`
/// is the exact identity.
pub fn jittered_wait(base: u64, jitter: u64, seed: u64) -> u64 {
    if jitter == 0 {
        return base;
    }
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let offset = (z % (2 * jitter + 1)) as i64 - jitter as i64;
    base.saturating_add_signed(offset).max(1)
}

/// A probe measurement.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ProbeTiming {
    /// Measured `rdtsc` delta in cycles.
    pub cycles: u64,
    /// The probed line.
    pub line: Addr,
    /// Probe class used.
    pub kind: ProbeKind,
}

/// Convenience wrapper running probes on one attacker thread.
///
/// ```no_run
/// use smack::Prober;
/// use smack_uarch::{Machine, MicroArch, ProbeKind, ThreadId, Addr};
///
/// let mut m = Machine::new(MicroArch::CascadeLake.profile());
/// let mut prober = Prober::new(ThreadId::T0);
/// let t = prober.measure(&mut m, ProbeKind::Store, Addr(0x1000)).unwrap();
/// assert!(t.cycles > 0);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct Prober {
    tid: ThreadId,
    /// Each probe class's sequence precompiled for the engine's fused
    /// probe tier; `None` for classes the tier cannot fuse (`Execute`,
    /// whose timed `call` enters the victim program). Built once per
    /// prober — `measure` runs millions of times per experiment and must
    /// not re-recognize the template per probe.
    compiled: [Option<CompiledProbe>; ProbeKind::ALL.len()],
}

impl Prober {
    /// A prober running on `tid` (the thread must be idle / attacker-owned).
    pub fn new(tid: ThreadId) -> Prober {
        let mut compiled = [None; ProbeKind::ALL.len()];
        for kind in ProbeKind::ALL {
            compiled[kind.index()] = CompiledProbe::compile(probe_sequence(kind));
        }
        Prober { tid, compiled }
    }

    /// The attacker thread.
    pub fn thread(&self) -> ThreadId {
        self.tid
    }

    /// Run one timed probe of `kind` against `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Unsupported`] when the microarchitecture lacks
    /// the instruction (an `×` cell in Table 3), or any error from the
    /// sibling victim.
    pub fn measure(
        &mut self,
        machine: &mut Machine,
        kind: ProbeKind,
        addr: Addr,
    ) -> Result<ProbeTiming, StepError> {
        machine.set_reg(self.tid, ADDR_REG, addr.0);
        match &self.compiled[kind.index()] {
            Some(probe) => machine.run_probe(self.tid, probe)?,
            None => machine.run_sequence(self.tid, probe_sequence(kind))?,
        };
        let start = machine.reg(self.tid, T_START);
        let end = machine.reg(self.tid, T_END);
        Ok(ProbeTiming { cycles: end.saturating_sub(start), line: addr.line(), kind })
    }

    /// Execute (call) the line at `addr` without timing it — the priming
    /// primitive.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn execute_line(&mut self, machine: &mut Machine, addr: Addr) -> Result<(), StepError> {
        machine.run_call(self.tid, addr.0)?;
        Ok(())
    }

    /// Execute (call) every line in `addrs` back to back — the batched
    /// priming primitive. One fused engine entry for the whole batch when
    /// the engine allows it, per-call otherwise; same machine state either
    /// way. Called once per prime with the eviction set's ways, so the
    /// hot path stays allocation-free.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn execute_lines(
        &mut self,
        machine: &mut Machine,
        addrs: &[Addr],
    ) -> Result<(), StepError> {
        const BATCH: usize = 16;
        let mut targets = [0u64; BATCH];
        for chunk in addrs.chunks(BATCH) {
            for (slot, addr) in targets.iter_mut().zip(chunk) {
                *slot = addr.0;
            }
            machine.run_calls(self.tid, &targets[..chunk.len()])?;
        }
        Ok(())
    }

    /// Flush the line at `addr` with a real (timed but discarded) `clflush`.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn flush_line(&mut self, machine: &mut Machine, addr: Addr) -> Result<(), StepError> {
        machine.set_reg(self.tid, ADDR_REG, addr.0);
        machine.run_sequence(self.tid, &[Instr::Clflush { mem: MemRef::base(ADDR_REG) }])?;
        Ok(())
    }

    /// Busy-wait `cycles` (the "empty for loop" between prime and probe).
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from the sibling victim.
    pub fn wait(&mut self, machine: &mut Machine, cycles: u64) -> Result<(), StepError> {
        machine.advance(self.tid, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::asm::Assembler;
    use smack_uarch::{MicroArch, Placement};

    const T0: ThreadId = ThreadId::T0;

    fn machine_with_oracle(arch: MicroArch) -> (Machine, Addr) {
        let mut m = Machine::new(arch.profile());
        let mut a = Assembler::new(0x1_0000);
        a.nop().nop().ret();
        m.load_program(&a.assemble().unwrap());
        (m, Addr(0x1_0000))
    }

    #[test]
    fn jittered_wait_is_deterministic_bounded_and_identity_at_zero() {
        for seed in 0..200u64 {
            assert_eq!(jittered_wait(700, 0, seed), 700, "zero jitter is the identity");
            let w = jittered_wait(700, 50, seed);
            assert_eq!(w, jittered_wait(700, 50, seed), "pure function of the seed");
            assert!((650..=750).contains(&w), "seed {seed}: wait {w} out of band");
        }
        // Different seeds actually move the window.
        let distinct: std::collections::HashSet<u64> =
            (0..200u64).map(|s| jittered_wait(700, 50, s)).collect();
        assert!(distinct.len() > 20, "jitter spreads: {} distinct waits", distinct.len());
        // The wait never collapses to zero.
        assert!(jittered_wait(1, 100, 3) >= 1);
    }

    #[test]
    fn all_kinds_produce_sequences_with_op_between_fences() {
        for kind in ProbeKind::ALL {
            let seq = probe_sequence(kind);
            assert_eq!(seq.len(), 5, "{kind}");
            assert_eq!(seq[0], Instr::Mfence);
            assert!(matches!(seq[1], Instr::Rdtsc { .. }));
            assert_eq!(seq[3], Instr::Mfence);
            assert!(matches!(seq[4], Instr::Rdtsc { .. }));
        }
    }

    #[test]
    fn store_probe_distinguishes_l1i_hit() {
        let (mut m, oracle) = machine_with_oracle(MicroArch::CascadeLake);
        let mut p = Prober::new(T0);
        m.warm_tlb(T0, oracle);
        m.place_line(oracle, Placement::L1i);
        let hot = p.measure(&mut m, ProbeKind::Store, oracle).unwrap();
        m.place_line(oracle, Placement::L2);
        let cold = p.measure(&mut m, ProbeKind::Store, oracle).unwrap();
        assert!(hot.cycles > cold.cycles + 150, "hot {} cold {}", hot.cycles, cold.cycles);
    }

    #[test]
    fn execute_probe_reflects_fetch_hierarchy() {
        let (mut m, oracle) = machine_with_oracle(MicroArch::CascadeLake);
        let mut p = Prober::new(T0);
        m.warm_tlb(T0, oracle);
        m.place_line(oracle, Placement::DramOnly);
        let dram = p.measure(&mut m, ProbeKind::Execute, oracle).unwrap();
        // Line is now cached by the execute itself.
        let hit = p.measure(&mut m, ProbeKind::Execute, oracle).unwrap();
        assert!(dram.cycles > hit.cycles + 150, "dram {} hit {}", dram.cycles, hit.cycles);
    }

    #[test]
    fn amd_timings_are_quantized() {
        let (mut m, oracle) = machine_with_oracle(MicroArch::AmdRyzen5);
        let mut p = Prober::new(T0);
        m.warm_tlb(T0, oracle);
        for placement in [Placement::L1i, Placement::L2, Placement::DramOnly] {
            m.place_line(oracle, placement);
            let t = p.measure(&mut m, ProbeKind::Store, oracle).unwrap();
            assert_eq!(t.cycles % 21, 0, "AMD rdtsc readings come in 21-cycle quanta");
        }
    }

    #[test]
    fn unsupported_kind_errors() {
        let (mut m, oracle) = machine_with_oracle(MicroArch::IvyBridge);
        let mut p = Prober::new(T0);
        let err = p.measure(&mut m, ProbeKind::FlushOpt, oracle).unwrap_err();
        assert_eq!(err, StepError::Unsupported { kind: ProbeKind::FlushOpt });
    }

    #[test]
    fn execute_line_fills_l1i() {
        let (mut m, oracle) = machine_with_oracle(MicroArch::CascadeLake);
        let mut p = Prober::new(T0);
        assert!(!m.residency(oracle).l1i);
        p.execute_line(&mut m, oracle).unwrap();
        assert!(m.residency(oracle).l1i);
        p.flush_line(&mut m, oracle).unwrap();
        assert!(!m.residency(oracle).cached_anywhere());
    }
}
