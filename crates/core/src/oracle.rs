//! Oracle code pages (paper Listing 1) and L1i eviction sets.
//!
//! An *oracle* is an executable cache line the attacker controls: a few
//! `nop`s and a `ret`, so calling its base address fetches exactly that
//! line into the L1i. An *eviction set* is eight such lines mapping to the
//! same L1i set with distinct tags (addresses 4 KiB apart), enough to own
//! every way of the set on the 64-set/8-way L1 instruction caches modeled
//! here.

use smack_uarch::asm::{Assembler, Program};
use smack_uarch::{Addr, Machine, StepError, ThreadId};

use crate::probe::Prober;

/// An executable oracle region of consecutive cache lines.
#[derive(Clone, Debug)]
pub struct OraclePage {
    base: Addr,
    lines: usize,
    program: Program,
}

impl OraclePage {
    /// Build an oracle of `lines` consecutive lines starting at `base`
    /// (line-aligned). Each line is `nop; nop; ret`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not line-aligned or `lines` is zero.
    pub fn build(base: Addr, lines: usize) -> OraclePage {
        assert_eq!(base.line_offset(), 0, "oracle base must be line-aligned");
        assert!(lines > 0, "oracle needs at least one line");
        let mut a = Assembler::new(base.0);
        for i in 0..lines {
            a.org(base.0 + (i as u64) * 64).nop().nop().ret();
        }
        OraclePage { base, lines, program: a.assemble().expect("oracle assembles") }
    }

    /// Load the oracle's code into a machine.
    pub fn install(&self, machine: &mut Machine) {
        machine.load_program(&self.program);
    }

    /// Base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Address of line `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= lines`.
    pub fn line(&self, i: usize) -> Addr {
        assert!(i < self.lines, "oracle line out of range");
        Addr(self.base.0 + (i as u64) * 64)
    }

    /// Prepare the canonical Listing-1 state on `tid`: warm the TLB, flush
    /// the line, execute it so it is resident in the L1i, and fence.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn prepare_l1i(
        &self,
        machine: &mut Machine,
        tid: ThreadId,
        i: usize,
    ) -> Result<(), StepError> {
        let line = self.line(i);
        machine.warm_tlb(tid, line);
        let mut p = Prober::new(tid);
        p.flush_line(machine, line)?;
        p.execute_line(machine, line)?;
        machine.run_sequence(tid, &[smack_uarch::isa::Instr::Mfence])?;
        Ok(())
    }
}

/// An eviction set: one oracle line per way of a single L1i set.
#[derive(Clone, Debug)]
pub struct EvictionSet {
    set: usize,
    ways: Vec<Addr>,
    program: Program,
}

impl EvictionSet {
    /// Build an eviction set for L1i set `set` with `ways` lines, placing
    /// code at `region_base + way * 4096 + set * 64`.
    ///
    /// # Panics
    ///
    /// Panics if `region_base` is not page-aligned or `set >= 64`.
    pub fn build(region_base: u64, set: usize, ways: usize) -> EvictionSet {
        assert_eq!(region_base % 4096, 0, "eviction region must be page-aligned");
        assert!(set < 64, "set index out of range");
        let mut a = Assembler::new(region_base);
        let mut lines = Vec::with_capacity(ways);
        for w in 0..ways {
            let addr = region_base + (w as u64) * 4096 + (set as u64) * 64;
            a.org(addr).nop().nop().ret();
            lines.push(Addr(addr));
        }
        EvictionSet { set, ways: lines, program: a.assemble().expect("eviction set assembles") }
    }

    /// Build the full 8-way set for a machine's L1i geometry.
    pub fn for_machine(machine: &Machine, region_base: u64, set: usize) -> EvictionSet {
        EvictionSet::build(region_base, set, machine.l1i_ways())
    }

    /// Load the eviction-set code into a machine.
    pub fn install(&self, machine: &mut Machine) {
        machine.load_program(&self.program);
    }

    /// The monitored L1i set index.
    pub fn set(&self) -> usize {
        self.set
    }

    /// The way line addresses.
    pub fn ways(&self) -> &[Addr] {
        &self.ways
    }

    /// Prime: execute every way so the attacker owns the whole set.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn prime(&self, machine: &mut Machine, prober: &mut Prober) -> Result<(), StepError> {
        prober.execute_lines(machine, &self.ways)
    }

    /// Probe every way with `kind`, returning per-way timings.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn probe(
        &self,
        machine: &mut Machine,
        prober: &mut Prober,
        kind: smack_uarch::ProbeKind,
    ) -> Result<Vec<u64>, StepError> {
        self.probe_first(machine, prober, kind, self.ways.len())
    }

    /// Probe only the first `n` ways — the ways LRU replacement evicts
    /// first, so a single victim fetch is almost always caught. Probing
    /// fewer ways keeps the sample period short (and stalls the victim
    /// less), which is what gives the RSA/SRP attacks their per-square
    /// resolution.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn probe_first(
        &self,
        machine: &mut Machine,
        prober: &mut Prober,
        kind: smack_uarch::ProbeKind,
        n: usize,
    ) -> Result<Vec<u64>, StepError> {
        let mut out = Vec::new();
        self.probe_first_into(machine, prober, kind, n, &mut out)?;
        Ok(out)
    }

    /// [`EvictionSet::probe_first`] into a caller-owned buffer (cleared
    /// first), so a sampling loop can reuse one allocation across its
    /// hundreds of probe rounds per trial.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn probe_first_into(
        &self,
        machine: &mut Machine,
        prober: &mut Prober,
        kind: smack_uarch::ProbeKind,
        n: usize,
        out: &mut Vec<u64>,
    ) -> Result<(), StepError> {
        let n = n.min(self.ways.len());
        out.clear();
        out.reserve(n);
        for w in &self.ways[..n] {
            out.push(prober.measure(machine, kind, *w)?.cycles);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::{MicroArch, ProbeKind};

    const T0: ThreadId = ThreadId::T0;

    #[test]
    fn oracle_lines_are_line_aligned_and_distinct() {
        let o = OraclePage::build(Addr(0x2_0000), 8);
        for i in 0..8 {
            assert_eq!(o.line(i).line_offset(), 0);
        }
        assert_ne!(o.line(0), o.line(1));
    }

    #[test]
    fn prepare_l1i_lands_line_in_l1i() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let o = OraclePage::build(Addr(0x2_0000), 4);
        o.install(&mut m);
        o.prepare_l1i(&mut m, T0, 2).unwrap();
        let r = m.residency(o.line(2));
        assert!(r.l1i && r.l2 && r.llc);
    }

    #[test]
    fn eviction_set_ways_share_the_set() {
        let m = Machine::new(MicroArch::CascadeLake.profile());
        let ev = EvictionSet::for_machine(&m, 0x10_0000, 37);
        assert_eq!(ev.ways().len(), 8);
        for w in ev.ways() {
            assert_eq!(m.l1i_set(*w), 37);
        }
        // Distinct tags.
        let mut lines: Vec<_> = ev.ways().to_vec();
        lines.dedup();
        assert_eq!(lines.len(), 8);
    }

    #[test]
    fn prime_owns_the_whole_set() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let ev = EvictionSet::for_machine(&m, 0x10_0000, 5);
        ev.install(&mut m);
        let mut p = Prober::new(T0);
        ev.prime(&mut m, &mut p).unwrap();
        for w in ev.ways() {
            assert!(m.residency(*w).l1i, "way {w} resident after prime");
        }
    }

    #[test]
    fn probe_sees_eviction_as_the_low_way() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let ev = EvictionSet::for_machine(&m, 0x10_0000, 5);
        ev.install(&mut m);
        let mut p = Prober::new(T0);
        for w in ev.ways() {
            m.warm_tlb(T0, *w);
        }
        ev.prime(&mut m, &mut p).unwrap();
        // Simulate a victim fetch landing in the set: the evicted way
        // leaves the L1i but stays in L2 (inclusive hierarchy).
        m.place_line(ev.ways()[3], smack_uarch::Placement::L2);
        let t = ev.probe(&mut m, &mut p, ProbeKind::Store).unwrap();
        let evicted = t[3];
        for (i, v) in t.iter().enumerate() {
            if i != 3 {
                assert!(*v > evicted + 100, "way {i}: {v} vs evicted {evicted}");
            }
        }
    }
}
