//! §4 characterization harnesses: Figure 1 (probe timing per cache state)
//! and Figure 2 (performance-counter reverse engineering).

use smack_uarch::{
    Addr, Machine, PerfEvent, Placement, ProbeKind, SmcBehavior, StepError, ThreadId,
};

use crate::oracle::OraclePage;
use crate::probe::Prober;

/// Summary statistics of a timing population.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct TimingStats {
    /// Arithmetic mean (cycles).
    pub mean: f64,
    /// Standard deviation (cycles).
    pub std: f64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Sample count.
    pub samples: usize,
}

impl TimingStats {
    /// Compute stats from raw samples.
    pub fn from_samples(samples: &[u64]) -> TimingStats {
        if samples.is_empty() {
            return TimingStats::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<u64>() as f64 / n;
        let var = samples.iter().map(|s| (*s as f64 - mean).powi(2)).sum::<f64>() / n;
        TimingStats {
            mean,
            std: var.sqrt(),
            min: *samples.iter().min().expect("nonempty"),
            max: *samples.iter().max().expect("nonempty"),
            samples: samples.len(),
        }
    }
}

/// One cell of the Figure 1 matrix: probe class × cache state.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Figure1Cell {
    /// Probe class.
    pub kind: ProbeKind,
    /// Prepared microarchitectural state of the oracle line.
    pub state: Placement,
    /// Timing statistics.
    pub stats: TimingStats,
}

/// The full Figure 1 characterization for one machine: every supported
/// probe class measured against all five oracle states.
///
/// Returns one entry per supported `(kind, state)` pair; unsupported
/// instructions are skipped (they would be `×` cells in Table 3).
///
/// # Errors
///
/// Propagates simulator errors other than instruction-unsupported.
pub fn figure1(
    machine: &mut Machine,
    tid: ThreadId,
    samples: usize,
) -> Result<Vec<Figure1Cell>, StepError> {
    let oracle = OraclePage::build(Addr(0x00ee_0000), 1);
    oracle.install(machine);
    let line = oracle.line(0);
    machine.warm_tlb(tid, line);
    let mut prober = Prober::new(tid);
    let mut out = Vec::new();
    for kind in ProbeKind::ALL {
        if machine.profile().smc.get(kind) == SmcBehavior::Unsupported {
            continue;
        }
        for state in Placement::ALL {
            let mut timings = Vec::with_capacity(samples);
            for _ in 0..samples {
                machine.place_line(line, state);
                timings.push(prober.measure(machine, kind, line)?.cycles);
            }
            out.push(Figure1Cell { kind, state, stats: TimingStats::from_samples(&timings) });
        }
    }
    Ok(out)
}

/// The Mastik-style comparison row of Figure 1: execute-and-time probing
/// across the data states (the classic L1i Prime+Probe measurement).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn figure1_mastik_row(
    machine: &mut Machine,
    tid: ThreadId,
    samples: usize,
) -> Result<Vec<Figure1Cell>, StepError> {
    let oracle = OraclePage::build(Addr(0x00ef_0000), 1);
    oracle.install(machine);
    let line = oracle.line(0);
    machine.warm_tlb(tid, line);
    let mut prober = Prober::new(tid);
    let mut out = Vec::new();
    for state in Placement::ALL {
        let mut timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            machine.place_line(line, state);
            timings.push(prober.measure(machine, ProbeKind::Execute, line)?.cycles);
        }
        out.push(Figure1Cell {
            kind: ProbeKind::Execute,
            state,
            stats: TimingStats::from_samples(&timings),
        });
    }
    Ok(out)
}

/// One counter's average delta around an SMC-probe execution (Figure 2).
#[derive(Clone, PartialEq, Debug)]
pub struct CounterProfile {
    /// Probe class measured.
    pub kind: ProbeKind,
    /// `(event, mean delta per probe)` pairs.
    pub deltas: Vec<(PerfEvent, f64)>,
}

/// The events the paper's Figure 2 tracks, per vendor (both sets are
/// sampled; irrelevant ones read zero).
pub const FIGURE2_EVENTS: [PerfEvent; 9] = [
    PerfEvent::MachineClearsCount,
    PerfEvent::MachineClearsSmc,
    PerfEvent::CycleActivityStallsTotal,
    PerfEvent::FrontendIdq4Bubbles,
    PerfEvent::IntMiscClearResteerCycles,
    PerfEvent::PartialRatStallsScoreboard,
    PerfEvent::AmdPipeStallBackPressure,
    PerfEvent::AmdIcLinesInvalidated,
    PerfEvent::AmdL2FillBusy,
];

/// Reverse-engineer SMC behaviour with performance counters: for each
/// supported probe class, prepare the L1i state and measure the counter
/// deltas across `reps` probes (paper: 10,000 on hardware).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn figure2(
    machine: &mut Machine,
    tid: ThreadId,
    reps: usize,
) -> Result<Vec<CounterProfile>, StepError> {
    let oracle = OraclePage::build(Addr(0x00f0_0000), 1);
    oracle.install(machine);
    let line = oracle.line(0);
    machine.warm_tlb(tid, line);
    let mut prober = Prober::new(tid);
    let mut out = Vec::new();
    for kind in ProbeKind::ALL {
        if machine.profile().smc.get(kind) == SmcBehavior::Unsupported {
            continue;
        }
        let before = machine.counters(tid).snapshot();
        for _ in 0..reps {
            machine.place_line(line, Placement::L1i);
            prober.measure(machine, kind, line)?;
        }
        let deltas = FIGURE2_EVENTS
            .iter()
            .map(|e| (*e, machine.counters(tid).delta(&before, *e) as f64 / reps as f64))
            .collect();
        out.push(CounterProfile { kind, deltas });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smack_uarch::MicroArch;

    const T0: ThreadId = ThreadId::T0;

    fn cell(cells: &[Figure1Cell], kind: ProbeKind, state: Placement) -> &Figure1Cell {
        cells
            .iter()
            .find(|c| c.kind == kind && c.state == state)
            .unwrap_or_else(|| panic!("missing cell {kind}/{state}"))
    }

    #[test]
    fn figure1_reproduces_cascade_lake_shape() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let cells = figure1(&mut m, T0, 30).unwrap();

        // Flush: L1i hit ≈ 350, > 150 above LLC hit (paper §4.1).
        let f_l1i = cell(&cells, ProbeKind::Flush, Placement::L1i).stats.mean;
        let f_llc = cell(&cells, ProbeKind::Flush, Placement::Llc).stats.mean;
        assert!(f_l1i > 300.0 && f_l1i < 420.0, "flush L1i {f_l1i}");
        assert!(f_l1i - f_llc > 150.0, "flush margin {}", f_l1i - f_llc);

        // Store: ≈300 on L1i, ≈200 above LLC, within ~40 of DRAM.
        let s_l1i = cell(&cells, ProbeKind::Store, Placement::L1i).stats.mean;
        let s_llc = cell(&cells, ProbeKind::Store, Placement::Llc).stats.mean;
        let s_dram = cell(&cells, ProbeKind::Store, Placement::DramOnly).stats.mean;
        assert!(s_l1i - s_llc > 150.0);
        assert!((s_l1i - s_dram).abs() < 60.0, "store L1i {s_l1i} vs DRAM {s_dram}");

        // Lock is the slowest conflict (paper: ~425 cycles).
        let l_l1i = cell(&cells, ProbeKind::Lock, Placement::L1i).stats.mean;
        assert!(l_l1i > s_l1i && l_l1i > f_l1i, "lock {l_l1i}");

        // Load never conflicts: L1i-state load is an L2-ish access.
        let ld_l1i = cell(&cells, ProbeKind::Load, Placement::L1i).stats.mean;
        assert!(ld_l1i < 100.0, "load on L1i-resident line {ld_l1i}");
    }

    #[test]
    fn figure1_mastik_row_shows_tiny_l1i_l2_gap() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let row = figure1_mastik_row(&mut m, T0, 30).unwrap();
        let l1i = cell(&row, ProbeKind::Execute, Placement::L1i).stats.mean;
        let l2 = cell(&row, ProbeKind::Execute, Placement::L2).stats.mean;
        let llc = cell(&row, ProbeKind::Execute, Placement::Llc).stats.mean;
        let dram = cell(&row, ProbeKind::Execute, Placement::DramOnly).stats.mean;
        assert!((l2 - l1i).abs() < 5.0, "paper: 1-2 cycle gap; got {}", l2 - l1i);
        assert!(llc - l1i > 15.0 && llc - l1i < 60.0, "LLC gap {}", llc - l1i);
        assert!(dram > 200.0, "DRAM {dram}");
    }

    #[test]
    fn figure2_counters_match_paper_reverse_engineering() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let profiles = figure2(&mut m, T0, 50).unwrap();
        let get = |kind: ProbeKind, e: PerfEvent| -> f64 {
            profiles
                .iter()
                .find(|p| p.kind == kind)
                .and_then(|p| p.deltas.iter().find(|(ev, _)| *ev == e))
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        // One machine clear per conflicting probe...
        assert!((get(ProbeKind::Store, PerfEvent::MachineClearsCount) - 1.0).abs() < 0.05);
        // ...but the SMC sub-counter double-counts clflushopt and clwb.
        assert!((get(ProbeKind::FlushOpt, PerfEvent::MachineClearsSmc) - 2.0).abs() < 0.05);
        assert!((get(ProbeKind::Clwb, PerfEvent::MachineClearsSmc) - 2.0).abs() < 0.05);
        assert!((get(ProbeKind::Store, PerfEvent::MachineClearsSmc) - 1.0).abs() < 0.05);
        // Store serialization ≈ 200 cycles in the scoreboard counter.
        let sb = get(ProbeKind::Store, PerfEvent::PartialRatStallsScoreboard);
        assert!((150.0..=250.0).contains(&sb), "scoreboard {sb}");
        // Lock has the highest total stalls (~580).
        let lock_stalls = get(ProbeKind::Lock, PerfEvent::CycleActivityStallsTotal);
        assert!(lock_stalls >= 500.0, "lock stalls {lock_stalls}");
        // Load never machine-clears.
        assert_eq!(get(ProbeKind::Load, PerfEvent::MachineClearsCount), 0.0);
    }

    #[test]
    fn figure2_amd_counters() {
        let mut m = Machine::new(MicroArch::AmdRyzen5.profile());
        let profiles = figure2(&mut m, T0, 50).unwrap();
        let get = |kind: ProbeKind, e: PerfEvent| -> f64 {
            profiles
                .iter()
                .find(|p| p.kind == kind)
                .and_then(|p| p.deltas.iter().find(|(ev, _)| *ev == e))
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        // clflush: ~500 back-pressure stall cycles (paper §4.2).
        let bp = get(ProbeKind::Flush, PerfEvent::AmdPipeStallBackPressure);
        assert!((400.0..=600.0).contains(&bp), "back pressure {bp}");
        // Store invalidates one icache line per conflict and refills via L2.
        assert!((get(ProbeKind::Store, PerfEvent::AmdIcLinesInvalidated) - 1.0).abs() < 0.05);
        assert!(get(ProbeKind::Store, PerfEvent::AmdL2FillBusy) > 100.0);
        // Flush does not refill, so no L2 fill pressure.
        assert_eq!(get(ProbeKind::Flush, PerfEvent::AmdL2FillBusy), 0.0);
        // No machine-clear events exposed on AMD.
        assert_eq!(get(ProbeKind::Store, PerfEvent::MachineClearsCount), 0.0);
    }

    #[test]
    fn stats_computation() {
        let s = TimingStats::from_samples(&[10, 20, 30]);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert_eq!(s.samples, 3);
        assert!(s.std > 8.0 && s.std < 9.0);
        assert_eq!(TimingStats::from_samples(&[]).samples, 0);
    }
}
