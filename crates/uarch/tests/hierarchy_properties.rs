//! Property-based tests of the cache hierarchy against a simple reference
//! model: inclusion, coherence of the dirty state, and LRU behaviour under
//! arbitrary operation sequences.

use proptest::prelude::*;
use smack_uarch::cache::{Cache, CacheGeometry};
use smack_uarch::hierarchy::{CacheHierarchy, HierarchyConfig};
use smack_uarch::Addr;

#[derive(Clone, Debug)]
enum Op {
    Fetch(u8),
    Read(u8),
    Write(u8),
    Flush(u8),
    Writeback(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Fetch),
        any::<u8>().prop_map(Op::Read),
        any::<u8>().prop_map(Op::Write),
        any::<u8>().prop_map(Op::Flush),
        any::<u8>().prop_map(Op::Writeback),
    ]
}

fn addr_of(slot: u8) -> Addr {
    // 256 distinct lines spread across sets and tags.
    Addr(0x10_0000 + (slot as u64) * 64 * 17)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inclusion: anything in L1i/L1d/L2 is also in the LLC, after any
    /// operation sequence.
    #[test]
    fn prop_llc_inclusion(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut h = CacheHierarchy::new(HierarchyConfig::intel_like());
        for op in &ops {
            match op {
                Op::Fetch(s) => { h.fetch(addr_of(*s)); }
                Op::Read(s) => { h.read(addr_of(*s)); }
                Op::Write(s) => { h.write(addr_of(*s)); }
                Op::Flush(s) => { h.flush(addr_of(*s)); }
                Op::Writeback(s) => { h.writeback(addr_of(*s)); }
            }
            for slot in 0..=255u8 {
                let r = h.residency(addr_of(slot));
                if r.l1i || r.l1d || r.l2 {
                    prop_assert!(r.llc, "inclusion violated for slot {slot} after {op:?}");
                }
            }
        }
    }

    /// A store never leaves its line in the instruction cache, and a flush
    /// never leaves it anywhere.
    #[test]
    fn prop_write_and_flush_postconditions(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig::intel_like());
        for op in &ops {
            match op {
                Op::Fetch(s) => { h.fetch(addr_of(*s)); }
                Op::Read(s) => { h.read(addr_of(*s)); }
                Op::Write(s) => {
                    h.write(addr_of(*s));
                    let r = h.residency(addr_of(*s));
                    prop_assert!(!r.l1i, "modified line may not stay in L1i");
                    prop_assert!(r.l1d, "write allocates into L1d");
                }
                Op::Flush(s) => {
                    h.flush(addr_of(*s));
                    prop_assert!(!h.residency(addr_of(*s)).cached_anywhere());
                }
                Op::Writeback(s) => {
                    let was = h.residency(addr_of(*s));
                    h.writeback(addr_of(*s));
                    prop_assert_eq!(h.residency(addr_of(*s)), was, "clwb keeps residency");
                }
            }
        }
    }

    /// The set-associative cache matches a naive LRU reference model.
    #[test]
    fn prop_cache_matches_lru_reference(
        touches in proptest::collection::vec(0u8..32, 1..200),
    ) {
        let geom = CacheGeometry { sets: 1, ways: 4 };
        let mut cache = Cache::new(geom);
        let mut reference: Vec<u64> = Vec::new(); // most-recent at the back
        for t in &touches {
            let line = (*t as u64) * 64; // sets=1: everything collides
            cache.insert(Addr(line), false);
            reference.retain(|l| *l != line);
            reference.push(line);
            if reference.len() > geom.ways {
                reference.remove(0);
            }
            let mut resident: Vec<u64> = cache.lines_in_set(0).map(|a| a.0).collect();
            resident.sort_unstable();
            let mut expect = reference.clone();
            expect.sort_unstable();
            prop_assert_eq!(resident, expect);
        }
    }

    /// Flush-then-anything never reports a stale dirty write-back.
    #[test]
    fn prop_no_dirty_resurrection(slots in proptest::collection::vec(any::<u8>(), 1..60)) {
        let mut h = CacheHierarchy::new(HierarchyConfig::intel_like());
        for s in &slots {
            h.write(addr_of(*s));
            let f1 = h.flush(addr_of(*s));
            prop_assert!(f1.wrote_back, "first flush writes the dirty line back");
            let f2 = h.flush(addr_of(*s));
            prop_assert!(!f2.wrote_back, "second flush has nothing to write");
            prop_assert!(!f2.was_cached);
        }
    }
}
