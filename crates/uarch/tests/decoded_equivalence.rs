//! The decoded fast path and superblock execution are *optimizations*,
//! never a semantic change: for arbitrary programs, executing through the
//! pre-decoded side table — with or without fused superblock retirement —
//! must produce exactly the architectural state, clocks, and performance
//! counters of the original per-step `BTreeMap` reference interpreter.
//! The same holds across engine burst sizes (including burst 1, the
//! historical one-instruction-per-call scheduling), under injected
//! eviction noise, and across mid-run code patches that force decoded
//! lines to re-fuse.

use proptest::prelude::*;
use smack_uarch::asm::{Assembler, Program};
use smack_uarch::isa::{MemRef, Reg};
use smack_uarch::{Machine, MicroArch, NoiseConfig, ThreadId};

const T0: ThreadId = ThreadId::T0;
const T1: ThreadId = ThreadId::T1;
const CODE_BASE: u64 = 0x10_0000;
const HELPER_BASE: u64 = 0x1f_0000;
const DATA_BASE: u64 = 0x40_0000;

/// One random body instruction. Register operands stay in `R0..=R7`;
/// `R8` holds the data base, `R9` the helper address, `R10` the loop
/// counter, so control and addressing stay well-formed no matter what the
/// generator draws.
#[derive(Clone, Debug)]
enum BodyOp {
    Alu(u8, u8, u8),
    MovImm(u8, u64),
    Load(u8, u8),
    Store(u8, u8),
    CmpImm(u8, u64),
    /// `jcc` skipping the next op when the condition holds — a forward
    /// branch, so generated programs always terminate.
    SkipNext(u8),
    /// `call` to the fixed helper routine (static target).
    CallHelper,
    /// `call *%r9` (dynamic target, resolved through the `pc → index`
    /// map every time).
    CallHelperReg,
    Clflush(u8),
    Nop,
    /// A bounded inner loop (backward `jne`): superblocks must stop at
    /// the branch and re-enter the run at the loop head every iteration.
    InnerLoop(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (0u8..5, 0u8..8, 0u8..8).prop_map(|(k, d, s)| BodyOp::Alu(k, d, s)),
        (0u8..8, any::<u64>()).prop_map(|(d, imm)| BodyOp::MovImm(d, imm)),
        (0u8..8, 0u8..16).prop_map(|(d, slot)| BodyOp::Load(d, slot)),
        (0u8..8, 0u8..16).prop_map(|(s, slot)| BodyOp::Store(s, slot)),
        (0u8..8, 0u64..4).prop_map(|(r, imm)| BodyOp::CmpImm(r, imm)),
        (0u8..5).prop_map(BodyOp::SkipNext),
        Just(BodyOp::CallHelper),
        Just(BodyOp::CallHelperReg),
        (0u8..16).prop_map(BodyOp::Clflush),
        Just(BodyOp::Nop),
        (0u8..8, 2u8..5).prop_map(|(r, n)| BodyOp::InnerLoop(r, n)),
    ]
}

fn reg(i: u8) -> Reg {
    Reg::from_index(i as usize)
}

fn cond(i: u8) -> smack_uarch::isa::Cond {
    use smack_uarch::isa::Cond;
    [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le][i as usize % 5]
}

/// Assemble `ops` into a program: a two-iteration outer loop (backward
/// branch) around the random body, with a `ret`-terminated helper routine
/// off to the side for the call ops.
fn build_program(ops: &[BodyOp]) -> Program {
    let mut a = Assembler::new(CODE_BASE);
    a.mov_imm(Reg::R8, DATA_BASE).mov_label(Reg::R9, "helper").mov_imm(Reg::R10, 0).label("loop");
    // Each `SkipNext` at index `i` jumps to a label placed after op
    // `i + 1` (or straight to the loop epilogue for a trailing skip).
    // Consecutive skips may stack several labels at one point.
    let mut labels_after: Vec<Vec<String>> = vec![Vec::new(); ops.len()];
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, BodyOp::SkipNext(_)) && i + 1 < ops.len() {
            labels_after[i + 1].push(format!("skip{i}"));
        }
    }
    for (i, op) in ops.iter().enumerate() {
        match *op {
            BodyOp::Alu(kind, d, s) => {
                let (d, s) = (reg(d), reg(s));
                match kind {
                    0 => a.add(d, s),
                    1 => a.sub(d, s),
                    2 => a.mul(d, s),
                    3 => a.xor(d, s),
                    _ => a.or(d, s),
                };
            }
            BodyOp::MovImm(d, imm) => {
                a.mov_imm(reg(d), imm);
            }
            BodyOp::Load(d, slot) => {
                a.load(reg(d), MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::Store(s, slot) => {
                a.store(reg(s), MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::CmpImm(r, imm) => {
                a.cmp_imm(reg(r), imm);
            }
            BodyOp::SkipNext(c) => {
                if i + 1 < ops.len() {
                    a.jcc(cond(c), format!("skip{i}"));
                } else {
                    // A trailing skip jumps to the loop epilogue.
                    a.jcc(cond(c), "epilogue");
                }
            }
            BodyOp::CallHelper => {
                a.call("helper");
            }
            BodyOp::CallHelperReg => {
                a.call_reg(Reg::R9);
            }
            BodyOp::Clflush(slot) => {
                a.clflush(MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::Nop => {
                a.nop();
            }
            BodyOp::InnerLoop(r, n) => {
                // R11 is reserved as the inner counter, so nesting with
                // the outer loop (R10) stays well-formed.
                a.mov_imm(Reg::R11, 0)
                    .label(&format!("inner{i}"))
                    .add_imm(reg(r), 1)
                    .add_imm(Reg::R11, 1)
                    .cmp_imm(Reg::R11, n as u64)
                    .jne(format!("inner{i}"));
            }
        }
        for l in &labels_after[i] {
            a.label(l);
        }
    }
    a.label("epilogue").add_imm(Reg::R10, 1).cmp_imm(Reg::R10, 2).jne("loop").halt();
    a.org(HELPER_BASE).label("helper").add(Reg::R0, Reg::R1).nop().ret();
    a.assemble().expect("generated program assembles")
}

/// Everything the fast path must preserve, captured after a run.
#[derive(PartialEq, Debug)]
struct Outcome {
    regs: Vec<u64>,
    clock_t0: u64,
    clock_t1: u64,
    counters_t0: smack_uarch::CounterSnapshot,
    counters_t1: smack_uarch::CounterSnapshot,
    data: Vec<u8>,
}

/// Interpreter configuration for one equivalence run. `superblocks`
/// implies nothing unless `decoded` is set (the engine gates fusion on
/// the decoded table), so (false, true) is normalized to plain reference.
#[derive(Copy, Clone, Debug)]
struct Cfg {
    decoded: bool,
    superblocks: bool,
    burst: u64,
}

const REFERENCE: Cfg = Cfg { decoded: false, superblocks: false, burst: 4096 };

fn machine(cfg: Cfg, noise_seed: Option<u64>) -> Machine {
    let profile = MicroArch::CascadeLake.profile();
    let mut m = match noise_seed {
        Some(seed) => Machine::with_noise(profile, NoiseConfig::realistic(), seed),
        None => Machine::new(profile),
    };
    m.set_decoded_fast_path(cfg.decoded);
    m.set_superblocks(cfg.superblocks);
    m.set_burst_steps(cfg.burst);
    m
}

/// Run `prog` to completion under the given interpreter configuration.
fn run(prog: &Program, cfg: Cfg, noise_seed: Option<u64>) -> Outcome {
    let mut m = machine(cfg, noise_seed);
    m.load_program(prog);
    m.start_program(T0, prog.entry(), &[]);
    m.run_until_halt(T0, 1_000_000).expect("program halts");
    Outcome {
        regs: (0..Reg::COUNT).map(|i| m.reg(T0, Reg::from_index(i))).collect(),
        clock_t0: m.clock(T0),
        clock_t1: m.clock(T1),
        counters_t0: m.counters(T0).snapshot(),
        counters_t1: m.counters(T1).snapshot(),
        data: m.read_bytes(smack_uarch::Addr(DATA_BASE), 16 * 8),
    }
}

/// A runtime rewrite of the helper routine's code line. Three variants:
/// a same-length `xor` swap (instruction boundaries survive, entries
/// re-decode in place), a same-length `mfence` swap (`mfence` cannot fuse
/// into a superblock, so the helper line must re-fuse with a new break
/// where a fusable run used to be), and the boundary-moving variant that
/// also places a fresh routine at new addresses, forcing the
/// full-recompile fallback.
fn helper_patch(kind: u8) -> Program {
    let mut a = Assembler::new(HELPER_BASE);
    match kind {
        0 => a.label("helper").xor(Reg::R0, Reg::R1).nop().ret(),
        1 => a.label("helper").mfence().nop().ret(),
        _ => {
            a.label("helper").xor(Reg::R0, Reg::R1).nop().ret();
            a.org(HELPER_BASE + 0x40).label("helper2").add_imm(Reg::R0, 5).ret()
        }
    };
    a.assemble().expect("patch assembles")
}

/// Run `prog`, apply `patch` after `at_step` engine steps (mid-run
/// self-modification), and run to completion.
fn run_with_patch(prog: &Program, patch: &Program, at_step: u64, cfg: Cfg) -> Outcome {
    let mut m = machine(cfg, None);
    m.load_program(prog);
    m.start_program(T0, prog.entry(), &[]);
    m.run_burst(T0, at_step).expect("prefix runs");
    m.patch_program(patch);
    m.run_until_halt(T0, 1_000_000).expect("program halts");
    Outcome {
        regs: (0..Reg::COUNT).map(|i| m.reg(T0, Reg::from_index(i))).collect(),
        clock_t0: m.clock(T0),
        clock_t1: m.clock(T1),
        counters_t0: m.counters(T0).snapshot(),
        counters_t1: m.counters(T1).snapshot(),
        data: m.read_bytes(smack_uarch::Addr(DATA_BASE), 16 * 8),
    }
}

/// The non-reference configurations every proptest checks: superblocks
/// across burst sizes, the per-step decoded path, and reference at
/// burst 1.
const CONFIGS: [Cfg; 5] = [
    Cfg { decoded: true, superblocks: true, burst: 4096 },
    Cfg { decoded: true, superblocks: true, burst: 1 },
    Cfg { decoded: true, superblocks: true, burst: 7 },
    Cfg { decoded: true, superblocks: false, burst: 4096 },
    Cfg { decoded: false, superblocks: false, burst: 1 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Superblock vs per-step decoded vs reference interpreter, and
    /// burst 1 vs large bursts: every configuration retires the same
    /// architecture, time, and counter state for arbitrary programs
    /// (including backward inner-loop branches).
    #[test]
    fn prop_decoded_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let prog = build_program(&ops);
        let reference = run(&prog, REFERENCE, None);
        for cfg in CONFIGS {
            let got = run(&prog, cfg, None);
            prop_assert_eq!(&got, &reference, "{:?} diverged", cfg);
        }
    }

    /// Self-modified code lines re-decode into the side table: rewriting
    /// the helper routine mid-run (same-length in-place patch, the
    /// fusability-flipping `mfence` patch, and the boundary-moving
    /// variant that forces a recompile) must leave the decoded and
    /// superblock paths bit-identical to the map-lookup reference, for
    /// every burst size.
    #[test]
    fn prop_rewritten_code_lines_match_reference(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        kind in 0u8..3,
        at_step in 1u64..150,
    ) {
        let prog = build_program(&ops);
        let patch = helper_patch(kind);
        let reference = run_with_patch(&prog, &patch, at_step, REFERENCE);
        for cfg in &CONFIGS[..4] {
            let got = run_with_patch(&prog, &patch, at_step, *cfg);
            prop_assert_eq!(&got, &reference, "{:?} diverged after rewrite {}", cfg, kind);
        }
    }

    /// Injected eviction noise is drawn from the engine clock, which the
    /// superblock guards keep bit-identical: noisy runs must agree across
    /// every interpreter tier and burst size too.
    #[test]
    fn prop_noisy_runs_match_reference(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let prog = build_program(&ops);
        let reference = run(&prog, REFERENCE, Some(seed));
        for cfg in CONFIGS {
            let got = run(&prog, cfg, Some(seed));
            prop_assert_eq!(&got, &reference, "{:?} diverged under noise", cfg);
        }
    }
}

/// Dual-thread equivalence: a victim loop on T1 driven causally while T0
/// runs its own program — the scheduling the covert channels rely on.
#[test]
fn dual_thread_decoded_matches_reference() {
    let mut a = Assembler::new(0x20_0000);
    a.mov_imm(Reg::R0, 0)
        .mov_imm(Reg::R8, DATA_BASE + 0x1000)
        .label("loop")
        .add_imm(Reg::R0, 1)
        .store(Reg::R0, MemRef::base(Reg::R8))
        .cmp_imm(Reg::R0, 400)
        .jne("loop")
        .halt();
    let victim = a.assemble().unwrap();

    let mut b = Assembler::new(CODE_BASE);
    b.mov_imm(Reg::R1, 0)
        .mov_imm(Reg::R9, DATA_BASE)
        .label("loop")
        .add_imm(Reg::R1, 3)
        .load(Reg::R2, MemRef::base(Reg::R9))
        .mul(Reg::R2, Reg::R1)
        .cmp_imm(Reg::R1, 900)
        .jne("loop")
        .halt();
    let driver = b.assemble().unwrap();

    let mut outcomes = Vec::new();
    for (decoded, superblocks, burst) in [
        (false, false, 4096),
        (true, true, 4096),
        (true, true, 1),
        (true, true, 64),
        (true, false, 4096),
    ] {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        m.set_decoded_fast_path(decoded);
        m.set_superblocks(superblocks);
        m.set_burst_steps(burst);
        m.load_program(&victim);
        m.load_program(&driver);
        m.start_program(T1, victim.entry(), &[]);
        m.start_program(T0, driver.entry(), &[]);
        m.run_until_halt(T0, 1_000_000).unwrap();
        m.run_until_halt(T1, 1_000_000).unwrap();
        outcomes.push((
            (decoded, superblocks),
            burst,
            m.reg(T0, Reg::R1),
            m.reg(T0, Reg::R2),
            m.reg(T1, Reg::R0),
            m.clock(T0),
            m.clock(T1),
            m.counters(T0).snapshot(),
            m.counters(T1).snapshot(),
        ));
    }
    for o in &outcomes[1..] {
        assert_eq!(
            (&o.2, &o.3, &o.4, &o.5, &o.6, &o.7, &o.8),
            (
                &outcomes[0].2,
                &outcomes[0].3,
                &outcomes[0].4,
                &outcomes[0].5,
                &outcomes[0].6,
                &outcomes[0].7,
                &outcomes[0].8
            ),
            "config (decoded, superblocks)={:?}, burst={} diverged from reference",
            o.0,
            o.1
        );
    }
}
