//! The decoded fast path and superblock execution are *optimizations*,
//! never a semantic change: for arbitrary programs, executing through the
//! pre-decoded side table — with or without fused superblock retirement —
//! must produce exactly the architectural state, clocks, and performance
//! counters of the original per-step `BTreeMap` reference interpreter.
//! The same holds across engine burst sizes (including burst 1, the
//! historical one-instruction-per-call scheduling), under injected
//! eviction noise, and across mid-run code patches that force decoded
//! lines to re-fuse.

use proptest::prelude::*;
use smack_uarch::asm::{Assembler, Program};
use smack_uarch::isa::{MemRef, Reg};
use smack_uarch::{Machine, MicroArch, NoiseConfig, ThreadId};

const T0: ThreadId = ThreadId::T0;
const T1: ThreadId = ThreadId::T1;
const CODE_BASE: u64 = 0x10_0000;
const HELPER_BASE: u64 = 0x1f_0000;
const DATA_BASE: u64 = 0x40_0000;

/// One random body instruction. Register operands stay in `R0..=R7`;
/// `R8` holds the data base, `R9` the helper address, `R10` the loop
/// counter, so control and addressing stay well-formed no matter what the
/// generator draws.
#[derive(Clone, Debug)]
enum BodyOp {
    Alu(u8, u8, u8),
    MovImm(u8, u64),
    Load(u8, u8),
    Store(u8, u8),
    CmpImm(u8, u64),
    /// `jcc` skipping the next op when the condition holds — a forward
    /// branch, so generated programs always terminate.
    SkipNext(u8),
    /// `call` to the fixed helper routine (static target).
    CallHelper,
    /// `call *%r9` (dynamic target, resolved through the `pc → index`
    /// map every time).
    CallHelperReg,
    Clflush(u8),
    Nop,
    /// A bounded inner loop (backward `jne`): superblocks must stop at
    /// the branch and re-enter the run at the loop head every iteration.
    InnerLoop(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (0u8..5, 0u8..8, 0u8..8).prop_map(|(k, d, s)| BodyOp::Alu(k, d, s)),
        (0u8..8, any::<u64>()).prop_map(|(d, imm)| BodyOp::MovImm(d, imm)),
        (0u8..8, 0u8..16).prop_map(|(d, slot)| BodyOp::Load(d, slot)),
        (0u8..8, 0u8..16).prop_map(|(s, slot)| BodyOp::Store(s, slot)),
        (0u8..8, 0u64..4).prop_map(|(r, imm)| BodyOp::CmpImm(r, imm)),
        (0u8..5).prop_map(BodyOp::SkipNext),
        Just(BodyOp::CallHelper),
        Just(BodyOp::CallHelperReg),
        (0u8..16).prop_map(BodyOp::Clflush),
        Just(BodyOp::Nop),
        (0u8..8, 2u8..5).prop_map(|(r, n)| BodyOp::InnerLoop(r, n)),
    ]
}

fn reg(i: u8) -> Reg {
    Reg::from_index(i as usize)
}

fn cond(i: u8) -> smack_uarch::isa::Cond {
    use smack_uarch::isa::Cond;
    [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le][i as usize % 5]
}

/// Assemble `ops` into a program: a two-iteration outer loop (backward
/// branch) around the random body, with a `ret`-terminated helper routine
/// off to the side for the call ops.
fn build_program(ops: &[BodyOp]) -> Program {
    let mut a = Assembler::new(CODE_BASE);
    a.mov_imm(Reg::R8, DATA_BASE).mov_label(Reg::R9, "helper").mov_imm(Reg::R10, 0).label("loop");
    // Each `SkipNext` at index `i` jumps to a label placed after op
    // `i + 1` (or straight to the loop epilogue for a trailing skip).
    // Consecutive skips may stack several labels at one point.
    let mut labels_after: Vec<Vec<String>> = vec![Vec::new(); ops.len()];
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, BodyOp::SkipNext(_)) && i + 1 < ops.len() {
            labels_after[i + 1].push(format!("skip{i}"));
        }
    }
    for (i, op) in ops.iter().enumerate() {
        match *op {
            BodyOp::Alu(kind, d, s) => {
                let (d, s) = (reg(d), reg(s));
                match kind {
                    0 => a.add(d, s),
                    1 => a.sub(d, s),
                    2 => a.mul(d, s),
                    3 => a.xor(d, s),
                    _ => a.or(d, s),
                };
            }
            BodyOp::MovImm(d, imm) => {
                a.mov_imm(reg(d), imm);
            }
            BodyOp::Load(d, slot) => {
                a.load(reg(d), MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::Store(s, slot) => {
                a.store(reg(s), MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::CmpImm(r, imm) => {
                a.cmp_imm(reg(r), imm);
            }
            BodyOp::SkipNext(c) => {
                if i + 1 < ops.len() {
                    a.jcc(cond(c), format!("skip{i}"));
                } else {
                    // A trailing skip jumps to the loop epilogue.
                    a.jcc(cond(c), "epilogue");
                }
            }
            BodyOp::CallHelper => {
                a.call("helper");
            }
            BodyOp::CallHelperReg => {
                a.call_reg(Reg::R9);
            }
            BodyOp::Clflush(slot) => {
                a.clflush(MemRef::disp(Reg::R8, slot as i64 * 8));
            }
            BodyOp::Nop => {
                a.nop();
            }
            BodyOp::InnerLoop(r, n) => {
                // R11 is reserved as the inner counter, so nesting with
                // the outer loop (R10) stays well-formed.
                a.mov_imm(Reg::R11, 0)
                    .label(&format!("inner{i}"))
                    .add_imm(reg(r), 1)
                    .add_imm(Reg::R11, 1)
                    .cmp_imm(Reg::R11, n as u64)
                    .jne(format!("inner{i}"));
            }
        }
        for l in &labels_after[i] {
            a.label(l);
        }
    }
    a.label("epilogue").add_imm(Reg::R10, 1).cmp_imm(Reg::R10, 2).jne("loop").halt();
    a.org(HELPER_BASE).label("helper").add(Reg::R0, Reg::R1).nop().ret();
    a.assemble().expect("generated program assembles")
}

/// Everything the fast path must preserve, captured after a run.
#[derive(PartialEq, Debug)]
struct Outcome {
    regs: Vec<u64>,
    clock_t0: u64,
    clock_t1: u64,
    counters_t0: smack_uarch::CounterSnapshot,
    counters_t1: smack_uarch::CounterSnapshot,
    data: Vec<u8>,
}

/// Interpreter configuration for one equivalence run. `superblocks`
/// implies nothing unless `decoded` is set (the engine gates fusion on
/// the decoded table), so (false, true) is normalized to plain reference.
#[derive(Copy, Clone, Debug)]
struct Cfg {
    decoded: bool,
    superblocks: bool,
    burst: u64,
}

const REFERENCE: Cfg = Cfg { decoded: false, superblocks: false, burst: 4096 };

fn machine(cfg: Cfg, noise_seed: Option<u64>) -> Machine {
    let profile = MicroArch::CascadeLake.profile();
    let mut m = match noise_seed {
        Some(seed) => Machine::with_noise(profile, NoiseConfig::realistic(), seed),
        None => Machine::new(profile),
    };
    m.set_decoded_fast_path(cfg.decoded);
    m.set_superblocks(cfg.superblocks);
    m.set_burst_steps(cfg.burst);
    m
}

/// Run `prog` to completion under the given interpreter configuration.
fn run(prog: &Program, cfg: Cfg, noise_seed: Option<u64>) -> Outcome {
    let mut m = machine(cfg, noise_seed);
    m.load_program(prog);
    m.start_program(T0, prog.entry(), &[]);
    m.run_until_halt(T0, 1_000_000).expect("program halts");
    Outcome {
        regs: (0..Reg::COUNT).map(|i| m.reg(T0, Reg::from_index(i))).collect(),
        clock_t0: m.clock(T0),
        clock_t1: m.clock(T1),
        counters_t0: m.counters(T0).snapshot(),
        counters_t1: m.counters(T1).snapshot(),
        data: m.read_bytes(smack_uarch::Addr(DATA_BASE), 16 * 8),
    }
}

/// A runtime rewrite of the helper routine's code line. Three variants:
/// a same-length `xor` swap (instruction boundaries survive, entries
/// re-decode in place), a same-length `mfence` swap (`mfence` cannot fuse
/// into a superblock, so the helper line must re-fuse with a new break
/// where a fusable run used to be), and the boundary-moving variant that
/// also places a fresh routine at new addresses, forcing the
/// full-recompile fallback.
fn helper_patch(kind: u8) -> Program {
    let mut a = Assembler::new(HELPER_BASE);
    match kind {
        0 => a.label("helper").xor(Reg::R0, Reg::R1).nop().ret(),
        1 => a.label("helper").mfence().nop().ret(),
        _ => {
            a.label("helper").xor(Reg::R0, Reg::R1).nop().ret();
            a.org(HELPER_BASE + 0x40).label("helper2").add_imm(Reg::R0, 5).ret()
        }
    };
    a.assemble().expect("patch assembles")
}

/// Run `prog`, apply `patch` after `at_step` engine steps (mid-run
/// self-modification), and run to completion.
fn run_with_patch(prog: &Program, patch: &Program, at_step: u64, cfg: Cfg) -> Outcome {
    let mut m = machine(cfg, None);
    m.load_program(prog);
    m.start_program(T0, prog.entry(), &[]);
    m.run_burst(T0, at_step).expect("prefix runs");
    m.patch_program(patch);
    m.run_until_halt(T0, 1_000_000).expect("program halts");
    Outcome {
        regs: (0..Reg::COUNT).map(|i| m.reg(T0, Reg::from_index(i))).collect(),
        clock_t0: m.clock(T0),
        clock_t1: m.clock(T1),
        counters_t0: m.counters(T0).snapshot(),
        counters_t1: m.counters(T1).snapshot(),
        data: m.read_bytes(smack_uarch::Addr(DATA_BASE), 16 * 8),
    }
}

/// The non-reference configurations every proptest checks: superblocks
/// across burst sizes, the per-step decoded path, and reference at
/// burst 1.
const CONFIGS: [Cfg; 5] = [
    Cfg { decoded: true, superblocks: true, burst: 4096 },
    Cfg { decoded: true, superblocks: true, burst: 1 },
    Cfg { decoded: true, superblocks: true, burst: 7 },
    Cfg { decoded: true, superblocks: false, burst: 4096 },
    Cfg { decoded: false, superblocks: false, burst: 1 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Superblock vs per-step decoded vs reference interpreter, and
    /// burst 1 vs large bursts: every configuration retires the same
    /// architecture, time, and counter state for arbitrary programs
    /// (including backward inner-loop branches).
    #[test]
    fn prop_decoded_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let prog = build_program(&ops);
        let reference = run(&prog, REFERENCE, None);
        for cfg in CONFIGS {
            let got = run(&prog, cfg, None);
            prop_assert_eq!(&got, &reference, "{:?} diverged", cfg);
        }
    }

    /// Self-modified code lines re-decode into the side table: rewriting
    /// the helper routine mid-run (same-length in-place patch, the
    /// fusability-flipping `mfence` patch, and the boundary-moving
    /// variant that forces a recompile) must leave the decoded and
    /// superblock paths bit-identical to the map-lookup reference, for
    /// every burst size.
    #[test]
    fn prop_rewritten_code_lines_match_reference(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        kind in 0u8..3,
        at_step in 1u64..150,
    ) {
        let prog = build_program(&ops);
        let patch = helper_patch(kind);
        let reference = run_with_patch(&prog, &patch, at_step, REFERENCE);
        for cfg in &CONFIGS[..4] {
            let got = run_with_patch(&prog, &patch, at_step, *cfg);
            prop_assert_eq!(&got, &reference, "{:?} diverged after rewrite {}", cfg, kind);
        }
    }

    /// Injected eviction noise is drawn from the engine clock, which the
    /// superblock guards keep bit-identical: noisy runs must agree across
    /// every interpreter tier and burst size too.
    #[test]
    fn prop_noisy_runs_match_reference(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let prog = build_program(&ops);
        let reference = run(&prog, REFERENCE, Some(seed));
        for cfg in CONFIGS {
            let got = run(&prog, cfg, Some(seed));
            prop_assert_eq!(&got, &reference, "{:?} diverged under noise", cfg);
        }
    }
}

/// Fused probe execution is held to the same bar as the decoded and
/// superblock tiers: running a probe template through [`Machine::run_probe`]
/// with fusion enabled must be bit-identical — registers, both clocks,
/// memory, timings, and hardware counters — to the per-step injected
/// sequence, across probe classes, cold placements, injected noise, waits,
/// and mid-run SMC patches of the probed line.
mod fused_probes {
    use super::*;
    use smack_uarch::isa::{Instr, MemRef, MemSize};
    use smack_uarch::{Addr, CompiledProbe, PerfEvent, Placement, StepError};

    /// The probed line holds a real routine, so write-class probes hit a
    /// resident instruction line (the SMC machine-clear path) and
    /// `Execute` actions can call it.
    const TARGET: u64 = 0x30_0000;

    const MEM: MemRef = MemRef { base: Reg::R13, disp: 0 };

    /// Every routine starts with `nop`: the store probe writes `0x90` at
    /// offset 0, so the first byte stays a valid instruction no matter how
    /// probes and executes interleave (same trick the covert channels'
    /// oracle pages use).
    fn oracle(kind: u8) -> Program {
        let mut a = Assembler::new(TARGET);
        match kind % 3 {
            0 => a.nop().nop().ret(),
            1 => a.nop().add(Reg::R0, Reg::R1).ret(),
            _ => a.nop().add_imm(Reg::R0, 7).nop().ret(),
        };
        a.assemble().expect("oracle assembles")
    }

    /// The eight fusable probe operations (paper Listing 2 minus the
    /// `Execute` probe, whose timed `call` cannot fuse).
    fn probe_op(op: u8) -> Instr {
        match op % 8 {
            0 => Instr::Load { dst: Reg::R12, mem: MEM, size: MemSize::Quad },
            1 => Instr::StoreImm { mem: MEM, imm: 0x90 },
            2 => Instr::LockInc { mem: MEM },
            3 => Instr::Clflush { mem: MEM },
            4 => Instr::Clflushopt { mem: MEM },
            5 => Instr::Clwb { mem: MEM },
            6 => Instr::PrefetchT0 { mem: MEM },
            _ => Instr::PrefetchNta { mem: MEM },
        }
    }

    fn template(op: u8) -> [Instr; 5] {
        [
            Instr::Mfence,
            Instr::Rdtsc { dst: Reg::R14 },
            probe_op(op),
            Instr::Mfence,
            Instr::Rdtsc { dst: Reg::R15 },
        ]
    }

    fn placement(p: u8) -> Placement {
        [Placement::L1i, Placement::L1d, Placement::L2, Placement::Llc, Placement::DramOnly]
            [p as usize % 5]
    }

    #[derive(Copy, Clone, Debug)]
    enum Action {
        /// Optionally re-place the target line, then run one timed probe.
        Probe { op: u8, place: Option<u8> },
        /// Prime→probe busy-wait ([`Machine::advance`] fast path).
        Wait(u16),
        /// Execute (call) the target line via [`Machine::run_call`] — the
        /// priming primitive, taking the fused-call tier when the routine's
        /// shape allows — which makes the line L1i-resident, so the next
        /// write-class probe takes the machine-clear path.
        Execute,
        /// Execute the target line `n` times through the *batched*
        /// [`Machine::run_calls`] entry (an eviction set primes its ways
        /// this way).
        ExecuteBatch(u8),
        /// Rewrite the probed routine in place (SMC patch between probes).
        Patch(u8),
    }

    fn action_strategy() -> impl Strategy<Value = Action> {
        // Probes twice, so roughly half the drawn actions are probes.
        // `place >= 5` means "leave the line where the last action put it".
        let probe = || {
            (0u8..8, 0u8..8)
                .prop_map(|(op, place)| Action::Probe { op, place: (place < 5).then_some(place) })
        };
        prop_oneof![
            probe(),
            probe(),
            (0u16..3000).prop_map(Action::Wait),
            Just(Action::Execute),
            (1u8..4).prop_map(Action::ExecuteBatch),
            (0u8..3).prop_map(Action::Patch),
        ]
    }

    /// Everything the fused tier must preserve, plus the fast-path /
    /// fallback counts (compared separately — they are the only counters
    /// allowed to differ between the two configurations).
    #[derive(PartialEq, Debug)]
    struct ProbeOutcome {
        regs: Vec<u64>,
        clock_t0: u64,
        clock_t1: u64,
        timings: Vec<(u64, u64)>,
        mem: Vec<u8>,
        hw_counters: Vec<(&'static str, u64)>,
        err: Option<String>,
    }

    fn is_sim_probe_counter(e: PerfEvent) -> bool {
        matches!(e, PerfEvent::SimProbeFastPath | PerfEvent::SimProbeFallback)
    }

    /// Run `actions` on a fresh machine and capture the observable state.
    /// Errors (e.g. a probe-corrupted routine failing to execute) stop the
    /// run; both configurations must stop at the same action with the same
    /// error. Returns the outcome, the `(fast_path, fallback)` counts, and
    /// the number of fuse-eligible attempts made (probes plus calls — each
    /// attempt bumps exactly one of the two counters, except a probe that
    /// errors mid-body on the fused path, which bumps neither).
    fn run_actions(
        actions: &[Action],
        oracle_kind: u8,
        fused: bool,
        noise_seed: Option<u64>,
    ) -> (ProbeOutcome, u64, u64, u64) {
        let profile = MicroArch::CascadeLake.profile();
        let mut m = match noise_seed {
            Some(seed) => Machine::with_noise(profile, NoiseConfig::realistic(), seed),
            None => Machine::new(profile),
        };
        m.set_fused_probes(fused);
        m.load_program(&oracle(oracle_kind));
        m.warm_tlb(T0, Addr(TARGET));
        m.set_reg(T0, Reg::R13, TARGET);
        let mut timings = Vec::new();
        let mut err = None;
        let mut attempts = 0u64;
        for action in actions {
            let r: Result<(), StepError> = match *action {
                Action::Probe { op, place } => {
                    if let Some(p) = place {
                        m.place_line(Addr(TARGET), placement(p));
                    }
                    let probe =
                        CompiledProbe::compile(&template(op)).expect("probe template compiles");
                    attempts += 1;
                    m.run_probe(T0, &probe).map(|out| timings.push((out.cycles, out.end_clock)))
                }
                Action::Wait(cycles) => m.advance(T0, cycles as u64),
                Action::Execute => {
                    attempts += 1;
                    m.run_call(T0, TARGET).map(|_| ())
                }
                Action::ExecuteBatch(n) => {
                    attempts += n as u64;
                    let targets = [TARGET; 3];
                    m.run_calls(T0, &targets[..n as usize]).map(|_| ())
                }
                Action::Patch(kind) => {
                    m.patch_program(&oracle(kind));
                    Ok(())
                }
            };
            if let Err(e) = r {
                err = Some(e.to_string());
                break;
            }
        }
        let mut hw_counters = Vec::new();
        for tid in [T0, T1] {
            for e in PerfEvent::ALL {
                if !is_sim_probe_counter(e) {
                    hw_counters.push((e.name(), m.counters(tid).read(e)));
                }
            }
        }
        let fast = m.counters(T0).read(PerfEvent::SimProbeFastPath);
        let fallback = m.counters(T0).read(PerfEvent::SimProbeFallback);
        let outcome = ProbeOutcome {
            regs: (0..Reg::COUNT).map(|i| m.reg(T0, Reg::from_index(i))).collect(),
            clock_t0: m.clock(T0),
            clock_t1: m.clock(T1),
            timings,
            mem: m.read_bytes(Addr(TARGET), 64),
            hw_counters,
            err,
        };
        (outcome, fast, fallback, attempts)
    }

    fn probes_run(o: &ProbeOutcome) -> u64 {
        o.timings.len() as u64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Fused vs per-step probe execution over arbitrary interleavings
        /// of probes, placements, waits, executes, and SMC patches.
        #[test]
        fn prop_fused_probes_match_per_step(
            actions in proptest::collection::vec(action_strategy(), 1..40),
            oracle_kind in 0u8..3,
        ) {
            let (reference, ref_fast, ref_fb, attempts) =
                run_actions(&actions, oracle_kind, false, None);
            let (fused, fused_fast, fused_fb, _) =
                run_actions(&actions, oracle_kind, true, None);
            prop_assert_eq!(&fused, &reference, "fused probes diverged");
            // With fusion off nothing fuses, and every attempt (probe or
            // call) is refused up front, so it counts as a fallback even if
            // the per-step execution then errors.
            prop_assert_eq!(ref_fast, 0);
            prop_assert_eq!(ref_fb, attempts, "every attempt refused per-step");
            // With fusion on (both threads idle, no tracing) probes always
            // fuse; only calls may fall back — and only when the routine's
            // shape is not `nop*; ret` on one line. Every attempt bumps
            // exactly one counter, except a probe erroring mid-body on the
            // fused path (it stops the run, so at most one is missing).
            prop_assert!(
                fused_fast >= probes_run(&fused),
                "fast {} < {} probes", fused_fast, probes_run(&fused)
            );
            let done = attempts - u64::from(fused.err.is_some());
            prop_assert!(
                fused_fast + fused_fb >= done && fused_fast + fused_fb <= attempts,
                "fast {} + fallback {} vs {} attempts", fused_fast, fused_fb, attempts
            );
            let always_fusable = oracle_kind == 0
                && actions.iter().all(|a| !matches!(a, Action::Patch(k) if k % 3 != 0));
            if always_fusable && fused.err.is_none() {
                // `nop.nop.ret` is exactly the fusable call shape, so with
                // fusion on *everything* takes the fast path.
                prop_assert_eq!(fused_fb, 0, "fusable oracle never falls back");
                prop_assert_eq!(fused_fast, attempts);
            }
        }

        /// Same equivalence under injected eviction noise: the fused tier
        /// must draw per-instruction noise in exactly the per-step order.
        #[test]
        fn prop_fused_probes_match_under_noise(
            actions in proptest::collection::vec(action_strategy(), 1..30),
            oracle_kind in 0u8..3,
            seed in any::<u64>(),
        ) {
            let (reference, _, _, attempts) = run_actions(&actions, oracle_kind, false, Some(seed));
            let (fused, fused_fast, fused_fb, _) =
                run_actions(&actions, oracle_kind, true, Some(seed));
            prop_assert_eq!(&fused, &reference, "fused probes diverged under noise");
            let done = attempts - u64::from(fused.err.is_some());
            prop_assert!(
                fused_fast + fused_fb >= done && fused_fast + fused_fb <= attempts,
                "fast {} + fallback {} vs {} attempts", fused_fast, fused_fb, attempts
            );
        }
    }

    /// The compiler recognizes exactly the probe template shape: all eight
    /// fusable operations compile, the `Execute` probe (timed `call`) and
    /// malformed shapes do not.
    #[test]
    fn compile_accepts_probe_templates_only() {
        for op in 0..8u8 {
            let probe = CompiledProbe::compile(&template(op)).expect("fusable op compiles");
            assert_eq!(probe.instrs(), &template(op), "fallback sequence preserved");
        }
        let execute = [
            Instr::Mfence,
            Instr::Rdtsc { dst: Reg::R14 },
            Instr::CallReg { target: Reg::R13 },
            Instr::Mfence,
            Instr::Rdtsc { dst: Reg::R15 },
        ];
        assert!(CompiledProbe::compile(&execute).is_none(), "timed call cannot fuse");
        let mut no_fence = template(0);
        no_fence[0] = Instr::Nop;
        assert!(CompiledProbe::compile(&no_fence).is_none());
        let mut no_rdtsc = template(0);
        no_rdtsc[4] = Instr::Nop;
        assert!(CompiledProbe::compile(&no_rdtsc).is_none());
    }

    /// Observability guards force the per-step path: with tracing enabled
    /// the fused tier must refuse (the trace must show every instruction),
    /// and the refusal is counted.
    #[test]
    fn tracing_forces_fallback() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        m.load_program(&oracle(0));
        m.warm_tlb(T0, Addr(TARGET));
        m.place_line(Addr(TARGET), Placement::L1i);
        m.set_reg(T0, Reg::R13, TARGET);
        // A store probe against the L1i-resident line: the machine clear
        // must land in the trace, which only the per-step path feeds.
        let probe = CompiledProbe::compile(&template(1)).unwrap();
        m.enable_trace(1024);
        m.run_probe(T0, &probe).unwrap();
        assert_eq!(m.counters(T0).read(PerfEvent::SimProbeFastPath), 0);
        assert_eq!(m.counters(T0).read(PerfEvent::SimProbeFallback), 1);
        assert!(!m.take_trace().is_empty(), "per-step path left a trace");
    }

    /// A runnable sibling also forces the per-step path: the sibling's
    /// program must interleave by clock order through the probe.
    #[test]
    fn running_sibling_forces_fallback() {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        m.load_program(&oracle(0));
        let mut a = Assembler::new(0x50_0000);
        a.mov_imm(Reg::R0, 0)
            .label("loop")
            .add_imm(Reg::R0, 1)
            .cmp_imm(Reg::R0, 50_000)
            .jne("loop")
            .halt();
        let sibling = a.assemble().unwrap();
        m.load_program(&sibling);
        m.start_program(T1, sibling.entry(), &[]);
        m.set_reg(T0, Reg::R13, TARGET);
        let probe = CompiledProbe::compile(&template(1)).unwrap();
        m.run_probe(T0, &probe).unwrap();
        assert_eq!(m.counters(T0).read(PerfEvent::SimProbeFastPath), 0);
        assert_eq!(m.counters(T0).read(PerfEvent::SimProbeFallback), 1);
        assert!(m.clock(T1) > 0, "sibling interleaved during the probe");
    }
}

/// Dual-thread equivalence: a victim loop on T1 driven causally while T0
/// runs its own program — the scheduling the covert channels rely on.
#[test]
fn dual_thread_decoded_matches_reference() {
    let mut a = Assembler::new(0x20_0000);
    a.mov_imm(Reg::R0, 0)
        .mov_imm(Reg::R8, DATA_BASE + 0x1000)
        .label("loop")
        .add_imm(Reg::R0, 1)
        .store(Reg::R0, MemRef::base(Reg::R8))
        .cmp_imm(Reg::R0, 400)
        .jne("loop")
        .halt();
    let victim = a.assemble().unwrap();

    let mut b = Assembler::new(CODE_BASE);
    b.mov_imm(Reg::R1, 0)
        .mov_imm(Reg::R9, DATA_BASE)
        .label("loop")
        .add_imm(Reg::R1, 3)
        .load(Reg::R2, MemRef::base(Reg::R9))
        .mul(Reg::R2, Reg::R1)
        .cmp_imm(Reg::R1, 900)
        .jne("loop")
        .halt();
    let driver = b.assemble().unwrap();

    let mut outcomes = Vec::new();
    for (decoded, superblocks, burst) in [
        (false, false, 4096),
        (true, true, 4096),
        (true, true, 1),
        (true, true, 64),
        (true, false, 4096),
    ] {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        m.set_decoded_fast_path(decoded);
        m.set_superblocks(superblocks);
        m.set_burst_steps(burst);
        m.load_program(&victim);
        m.load_program(&driver);
        m.start_program(T1, victim.entry(), &[]);
        m.start_program(T0, driver.entry(), &[]);
        m.run_until_halt(T0, 1_000_000).unwrap();
        m.run_until_halt(T1, 1_000_000).unwrap();
        outcomes.push((
            (decoded, superblocks),
            burst,
            m.reg(T0, Reg::R1),
            m.reg(T0, Reg::R2),
            m.reg(T1, Reg::R0),
            m.clock(T0),
            m.clock(T1),
            m.counters(T0).snapshot(),
            m.counters(T1).snapshot(),
        ));
    }
    for o in &outcomes[1..] {
        assert_eq!(
            (&o.2, &o.3, &o.4, &o.5, &o.6, &o.7, &o.8),
            (
                &outcomes[0].2,
                &outcomes[0].3,
                &outcomes[0].4,
                &outcomes[0].5,
                &outcomes[0].6,
                &outcomes[0].7,
                &outcomes[0].8
            ),
            "config (decoded, superblocks)={:?}, burst={} diverged from reference",
            o.0,
            o.1
        );
    }
}
