//! Behavioral tests of the simulator through its public API: front-end
//! streaming, TLB charging, speculation bounds, machine-clear side effects
//! and cross-thread interactions.

use smack_uarch::asm::Assembler;
use smack_uarch::isa::{Instr, MemRef, MemSize, Reg};
use smack_uarch::{
    Addr, Machine, MicroArch, NoiseConfig, PerfEvent, Placement, ProbeKind, ThreadId, ThreadState,
};

const T0: ThreadId = ThreadId::T0;
const T1: ThreadId = ThreadId::T1;

fn cl() -> Machine {
    Machine::new(MicroArch::CascadeLake.profile())
}

/// Straight-line code within one cache line is fetched once: executing 32
/// nops costs far less than 32 separate line fetches would.
#[test]
fn fetch_streams_within_a_line() {
    let mut m = cl();
    let mut a = Assembler::new(0x1000);
    a.nops(32).ret();
    m.load_program(&a.assemble().unwrap());
    // Cold call: pays one DRAM ifetch, then streams.
    let cold = m.run_sequence(T0, &[Instr::Call { target: 0x1000 }]).unwrap().cycles;
    let warm = m.run_sequence(T0, &[Instr::Call { target: 0x1000 }]).unwrap().cycles;
    assert!(cold > warm + 150, "cold {cold} vs warm {warm}: one line fill only");
    assert!(warm < 80, "warm execution streams: {warm}");
}

/// The iTLB charges a page walk once per page, not per instruction.
#[test]
fn itlb_walks_once_per_page() {
    let mut m = cl();
    let mut a = Assembler::new(0x2000);
    a.nop().ret();
    m.load_program(&a.assemble().unwrap());
    let before = m.counters(T0).read(PerfEvent::ItlbMisses);
    m.run_sequence(T0, &[Instr::Call { target: 0x2000 }]).unwrap();
    m.run_sequence(T0, &[Instr::Call { target: 0x2000 }]).unwrap();
    let walks = m.counters(T0).read(PerfEvent::ItlbMisses) - before;
    assert_eq!(walks, 1, "second call hits the iTLB");
}

/// Speculative wrong paths are bounded: a mistrained branch into a long
/// code run cannot execute more than the window allows.
#[test]
fn speculation_window_is_bounded() {
    let mut m = cl();
    let window = m.profile().spec.window_instrs as u64;
    let bounds = 0x9000u64;
    let mut a = Assembler::new(0x3000);
    // if R1 < [bounds]: fallthrough does 200 increments on R2
    a.mov_imm(Reg::R4, bounds)
        .load(Reg::R2, MemRef::base(Reg::R4))
        .cmp(Reg::R1, Reg::R2)
        .jge("skip");
    for _ in 0..200 {
        a.add_imm(Reg::R3, 1);
    }
    a.label("skip").ret();
    m.load_program(&a.assemble().unwrap());
    m.write_u64(Addr(bounds), 100);
    // Train not-taken (in bounds).
    for _ in 0..6 {
        m.call(T0, 0x3000, &[1]).unwrap();
    }
    m.flush_line(Addr(bounds));
    let r3_before = m.reg(T0, Reg::R3);
    m.call(T0, 0x3000, &[500]).unwrap(); // out of bounds: wrong path speculates
    assert_eq!(m.reg(T0, Reg::R3), r3_before, "wrong-path work must be rolled back");
    assert!(window < 200, "the window is smaller than the wrong-path run");
}

/// A machine clear invalidates the conflicting line from the L1i but not
/// from L2/LLC (the data stays cached).
#[test]
fn machine_clear_invalidates_l1i_only() {
    let mut m = cl();
    let mut a = Assembler::new(0x4000);
    a.nop().ret();
    m.load_program(&a.assemble().unwrap());
    m.run_sequence(T0, &[Instr::Call { target: 0x4000 }]).unwrap();
    assert!(m.residency(Addr(0x4000)).l1i);
    m.set_reg(T0, Reg::R1, 0x4000);
    m.run_sequence(T0, &[Instr::StoreImm { mem: MemRef::base(Reg::R1), imm: 0x90 }]).unwrap();
    let r = m.residency(Addr(0x4000));
    assert!(!r.l1i, "clear removes the L1i copy");
    assert!(r.l2 && r.llc, "shared levels keep the line");
}

/// Executing a store to your own *data* never clears, even at high rates.
#[test]
fn data_stores_never_machine_clear() {
    let mut m = cl();
    let mut a = Assembler::new(0x5000);
    a.mov_imm(Reg::R2, 0x0070_0000)
        .label("l")
        .store(Reg::R3, MemRef::base(Reg::R2))
        .add_imm(Reg::R3, 1)
        .cmp_imm(Reg::R3, 500)
        .jne("l")
        .halt();
    m.load_program(&a.assemble().unwrap());
    m.start_program(T1, 0x5000, &[]);
    m.run_until_halt(T1, 100_000).unwrap();
    assert_eq!(m.counters(T1).read(PerfEvent::MachineClearsCount), 0);
}

/// AMD profiles expose the AMD counter set and no machine-clear events.
#[test]
fn amd_counters_on_clears() {
    let mut m = Machine::new(MicroArch::AmdRyzen5.profile());
    let mut a = Assembler::new(0x6000);
    a.nop().ret();
    m.load_program(&a.assemble().unwrap());
    m.run_sequence(T0, &[Instr::Call { target: 0x6000 }]).unwrap();
    m.set_reg(T0, Reg::R1, 0x6000);
    m.run_sequence(T0, &[Instr::StoreImm { mem: MemRef::base(Reg::R1), imm: 0x90 }]).unwrap();
    let c = m.counters(T0);
    assert_eq!(c.read(PerfEvent::MachineClearsCount), 0, "AMD exposes no clear events");
    assert_eq!(c.read(PerfEvent::AmdIcLinesInvalidated), 1);
    assert!(c.read(PerfEvent::AmdPipeStallBackPressure) > 0);
}

/// Inclusive LLC: filling 17 ways of one LLC set back-invalidates lines
/// out of the L1 caches too (visible via residency).
#[test]
fn llc_eviction_back_invalidates() {
    let mut m = cl();
    // LLC: 8192 sets, 16 ways; same LLC set stride = 8192*64 bytes.
    let stride = 8192u64 * 64;
    let base = 0x4000_0000u64;
    // Load 17 lines mapping to the same LLC set.
    for i in 0..17u64 {
        m.set_reg(T0, Reg::R1, base + i * stride);
        m.run_sequence(
            T0,
            &[Instr::Load { dst: Reg::R2, mem: MemRef::base(Reg::R1), size: MemSize::Quad }],
        )
        .unwrap();
    }
    let evicted = (0..17u64).filter(|i| !m.residency(Addr(base + i * stride)).llc).count();
    assert!(evicted >= 1, "one line must have left the LLC");
    for i in 0..17u64 {
        let r = m.residency(Addr(base + i * stride));
        if !r.llc {
            assert!(!r.l1d && !r.l2, "inclusive: evicted line left the core entirely");
        }
    }
}

/// Spurious-eviction noise perturbs the L1i over time.
#[test]
fn noise_evictions_disturb_primed_lines() {
    let mut m = Machine::with_noise(
        MicroArch::CascadeLake.profile(),
        NoiseConfig { timing_jitter: 0, evictions_per_kcycle: 5.0 },
        1,
    );
    let mut a = Assembler::new(0x8000);
    for i in 0..64u64 {
        a.org(0x8000 + i * 64).nop().ret();
    }
    m.load_program(&a.assemble().unwrap());
    for i in 0..64u64 {
        m.run_sequence(T0, &[Instr::Call { target: 0x8000 + i * 64 }]).unwrap();
    }
    m.advance(T0, 200_000).unwrap();
    let still_resident = (0..64u64).filter(|i| m.residency(Addr(0x8000 + i * 64)).l1i).count();
    assert!(still_resident < 64, "heavy noise must evict something");
}

/// Parked victims stop consuming simulation work.
#[test]
fn park_stops_a_victim() {
    let mut m = cl();
    let mut a = Assembler::new(0xa000);
    a.label("spin").add_imm(Reg::R2, 1).jmp("spin");
    m.load_program(&a.assemble().unwrap());
    m.start_program(T1, 0xa000, &[]);
    m.advance(T0, 5_000).unwrap();
    assert_eq!(m.state(T1), ThreadState::Running);
    m.park(T1);
    assert_eq!(m.state(T1), ThreadState::Idle);
    let r2 = m.reg(T1, Reg::R2);
    m.advance(T0, 5_000).unwrap();
    assert_eq!(m.reg(T1, Reg::R2), r2, "parked victims make no progress");
}

/// Probe timings on unsupported instructions fail identically through the
/// sequence API and the characterization API.
#[test]
fn unsupported_errors_are_consistent() {
    let mut m = Machine::new(MicroArch::Broadwell.profile());
    m.set_reg(T0, Reg::R1, 0x1000);
    let e1 = m.run_sequence(T0, &[Instr::Clwb { mem: MemRef::base(Reg::R1) }]).unwrap_err();
    assert_eq!(e1, smack_uarch::StepError::Unsupported { kind: ProbeKind::Clwb });
}

/// Placement helper puts lines exactly where asked, for all placements.
#[test]
fn placement_matrix_is_exact() {
    let mut m = cl();
    let line = Addr(0xb000);
    for p in Placement::ALL {
        m.place_line(line, p);
        let r = m.residency(line);
        match p {
            Placement::L1i => assert!(r.l1i && !r.l1d && r.l2 && r.llc),
            Placement::L1d => assert!(!r.l1i && r.l1d && r.l2 && r.llc),
            Placement::L2 => assert!(!r.l1i && !r.l1d && r.l2 && r.llc),
            Placement::Llc => assert!(!r.l1i && !r.l1d && !r.l2 && r.llc),
            Placement::DramOnly => assert!(!r.cached_anywhere()),
        }
    }
}
