//! A tiny two-pass assembler for the simulated ISA.
//!
//! Supports labels, `.org`, `.align` and `.rept nop`-style padding, enough to
//! write the paper's oracle pages (Listing 1), victim routines and benign
//! workloads as readable Rust builder chains.
//!
//! ```
//! use smack_uarch::asm::Assembler;
//! use smack_uarch::isa::Reg;
//!
//! let mut a = Assembler::new(0x40_0000);
//! a.label("entry")
//!     .mov_imm(Reg::R0, 0)
//!     .label("loop")
//!     .add_imm(Reg::R0, 1)
//!     .cmp_imm(Reg::R0, 10)
//!     .jne("loop")
//!     .halt();
//! let prog = a.assemble().unwrap();
//! assert_eq!(prog.entry(), 0x40_0000);
//! assert!(prog.label("loop").is_some());
//! ```

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

use crate::isa::{Cond, Instr, MemRef, MemSize, Reg};

/// A branch/call target: either an absolute address or a label to resolve.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Target {
    /// Absolute virtual address.
    Abs(u64),
    /// Named label, resolved by [`Assembler::assemble`].
    Label(String),
}

impl From<u64> for Target {
    fn from(a: u64) -> Target {
        Target::Abs(a)
    }
}

impl From<&str> for Target {
    fn from(s: &str) -> Target {
        Target::Label(s.to_owned())
    }
}

impl From<String> for Target {
    fn from(s: String) -> Target {
        Target::Label(s)
    }
}

/// Error produced when assembly fails.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// Two instructions were placed at overlapping addresses.
    Overlap { addr: u64 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Overlap { addr } => write!(f, "instruction overlap at {addr:#x}"),
        }
    }
}

impl Error for AsmError {}

/// An assembled program: decoded instructions at absolute addresses plus the
/// label map.
#[derive(Clone, Debug, Default)]
pub struct Program {
    entry: u64,
    code: BTreeMap<u64, Instr>,
    labels: HashMap<String, u64>,
}

impl Program {
    /// Entry-point address (the assembler origin unless overridden with
    /// [`Assembler::entry`]).
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The instruction at `addr`, if one was assembled there.
    pub fn instr_at(&self, addr: u64) -> Option<&Instr> {
        self.code.get(&addr)
    }

    /// Address of a label.
    pub fn label(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }

    /// Iterate over `(address, instruction)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Instr)> {
        self.code.iter().map(|(a, i)| (*a, i))
    }

    /// Number of assembled instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Drop all code and labels (keeping the label map's allocation),
    /// returning the program to the [`Program::default`] state — used when
    /// a machine is reset for reuse.
    pub fn clear(&mut self) {
        self.entry = 0;
        self.code.clear();
        self.labels.clear();
    }

    /// Merge another program's code and labels into this one. Re-merging
    /// identical code (e.g. reinstalling an oracle page) is idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the two programs define *different* instructions at the
    /// same address.
    pub fn merge(&mut self, other: &Program) {
        for (a, i) in other.iter() {
            if let Some(prev) = self.code.insert(a, *i) {
                assert_eq!(&prev, i, "program merge conflict at {a:#x}");
            }
        }
        for (name, addr) in &other.labels {
            self.labels.insert(name.clone(), *addr);
        }
    }

    /// Merge another program's code with *overwrite* semantics: where both
    /// programs define an instruction at the same address, `other`'s wins.
    /// This is the write-back form of [`Program::merge`], used when
    /// self-modifying code rewrites already-loaded lines at runtime.
    pub fn overwrite(&mut self, other: &Program) {
        for (a, i) in other.iter() {
            self.code.insert(a, *i);
        }
        for (name, addr) in &other.labels {
            self.labels.insert(name.clone(), *addr);
        }
    }
}

enum Pending {
    Ready(Instr),
    Jmp(Target),
    Jcc(Cond, Target),
    Call(Target),
    MovLabel(Reg, Target),
}

/// The assembler. See the [module documentation](self) for an example.
pub struct Assembler {
    origin: u64,
    entry: Option<u64>,
    cursor: u64,
    items: Vec<(u64, Pending)>,
    labels: HashMap<String, u64>,
    duplicate: Option<String>,
}

impl Assembler {
    /// Start assembling at `origin`.
    pub fn new(origin: u64) -> Assembler {
        Assembler {
            origin,
            entry: None,
            cursor: origin,
            items: Vec::new(),
            labels: HashMap::new(),
            duplicate: None,
        }
    }

    /// Current emission address.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Override the program entry point (defaults to the origin).
    ///
    /// # Panics
    ///
    /// Panics if given a label that has not been defined yet.
    pub fn entry(&mut self, target: impl Into<Target>) -> &mut Self {
        let addr = match target.into() {
            Target::Abs(a) => a,
            Target::Label(l) => self
                .labels
                .get(&l)
                .copied()
                .unwrap_or_else(|| panic!("entry label `{l}` must be defined before entry()")),
        };
        self.entry = Some(addr);
        self
    }

    /// Move the cursor to an absolute address (`.org`).
    pub fn org(&mut self, addr: u64) -> &mut Self {
        self.cursor = addr;
        self
    }

    /// Align the cursor up to a multiple of `align` (`.align`).
    pub fn align(&mut self, align: u64) -> &mut Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.cursor = (self.cursor + align - 1) & !(align - 1);
        self
    }

    /// Define a label at the cursor.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_owned(), self.cursor).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.to_owned());
        }
        self
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        let len = instr.len();
        self.items.push((self.cursor, Pending::Ready(instr)));
        self.cursor += len;
        self
    }

    // ---- sugar -----------------------------------------------------------

    /// Emit `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Emit `n` nops (`.rept n; nop; .endr`).
    pub fn nops(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.push(Instr::Nop);
        }
        self
    }

    /// Emit `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instr::Ret)
    }

    /// Emit `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Emit `mov $imm, %dst`.
    pub fn mov_imm(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Instr::MovImm { dst, imm })
    }

    /// Emit `mov %src, %dst`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mov { dst, src })
    }

    /// Emit a `mov` of a label's address into `dst`.
    pub fn mov_label(&mut self, dst: Reg, label: impl Into<Target>) -> &mut Self {
        let t = label.into();
        let len = Instr::MovImm { dst, imm: 0 }.len();
        self.items.push((self.cursor, Pending::MovLabel(dst, t)));
        self.cursor += len;
        self
    }

    /// Emit a quadword load `mov (mem), %dst`.
    pub fn load(&mut self, dst: Reg, mem: MemRef) -> &mut Self {
        self.push(Instr::Load { dst, mem, size: MemSize::Quad })
    }

    /// Emit a byte load `movzbl (mem), %dst`.
    pub fn load_byte(&mut self, dst: Reg, mem: MemRef) -> &mut Self {
        self.push(Instr::Load { dst, mem, size: MemSize::Byte })
    }

    /// Emit a quadword store `mov %src, (mem)`.
    pub fn store(&mut self, src: Reg, mem: MemRef) -> &mut Self {
        self.push(Instr::Store { src, mem, size: MemSize::Quad })
    }

    /// Emit a byte store `movb %src, (mem)`.
    pub fn store_byte(&mut self, src: Reg, mem: MemRef) -> &mut Self {
        self.push(Instr::Store { src, mem, size: MemSize::Byte })
    }

    /// Emit `movb $imm, (mem)`.
    pub fn store_imm(&mut self, mem: MemRef, imm: u8) -> &mut Self {
        self.push(Instr::StoreImm { mem, imm })
    }

    /// Emit `add %src, %dst`.
    pub fn add(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Add { dst, src })
    }

    /// Emit `add $imm, %dst`.
    pub fn add_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Instr::AddImm { dst, imm })
    }

    /// Emit `sub %src, %dst`.
    pub fn sub(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Sub { dst, src })
    }

    /// Emit `imul %src, %dst`.
    pub fn mul(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Mul { dst, src })
    }

    /// Emit `and %src, %dst`.
    pub fn and(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::And { dst, src })
    }

    /// Emit `or %src, %dst`.
    pub fn or(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Or { dst, src })
    }

    /// Emit `xor %src, %dst`.
    pub fn xor(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Xor { dst, src })
    }

    /// Emit `shl $amount, %dst`.
    pub fn shl_imm(&mut self, dst: Reg, amount: u8) -> &mut Self {
        self.push(Instr::ShlImm { dst, amount })
    }

    /// Emit `shr $amount, %dst`.
    pub fn shr_imm(&mut self, dst: Reg, amount: u8) -> &mut Self {
        self.push(Instr::ShrImm { dst, amount })
    }

    /// Emit `cmp %b, %a`.
    pub fn cmp(&mut self, a: Reg, b: Reg) -> &mut Self {
        self.push(Instr::Cmp { a, b })
    }

    /// Emit `cmp $imm, %a`.
    pub fn cmp_imm(&mut self, a: Reg, imm: u64) -> &mut Self {
        self.push(Instr::CmpImm { a, imm })
    }

    /// Emit `jmp target`.
    pub fn jmp(&mut self, target: impl Into<Target>) -> &mut Self {
        let t = target.into();
        let len = Instr::Jmp { target: 0 }.len();
        self.items.push((self.cursor, Pending::Jmp(t)));
        self.cursor += len;
        self
    }

    /// Emit a conditional jump.
    pub fn jcc(&mut self, cond: Cond, target: impl Into<Target>) -> &mut Self {
        let t = target.into();
        let len = Instr::Jcc { cond: Cond::Eq, target: 0 }.len();
        self.items.push((self.cursor, Pending::Jcc(cond, t)));
        self.cursor += len;
        self
    }

    /// Emit `je target`.
    pub fn je(&mut self, target: impl Into<Target>) -> &mut Self {
        self.jcc(Cond::Eq, target)
    }

    /// Emit `jne target`.
    pub fn jne(&mut self, target: impl Into<Target>) -> &mut Self {
        self.jcc(Cond::Ne, target)
    }

    /// Emit `jb target` (unsigned less-than).
    pub fn jlt(&mut self, target: impl Into<Target>) -> &mut Self {
        self.jcc(Cond::Lt, target)
    }

    /// Emit `jae target` (unsigned greater-or-equal).
    pub fn jge(&mut self, target: impl Into<Target>) -> &mut Self {
        self.jcc(Cond::Ge, target)
    }

    /// Emit `call target`.
    pub fn call(&mut self, target: impl Into<Target>) -> &mut Self {
        let t = target.into();
        let len = Instr::Call { target: 0 }.len();
        self.items.push((self.cursor, Pending::Call(t)));
        self.cursor += len;
        self
    }

    /// Emit `call *%reg`.
    pub fn call_reg(&mut self, target: Reg) -> &mut Self {
        self.push(Instr::CallReg { target })
    }

    /// Emit `rdtsc` into `dst`.
    pub fn rdtsc(&mut self, dst: Reg) -> &mut Self {
        self.push(Instr::Rdtsc { dst })
    }

    /// Emit `mfence`.
    pub fn mfence(&mut self) -> &mut Self {
        self.push(Instr::Mfence)
    }

    /// Emit `clflush (mem)`.
    pub fn clflush(&mut self, mem: MemRef) -> &mut Self {
        self.push(Instr::Clflush { mem })
    }

    /// Emit `lock incb (mem)`.
    pub fn lock_inc(&mut self, mem: MemRef) -> &mut Self {
        self.push(Instr::LockInc { mem })
    }

    /// Emit a `Delay` pseudo-instruction.
    pub fn delay(&mut self, cycles: u32) -> &mut Self {
        self.push(Instr::Delay { cycles })
    }

    /// Resolve labels and produce the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an error for undefined or duplicate labels, or overlapping
    /// instructions.
    pub fn assemble(&mut self) -> Result<Program, AsmError> {
        if let Some(dup) = self.duplicate.take() {
            return Err(AsmError::DuplicateLabel(dup));
        }
        let resolve = |t: &Target, labels: &HashMap<String, u64>| -> Result<u64, AsmError> {
            match t {
                Target::Abs(a) => Ok(*a),
                Target::Label(l) => {
                    labels.get(l).copied().ok_or_else(|| AsmError::UndefinedLabel(l.clone()))
                }
            }
        };
        let mut code = BTreeMap::new();
        let mut spans: Vec<(u64, u64)> = Vec::with_capacity(self.items.len());
        for (addr, p) in &self.items {
            let instr = match p {
                Pending::Ready(i) => *i,
                Pending::Jmp(t) => Instr::Jmp { target: resolve(t, &self.labels)? },
                Pending::Jcc(c, t) => Instr::Jcc { cond: *c, target: resolve(t, &self.labels)? },
                Pending::Call(t) => Instr::Call { target: resolve(t, &self.labels)? },
                Pending::MovLabel(r, t) => {
                    Instr::MovImm { dst: *r, imm: resolve(t, &self.labels)? }
                }
            };
            spans.push((*addr, *addr + instr.len()));
            if code.insert(*addr, instr).is_some() {
                return Err(AsmError::Overlap { addr: *addr });
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(AsmError::Overlap { addr: w[1].0 });
            }
        }
        Ok(Program { entry: self.entry.unwrap_or(self.origin), code, labels: self.labels.clone() })
    }
}

impl fmt::Debug for Assembler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Assembler")
            .field("origin", &self.origin)
            .field("cursor", &self.cursor)
            .field("items", &self.items.len())
            .field("labels", &self.labels.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new(0x1000);
        a.label("start").nop().jmp("end").nop().label("end").halt();
        let p = a.assemble().unwrap();
        let end = p.label("end").unwrap();
        match p.instr_at(0x1001).unwrap() {
            Instr::Jmp { target } => assert_eq!(*target, end),
            other => panic!("expected jmp, got {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new(0);
        a.jmp("missing");
        assert_eq!(a.assemble().unwrap_err(), AsmError::UndefinedLabel("missing".into()));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new(0);
        a.label("x").nop().label("x");
        assert_eq!(a.assemble().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn align_and_org_place_code() {
        let mut a = Assembler::new(0x10);
        a.nop().align(0x40).label("aligned").nop().org(0x1000).label("far").ret();
        let p = a.assemble().unwrap();
        assert_eq!(p.label("aligned"), Some(0x40));
        assert_eq!(p.label("far"), Some(0x1000));
    }

    #[test]
    fn overlap_detected() {
        let mut a = Assembler::new(0);
        a.mov_imm(Reg::R0, 1); // 7 bytes at 0
        a.org(3).nop(); // lands inside the mov
        assert!(matches!(a.assemble().unwrap_err(), AsmError::Overlap { .. }));
    }

    #[test]
    fn addresses_advance_by_length() {
        let mut a = Assembler::new(0);
        a.nop().ret().mov_imm(Reg::R0, 1).nop();
        let p = a.assemble().unwrap();
        assert!(p.instr_at(0).is_some());
        assert!(p.instr_at(1).is_some());
        assert!(p.instr_at(2).is_some());
        assert!(p.instr_at(9).is_some()); // 2 + 7
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn merge_combines_programs() {
        let mut a = Assembler::new(0);
        a.label("a").nop();
        let pa = a.assemble().unwrap();
        let mut b = Assembler::new(0x100);
        b.label("b").ret();
        let mut pb = b.assemble().unwrap();
        pb.merge(&pa);
        assert!(pb.label("a").is_some());
        assert!(pb.label("b").is_some());
        assert_eq!(pb.len(), 2);
    }
}
