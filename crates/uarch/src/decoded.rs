//! The decoded-program side table behind the engine's fast step path.
//!
//! A [`crate::asm::Program`] stores instructions in a `BTreeMap<u64, Instr>`
//! keyed by address — ideal for assembly and merging, terrible for the hot
//! loop: every simulated instruction would pay an ordered-map lookup. At
//! [`crate::engine::Engine::load`] time the map is compiled into a
//! [`DecodedProgram`]: a dense `Vec<DecodedInstr>` in address order whose
//! entries carry everything the steady-state step loop needs — the
//! instruction itself (`Instr` is `Copy`), its byte length, the id of the
//! cache line it occupies, and the *indices* of its fall-through and static
//! branch-target successors. Sequential execution and taken static branches
//! then chase indices with zero map lookups and zero per-step allocation;
//! only dynamic transfers (`ret`, `call *%reg`, speculation rollback) fall
//! back to one O(1) hash probe in the `pc → index` map.

use std::collections::HashMap;

use crate::addr::Addr;
use crate::asm::Program;
use crate::isa::Instr;

/// A pre-lowered register/flags micro-operation — the subset of [`Instr`]
/// the engine may retire inside a fused superblock.
///
/// A micro-op qualifies when its execution (the matching arm of
/// `Engine::exec`) touches **only** the owning thread's registers, ready
/// stamps, flags and clock, cannot fail, consumes no randomness, and makes
/// no memory, cache, TLB, branch-predictor, tracer or speculation
/// interaction. Everything else — loads/stores, probes, fences, branches,
/// calls, `rdtsc` (jitter!), `halt` — lowers to [`MicroOp::NotFused`] and
/// terminates fusion.
///
/// Operands are pre-converted at decode time (register numbers to masked
/// `u8` indices, shift amounts to `u32`, `AddImm`'s `i64` through the
/// wrapping `as u64` cast `exec` performs) so the superblock executor does
/// no per-retire operand conversion at all.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MicroOp {
    /// Not fusable; always its own single-instruction "run".
    NotFused,
    /// `nop`.
    Nop,
    /// `dst ← imm`.
    MovImm {
        /// Destination register index.
        dst: u8,
        /// Immediate value.
        imm: u64,
    },
    /// `dst ← src`.
    Mov {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst ← dst + src` (wrapping).
    Add {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst ← dst + imm` (wrapping; immediate pre-cast to `u64`).
    AddImm {
        /// Destination register index.
        dst: u8,
        /// Immediate, already converted with `as u64`.
        imm: u64,
    },
    /// `dst ← dst − src` (wrapping).
    Sub {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst ← dst × src` (wrapping; 3-cycle latency).
    Mul {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst ← dst & src`.
    And {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst ← dst | src`.
    Or {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst ← dst ^ src`.
    Xor {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst ← dst << amount` (wrapping shift, amount pre-cast to `u32`).
    ShlImm {
        /// Destination register index.
        dst: u8,
        /// Shift amount.
        amount: u32,
    },
    /// `dst ← dst >> amount` (wrapping shift, amount pre-cast to `u32`).
    ShrImm {
        /// Destination register index.
        dst: u8,
        /// Shift amount.
        amount: u32,
    },
    /// Compare two registers into the flags.
    Cmp {
        /// Left operand register index.
        a: u8,
        /// Right operand register index.
        b: u8,
    },
    /// Compare a register against an immediate into the flags.
    CmpImm {
        /// Left operand register index.
        a: u8,
        /// Immediate right operand.
        imm: u64,
    },
    /// Pure delay (cycle count pre-cast to `u64`; may be zero).
    Delay {
        /// Cycles to advance the thread clock.
        cycles: u64,
    },
}

impl MicroOp {
    /// Lower an instruction, or [`MicroOp::NotFused`] when it does not
    /// qualify for superblock retirement.
    fn lower(instr: &Instr) -> MicroOp {
        let r = |reg: crate::isa::Reg| reg.index() as u8;
        match *instr {
            Instr::Nop => MicroOp::Nop,
            Instr::MovImm { dst, imm } => MicroOp::MovImm { dst: r(dst), imm },
            Instr::Mov { dst, src } => MicroOp::Mov { dst: r(dst), src: r(src) },
            Instr::Add { dst, src } => MicroOp::Add { dst: r(dst), src: r(src) },
            Instr::AddImm { dst, imm } => MicroOp::AddImm { dst: r(dst), imm: imm as u64 },
            Instr::Sub { dst, src } => MicroOp::Sub { dst: r(dst), src: r(src) },
            Instr::Mul { dst, src } => MicroOp::Mul { dst: r(dst), src: r(src) },
            Instr::And { dst, src } => MicroOp::And { dst: r(dst), src: r(src) },
            Instr::Or { dst, src } => MicroOp::Or { dst: r(dst), src: r(src) },
            Instr::Xor { dst, src } => MicroOp::Xor { dst: r(dst), src: r(src) },
            Instr::ShlImm { dst, amount } => MicroOp::ShlImm { dst: r(dst), amount: amount as u32 },
            Instr::ShrImm { dst, amount } => MicroOp::ShrImm { dst: r(dst), amount: amount as u32 },
            Instr::Cmp { a, b } => MicroOp::Cmp { a: r(a), b: r(b) },
            Instr::CmpImm { a, imm } => MicroOp::CmpImm { a: r(a), imm },
            Instr::Delay { cycles } => MicroOp::Delay { cycles: cycles as u64 },
            _ => MicroOp::NotFused,
        }
    }

    /// Whether this micro-op participates in fusion.
    #[inline]
    pub fn fused(&self) -> bool {
        !matches!(self, MicroOp::NotFused)
    }

    /// Exact execution cost in cycles — what the matching `Engine::exec`
    /// arm adds to the thread clock (fetch excluded). Zero for
    /// [`MicroOp::NotFused`] so prefix sums stay well-defined across run
    /// boundaries (never consulted across them).
    #[inline]
    pub fn cost(&self) -> u64 {
        match self {
            MicroOp::NotFused => 0,
            MicroOp::Mul { .. } => 3,
            MicroOp::Delay { cycles } => *cycles,
            _ => 1,
        }
    }
}

/// Sentinel index meaning "no decoded successor" (the address is not mapped,
/// or the successor must be resolved through [`DecodedProgram::index_of`]).
pub const NO_IDX: u32 = u32::MAX;

/// One pre-decoded instruction: the operation plus every derived datum the
/// step loop would otherwise recompute per retirement.
#[derive(Copy, Clone, Debug)]
pub struct DecodedInstr {
    /// The instruction.
    pub instr: Instr,
    /// Its address.
    pub pc: u64,
    /// Encoded byte length (`pc + len` is the fall-through address).
    pub len: u64,
    /// Line-aligned address of the cache line holding `pc`.
    pub line: u64,
    /// Index of the instruction at `pc + len`, or [`NO_IDX`].
    pub fall: u32,
    /// Index of the static control-flow target (`jmp`/`jcc`/`call`), or
    /// [`NO_IDX`] for non-branches and unmapped targets.
    pub target: u32,
}

/// The compiled side table. See the [module documentation](self).
///
/// Beyond the per-instruction entries, the table carries **superblock
/// fusion metadata** computed once at compile time: each instruction's
/// pre-lowered [`MicroOp`], the extent of the maximal straight-line fusable
/// run it belongs to, same-cache-line segment boundaries within runs, and
/// prefix sums of execution cost and line breaks. The engine's superblock
/// path uses these to decide — before executing anything — how many
/// instructions it can legally retire in one batch, and to retire them
/// without consulting the `Instr` representation at all.
#[derive(Clone, Debug, Default)]
pub struct DecodedProgram {
    instrs: Vec<DecodedInstr>,
    by_pc: HashMap<u64, u32>,
    /// Pre-lowered micro-op per instruction (parallel to `instrs`).
    micro: Vec<MicroOp>,
    /// `run_end[i]`: exclusive end of the maximal fusable run containing
    /// `i` — every `k` in `i..run_end[i]` is fused and falls through to
    /// `k + 1`. Equals `i` when `instrs[i]` itself is not fusable, so
    /// `run_end[i] - i` is always "how many instructions a superblock
    /// starting at `i` could retire".
    run_end: Vec<u32>,
    /// `line_end[i]`: exclusive end of the same-cache-line prefix of the
    /// fusable run at `i` (`line_end[i] <= run_end[i]`); the superblock
    /// executor fetches once per `[i, line_end[i])` segment.
    line_end: Vec<u32>,
    /// `cum_cost[i]`: total [`MicroOp::cost`] of instructions `0..i`
    /// (length `n + 1`).
    cum_cost: Vec<u64>,
    /// `cum_breaks[i]`: number of positions `j` in `1..i` where
    /// instruction `j` starts on a different cache line than `j − 1`
    /// (length `n + 1`) — a prefix-sum bound on mid-run fetches.
    cum_breaks: Vec<u32>,
}

impl DecodedProgram {
    /// Compile a program's address-ordered instruction map into the dense
    /// table. Called from `Engine::load`; cost is linear in program size
    /// and paid once per load, never per step.
    pub fn compile(prog: &Program) -> DecodedProgram {
        let mut instrs: Vec<DecodedInstr> = Vec::with_capacity(prog.len());
        let mut by_pc: HashMap<u64, u32> = HashMap::with_capacity(prog.len());
        for (pc, instr) in prog.iter() {
            let idx = instrs.len() as u32;
            let len = instr.len();
            instrs.push(DecodedInstr {
                instr: *instr,
                pc,
                len,
                line: Addr(pc).line().0,
                fall: NO_IDX,
                target: NO_IDX,
            });
            by_pc.insert(pc, idx);
        }
        for d in &mut instrs {
            d.fall = by_pc.get(&(d.pc + d.len)).copied().unwrap_or(NO_IDX);
            let static_target = match d.instr {
                Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                    Some(target)
                }
                _ => None,
            };
            if let Some(t) = static_target {
                d.target = by_pc.get(&t).copied().unwrap_or(NO_IDX);
            }
        }
        let mut table = DecodedProgram {
            instrs,
            by_pc,
            micro: Vec::new(),
            run_end: Vec::new(),
            line_end: Vec::new(),
            cum_cost: Vec::new(),
            cum_breaks: Vec::new(),
        };
        table.fuse();
        table
    }

    /// (Re)build the superblock fusion metadata from `instrs`. Linear; run
    /// at compile time and after boundary-preserving patches that change an
    /// instruction's fusability or cost.
    fn fuse(&mut self) {
        let n = self.instrs.len();
        self.micro.clear();
        self.micro.extend(self.instrs.iter().map(|d| MicroOp::lower(&d.instr)));
        self.run_end.clear();
        self.run_end.resize(n, 0);
        self.line_end.clear();
        self.line_end.resize(n, 0);
        // Tail-to-head: a fused instruction that falls through to the
        // adjacent entry inherits its successor's run end; anything else
        // ends its run (and line segment) immediately.
        for i in (0..n).rev() {
            if !self.micro[i].fused() {
                self.run_end[i] = i as u32;
                self.line_end[i] = i as u32;
                continue;
            }
            let chains =
                self.instrs[i].fall == (i + 1) as u32 && i + 1 < n && self.micro[i + 1].fused();
            self.run_end[i] = if chains { self.run_end[i + 1] } else { (i + 1) as u32 };
            self.line_end[i] = if chains && self.instrs[i].line == self.instrs[i + 1].line {
                self.line_end[i + 1]
            } else {
                (i + 1) as u32
            };
        }
        self.cum_cost.clear();
        self.cum_cost.reserve(n + 1);
        self.cum_cost.push(0);
        self.cum_breaks.clear();
        self.cum_breaks.reserve(n + 1);
        self.cum_breaks.push(0);
        for i in 0..n {
            self.cum_cost.push(self.cum_cost[i] + self.micro[i].cost());
            let brk = i >= 1 && self.instrs[i].line != self.instrs[i - 1].line;
            self.cum_breaks.push(self.cum_breaks[i] + u32::from(brk));
        }
    }

    /// Re-decode one instruction in place after a self-modifying
    /// write-back. Succeeds when `pc` is already decoded and the new
    /// instruction keeps the old encoded length (the common SMC pattern:
    /// a line's bytes are rewritten but instruction boundaries survive) —
    /// the entry's operation and static branch target are refreshed while
    /// every index in the table, including successor links held by other
    /// entries and any `pc → index` values cached by the engine's
    /// threads, stays valid. Returns `false` when the patch would move
    /// instruction boundaries (an unmapped `pc`, or a different length);
    /// the caller must then recompile the whole table.
    pub fn patch(&mut self, pc: u64, instr: Instr) -> bool {
        let Some(&idx) = self.by_pc.get(&pc) else {
            return false;
        };
        let target = match instr {
            Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                self.by_pc.get(&target).copied().unwrap_or(NO_IDX)
            }
            _ => NO_IDX,
        };
        let d = &mut self.instrs[idx as usize];
        if d.len != instr.len() {
            return false;
        }
        d.instr = instr;
        d.target = target;
        // Keep the fusion metadata honest: re-lower this entry, and rebuild
        // run/segment/prefix tables only when the patch changed something
        // they encode (fusability or cost). The common SMC patterns — a
        // branch retargeted, an ALU op swapped for another 1-cycle ALU op —
        // stay O(1); a patch that splits or merges runs (e.g. `add` →
        // `lfence`) pays one linear re-fuse.
        let lowered = MicroOp::lower(&instr);
        let old = self.micro[idx as usize];
        if lowered.fused() != old.fused() || lowered.cost() != old.cost() {
            self.fuse();
        } else {
            self.micro[idx as usize] = lowered;
        }
        true
    }

    /// Drop the compiled table (machine reset).
    pub fn clear(&mut self) {
        self.instrs.clear();
        self.by_pc.clear();
        self.micro.clear();
        self.run_end.clear();
        self.line_end.clear();
        self.cum_cost.clear();
        self.cum_breaks.clear();
    }

    /// Index of the instruction at `pc`, or [`NO_IDX`] if none is mapped
    /// there. One hash probe — the slow path taken only on dynamic control
    /// transfers; sequential flow and static branches use the pre-resolved
    /// successor indices instead.
    pub fn index_of(&self, pc: u64) -> u32 {
        self.by_pc.get(&pc).copied().unwrap_or(NO_IDX)
    }

    /// The decoded entry at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (in particular [`NO_IDX`]).
    pub fn get(&self, idx: u32) -> &DecodedInstr {
        &self.instrs[idx as usize]
    }

    /// Number of decoded instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    // ---- superblock fusion metadata ------------------------------------

    /// The pre-lowered micro-op at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn micro(&self, idx: u32) -> MicroOp {
        self.micro[idx as usize]
    }

    /// The pre-lowered micro-ops for instructions `from..to` as a slice,
    /// so the superblock executor iterates without per-op bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[inline]
    pub fn micro_slice(&self, from: u32, to: u32) -> &[MicroOp] {
        &self.micro[from as usize..to as usize]
    }

    /// Exclusive end of the maximal fusable straight-line run starting at
    /// `idx` (equal to `idx` when the instruction is not fusable); see the
    /// field docs on [`DecodedProgram`].
    #[inline]
    pub fn run_end(&self, idx: u32) -> u32 {
        self.run_end[idx as usize]
    }

    /// Exclusive end of the same-cache-line segment of the fusable run
    /// starting at `idx`.
    #[inline]
    pub fn line_end(&self, idx: u32) -> u32 {
        self.line_end[idx as usize]
    }

    /// Exact total execution cost (cycles, fetch excluded) of instructions
    /// `from..to` — one prefix-sum subtraction.
    #[inline]
    pub fn block_cost(&self, from: u32, to: u32) -> u64 {
        self.cum_cost[to as usize] - self.cum_cost[from as usize]
    }

    /// Number of cache-line switches encountered while executing
    /// instructions `from..to` sequentially *after* the first one, i.e.
    /// positions `j` in `from+1..to` whose line differs from `j − 1`'s.
    /// (Whether the first instruction itself needs a fetch depends on the
    /// thread's `last_fetch_line` and is the caller's business.)
    #[inline]
    pub fn block_breaks(&self, from: u32, to: u32) -> u32 {
        if to <= from + 1 {
            return 0;
        }
        self.cum_breaks[to as usize] - self.cum_breaks[from as usize + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::Reg;

    fn looped() -> Program {
        let mut a = Assembler::new(0x1000);
        a.mov_imm(Reg::R0, 0)
            .label("loop")
            .add_imm(Reg::R0, 1)
            .cmp_imm(Reg::R0, 4)
            .jne("loop")
            .halt();
        a.assemble().unwrap()
    }

    #[test]
    fn fallthrough_indices_chain_in_address_order() {
        let p = looped();
        let d = DecodedProgram::compile(&p);
        assert_eq!(d.len(), p.len());
        for i in 0..d.len() - 1 {
            let e = d.get(i as u32);
            assert_eq!(e.fall, (i + 1) as u32, "instr {i} falls through to {}", i + 1);
            assert_eq!(d.get(e.fall).pc, e.pc + e.len);
        }
        // The final halt has no mapped successor.
        assert_eq!(d.get((d.len() - 1) as u32).fall, NO_IDX);
    }

    #[test]
    fn static_branch_targets_resolve_to_indices() {
        let p = looped();
        let d = DecodedProgram::compile(&p);
        let loop_pc = p.label("loop").unwrap();
        let jne_idx = (0..d.len() as u32)
            .find(|i| matches!(d.get(*i).instr, Instr::Jcc { .. }))
            .expect("program has a jcc");
        let target = d.get(jne_idx).target;
        assert_ne!(target, NO_IDX);
        assert_eq!(d.get(target).pc, loop_pc);
    }

    #[test]
    fn index_of_mirrors_the_program_map() {
        let p = looped();
        let d = DecodedProgram::compile(&p);
        for (pc, instr) in p.iter() {
            let idx = d.index_of(pc);
            assert_ne!(idx, NO_IDX);
            let e = d.get(idx);
            assert_eq!(e.instr, *instr);
            assert_eq!(e.line, Addr(pc).line().0);
            assert_eq!(e.len, instr.len());
        }
        assert_eq!(d.index_of(0xdead_0000), NO_IDX);
    }

    #[test]
    fn unmapped_branch_targets_stay_unresolved() {
        let mut a = Assembler::new(0);
        a.jmp(0x9999u64).halt();
        let d = DecodedProgram::compile(&a.assemble().unwrap());
        assert_eq!(d.get(0).target, NO_IDX, "target outside the program");
    }

    #[test]
    fn patch_rewrites_in_place_when_lengths_match() {
        let p = looped();
        let mut d = DecodedProgram::compile(&p);
        let jne_idx = (0..d.len() as u32)
            .find(|i| matches!(d.get(*i).instr, Instr::Jcc { .. }))
            .expect("program has a jcc");
        let pc = d.get(jne_idx).pc;
        let old_fall = d.get(jne_idx).fall;
        // Retarget the branch at its own pc: same length, new static target.
        let new_target = d.get(0).pc;
        let patched = Instr::Jcc { cond: crate::isa::Cond::Eq, target: new_target };
        assert!(d.patch(pc, patched));
        let e = d.get(jne_idx);
        assert_eq!(e.instr, patched);
        assert_eq!(d.get(e.target).pc, new_target, "target re-resolved");
        assert_eq!(e.fall, old_fall, "fall-through index survives");
    }

    #[test]
    fn patch_refuses_boundary_changes() {
        let p = looped();
        let mut d = DecodedProgram::compile(&p);
        // Unmapped pc: nothing to patch in place.
        assert!(!d.patch(0xdead_0000, Instr::Nop));
        // Length change (add_imm is 5 bytes, nop is 1): boundaries move.
        let add_pc = (0..d.len() as u32)
            .map(|i| *d.get(i))
            .find(|e| matches!(e.instr, Instr::AddImm { .. }))
            .expect("program has an add_imm")
            .pc;
        assert!(!d.patch(add_pc, Instr::Nop));
    }

    #[test]
    fn clear_empties_the_table() {
        let mut d = DecodedProgram::compile(&looped());
        assert!(!d.is_empty());
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.index_of(0x1000), NO_IDX);
    }

    #[test]
    fn runs_cover_fusable_straight_lines_and_stop_at_branches() {
        // mov_imm, add_imm, cmp_imm fuse; jne and halt do not.
        let d = DecodedProgram::compile(&looped());
        let jne_idx =
            (0..d.len() as u32).find(|i| matches!(d.get(*i).instr, Instr::Jcc { .. })).unwrap();
        // The three leading ALU ops form one run ending at the jcc.
        assert_eq!(d.run_end(0), jne_idx);
        assert_eq!(d.run_end(1), jne_idx);
        assert_eq!(d.run_end(jne_idx - 1), jne_idx);
        // Non-fusable entries are zero-length runs.
        assert!(!d.micro(jne_idx).fused());
        assert_eq!(d.run_end(jne_idx), jne_idx);
        // Cost prefix: each of the three ALU ops costs 1 cycle.
        assert_eq!(d.block_cost(0, jne_idx), jne_idx as u64);
    }

    #[test]
    fn line_segments_split_runs_at_cache_line_boundaries() {
        // 20 five-byte mov_imms starting at a line boundary span lines
        // 0x1000..0x1040..0x1080: segments of ⌈64/5⌉-ish instructions.
        let mut a = Assembler::new(0x1000);
        for i in 0..20 {
            a.mov_imm(Reg::R0, i);
        }
        a.halt();
        let d = DecodedProgram::compile(&a.assemble().unwrap());
        assert_eq!(d.run_end(0), 20, "all 20 movs fuse into one run");
        let first_seg = d.line_end(0);
        assert!(first_seg < 20, "the run crosses at least one line");
        assert_eq!(d.get(first_seg - 1).line, d.get(0).line);
        assert_ne!(d.get(first_seg).line, d.get(0).line);
        // Break prefix agrees with a direct scan.
        let direct = (1..20).filter(|&j| d.get(j).line != d.get(j - 1).line).count() as u32;
        assert_eq!(d.block_breaks(0, 20), direct);
        assert_eq!(d.block_breaks(0, 1), 0);
    }

    #[test]
    fn mul_and_delay_costs_enter_the_prefix_sums() {
        let mut a = Assembler::new(0);
        a.mov_imm(Reg::R0, 2).mul(Reg::R0, Reg::R0).delay(17).nop().halt();
        let d = DecodedProgram::compile(&a.assemble().unwrap());
        assert_eq!(d.run_end(0), 4, "mov+mul+delay+nop fuse; halt does not");
        assert_eq!(d.block_cost(0, 4), 1 + 3 + 17 + 1);
        assert_eq!(d.micro(2), MicroOp::Delay { cycles: 17 });
    }

    #[test]
    fn patch_rebuilds_fusion_when_fusability_changes() {
        let mut a = Assembler::new(0x2000);
        a.add(Reg::R0, Reg::R1).add(Reg::R0, Reg::R1).add(Reg::R0, Reg::R1).halt();
        let mut d = DecodedProgram::compile(&a.assemble().unwrap());
        assert_eq!(d.run_end(0), 3);
        // add (3 bytes) → lfence (3 bytes): same boundaries, run must split.
        let pc1 = d.get(1).pc;
        assert!(d.patch(pc1, Instr::Lfence));
        assert_eq!(d.run_end(0), 1, "run now stops before the fence");
        assert_eq!(d.run_end(1), 1, "fence is not fusable");
        assert_eq!(d.run_end(2), 3, "tail re-fuses on its own");
        assert_eq!(d.block_cost(0, 1), 1);
        // lfence → add restores the original single run.
        assert!(d.patch(pc1, Instr::Add { dst: Reg::R0, src: Reg::R1 }));
        assert_eq!(d.run_end(0), 3);
    }

    #[test]
    fn patch_updates_micro_in_place_when_shape_is_preserved() {
        let mut a = Assembler::new(0x2000);
        a.add(Reg::R0, Reg::R1).add(Reg::R0, Reg::R1).halt();
        let mut d = DecodedProgram::compile(&a.assemble().unwrap());
        let pc0 = d.get(0).pc;
        // add → xor: both fused, both cost 1 — metadata must survive and
        // the lowered op must change.
        assert!(d.patch(pc0, Instr::Xor { dst: Reg::R0, src: Reg::R2 }));
        assert_eq!(d.micro(0), MicroOp::Xor { dst: 0, src: 2 });
        assert_eq!(d.run_end(0), 2);
    }
}
