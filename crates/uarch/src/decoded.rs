//! The decoded-program side table behind the engine's fast step path.
//!
//! A [`crate::asm::Program`] stores instructions in a `BTreeMap<u64, Instr>`
//! keyed by address — ideal for assembly and merging, terrible for the hot
//! loop: every simulated instruction would pay an ordered-map lookup. At
//! [`crate::engine::Engine::load`] time the map is compiled into a
//! [`DecodedProgram`]: a dense `Vec<DecodedInstr>` in address order whose
//! entries carry everything the steady-state step loop needs — the
//! instruction itself (`Instr` is `Copy`), its byte length, the id of the
//! cache line it occupies, and the *indices* of its fall-through and static
//! branch-target successors. Sequential execution and taken static branches
//! then chase indices with zero map lookups and zero per-step allocation;
//! only dynamic transfers (`ret`, `call *%reg`, speculation rollback) fall
//! back to one O(1) hash probe in the `pc → index` map.

use std::collections::HashMap;

use crate::addr::Addr;
use crate::asm::Program;
use crate::isa::Instr;

/// Sentinel index meaning "no decoded successor" (the address is not mapped,
/// or the successor must be resolved through [`DecodedProgram::index_of`]).
pub const NO_IDX: u32 = u32::MAX;

/// One pre-decoded instruction: the operation plus every derived datum the
/// step loop would otherwise recompute per retirement.
#[derive(Copy, Clone, Debug)]
pub struct DecodedInstr {
    /// The instruction.
    pub instr: Instr,
    /// Its address.
    pub pc: u64,
    /// Encoded byte length (`pc + len` is the fall-through address).
    pub len: u64,
    /// Line-aligned address of the cache line holding `pc`.
    pub line: u64,
    /// Index of the instruction at `pc + len`, or [`NO_IDX`].
    pub fall: u32,
    /// Index of the static control-flow target (`jmp`/`jcc`/`call`), or
    /// [`NO_IDX`] for non-branches and unmapped targets.
    pub target: u32,
}

/// The compiled side table. See the [module documentation](self).
#[derive(Clone, Debug, Default)]
pub struct DecodedProgram {
    instrs: Vec<DecodedInstr>,
    by_pc: HashMap<u64, u32>,
}

impl DecodedProgram {
    /// Compile a program's address-ordered instruction map into the dense
    /// table. Called from `Engine::load`; cost is linear in program size
    /// and paid once per load, never per step.
    pub fn compile(prog: &Program) -> DecodedProgram {
        let mut instrs: Vec<DecodedInstr> = Vec::with_capacity(prog.len());
        let mut by_pc: HashMap<u64, u32> = HashMap::with_capacity(prog.len());
        for (pc, instr) in prog.iter() {
            let idx = instrs.len() as u32;
            let len = instr.len();
            instrs.push(DecodedInstr {
                instr: *instr,
                pc,
                len,
                line: Addr(pc).line().0,
                fall: NO_IDX,
                target: NO_IDX,
            });
            by_pc.insert(pc, idx);
        }
        for d in &mut instrs {
            d.fall = by_pc.get(&(d.pc + d.len)).copied().unwrap_or(NO_IDX);
            let static_target = match d.instr {
                Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                    Some(target)
                }
                _ => None,
            };
            if let Some(t) = static_target {
                d.target = by_pc.get(&t).copied().unwrap_or(NO_IDX);
            }
        }
        DecodedProgram { instrs, by_pc }
    }

    /// Re-decode one instruction in place after a self-modifying
    /// write-back. Succeeds when `pc` is already decoded and the new
    /// instruction keeps the old encoded length (the common SMC pattern:
    /// a line's bytes are rewritten but instruction boundaries survive) —
    /// the entry's operation and static branch target are refreshed while
    /// every index in the table, including successor links held by other
    /// entries and any `pc → index` values cached by the engine's
    /// threads, stays valid. Returns `false` when the patch would move
    /// instruction boundaries (an unmapped `pc`, or a different length);
    /// the caller must then recompile the whole table.
    pub fn patch(&mut self, pc: u64, instr: Instr) -> bool {
        let Some(&idx) = self.by_pc.get(&pc) else {
            return false;
        };
        let target = match instr {
            Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                self.by_pc.get(&target).copied().unwrap_or(NO_IDX)
            }
            _ => NO_IDX,
        };
        let d = &mut self.instrs[idx as usize];
        if d.len != instr.len() {
            return false;
        }
        d.instr = instr;
        d.target = target;
        true
    }

    /// Drop the compiled table (machine reset).
    pub fn clear(&mut self) {
        self.instrs.clear();
        self.by_pc.clear();
    }

    /// Index of the instruction at `pc`, or [`NO_IDX`] if none is mapped
    /// there. One hash probe — the slow path taken only on dynamic control
    /// transfers; sequential flow and static branches use the pre-resolved
    /// successor indices instead.
    pub fn index_of(&self, pc: u64) -> u32 {
        self.by_pc.get(&pc).copied().unwrap_or(NO_IDX)
    }

    /// The decoded entry at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (in particular [`NO_IDX`]).
    pub fn get(&self, idx: u32) -> &DecodedInstr {
        &self.instrs[idx as usize]
    }

    /// Number of decoded instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::Reg;

    fn looped() -> Program {
        let mut a = Assembler::new(0x1000);
        a.mov_imm(Reg::R0, 0)
            .label("loop")
            .add_imm(Reg::R0, 1)
            .cmp_imm(Reg::R0, 4)
            .jne("loop")
            .halt();
        a.assemble().unwrap()
    }

    #[test]
    fn fallthrough_indices_chain_in_address_order() {
        let p = looped();
        let d = DecodedProgram::compile(&p);
        assert_eq!(d.len(), p.len());
        for i in 0..d.len() - 1 {
            let e = d.get(i as u32);
            assert_eq!(e.fall, (i + 1) as u32, "instr {i} falls through to {}", i + 1);
            assert_eq!(d.get(e.fall).pc, e.pc + e.len);
        }
        // The final halt has no mapped successor.
        assert_eq!(d.get((d.len() - 1) as u32).fall, NO_IDX);
    }

    #[test]
    fn static_branch_targets_resolve_to_indices() {
        let p = looped();
        let d = DecodedProgram::compile(&p);
        let loop_pc = p.label("loop").unwrap();
        let jne_idx = (0..d.len() as u32)
            .find(|i| matches!(d.get(*i).instr, Instr::Jcc { .. }))
            .expect("program has a jcc");
        let target = d.get(jne_idx).target;
        assert_ne!(target, NO_IDX);
        assert_eq!(d.get(target).pc, loop_pc);
    }

    #[test]
    fn index_of_mirrors_the_program_map() {
        let p = looped();
        let d = DecodedProgram::compile(&p);
        for (pc, instr) in p.iter() {
            let idx = d.index_of(pc);
            assert_ne!(idx, NO_IDX);
            let e = d.get(idx);
            assert_eq!(e.instr, *instr);
            assert_eq!(e.line, Addr(pc).line().0);
            assert_eq!(e.len, instr.len());
        }
        assert_eq!(d.index_of(0xdead_0000), NO_IDX);
    }

    #[test]
    fn unmapped_branch_targets_stay_unresolved() {
        let mut a = Assembler::new(0);
        a.jmp(0x9999u64).halt();
        let d = DecodedProgram::compile(&a.assemble().unwrap());
        assert_eq!(d.get(0).target, NO_IDX, "target outside the program");
    }

    #[test]
    fn patch_rewrites_in_place_when_lengths_match() {
        let p = looped();
        let mut d = DecodedProgram::compile(&p);
        let jne_idx = (0..d.len() as u32)
            .find(|i| matches!(d.get(*i).instr, Instr::Jcc { .. }))
            .expect("program has a jcc");
        let pc = d.get(jne_idx).pc;
        let old_fall = d.get(jne_idx).fall;
        // Retarget the branch at its own pc: same length, new static target.
        let new_target = d.get(0).pc;
        let patched = Instr::Jcc { cond: crate::isa::Cond::Eq, target: new_target };
        assert!(d.patch(pc, patched));
        let e = d.get(jne_idx);
        assert_eq!(e.instr, patched);
        assert_eq!(d.get(e.target).pc, new_target, "target re-resolved");
        assert_eq!(e.fall, old_fall, "fall-through index survives");
    }

    #[test]
    fn patch_refuses_boundary_changes() {
        let p = looped();
        let mut d = DecodedProgram::compile(&p);
        // Unmapped pc: nothing to patch in place.
        assert!(!d.patch(0xdead_0000, Instr::Nop));
        // Length change (add_imm is 5 bytes, nop is 1): boundaries move.
        let add_pc = (0..d.len() as u32)
            .map(|i| *d.get(i))
            .find(|e| matches!(e.instr, Instr::AddImm { .. }))
            .expect("program has an add_imm")
            .pc;
        assert!(!d.patch(add_pc, Instr::Nop));
    }

    #[test]
    fn clear_empties_the_table() {
        let mut d = DecodedProgram::compile(&looped());
        assert!(!d.is_empty());
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.index_of(0x1000), NO_IDX);
    }
}
