//! A process- and toolchain-stable 64-bit hasher (FNV-1a).
//!
//! [`UarchProfile::fingerprint`](crate::UarchProfile::fingerprint) and
//! [`NoiseConfig::fingerprint`](crate::NoiseConfig::fingerprint) key the
//! machine pools and the *persistent* calibration cache (`SMACK_CALIB_DIR`).
//! `std::collections::hash_map::DefaultHasher` is explicitly documented as
//! unstable across Rust releases, so fingerprints built on it would silently
//! churn every cache key on a toolchain upgrade. `StableHasher` implements
//! FNV-1a over a little-endian byte stream: the digest depends only on the
//! values written, never on the platform, the process, or the standard
//! library version. The `fingerprint_compat` tests lock the resulting
//! digests so any accidental change to the encoding fails loudly.

use std::hash::Hasher;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A [`Hasher`] computing 64-bit FNV-1a over the written bytes, with every
/// integer-writing method pinned to little-endian encoding (the trait's
/// defaults use native endianness, which would make digests
/// platform-dependent).
#[derive(Copy, Clone, Debug)]
pub struct StableHasher(u64);

impl StableHasher {
    /// A hasher in the FNV-1a initial state.
    pub fn new() -> StableHasher {
        StableHasher(FNV_OFFSET_BASIS)
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        // Fixed eight-byte encoding regardless of the platform word size.
        self.write(&(i as u64).to_le_bytes());
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_fnv1a_vectors() {
        // Classic FNV-1a 64 test vectors.
        let digest = |s: &str| {
            let mut h = StableHasher::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn integer_writes_use_little_endian() {
        let mut a = StableHasher::new();
        a.write_u32(0x0403_0201);
        let mut b = StableHasher::new();
        b.write(&[1, 2, 3, 4]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn usize_writes_are_width_independent() {
        let mut a = StableHasher::new();
        a.write_usize(7);
        let mut b = StableHasher::new();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
