//! The four-level cache hierarchy: split L1 (instruction + data), unified
//! L2, and an inclusive last-level cache.
//!
//! Key modeling choices (see DESIGN.md §3):
//!
//! * **Inclusive LLC** — evicting an LLC line back-invalidates it from L1i,
//!   L1d and L2, which is what lets cross-core eviction matter. L2 is
//!   non-inclusive of L1.
//! * **Instruction fetches hide most of the L2 latency** behind the
//!   next-line prefetcher, so an L1i miss that hits L2 costs only a couple
//!   of cycles more than an L1i hit. This reproduces the paper's
//!   observation that Mastik's execute-probe sees a 1–2 cycle L1i/L2 gap
//!   (§4.1), which is why classic L1i Prime+Probe is noisy.
//! * **Stores invalidate L1i copies** (an instruction cache never holds a
//!   modified line), which is the hook the SMC detection unit observes.

use crate::addr::Addr;
use crate::cache::{Cache, CacheGeometry, Evicted, LineFilter};

/// The hierarchy level where an access hit.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Level {
    /// L1 instruction cache.
    L1i,
    /// L1 data cache.
    L1d,
    /// Unified second-level cache.
    L2,
    /// Last-level cache.
    Llc,
    /// Main memory.
    Dram,
}

/// Which caches currently hold a given line.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Residency {
    /// Present in the L1 instruction cache.
    pub l1i: bool,
    /// Present in the L1 data cache.
    pub l1d: bool,
    /// Present in L2.
    pub l2: bool,
    /// Present in the LLC.
    pub llc: bool,
}

impl Residency {
    /// Level a *data-side* access would hit.
    pub fn data_level(&self) -> Level {
        if self.l1d {
            Level::L1d
        } else if self.l2 {
            Level::L2
        } else if self.llc {
            Level::Llc
        } else {
            Level::Dram
        }
    }

    /// Level an *instruction fetch* would hit.
    pub fn fetch_level(&self) -> Level {
        if self.l1i {
            Level::L1i
        } else if self.l2 {
            Level::L2
        } else if self.llc {
            Level::Llc
        } else {
            Level::Dram
        }
    }

    /// Present in any cache level.
    pub fn cached_anywhere(&self) -> bool {
        self.l1i || self.l1d || self.l2 || self.llc
    }
}

/// Static configuration of the hierarchy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// L2 geometry.
    pub l2: CacheGeometry,
    /// LLC geometry.
    pub llc: CacheGeometry,
    /// Data-load latency on an L1d hit.
    pub lat_l1d: u32,
    /// Data latency on an L2 hit.
    pub lat_l2: u32,
    /// Data latency on an LLC hit.
    pub lat_llc: u32,
    /// Data latency for DRAM.
    pub lat_dram: u32,
    /// Extra instruction-fetch cycles when the fetch hits L2
    /// (mostly hidden by the next-line prefetcher).
    pub ifetch_extra_l2: u32,
    /// Extra instruction-fetch cycles when the fetch hits the LLC.
    pub ifetch_extra_llc: u32,
    /// Extra instruction-fetch cycles when the fetch goes to DRAM.
    pub ifetch_extra_dram: u32,
    /// Whether the front-end next-line prefetcher is enabled.
    pub next_line_prefetch: bool,
}

impl HierarchyConfig {
    /// A 32 KiB / 8-way split L1, 1 MiB L2, 16 MiB LLC Intel-like hierarchy.
    pub fn intel_like() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheGeometry { sets: 64, ways: 8 },
            l1d: CacheGeometry { sets: 64, ways: 8 },
            l2: CacheGeometry { sets: 1024, ways: 16 },
            llc: CacheGeometry { sets: 8192, ways: 16 },
            lat_l1d: 4,
            lat_l2: 14,
            lat_llc: 50,
            lat_dram: 250,
            ifetch_extra_l2: 2,
            ifetch_extra_llc: 25,
            ifetch_extra_dram: 220,
            next_line_prefetch: true,
        }
    }
}

/// Outcome of a data read/write or prefetch.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AccessInfo {
    /// Level the access hit (before filling).
    pub level: Level,
    /// Data-side latency in cycles for that level.
    pub latency: u32,
    /// Whether the line was resident in L1i before the access.
    pub was_in_l1i: bool,
}

/// Outcome of a `clflush`-style invalidation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FlushInfo {
    /// Whether the line was cached anywhere before the flush.
    pub was_cached: bool,
    /// Whether the line was in L1i before the flush.
    pub was_in_l1i: bool,
    /// Whether a dirty copy had to be written back.
    pub wrote_back: bool,
}

/// The split-L1 / L2 / inclusive-LLC hierarchy.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    /// Superset of every line ever inserted into the L1i since the last
    /// [`CacheHierarchy::clear`]; backs [`CacheHierarchy::maybe_in_l1i`].
    l1i_filter: LineFilter,
}

impl CacheHierarchy {
    /// Create an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> CacheHierarchy {
        CacheHierarchy {
            cfg,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            llc: Cache::new(cfg.llc),
            l1i_filter: LineFilter::new(),
        }
    }

    /// Configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Invalidate every line in every level, keeping the per-set storage
    /// allocated. A cleared hierarchy behaves exactly like a freshly built
    /// one: LRU decisions only ever compare stamps of co-resident lines.
    pub fn clear(&mut self) {
        for c in [&mut self.l1i, &mut self.l1d, &mut self.l2, &mut self.llc] {
            c.flush_all();
        }
        self.l1i_filter.clear();
    }

    /// Where is this line cached right now? (Non-mutating.)
    pub fn residency(&self, addr: Addr) -> Residency {
        let line = addr.line();
        Residency {
            l1i: self.l1i.contains_line(line),
            l1d: self.l1d.contains_line(line),
            l2: self.l2.contains_line(line),
            llc: self.llc.contains_line(line),
        }
    }

    /// `false` proves the line containing `addr` has never been in the
    /// L1i since the last [`CacheHierarchy::clear`]; `true` means "maybe,
    /// run the exact check". One shift-and-mask — the SMC detection unit
    /// uses this to skip residency probes for stores that provably target
    /// pure data lines (the overwhelmingly common case).
    #[inline]
    pub fn maybe_in_l1i(&self, addr: Addr) -> bool {
        self.l1i_filter.maybe_contains(addr)
    }

    /// Data latency for a hierarchy level.
    pub fn latency_of(&self, level: Level) -> u32 {
        match level {
            Level::L1i | Level::L1d => self.cfg.lat_l1d,
            Level::L2 => self.cfg.lat_l2,
            Level::Llc => self.cfg.lat_llc,
            Level::Dram => self.cfg.lat_dram,
        }
    }

    /// Extra instruction-fetch cycles for a miss serviced at `level`.
    pub fn ifetch_extra(&self, level: Level) -> u32 {
        match level {
            Level::L1i => 0,
            Level::L1d | Level::L2 => self.cfg.ifetch_extra_l2,
            Level::Llc => self.cfg.ifetch_extra_llc,
            Level::Dram => self.cfg.ifetch_extra_dram,
        }
    }

    fn back_invalidate(&mut self, ev: Option<Evicted>) {
        // Inclusive LLC: anything leaving the LLC leaves the core entirely.
        if let Some(ev) = ev {
            self.l1i.invalidate_line(ev.line);
            self.l1d.invalidate_line(ev.line);
            self.l2.invalidate_line(ev.line);
        }
    }

    /// Fill L2 and the LLC. `line` is line-aligned (all internal callers
    /// resolve the mask exactly once per access).
    fn fill_shared(&mut self, line: Addr) {
        let ev = self.llc.insert_line(line, false);
        self.back_invalidate(ev);
        self.l2.insert_line(line, false);
    }

    /// Instruction fetch of the line containing `addr`; fills L1i/L2/LLC.
    /// Returns the pre-fill hit level.
    ///
    /// The presence probes are folded into the LRU `touch` calls (which
    /// report presence): every cache keeps its own monotonic stamp clock,
    /// so the extra clock increments on missing levels change only
    /// absolute stamp values, never the relative recency order — eviction
    /// decisions, and therefore all observable behavior, are bit-identical
    /// to the probe-then-touch formulation at half the set scans.
    pub fn fetch(&mut self, addr: Addr) -> AccessInfo {
        let line = addr.line();
        let in_l1i = self.l1i.touch_line(line);
        let in_l2 = self.l2.touch_line(line);
        let in_llc = self.llc.touch_line(line);
        let level = if in_l1i {
            Level::L1i
        } else if in_l2 {
            Level::L2
        } else if in_llc {
            Level::Llc
        } else {
            Level::Dram
        };
        if !in_l1i {
            self.fill_shared(line);
            self.l1i.insert_line(line, false);
            self.l1i_filter.insert(line);
        }
        AccessInfo { level, latency: self.ifetch_extra(level), was_in_l1i: in_l1i }
    }

    /// Batched instruction-side fetch of a small slice of line-aligned
    /// line ids: the whole front-end sequence — [`CacheHierarchy::fetch`]
    /// plus, when the next-line prefetcher is configured, the silent
    /// [`CacheHierarchy::prefetch_ifetch`] of each line's successor — in
    /// exact per-line order, writing each line's pre-fill hit level into
    /// `infos`. One resolution pass: the line mask is taken once per line
    /// here and shared across every level's tag scan, instead of N
    /// independent `fetch` + `prefetch_ifetch` calls re-masking per level.
    /// Interleaving the prefetch with the fetches (not "all fetches, then
    /// all prefetches") is what keeps the batch bit-identical to per-line
    /// execution: line `k`'s fetch must observe line `k-1`'s prefetch.
    ///
    /// # Panics
    ///
    /// Panics if `infos` is shorter than `lines`.
    pub fn fetch_lines(&mut self, lines: &[u64], infos: &mut [AccessInfo]) {
        assert!(infos.len() >= lines.len(), "one AccessInfo slot per fetched line");
        let prefetch = self.cfg.next_line_prefetch;
        for (&line, info) in lines.iter().zip(infos.iter_mut()) {
            *info = self.fetch(Addr(line));
            if prefetch {
                self.prefetch_ifetch(Addr(line + crate::LINE_SIZE));
            }
        }
    }

    /// Batched data-side read of a small slice of line-aligned line ids
    /// (the probe tier's data path): [`CacheHierarchy::read`] per line in
    /// order, writing each line's pre-fill hit level into `infos`, with
    /// the line mask resolved once per line.
    ///
    /// # Panics
    ///
    /// Panics if `infos` is shorter than `lines`.
    pub fn touch_lines(&mut self, lines: &[u64], infos: &mut [AccessInfo]) {
        assert!(infos.len() >= lines.len(), "one AccessInfo slot per touched line");
        for (&line, info) in lines.iter().zip(infos.iter_mut()) {
            *info = self.read(Addr(line));
        }
    }

    /// Data read of the line containing `addr`; fills L1d/L2/LLC.
    ///
    /// L1d-hit fast path: a read only re-stamps the L1d line, so the L2
    /// and LLC scans are skipped entirely when the `touch` reports a hit
    /// (their state is untouched on a hit in the original formulation
    /// too — reads do not refresh outer-level LRU).
    pub fn read(&mut self, addr: Addr) -> AccessInfo {
        let line = addr.line();
        let was_in_l1i = self.l1i.contains_line(line);
        if self.l1d.touch_line(line) {
            return AccessInfo {
                level: Level::L1d,
                latency: self.latency_of(Level::L1d),
                was_in_l1i,
            };
        }
        let in_l2 = self.l2.contains_line(line);
        let in_llc = self.llc.contains_line(line);
        let level = if in_l2 {
            Level::L2
        } else if in_llc {
            Level::Llc
        } else {
            Level::Dram
        };
        self.fill_shared(line);
        self.l1d.insert_line(line, false);
        AccessInfo { level, latency: self.latency_of(level), was_in_l1i }
    }

    /// Data write (read-for-ownership) of the line containing `addr`.
    ///
    /// Invalidates any L1i copy — an instruction cache never holds a
    /// modified line — and marks the L1d copy dirty. Same L1d-hit fast
    /// path as [`CacheHierarchy::read`].
    pub fn write(&mut self, addr: Addr) -> AccessInfo {
        let line = addr.line();
        let was_in_l1i = self.l1i.contains_line(line);
        if was_in_l1i {
            self.l1i.invalidate_line(line);
        }
        if self.l1d.touch_line(line) {
            self.l1d.mark_dirty_line(line);
            return AccessInfo {
                level: Level::L1d,
                latency: self.latency_of(Level::L1d),
                was_in_l1i,
            };
        }
        let in_l2 = self.l2.contains_line(line);
        let in_llc = self.llc.contains_line(line);
        let level = if in_l2 {
            Level::L2
        } else if in_llc {
            Level::Llc
        } else {
            Level::Dram
        };
        self.fill_shared(line);
        self.l1d.insert_line(line, true);
        AccessInfo { level, latency: self.latency_of(level), was_in_l1i }
    }

    /// [`CacheHierarchy::write`] reusing a residency snapshot the caller
    /// already computed — the probe hot path reads residency for its cost
    /// model immediately before writing, and re-scanning four levels per
    /// probe is measurable at millions of probes per trial.
    ///
    /// `res` must come from [`CacheHierarchy::residency`] on the same line
    /// with no intervening L1d/L2/LLC mutation. The L1i state *may* have
    /// changed (an SMC machine clear invalidates the line between the
    /// residency read and the write), which only turns the invalidation
    /// into a no-op; `was_in_l1i` reports the snapshot's bit.
    pub fn write_resident(&mut self, addr: Addr, res: Residency) -> AccessInfo {
        let line = addr.line();
        if res.l1i {
            self.l1i.invalidate_line(line);
        }
        if self.l1d.touch_line(line) {
            self.l1d.mark_dirty_line(line);
            return AccessInfo {
                level: Level::L1d,
                latency: self.latency_of(Level::L1d),
                was_in_l1i: res.l1i,
            };
        }
        let level = if res.l2 {
            Level::L2
        } else if res.llc {
            Level::Llc
        } else {
            Level::Dram
        };
        self.fill_shared(line);
        self.l1d.insert_line(line, true);
        AccessInfo { level, latency: self.latency_of(level), was_in_l1i: res.l1i }
    }

    /// `clflush`/`clflushopt`: invalidate the line from every level.
    pub fn flush(&mut self, addr: Addr) -> FlushInfo {
        let line = addr.line();
        let res = self.residency(line);
        let mut wrote_back = false;
        for c in [&mut self.l1i, &mut self.l1d, &mut self.l2, &mut self.llc] {
            if let Some(ev) = c.invalidate_line(line) {
                wrote_back |= ev.dirty;
            }
        }
        FlushInfo { was_cached: res.cached_anywhere(), was_in_l1i: res.l1i, wrote_back }
    }

    /// `clwb`: write back any dirty copy but keep the line valid.
    pub fn writeback(&mut self, addr: Addr) -> FlushInfo {
        let line = addr.line();
        let res = self.residency(line);
        let mut wrote_back = false;
        for c in [&mut self.l1i, &mut self.l1d, &mut self.l2, &mut self.llc] {
            wrote_back |= c.clean_line(line);
        }
        FlushInfo { was_cached: res.cached_anywhere(), was_in_l1i: res.l1i, wrote_back }
    }

    /// `prefetcht0`/`prefetchnta`: fill the data path.
    pub fn prefetch(&mut self, addr: Addr) -> AccessInfo {
        // Model both prefetch flavours as an L1d fill; `nta` differences are
        // captured in the probe cost tables, not the state machine.
        self.read(addr)
    }

    /// Silent instruction-side fill used by the next-line prefetcher.
    ///
    /// Streaming prefetches land in L2/LLC, not in the L1i itself; what
    /// hides the L2 ifetch latency is the front-end pipelining (the small
    /// `ifetch_extra_l2`), not an L1i fill. Keeping prefetches out of the
    /// L1i matters for SMC probing: only genuinely fetched lines conflict.
    pub fn prefetch_ifetch(&mut self, addr: Addr) {
        let line = addr.line();
        if !self.l2.contains_line(line) && !self.llc.contains_line(line) {
            self.fill_shared(line);
        }
    }

    /// Invalidate a line from L1i only (SMC machine clear side effect).
    /// Returns `true` if it was present.
    pub fn invalidate_l1i(&mut self, addr: Addr) -> bool {
        self.l1i.invalidate(addr).is_some()
    }

    /// Evict the least-recently-used line of L1i set `set` (noise
    /// injection). Returns the evicted line, if the set was nonempty.
    pub fn evict_lru_l1i(&mut self, set: usize) -> Option<Addr> {
        let line = self.l1i.lru_line(set)?;
        self.l1i.invalidate(line);
        Some(line)
    }

    /// Direct access to the L1i for diagnostics and tests.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// Remove the line from every level (used for experiment setup).
    pub fn evict_everywhere(&mut self, addr: Addr) {
        self.flush(addr);
    }

    /// Place a line at exactly the levels named by `residency`
    /// (experiment-setup helper; keeps LLC inclusion: any cached line is
    /// also placed in the LLC).
    pub fn place(&mut self, addr: Addr, residency: Residency) {
        self.flush(addr);
        if residency.cached_anywhere() {
            self.llc.insert(addr, false);
        }
        if residency.l2 {
            self.l2.insert(addr, false);
        }
        if residency.l1i {
            self.l1i.insert(addr, false);
            self.l1i_filter.insert(addr);
        }
        if residency.l1d {
            self.l1d.insert(addr, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::intel_like())
    }

    #[test]
    fn fetch_fills_inclusively() {
        let mut h = hier();
        let a = Addr(0x4000);
        assert_eq!(h.fetch(a).level, Level::Dram);
        let r = h.residency(a);
        assert!(r.l1i && r.l2 && r.llc && !r.l1d);
        assert_eq!(h.fetch(a).level, Level::L1i);
    }

    /// The filter is a sound superset of L1i residency: no line may be in
    /// the L1i while the filter answers a definite "no" — not after
    /// fetches, placements, evictions, or clears.
    #[test]
    fn l1i_filter_is_a_residency_superset() {
        let mut h = hier();
        let code = Addr(0x4000);
        let data = Addr(0x9000);
        assert!(!h.maybe_in_l1i(code));
        h.fetch(code);
        assert!(h.maybe_in_l1i(code));
        h.read(data);
        assert!(!h.maybe_in_l1i(data), "data reads must not pollute the filter");
        // Eviction leaves the bit set: stale "maybe" is allowed...
        h.invalidate_l1i(code);
        assert!(!h.residency(code).l1i);
        assert!(h.maybe_in_l1i(code));
        // ...and place() marks, clear() forgets.
        h.place(data, Residency { l1i: true, l1d: false, l2: false, llc: true });
        assert!(h.maybe_in_l1i(data));
        h.clear();
        assert!(!h.maybe_in_l1i(code));
        assert!(!h.maybe_in_l1i(data));
    }

    #[test]
    fn read_fills_data_path() {
        let mut h = hier();
        let a = Addr(0x8000);
        assert_eq!(h.read(a).level, Level::Dram);
        assert_eq!(h.read(a).level, Level::L1d);
        let r = h.residency(a);
        assert!(r.l1d && r.l2 && r.llc && !r.l1i);
    }

    #[test]
    fn write_invalidates_l1i_copy() {
        let mut h = hier();
        let a = Addr(0xc000);
        h.fetch(a);
        assert!(h.residency(a).l1i);
        let info = h.write(a);
        assert!(info.was_in_l1i);
        let r = h.residency(a);
        assert!(!r.l1i, "store must invalidate the L1i copy");
        assert!(r.l1d);
        assert!(h.l1d_is_dirty(a));
    }

    #[test]
    fn flush_removes_everywhere() {
        let mut h = hier();
        let a = Addr(0x10000);
        h.fetch(a);
        h.read(a);
        let info = h.flush(a);
        assert!(info.was_cached && info.was_in_l1i);
        assert!(!h.residency(a).cached_anywhere());
        let info2 = h.flush(a);
        assert!(!info2.was_cached);
    }

    #[test]
    fn writeback_keeps_line_valid() {
        let mut h = hier();
        let a = Addr(0x14000);
        h.write(a);
        let info = h.writeback(a);
        assert!(info.wrote_back);
        assert!(h.residency(a).l1d);
        assert!(!h.l1d_is_dirty(a));
    }

    #[test]
    fn l1i_set_conflict_evicts_lru() {
        let mut h = hier();
        // 64-set 8-way L1i: 9 lines in the same set (stride 4096).
        for i in 0..9u64 {
            h.fetch(Addr(0x100000 + i * 4096));
        }
        let r0 = h.residency(Addr(0x100000));
        assert!(!r0.l1i, "first line should be LRU-evicted from L1i");
        assert!(r0.l2, "but should remain in L2");
    }

    #[test]
    fn place_establishes_exact_state() {
        let mut h = hier();
        let a = Addr(0x20000);
        h.place(a, Residency { l1i: false, l1d: false, l2: true, llc: true });
        let r = h.residency(a);
        assert_eq!(r, Residency { l1i: false, l1d: false, l2: true, llc: true });
        assert_eq!(h.read(a).level, Level::L2);
    }

    #[test]
    fn prefetch_ifetch_fills_l2_not_l1i() {
        let mut h = hier();
        let a = Addr(0x24000);
        h.prefetch_ifetch(a);
        let r = h.residency(a);
        assert!(r.l2 && r.llc, "streamed into the shared levels");
        assert!(!r.l1i, "but not into the L1i");
    }

    impl CacheHierarchy {
        fn l1d_is_dirty(&self, a: Addr) -> bool {
            self.l1d.is_dirty(a)
        }
    }
}
