//! Measurement noise: timing jitter and spurious cache evictions.
//!
//! Real measurements in the paper are noisy because of system activity,
//! interrupts and contention; the reproduction injects seeded, configurable
//! noise so that (a) experiments remain deterministic and (b) the *relative*
//! robustness of SMaCk vs. classic Prime+Probe emerges mechanistically: a
//! ±few-cycle jitter drowns Mastik's 1–2 cycle L1i/L2 margin but is
//! irrelevant against SMaCk's several-hundred-cycle machine-clear margin.
//!
//! ## Exact eviction schedule
//!
//! Spurious evictions follow a deterministic rate schedule: with `r`
//! evictions per kcycle, the `k`-th eviction fires the cycle the cumulative
//! elapsed time `C` first satisfies `⌊C·r/1000⌋ ≥ k`. The schedule is kept
//! in *integer* arithmetic — the configured `f64` rate is decomposed into an
//! exact rational `num/den` (every finite float is a dyadic rational), and
//! progress is tracked as `(cycles, emitted)` — so [`NoiseSource::evictions_for`]
//! is exactly invariant under partitioning: any way of slicing an interval
//! into sub-intervals yields the same eviction count at every boundary.
//! That invariance is what lets the engine retire a whole superblock's
//! cycles in one call and still match per-instruction execution bit for
//! bit, and it also makes [`NoiseSource::cycles_to_next_eviction`] exact,
//! which the superblock scheduler uses to stop batched execution *before*
//! an eviction would land mid-block.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::stablehash::StableHasher;

/// Noise model parameters.
#[derive(Copy, Clone, Debug)]
pub struct NoiseConfig {
    /// Maximum absolute timing jitter added to each timed operation, in
    /// cycles (uniform in `[-jitter, +jitter]`).
    pub timing_jitter: u32,
    /// Expected number of spurious L1i evictions per 1,000 cycles,
    /// modeling unrelated co-resident activity.
    pub evictions_per_kcycle: f64,
}

impl NoiseConfig {
    /// No noise at all (fully deterministic timing).
    pub fn quiet() -> NoiseConfig {
        NoiseConfig { timing_jitter: 0, evictions_per_kcycle: 0.0 }
    }

    /// Noise level representative of an otherwise-idle machine.
    pub fn realistic() -> NoiseConfig {
        NoiseConfig { timing_jitter: 4, evictions_per_kcycle: 0.002 }
    }

    /// A loaded machine: heavier jitter and more cache churn.
    pub fn noisy() -> NoiseConfig {
        NoiseConfig { timing_jitter: 12, evictions_per_kcycle: 0.02 }
    }
}

impl NoiseConfig {
    /// A stable digest of the configuration, used alongside
    /// [`crate::UarchProfile::fingerprint`] to key machine pools and
    /// calibration caches (the struct holds an `f64`, so it cannot
    /// implement `Eq`/`Hash` directly). Computed with
    /// [`StableHasher`] so the digest — and therefore every
    /// `SMACK_CALIB_DIR` cache key derived from it — survives toolchain
    /// upgrades; the `fingerprint_compat` test locks the exact values.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = StableHasher::new();
        self.timing_jitter.hash(&mut h);
        self.evictions_per_kcycle.to_bits().hash(&mut h);
        h.finish()
    }
}

impl Default for NoiseConfig {
    fn default() -> NoiseConfig {
        NoiseConfig::quiet()
    }
}

/// The eviction rate as an exact rational: `num / den` evictions per cycle.
///
/// A finite positive `f64` is `m · 2^e` for a 53-bit mantissa `m`, so the
/// per-kcycle rate converts exactly to `m · 2^e / 1000` per cycle. Shift
/// clamps (applied only to absurd magnitudes far outside any physical
/// eviction rate) keep every intermediate product inside `u128`.
fn rate_ratio(evictions_per_kcycle: f64) -> Option<(u128, u128)> {
    if !(evictions_per_kcycle.is_finite() && evictions_per_kcycle > 0.0) {
        return None;
    }
    let bits = evictions_per_kcycle.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (m, e) = if biased == 0 { (frac, -1074i64) } else { (frac | (1 << 52), biased - 1075) };
    if m == 0 {
        return None;
    }
    let mut num = u128::from(m);
    let mut den = 1000u128;
    if e >= 0 {
        num <<= e.min(10) as u32;
    } else {
        den <<= (-e).min(96) as u32;
    }
    Some((num, den))
}

/// Stateful noise source: seeded RNG plus the configuration.
///
/// The eviction schedule is kept as a *fully reduced remainder*: `acc`
/// always equals `C·num − E·den` where `C` is the cumulative cycles fed in
/// and `E = ⌊C·num/den⌋` the evictions emitted, with `0 ≤ acc < den`.
/// The steady-state [`NoiseSource::evictions_for`] call is then one `u128`
/// multiply, one compare and one subtraction — no division — because the
/// cached `until_next` distance tells it up front that no eviction can
/// fire; divisions happen only when an eviction actually does (or at
/// (re)configuration), which at realistic rates is once per tens of
/// thousands of simulated cycles.
#[derive(Clone, Debug)]
pub struct NoiseSource {
    cfg: NoiseConfig,
    rng: SmallRng,
    /// Eviction rate as an exact rational (`None` when the rate is zero).
    rate: Option<(u128, u128)>,
    /// Reduced schedule remainder; invariant `0 ≤ acc < den`.
    acc: u128,
    /// Cycles that may still elapse before the next eviction fires (a
    /// lower bound clamped to `u64::MAX`; exact whenever it fits).
    until_next: u64,
}

/// `ceil((den − acc) / num)` clamped to `u64` — the exact distance to the
/// next schedule crossing.
fn distance_to_next(num: u128, den: u128, acc: u128) -> u64 {
    (den - acc).div_ceil(num).min(u128::from(u64::MAX)) as u64
}

impl NoiseSource {
    /// Create a noise source from a config and seed.
    pub fn new(cfg: NoiseConfig, seed: u64) -> NoiseSource {
        let rate = rate_ratio(cfg.evictions_per_kcycle);
        NoiseSource {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            rate,
            acc: 0,
            until_next: rate.map_or(u64::MAX, |(num, den)| distance_to_next(num, den, 0)),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> NoiseConfig {
        self.cfg
    }

    /// Replace the configuration (keeps RNG state). A change to the
    /// eviction *rate* restarts the eviction schedule from zero; setting a
    /// config with the same rate keeps accumulated schedule progress, so
    /// re-applying the current config is a no-op (experiments set noise
    /// once at setup, where both behaviors coincide).
    pub fn set_config(&mut self, cfg: NoiseConfig) {
        if cfg.evictions_per_kcycle.to_bits() != self.cfg.evictions_per_kcycle.to_bits() {
            self.rate = rate_ratio(cfg.evictions_per_kcycle);
            self.acc = 0;
            self.until_next =
                self.rate.map_or(u64::MAX, |(num, den)| distance_to_next(num, den, 0));
        }
        self.cfg = cfg;
    }

    /// Jitter to add to a timed operation (cycles, may be negative).
    #[inline]
    pub fn jitter(&mut self) -> i64 {
        if self.cfg.timing_jitter == 0 {
            return 0;
        }
        let j = self.cfg.timing_jitter as i64;
        self.rng.gen_range(-j..=j)
    }

    /// Advance noise time by `cycles`; returns how many spurious L1i
    /// evictions should be injected for that interval.
    ///
    /// Exactly burst-size-invariant: for any split `cycles = a + b`,
    /// `evictions_for(a) + evictions_for(b) == evictions_for(a + b)`, with
    /// identical internal state afterwards — see the struct docs.
    #[inline]
    pub fn evictions_for(&mut self, cycles: u64) -> u32 {
        let Some((num, den)) = self.rate else {
            return 0;
        };
        if cycles < self.until_next {
            // No crossing: `acc + cycles·num < den` by definition of
            // `until_next`, so the remainder stays reduced without any
            // division. This is the per-retire hot path.
            self.until_next -= cycles;
            self.acc += u128::from(cycles) * num;
            return 0;
        }
        self.acc += u128::from(cycles) * num;
        // At least one eviction (unless `until_next` was clamped): reduce
        // the remainder. Small quotients — the overwhelmingly common case —
        // reduce by repeated subtraction; only pathological jumps divide.
        let mut fresh: u64 = 0;
        if self.acc < den << 4 {
            while self.acc >= den {
                self.acc -= den;
                fresh += 1;
            }
        } else {
            let q = self.acc / den;
            self.acc -= q * den;
            fresh = q.min(u128::from(u64::MAX)) as u64;
        }
        self.until_next = distance_to_next(num, den, self.acc);
        fresh.min(u64::from(u32::MAX)) as u32
    }

    /// Cycles that can still elapse before the *next* scheduled eviction
    /// fires: feeding strictly fewer than this many cycles through
    /// [`NoiseSource::evictions_for`] emits no eviction; feeding this many
    /// (or more) emits at least one. Returns `u64::MAX` when the eviction
    /// rate is zero (or the true distance exceeds `u64`). One field read —
    /// the superblock scheduler consults this before every batched block.
    #[inline]
    pub fn cycles_to_next_eviction(&self) -> u64 {
        if self.rate.is_none() {
            return u64::MAX;
        }
        self.until_next
    }

    /// A uniformly random L1i set index for eviction injection.
    pub fn random_set(&mut self, sets: usize) -> usize {
        self.rng.gen_range(0..sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_is_silent() {
        let mut n = NoiseSource::new(NoiseConfig::quiet(), 1);
        for _ in 0..100 {
            assert_eq!(n.jitter(), 0);
        }
        assert_eq!(n.evictions_for(1_000_000), 0);
        assert_eq!(n.cycles_to_next_eviction(), u64::MAX);
    }

    #[test]
    fn jitter_is_bounded() {
        let mut n =
            NoiseSource::new(NoiseConfig { timing_jitter: 5, evictions_per_kcycle: 0.0 }, 7);
        for _ in 0..1000 {
            let j = n.jitter();
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn eviction_rate_accumulates() {
        let mut n =
            NoiseSource::new(NoiseConfig { timing_jitter: 0, evictions_per_kcycle: 1.0 }, 3);
        // 10k cycles at 1 eviction per kcycle = exactly 10.
        assert_eq!(n.evictions_for(10_000), 10);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = NoiseConfig { timing_jitter: 8, evictions_per_kcycle: 0.0 };
        let mut a = NoiseSource::new(cfg, 42);
        let mut b = NoiseSource::new(cfg, 42);
        for _ in 0..64 {
            assert_eq!(a.jitter(), b.jitter());
        }
    }

    /// The schedule is a pure function of cumulative cycles: slicing time
    /// into per-cycle steps, odd chunks, or one giant interval must emit
    /// the same eviction count at every common boundary.
    #[test]
    fn evictions_are_partition_invariant() {
        let rates = [0.002, 0.02, 0.37, 1.0, 5.0, 123.456];
        let partitions: &[&[u64]] = &[
            &[1; 64],
            &[7, 1, 19, 3, 3, 64, 1, 1, 500, 2],
            &[601],
            &[100, 100, 100, 100, 100, 100, 1],
        ];
        for rate in rates {
            let cfg = NoiseConfig { timing_jitter: 0, evictions_per_kcycle: rate };
            // Per-cycle oracle: cumulative evictions after every cycle.
            let mut oracle = NoiseSource::new(cfg, 9);
            let mut cumulative_at = vec![0u64; 2048];
            let mut cum = 0u64;
            for (c, slot) in cumulative_at.iter_mut().enumerate() {
                cum += u64::from(oracle.evictions_for(1));
                *slot = cum;
                let _ = c;
            }
            for chunks in partitions {
                let mut n = NoiseSource::new(cfg, 9);
                let (mut t, mut got) = (0usize, 0u64);
                for chunk in *chunks {
                    got += u64::from(n.evictions_for(*chunk));
                    t += *chunk as usize;
                    assert_eq!(
                        got,
                        cumulative_at[t - 1],
                        "rate {rate}: chunked schedule diverged at cycle {t}"
                    );
                }
                assert_eq!(n.cycles_to_next_eviction(), {
                    let mut probe = NoiseSource::new(cfg, 9);
                    probe.evictions_for(t as u64);
                    probe.cycles_to_next_eviction()
                });
            }
        }
    }

    /// `cycles_to_next_eviction` is the exact boundary: one cycle short
    /// emits nothing, the boundary itself emits at least one.
    #[test]
    fn next_eviction_boundary_is_exact() {
        for rate in [0.002, 0.02, 0.37, 1.0, 5.0] {
            let cfg = NoiseConfig { timing_jitter: 0, evictions_per_kcycle: rate };
            let mut n = NoiseSource::new(cfg, 4);
            // Advance into the middle of the schedule first.
            n.evictions_for(1234);
            for _ in 0..16 {
                let d = n.cycles_to_next_eviction();
                assert!(d > 0);
                assert_eq!(n.evictions_for(d - 1), 0, "rate {rate}: fired early");
                assert!(n.evictions_for(1) >= 1, "rate {rate}: boundary missed");
            }
        }
    }

    /// Locks the stable fingerprint digests (cache-key compatibility —
    /// see `profile::tests::fingerprint_compat`).
    #[test]
    fn fingerprint_compat() {
        assert_eq!(NoiseConfig::quiet().fingerprint(), 0x5467b0da1d106495);
        assert_eq!(NoiseConfig::realistic().fingerprint(), 0x625bba873b2e56a3);
        assert_eq!(NoiseConfig::noisy().fingerprint(), 0xfaa74459434e151f);
    }

    /// Config changes restart the schedule only when the rate changes.
    #[test]
    fn set_config_keeps_schedule_for_same_rate() {
        let cfg = NoiseConfig { timing_jitter: 0, evictions_per_kcycle: 0.37 };
        let mut a = NoiseSource::new(cfg, 11);
        let mut b = NoiseSource::new(cfg, 11);
        a.evictions_for(777);
        b.evictions_for(777);
        a.set_config(NoiseConfig { timing_jitter: 9, evictions_per_kcycle: 0.37 });
        assert_eq!(a.cycles_to_next_eviction(), b.cycles_to_next_eviction());
        a.set_config(NoiseConfig { timing_jitter: 9, evictions_per_kcycle: 5.0 });
        let mut fresh =
            NoiseSource::new(NoiseConfig { timing_jitter: 9, evictions_per_kcycle: 5.0 }, 0);
        assert_eq!(a.cycles_to_next_eviction(), fresh.cycles_to_next_eviction());
        assert_eq!(a.evictions_for(10_000), fresh.evictions_for(10_000));
    }
}
