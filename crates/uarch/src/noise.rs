//! Measurement noise: timing jitter and spurious cache evictions.
//!
//! Real measurements in the paper are noisy because of system activity,
//! interrupts and contention; the reproduction injects seeded, configurable
//! noise so that (a) experiments remain deterministic and (b) the *relative*
//! robustness of SMaCk vs. classic Prime+Probe emerges mechanistically: a
//! ±few-cycle jitter drowns Mastik's 1–2 cycle L1i/L2 margin but is
//! irrelevant against SMaCk's several-hundred-cycle machine-clear margin.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Noise model parameters.
#[derive(Copy, Clone, Debug)]
pub struct NoiseConfig {
    /// Maximum absolute timing jitter added to each timed operation, in
    /// cycles (uniform in `[-jitter, +jitter]`).
    pub timing_jitter: u32,
    /// Expected number of spurious L1i evictions per 1,000 cycles,
    /// modeling unrelated co-resident activity.
    pub evictions_per_kcycle: f64,
}

impl NoiseConfig {
    /// No noise at all (fully deterministic timing).
    pub fn quiet() -> NoiseConfig {
        NoiseConfig { timing_jitter: 0, evictions_per_kcycle: 0.0 }
    }

    /// Noise level representative of an otherwise-idle machine.
    pub fn realistic() -> NoiseConfig {
        NoiseConfig { timing_jitter: 4, evictions_per_kcycle: 0.002 }
    }

    /// A loaded machine: heavier jitter and more cache churn.
    pub fn noisy() -> NoiseConfig {
        NoiseConfig { timing_jitter: 12, evictions_per_kcycle: 0.02 }
    }
}

impl NoiseConfig {
    /// A process-stable digest of the configuration, used alongside
    /// [`crate::UarchProfile::fingerprint`] to key machine pools and
    /// calibration caches (the struct holds an `f64`, so it cannot
    /// implement `Eq`/`Hash` directly).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.timing_jitter.hash(&mut h);
        self.evictions_per_kcycle.to_bits().hash(&mut h);
        h.finish()
    }
}

impl Default for NoiseConfig {
    fn default() -> NoiseConfig {
        NoiseConfig::quiet()
    }
}

/// Stateful noise source: seeded RNG plus the configuration.
#[derive(Clone, Debug)]
pub struct NoiseSource {
    cfg: NoiseConfig,
    rng: SmallRng,
    eviction_accum: f64,
}

impl NoiseSource {
    /// Create a noise source from a config and seed.
    pub fn new(cfg: NoiseConfig, seed: u64) -> NoiseSource {
        NoiseSource { cfg, rng: SmallRng::seed_from_u64(seed), eviction_accum: 0.0 }
    }

    /// Current configuration.
    pub fn config(&self) -> NoiseConfig {
        self.cfg
    }

    /// Replace the configuration (keeps RNG state).
    pub fn set_config(&mut self, cfg: NoiseConfig) {
        self.cfg = cfg;
    }

    /// Jitter to add to a timed operation (cycles, may be negative).
    #[inline]
    pub fn jitter(&mut self) -> i64 {
        if self.cfg.timing_jitter == 0 {
            return 0;
        }
        let j = self.cfg.timing_jitter as i64;
        self.rng.gen_range(-j..=j)
    }

    /// Advance noise time by `cycles`; returns how many spurious L1i
    /// evictions should be injected for that interval.
    #[inline]
    pub fn evictions_for(&mut self, cycles: u64) -> u32 {
        if self.cfg.evictions_per_kcycle <= 0.0 {
            return 0;
        }
        self.eviction_accum += self.cfg.evictions_per_kcycle * (cycles as f64) / 1000.0;
        let mut n = 0;
        while self.eviction_accum >= 1.0 {
            self.eviction_accum -= 1.0;
            n += 1;
        }
        n
    }

    /// A uniformly random L1i set index for eviction injection.
    pub fn random_set(&mut self, sets: usize) -> usize {
        self.rng.gen_range(0..sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_is_silent() {
        let mut n = NoiseSource::new(NoiseConfig::quiet(), 1);
        for _ in 0..100 {
            assert_eq!(n.jitter(), 0);
        }
        assert_eq!(n.evictions_for(1_000_000), 0);
    }

    #[test]
    fn jitter_is_bounded() {
        let mut n =
            NoiseSource::new(NoiseConfig { timing_jitter: 5, evictions_per_kcycle: 0.0 }, 7);
        for _ in 0..1000 {
            let j = n.jitter();
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn eviction_rate_accumulates() {
        let mut n =
            NoiseSource::new(NoiseConfig { timing_jitter: 0, evictions_per_kcycle: 1.0 }, 3);
        // 10k cycles at 1 eviction per kcycle = exactly 10.
        assert_eq!(n.evictions_for(10_000), 10);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = NoiseConfig { timing_jitter: 8, evictions_per_kcycle: 0.0 };
        let mut a = NoiseSource::new(cfg, 42);
        let mut b = NoiseSource::new(cfg, 42);
        for _ in 0..64 {
            assert_eq!(a.jitter(), b.jitter());
        }
    }
}
