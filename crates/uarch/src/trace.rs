//! Optional event tracing for debugging, tests and the Figure-2 style
//! counter analysis.

use crate::addr::Addr;
use crate::engine::ThreadId;
use crate::profile::ProbeKind;

/// A microarchitectural event of interest.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// An SMC machine clear fired.
    MachineClear {
        /// Thread whose instruction caused the clear.
        tid: ThreadId,
        /// Probe class that triggered it.
        kind: ProbeKind,
        /// Conflicting line.
        line: Addr,
        /// Cycle (triggering thread's clock) at which it fired.
        at: u64,
    },
    /// A conditional branch mispredicted and its wrong path was squashed.
    BranchSquash {
        /// Thread that mispredicted.
        tid: ThreadId,
        /// Branch instruction address.
        pc: u64,
        /// Number of wrong-path instructions executed before the squash.
        wrong_path_instrs: u32,
        /// Cycle at which the squash completed.
        at: u64,
    },
    /// A thread halted.
    Halted {
        /// Thread that halted.
        tid: ThreadId,
        /// Clock at halt.
        at: u64,
    },
}

/// A bounded in-memory trace of [`Event`]s. Disabled by default; tracing
/// costs nothing when off.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<Event>,
    capacity: usize,
}

impl Tracer {
    /// A disabled tracer.
    pub fn new() -> Tracer {
        Tracer { enabled: false, events: Vec::new(), capacity: 1 << 16 }
    }

    /// Enable tracing with the given maximum event count.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
        self.events.clear();
    }

    /// Disable tracing and drop recorded events.
    pub fn disable(&mut self) {
        self.enabled = false;
        self.events.clear();
    }

    /// Whether tracing is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled or full).
    pub fn record(&mut self, e: Event) {
        if self.enabled && self.events.len() < self.capacity {
            self.events.push(e);
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Take the recorded events, leaving the tracer empty but enabled.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::new();
        t.record(Event::Halted { tid: ThreadId::T0, at: 1 });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_records_up_to_capacity() {
        let mut t = Tracer::new();
        t.enable(2);
        for i in 0..5 {
            t.record(Event::Halted { tid: ThreadId::T0, at: i });
        }
        assert_eq!(t.events().len(), 2);
        let taken = t.take();
        assert_eq!(taken.len(), 2);
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }
}
