//! # smack-uarch
//!
//! A cycle-approximate simulator of an x86 SMT physical core with the
//! microarchitectural machinery exploited by the SMaCk paper (ASPLOS 2025):
//!
//! * a split L1 (instruction/data) cache, unified L2 and LLC with an
//!   inclusive fill policy and coherence-style invalidations,
//! * a front-end model with a next-line instruction prefetcher and an
//!   in-flight fetch window,
//! * a **self-modifying-code (SMC) detection unit** that turns writes,
//!   flushes and prefetches aimed at resident instruction lines into
//!   *machine clears* that flush both SMT threads,
//! * a pattern-history-table branch predictor with bounded wrong-path
//!   speculative execution (cache fills survive squashes — the Spectre
//!   channel),
//! * Intel- and AMD-flavoured performance counters, and
//! * ten microarchitecture profiles calibrated from the paper's
//!   measurements (Figure 1, Figure 2, Table 3).
//!
//! The simulator executes a small x86-like ISA defined in [`isa`], assembled
//! with [`asm::Assembler`]. Two hardware threads share one physical core;
//! each owns a local cycle clock and the engine always advances the thread
//! that is furthest behind, so cross-thread cache and pipeline interactions
//! are observed in (approximate) causal order.
//!
//! ## Example
//!
//! ```
//! use smack_uarch::{Machine, MicroArch, ThreadId};
//! use smack_uarch::isa::{Instr, Reg};
//!
//! let mut m = Machine::new(MicroArch::CascadeLake.profile());
//! let t0 = ThreadId::T0;
//! let out = m
//!     .run_sequence(t0, &[Instr::MovImm { dst: Reg::R1, imm: 7 }])
//!     .expect("sequence runs");
//! assert!(out.cycles > 0);
//! assert_eq!(m.reg(t0, Reg::R1), 7);
//! ```

pub mod addr;
pub mod asm;
pub mod bpu;
pub mod cache;
pub mod counters;
pub mod decoded;
pub mod engine;
pub mod hierarchy;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod noise;
pub mod pool;
pub mod profile;
pub mod stablehash;
pub mod tlb;
pub mod trace;

pub use addr::{Addr, LINE_SIZE, PAGE_SIZE};
pub use counters::{CounterBank, CounterSnapshot, PerfEvent};
pub use decoded::{DecodedInstr, DecodedProgram};
pub use engine::{CompiledProbe, SeqOutcome, StepError, ThreadId, ThreadState};
pub use hierarchy::{Level, Residency};
pub use machine::{Machine, Placement};
pub use noise::NoiseConfig;
pub use pool::{MachinePool, PoolStats, PooledMachine};
pub use profile::{MicroArch, ProbeKind, SmcBehavior, UarchProfile, Vendor};
