//! The simulated instruction set.
//!
//! A compact x86-like ISA: 16 general-purpose 64-bit registers, a two-flag
//! condition state written by `cmp`, direct and indirect calls with an
//! engine-managed shadow stack, and the nine "probe" instruction classes
//! from SMaCk Listing 2 (`mov` load, `clflush`, `clflushopt`, `movb` store,
//! `lock incb`, `prefetcht0`, `prefetchnta`, `call`, `clwb`).
//!
//! Every instruction has a byte length so that code occupies cache lines the
//! way real x86 code does; the front-end fetches at line granularity.

use std::fmt;

/// A general-purpose register, `R0` through `R15`.
///
/// ```
/// use smack_uarch::isa::Reg;
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(Reg::from_index(3), Reg::R3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);

    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Register for index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn from_index(i: usize) -> Reg {
        assert!(i < Self::COUNT, "register index {i} out of range");
        Reg(i as u8)
    }

    /// Index of this register in the register file (0..16). The mask is a
    /// no-op for valid registers (construction enforces `< 16`) but lets
    /// the optimizer drop the bounds check on every register-file access
    /// in the engine's hot loop.
    pub fn index(self) -> usize {
        (self.0 & 0xf) as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A `base + displacement` memory operand, as in `mov (%rdi), %rax` or
/// `clflush 8(%rsi)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Base register holding the address.
    pub base: Reg,
    /// Signed byte displacement added to the base.
    pub disp: i64,
}

impl MemRef {
    /// Memory operand `(%base)`.
    pub fn base(base: Reg) -> MemRef {
        MemRef { base, disp: 0 }
    }

    /// Memory operand `disp(%base)`.
    pub fn disp(base: Reg, disp: i64) -> MemRef {
        MemRef { base, disp }
    }
}

/// Operand size for loads and stores.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemSize {
    /// One byte (`movb`).
    Byte,
    /// Eight bytes (`movq`).
    Quad,
}

/// Branch condition, evaluated against the flags written by the most recent
/// `cmp`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal (`je`).
    Eq,
    /// Not equal (`jne`).
    Ne,
    /// Unsigned below (`jb`).
    Lt,
    /// Unsigned above or equal (`jae`).
    Ge,
    /// Unsigned below or equal (`jbe`).
    Le,
    /// Unsigned above (`ja`).
    Gt,
}

/// Comparison flags produced by `cmp a, b` (computed as `a ? b`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Flags {
    /// `a == b`.
    pub eq: bool,
    /// `a < b` (unsigned).
    pub lt: bool,
}

impl Flags {
    /// Compute flags for `cmp a, b`.
    pub fn compare(a: u64, b: u64) -> Flags {
        Flags { eq: a == b, lt: a < b }
    }

    /// Evaluate a branch condition against these flags.
    #[inline]
    pub fn eval(self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.eq,
            Cond::Ne => !self.eq,
            Cond::Lt => self.lt,
            Cond::Ge => !self.lt,
            Cond::Le => self.lt || self.eq,
            Cond::Gt => !self.lt && !self.eq,
        }
    }
}

/// One simulated instruction.
///
/// Control-flow targets are absolute virtual addresses; use
/// [`crate::asm::Assembler`] to write code with labels.
///
/// `Instr` is `Copy` (every operand is a small scalar), so moving a decoded
/// instruction into the execution loop costs a register-sized memcpy — the
/// hot step path never clones or allocates.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `nop`.
    Nop,
    /// Stop the thread. Models falling off the end of a workload.
    Halt,
    /// `mov $imm, %dst`.
    MovImm { dst: Reg, imm: u64 },
    /// `mov %src, %dst`.
    Mov { dst: Reg, src: Reg },
    /// Load from memory: `mov (mem), %dst`.
    Load { dst: Reg, mem: MemRef, size: MemSize },
    /// Store to memory: `mov %src, (mem)`.
    Store { src: Reg, mem: MemRef, size: MemSize },
    /// Store an immediate byte: `movb $imm, (mem)` — the SMC store primitive.
    StoreImm { mem: MemRef, imm: u8 },
    /// `add %src, %dst`.
    Add { dst: Reg, src: Reg },
    /// `add $imm, %dst` (also used as `sub` with negative `imm`).
    AddImm { dst: Reg, imm: i64 },
    /// `sub %src, %dst`.
    Sub { dst: Reg, src: Reg },
    /// `imul %src, %dst`.
    Mul { dst: Reg, src: Reg },
    /// `and %src, %dst`.
    And { dst: Reg, src: Reg },
    /// `or %src, %dst`.
    Or { dst: Reg, src: Reg },
    /// `xor %src, %dst`.
    Xor { dst: Reg, src: Reg },
    /// `shl $amount, %dst`.
    ShlImm { dst: Reg, amount: u8 },
    /// `shr $amount, %dst`.
    ShrImm { dst: Reg, amount: u8 },
    /// `cmp %b, %a` — writes flags.
    Cmp { a: Reg, b: Reg },
    /// `cmp $imm, %a` — writes flags.
    CmpImm { a: Reg, imm: u64 },
    /// `jmp target`.
    Jmp { target: u64 },
    /// Conditional jump to `target`.
    Jcc { cond: Cond, target: u64 },
    /// `call target` (direct).
    Call { target: u64 },
    /// `call *%target` (indirect through a register) — the ISpectre gadget.
    CallReg { target: Reg },
    /// `ret`.
    Ret,
    /// `rdtsc`, result into `dst` (combines the edx:eax shuffle).
    Rdtsc { dst: Reg },
    /// `mfence` — waits for all outstanding loads/stores.
    Mfence,
    /// `lfence`.
    Lfence,
    /// `clflush (mem)`.
    Clflush { mem: MemRef },
    /// `clflushopt (mem)`.
    Clflushopt { mem: MemRef },
    /// `clwb (mem)`.
    Clwb { mem: MemRef },
    /// `prefetcht0 (mem)`.
    PrefetchT0 { mem: MemRef },
    /// `prefetchnta (mem)`.
    PrefetchNta { mem: MemRef },
    /// `lock incb (mem)` — the atomic SMC primitive.
    LockInc { mem: MemRef },
    /// Pseudo-instruction: advance this thread's clock by `cycles` without
    /// touching architectural state. Used to model long computations
    /// (e.g. a bignum limb multiplication loop) without simulating every
    /// ALU micro-op; see DESIGN.md §1.
    Delay { cycles: u32 },
}

impl Instr {
    /// Encoded length in bytes. Lengths are x86-plausible so that code
    /// occupies cache lines realistically (63 × `nop` + `ret` is exactly one
    /// 64-byte line, as in SMaCk Listing 1).
    #[allow(clippy::len_without_is_empty)] // an instruction is never empty
    pub fn len(&self) -> u64 {
        match self {
            Instr::Nop | Instr::Halt | Instr::Ret => 1,
            Instr::Mov { .. }
            | Instr::Add { .. }
            | Instr::Sub { .. }
            | Instr::And { .. }
            | Instr::Or { .. }
            | Instr::Xor { .. }
            | Instr::Cmp { .. }
            | Instr::CallReg { .. }
            | Instr::Rdtsc { .. }
            | Instr::Mfence
            | Instr::Lfence => 3,
            Instr::Mul { .. }
            | Instr::ShlImm { .. }
            | Instr::ShrImm { .. }
            | Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::Clflush { .. }
            | Instr::Clflushopt { .. }
            | Instr::Clwb { .. }
            | Instr::PrefetchT0 { .. }
            | Instr::PrefetchNta { .. }
            | Instr::LockInc { .. }
            | Instr::Delay { .. } => 4,
            Instr::AddImm { .. }
            | Instr::CmpImm { .. }
            | Instr::Jmp { .. }
            | Instr::Call { .. } => 5,
            Instr::Jcc { .. } => 6,
            Instr::MovImm { .. } | Instr::StoreImm { .. } => 7,
        }
    }

    /// Whether this instruction is one of the nine probe classes of SMaCk
    /// Listing 2 (i.e. may interact with the SMC detection unit).
    pub fn probe_kind(&self) -> Option<crate::profile::ProbeKind> {
        use crate::profile::ProbeKind as P;
        match self {
            Instr::Load { .. } => Some(P::Load),
            Instr::Clflush { .. } => Some(P::Flush),
            Instr::Clflushopt { .. } => Some(P::FlushOpt),
            Instr::Store { .. } | Instr::StoreImm { .. } => Some(P::Store),
            Instr::LockInc { .. } => Some(P::Lock),
            Instr::PrefetchT0 { .. } => Some(P::Prefetch),
            Instr::PrefetchNta { .. } => Some(P::PrefetchNta),
            Instr::Clwb { .. } => Some(P::Clwb),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_line_fill_matches_listing_1() {
        // 63 nops + ret = 64 bytes = exactly one cache line.
        let total: u64 = (0..63).map(|_| Instr::Nop.len()).sum::<u64>() + Instr::Ret.len();
        assert_eq!(total, crate::LINE_SIZE);
    }

    #[test]
    fn flags_conditions() {
        let f = Flags::compare(3, 5);
        assert!(f.eval(Cond::Lt));
        assert!(f.eval(Cond::Le));
        assert!(f.eval(Cond::Ne));
        assert!(!f.eval(Cond::Eq));
        assert!(!f.eval(Cond::Ge));
        assert!(!f.eval(Cond::Gt));

        let f = Flags::compare(5, 5);
        assert!(f.eval(Cond::Eq));
        assert!(f.eval(Cond::Le));
        assert!(f.eval(Cond::Ge));
        assert!(!f.eval(Cond::Lt));
        assert!(!f.eval(Cond::Gt));

        let f = Flags::compare(9, 5);
        assert!(f.eval(Cond::Gt));
        assert!(f.eval(Cond::Ge));
        assert!(f.eval(Cond::Ne));
    }

    #[test]
    fn probe_kinds_cover_listing_2() {
        use crate::profile::ProbeKind;
        let m = MemRef::base(Reg::R1);
        assert_eq!(
            Instr::Load { dst: Reg::R0, mem: m, size: MemSize::Quad }.probe_kind(),
            Some(ProbeKind::Load)
        );
        assert_eq!(Instr::Clflush { mem: m }.probe_kind(), Some(ProbeKind::Flush));
        assert_eq!(Instr::Clflushopt { mem: m }.probe_kind(), Some(ProbeKind::FlushOpt));
        assert_eq!(Instr::StoreImm { mem: m, imm: 0x90 }.probe_kind(), Some(ProbeKind::Store));
        assert_eq!(Instr::LockInc { mem: m }.probe_kind(), Some(ProbeKind::Lock));
        assert_eq!(Instr::PrefetchT0 { mem: m }.probe_kind(), Some(ProbeKind::Prefetch));
        assert_eq!(Instr::PrefetchNta { mem: m }.probe_kind(), Some(ProbeKind::PrefetchNta));
        assert_eq!(Instr::Clwb { mem: m }.probe_kind(), Some(ProbeKind::Clwb));
        assert_eq!(Instr::Nop.probe_kind(), None);
    }

    #[test]
    fn from_index_round_trips() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }
}
