//! Virtual addresses and the line/page arithmetic used throughout the
//! simulator.

use std::fmt;

/// Cache line size in bytes. All modeled microarchitectures use 64-byte
/// lines, like every x86 part the paper evaluates.
pub const LINE_SIZE: u64 = 64;

/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// A 64-bit virtual address.
///
/// The simulator does not model paging beyond the TLB, so virtual addresses
/// double as physical addresses for cache indexing, exactly as an attacker
/// sees the virtually-indexed L1 caches.
///
/// ```
/// use smack_uarch::Addr;
/// let a = Addr(0x1234);
/// assert_eq!(a.line(), Addr(0x1200));
/// assert_eq!(a.line_offset(), 0x34);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Address of the cache line containing `self`.
    pub fn line(self) -> Addr {
        Addr(self.0 & !(LINE_SIZE - 1))
    }

    /// Byte offset within the cache line.
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_SIZE - 1)
    }

    /// Address of the page containing `self`.
    pub fn page(self) -> Addr {
        Addr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Cache set index for a cache with `sets` sets (power of two).
    pub fn set_index(self, sets: usize) -> usize {
        ((self.0 / LINE_SIZE) as usize) & (sets - 1)
    }

    /// The address `bytes` further on.
    pub fn offset(self, bytes: i64) -> Addr {
        Addr(self.0.wrapping_add(bytes as u64))
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Addr {
        Addr(v)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounds_down() {
        assert_eq!(Addr(0).line(), Addr(0));
        assert_eq!(Addr(63).line(), Addr(0));
        assert_eq!(Addr(64).line(), Addr(64));
        assert_eq!(Addr(0xffff).line(), Addr(0xffc0));
    }

    #[test]
    fn page_rounds_down() {
        assert_eq!(Addr(0x1fff).page(), Addr(0x1000));
        assert_eq!(Addr(0x2000).page(), Addr(0x2000));
    }

    #[test]
    fn set_index_uses_line_bits() {
        // 64 sets -> bits [6, 12) select the set.
        assert_eq!(Addr(0).set_index(64), 0);
        assert_eq!(Addr(64).set_index(64), 1);
        assert_eq!(Addr(64 * 63).set_index(64), 63);
        assert_eq!(Addr(64 * 64).set_index(64), 0);
        // Same set, different tag: 4 KiB apart with 64 sets.
        assert_eq!(Addr(0x1000).set_index(64), Addr(0x2000).set_index(64));
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(Addr(100).offset(-36), Addr(64));
        assert_eq!(Addr(0).offset(64), Addr(64));
    }
}
