//! [`Machine`]: the public facade over the engine.
//!
//! A `Machine` is one simulated physical core with two SMT threads plus
//! memory. Victims run as loaded programs; attackers are usually Rust code
//! injecting straight-line instruction sequences ([`Machine::run_sequence`])
//! or calling into simulated code ([`Machine::call`]). The machine keeps the
//! two threads' clocks aligned by stepping whichever runnable thread is
//! behind, so machine clears, cache evictions and stalls land on the sibling
//! at (approximately) the right time.

use crate::addr::Addr;
use crate::asm::Program;
use crate::counters::CounterBank;
use crate::engine::{
    CompiledProbe, Engine, InjectedNext, SeqOutcome, StepError, ThreadId, ThreadState,
};
use crate::hierarchy::Residency;
use crate::isa::{Instr, Reg};
use crate::noise::NoiseConfig;
use crate::profile::UarchProfile;
use crate::trace::Event;

/// Where to place a line for experiment setup (paper §4.1 prepares the
/// oracle line in each of five microarchitectural states).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Placement {
    /// In the L1 instruction cache (and, inclusively, L2 + LLC).
    L1i,
    /// In the L1 data cache (and L2 + LLC).
    L1d,
    /// In L2 (and LLC) but in neither L1.
    L2,
    /// Only in the LLC.
    Llc,
    /// Not cached anywhere.
    DramOnly,
}

impl Placement {
    /// The five paper states in presentation order.
    pub const ALL: [Placement; 5] =
        [Placement::L1i, Placement::L1d, Placement::L2, Placement::Llc, Placement::DramOnly];

    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Placement::L1i => "L1i",
            Placement::L1d => "L1d",
            Placement::L2 => "L2",
            Placement::Llc => "LLC",
            Placement::DramOnly => "DRAM",
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One simulated SMT physical core plus memory. See the
/// [module documentation](self).
#[derive(Debug)]
pub struct Machine {
    engine: Engine,
    /// Steps handed to the engine per [`Engine::run_burst`] call. Purely a
    /// scheduling granularity: output is bit-identical for every value
    /// (the burst loop makes the same per-instruction causal decision the
    /// machine used to make), so this only trades boundary crossings
    /// against step-budget check frequency.
    burst: u64,
}

/// Default per-run instruction budget: generous, but bounded so that buggy
/// victims fail loudly instead of hanging the harness.
const DEFAULT_STEP_BUDGET: u64 = 500_000_000;

/// Default engine burst size: `SMACK_BURST` when set to a positive integer
/// (the CI determinism gate runs the repro at 1 vs the default and diffs
/// CSVs), 4096 otherwise.
fn default_burst() -> u64 {
    static BURST: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *BURST.get_or_init(|| {
        std::env::var("SMACK_BURST")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|n| *n > 0)
            .unwrap_or(4096)
    })
}

impl Machine {
    /// Create a machine with quiet (deterministic) noise.
    pub fn new(profile: UarchProfile) -> Machine {
        Machine::with_noise(profile, NoiseConfig::quiet(), 0x5eed)
    }

    /// Create a machine with an explicit noise model and seed.
    pub fn with_noise(profile: UarchProfile, noise: NoiseConfig, seed: u64) -> Machine {
        Machine { engine: Engine::new(profile, noise, seed), burst: default_burst() }
    }

    /// Override the engine burst size for this machine (default: the
    /// `SMACK_BURST` environment variable, else 4096). Any positive value
    /// produces bit-identical output; see the `burst` field notes.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn set_burst_steps(&mut self, steps: u64) {
        assert!(steps > 0, "burst size must be positive");
        self.burst = steps;
    }

    /// The current engine burst size.
    pub fn burst_steps(&self) -> u64 {
        self.burst
    }

    /// Switch between the decoded fast path (default) and the original
    /// map-lookup reference interpreter — see
    /// [`Engine::set_decoded_fast_path`]. Reset restores the default.
    pub fn set_decoded_fast_path(&mut self, on: bool) {
        self.engine.set_decoded_fast_path(on);
    }

    /// Whether the decoded fast path is active.
    pub fn decoded_fast_path(&self) -> bool {
        self.engine.decoded_fast_path()
    }

    /// Enable or disable superblock execution (batched retirement of fused
    /// straight-line runs; requires the decoded fast path) — see
    /// [`Engine::set_superblocks`]. The default comes from the
    /// `SMACK_SUPERBLOCK` environment variable (`0` = off, anything else =
    /// on, unset = on), mirroring `SMACK_BURST`; output is bit-identical
    /// either way, so the toggle exists for the CI determinism gate and
    /// for benchmarking the per-step path. Reset restores the default.
    pub fn set_superblocks(&mut self, on: bool) {
        self.engine.set_superblocks(on);
    }

    /// Whether superblock execution is active.
    pub fn superblocks(&self) -> bool {
        self.engine.superblocks()
    }

    /// Enable or disable the fused probe tier (one-pass retirement of
    /// compiled `mfence; rdtsc; <op>; mfence; rdtsc` probe sequences and
    /// batched idle advances) — see [`Engine::set_fused_probes`]. The
    /// default comes from the `SMACK_FUSED_PROBES` environment variable
    /// (`0` = off, anything else = on, unset = on), mirroring
    /// `SMACK_SUPERBLOCK`; output is bit-identical either way, so the
    /// toggle exists for the CI determinism gate and for benchmarking the
    /// per-step probe path. Reset restores the default.
    pub fn set_fused_probes(&mut self, on: bool) {
        self.engine.set_fused_probes(on);
    }

    /// Whether the fused probe tier is active.
    pub fn fused_probes(&self) -> bool {
        self.engine.fused_probes()
    }

    /// The microarchitecture profile.
    pub fn profile(&self) -> &UarchProfile {
        self.engine.profile()
    }

    /// Restore this machine to the cold power-on state — cold caches, TLBs
    /// and branch predictor, reset counters and clocks, no loaded code,
    /// zeroed memory — and reseed the noise source, reusing the existing
    /// allocations instead of rebuilding the hierarchy. A reset machine is
    /// behaviorally indistinguishable from
    /// `Machine::with_noise(profile, noise, seed)`: for the same seed and
    /// workload it produces bit-identical timings, traces and reports.
    pub fn reset(&mut self, noise: NoiseConfig, seed: u64) {
        self.engine.reset(noise, seed);
    }

    /// Replace the noise configuration (keeps the RNG stream).
    pub fn set_noise(&mut self, cfg: NoiseConfig) {
        self.engine.noise_mut().set_config(cfg);
    }

    // ---- code & memory -----------------------------------------------------

    /// Load (merge) a program into the core's address space.
    pub fn load_program(&mut self, prog: &Program) {
        self.engine.load(prog);
    }

    /// Apply a self-modifying write-back: overwrite already-loaded
    /// instructions with `prog`'s, re-decoding the rewritten entries into
    /// the decoded side table in place (see [`Engine::patch_code`]). Use
    /// this instead of [`Machine::load_program`] when the new code
    /// *replaces* instructions at addresses that are already mapped.
    pub fn patch_program(&mut self, prog: &Program) {
        self.engine.patch_code(prog);
    }

    /// Write bytes to simulated memory (no timing effects).
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        self.engine.mem_mut().write_bytes(addr, bytes);
    }

    /// Read bytes from simulated memory (no timing effects).
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Vec<u8> {
        self.engine.mem().read_bytes(addr, len)
    }

    /// Write a u64 to simulated memory (no timing effects).
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.engine.mem_mut().write_u64(addr, v);
    }

    /// Read a u64 from simulated memory (no timing effects).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.engine.mem().read_u64(addr)
    }

    /// Write a byte to simulated memory (no timing effects).
    pub fn write_u8(&mut self, addr: Addr, v: u8) {
        self.engine.mem_mut().write_u8(addr, v);
    }

    /// Read a byte from simulated memory (no timing effects).
    pub fn read_u8(&self, addr: Addr) -> u8 {
        self.engine.mem().read_u8(addr)
    }

    // ---- cache state -------------------------------------------------------

    /// Which caches hold the line containing `addr` right now.
    pub fn residency(&self, addr: Addr) -> Residency {
        self.engine.hierarchy().residency(addr)
    }

    /// Place the line containing `addr` in an exact microarchitectural
    /// state (experiment setup; no timing effects).
    pub fn place_line(&mut self, addr: Addr, placement: Placement) {
        let r = match placement {
            Placement::L1i => Residency { l1i: true, l1d: false, l2: true, llc: true },
            Placement::L1d => Residency { l1i: false, l1d: true, l2: true, llc: true },
            Placement::L2 => Residency { l1i: false, l1d: false, l2: true, llc: true },
            Placement::Llc => Residency { l1i: false, l1d: false, l2: false, llc: true },
            Placement::DramOnly => Residency::default(),
        };
        self.engine.hierarchy_mut().place(addr, r);
    }

    /// Evict the line containing `addr` from every cache level
    /// (no timing effects — use a `clflush` sequence for the timed version).
    pub fn flush_line(&mut self, addr: Addr) {
        self.engine.hierarchy_mut().evict_everywhere(addr);
    }

    /// Warm the instruction and data TLBs for the page containing `addr`
    /// (no timing effects), as the oracle preparation in Listing 1 does.
    pub fn warm_tlb(&mut self, tid: ThreadId, addr: Addr) {
        self.engine.warm_tlb(tid, addr);
    }

    /// L1i set index of `addr` for this machine's geometry.
    pub fn l1i_set(&self, addr: Addr) -> usize {
        addr.set_index(self.engine.profile().hierarchy.l1i.sets)
    }

    /// Number of L1i sets.
    pub fn l1i_sets(&self) -> usize {
        self.engine.profile().hierarchy.l1i.sets
    }

    /// Number of L1i ways.
    pub fn l1i_ways(&self) -> usize {
        self.engine.profile().hierarchy.l1i.ways
    }

    // ---- threads -------------------------------------------------------------

    /// Thread state.
    pub fn state(&self, tid: ThreadId) -> ThreadState {
        self.engine.state(tid)
    }

    /// Thread-local cycle clock.
    pub fn clock(&self, tid: ThreadId) -> u64 {
        self.engine.clock(tid)
    }

    /// Read a register.
    pub fn reg(&self, tid: ThreadId, r: Reg) -> u64 {
        self.engine.reg(tid, r)
    }

    /// Write a register.
    pub fn set_reg(&mut self, tid: ThreadId, r: Reg, v: u64) {
        self.engine.set_reg(tid, r, v);
    }

    /// Per-thread performance counters.
    pub fn counters(&self, tid: ThreadId) -> &CounterBank {
        self.engine.counters(tid)
    }

    /// Core-wide counters (both threads summed) — what a system-wide
    /// detection agent samples.
    pub fn counters_total(&self) -> CounterBank {
        self.engine.counters_total()
    }

    /// Reset all performance counters.
    pub fn reset_counters(&mut self) {
        self.engine.reset_counters();
    }

    /// Enable event tracing with a capacity bound.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.engine.tracer_mut().enable(capacity);
    }

    /// Take recorded trace events.
    pub fn take_trace(&mut self) -> Vec<Event> {
        self.engine.tracer_mut().take()
    }

    /// Start (or stop) recording the line address of every instruction
    /// fetch — architectural and speculative wrong-path alike. Enabling
    /// clears any previously recorded log.
    pub fn set_fetch_log(&mut self, on: bool) {
        self.engine.set_fetch_log(on);
    }

    /// Take the recorded fetch-line log (empty when recording is off).
    pub fn take_fetch_log(&mut self) -> Vec<u64> {
        self.engine.take_fetch_log()
    }

    /// Park a thread back to idle (stop a victim).
    pub fn park(&mut self, tid: ThreadId) {
        self.engine.park(tid);
    }

    // ---- running code --------------------------------------------------------

    /// Start a program on `tid` without driving it; it advances whenever the
    /// sibling thread performs timed work, like a real co-resident victim.
    pub fn start_program(&mut self, tid: ThreadId, entry: u64, args: &[u64]) {
        self.engine.start_program(tid, entry, args);
    }

    /// Run `tid`'s program to completion (`halt` or final `ret`),
    /// interleaving the sibling.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread, including
    /// [`StepError::StepLimit`] after `max_steps` instructions.
    pub fn run_until_halt(&mut self, tid: ThreadId, max_steps: u64) -> Result<u64, StepError> {
        let start = self.engine.clock(tid);
        let mut steps = 0u64;
        while self.engine.state(tid) == ThreadState::Running {
            if steps >= max_steps {
                return Err(StepError::StepLimit);
            }
            let burst = self.burst.min(max_steps - steps);
            steps += self.engine.run_burst(tid, burst)?;
        }
        Ok(self.engine.clock(tid) - start)
    }

    /// Run up to `max_steps` causally-ordered program steps of `tid` (and
    /// its sibling, when the sibling is behind) as one engine burst — the
    /// low-level entry for drivers that meter progress themselves. Returns
    /// the number of steps executed; see [`Engine::run_burst`].
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn run_burst(&mut self, tid: ThreadId, max_steps: u64) -> Result<u64, StepError> {
        self.engine.run_burst(tid, max_steps)
    }

    /// Call a simulated function on an idle thread: arguments in `R1..`,
    /// runs until the callee returns. Returns cycles spent.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn call(&mut self, tid: ThreadId, target: u64, args: &[u64]) -> Result<u64, StepError> {
        assert!(args.len() <= 5, "at most five register arguments");
        for (i, a) in args.iter().enumerate() {
            self.engine.set_reg(tid, Reg::from_index(1 + i), *a);
        }
        let start = self.engine.clock(tid);
        self.engine.begin_injected_call(tid, target);
        self.drive_to_idle(tid)?;
        Ok(self.engine.clock(tid) - start)
    }

    /// Execute an injected straight-line sequence on an idle thread,
    /// interleaving the sibling's program by clock order. `Call`/`CallReg`
    /// instructions in the sequence run the callee to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`]; injected sequences cannot contain jumps.
    pub fn run_sequence(
        &mut self,
        tid: ThreadId,
        instrs: &[Instr],
    ) -> Result<SeqOutcome, StepError> {
        let start = self.engine.clock(tid);
        for instr in instrs {
            self.catch_up_sibling(tid)?;
            match self.engine.exec_injected(tid, instr)? {
                InjectedNext::Done => {}
                InjectedNext::EnterCall { target } => {
                    self.engine.begin_injected_call(tid, target);
                    self.drive_to_idle(tid)?;
                }
            }
        }
        self.catch_up_sibling(tid)?;
        let end_clock = self.engine.clock(tid);
        Ok(SeqOutcome { cycles: end_clock - start, end_clock })
    }

    /// Execute a compiled probe sequence on an idle thread: one fused
    /// engine pass when the guards allow it ([`Engine::run_fused_probe`]),
    /// falling back to injecting the five instructions per-step via
    /// [`Machine::run_sequence`] otherwise. Same outcome either way, by
    /// construction.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] (e.g. unsupported probe classes).
    pub fn run_probe(
        &mut self,
        tid: ThreadId,
        probe: &CompiledProbe,
    ) -> Result<SeqOutcome, StepError> {
        match self.engine.run_fused_probe(tid, probe) {
            Some(outcome) => outcome,
            None => self.run_sequence(tid, probe.instrs()),
        }
    }

    /// Call the line at `target` on an idle thread: one fused engine pass
    /// when the guards and the callee's shape allow it
    /// ([`Engine::run_fused_call`] — the callee must be an attacker-style
    /// one-line `nop*; ret` routine), falling back to injecting the `call`
    /// per-step via [`Machine::run_sequence`] otherwise. Same outcome
    /// either way, by construction.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread on the fallback path
    /// (the fused pass itself cannot fail).
    pub fn run_call(&mut self, tid: ThreadId, target: u64) -> Result<SeqOutcome, StepError> {
        match self.engine.run_fused_call(tid, target) {
            Some(outcome) => Ok(outcome),
            None => self.run_sequence(tid, &[Instr::Call { target }]),
        }
    }

    /// Call every line in `targets` back to back on an idle thread: one
    /// fused engine pass for the whole batch when the guards, every
    /// callee's shape and the noise schedule allow it
    /// ([`Engine::run_fused_calls`]), falling back to per-call
    /// [`Machine::run_call`] otherwise — an eviction set primes its eight
    /// ways in a single engine entry instead of eight. Same outcome either
    /// way, by construction.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread on the fallback path
    /// (the fused pass itself cannot fail).
    pub fn run_calls(&mut self, tid: ThreadId, targets: &[u64]) -> Result<SeqOutcome, StepError> {
        if let Some(outcome) = self.engine.run_fused_calls(tid, targets) {
            return Ok(outcome);
        }
        let mut cycles = 0;
        let mut end_clock = self.engine.clock(tid);
        for &target in targets {
            let out = self.run_call(tid, target)?;
            cycles += out.cycles;
            end_clock = out.end_clock;
        }
        Ok(SeqOutcome { cycles, end_clock })
    }

    /// Let `cycles` pass on `tid` (a "dummy for loop"), still interleaving
    /// the sibling.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from the sibling's program.
    pub fn advance(&mut self, tid: ThreadId, cycles: u64) -> Result<(), StepError> {
        // Fused fast path: when no other thread can run there is nothing
        // to interleave, so the whole wait collapses to one batched
        // engine update (bit-identical to the chunked loop below).
        if self.engine.advance_idle(tid, cycles) {
            return Ok(());
        }
        let mut left = cycles;
        while left > 0 {
            let chunk = left.min(200) as u32;
            self.catch_up_sibling(tid)?;
            self.engine.exec_injected(tid, &Instr::Delay { cycles: chunk })?;
            left -= chunk as u64;
        }
        self.catch_up_sibling(tid)
    }

    /// Drive a running thread to idle/halt in engine bursts, enforcing the
    /// default step budget.
    fn drive_to_idle(&mut self, tid: ThreadId) -> Result<(), StepError> {
        let mut steps = 0u64;
        while self.engine.state(tid) == ThreadState::Running {
            if steps >= DEFAULT_STEP_BUDGET {
                return Err(StepError::StepLimit);
            }
            let burst = self.burst.min(DEFAULT_STEP_BUDGET - steps);
            steps += self.engine.run_burst(tid, burst)?;
        }
        Ok(())
    }

    /// Advance the sibling's program until it catches up with `tid`'s clock.
    fn catch_up_sibling(&mut self, tid: ThreadId) -> Result<(), StepError> {
        let sib = tid.sibling();
        let mut guard = 0u64;
        loop {
            let burst = self.burst.min(DEFAULT_STEP_BUDGET - guard);
            guard += self.engine.catch_up(tid, burst)?;
            let behind = self.engine.state(sib) == ThreadState::Running
                && self.engine.clock(sib) < self.engine.clock(tid);
            if !behind {
                return Ok(());
            }
            if guard >= DEFAULT_STEP_BUDGET {
                return Err(StepError::StepLimit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::MemRef;
    use crate::profile::{MicroArch, ProbeKind};
    use crate::PerfEvent;

    const T0: ThreadId = ThreadId::T0;
    const T1: ThreadId = ThreadId::T1;

    fn cl() -> Machine {
        Machine::new(MicroArch::CascadeLake.profile())
    }

    /// An oracle line at `addr`: a couple of nops and a ret.
    fn oracle_program(addr: u64) -> Program {
        let mut a = Assembler::new(addr);
        a.nop().nop().ret();
        a.assemble().unwrap()
    }

    #[test]
    fn loop_program_computes_sum() {
        let mut m = cl();
        let mut a = Assembler::new(0x40_0000);
        // sum 1..=10 into R0
        a.mov_imm(Reg::R0, 0)
            .mov_imm(Reg::R2, 1)
            .label("loop")
            .add(Reg::R0, Reg::R2)
            .add_imm(Reg::R2, 1)
            .cmp_imm(Reg::R2, 11)
            .jne("loop")
            .halt();
        let p = a.assemble().unwrap();
        m.load_program(&p);
        m.start_program(T0, p.entry(), &[]);
        m.run_until_halt(T0, 10_000).unwrap();
        assert_eq!(m.reg(T0, Reg::R0), 55);
        assert_eq!(m.state(T0), ThreadState::Halted);
    }

    #[test]
    fn injected_call_runs_and_returns_to_idle() {
        let mut m = cl();
        let p = oracle_program(0x1000);
        m.load_program(&p);
        let out = m.run_sequence(T0, &[Instr::Call { target: 0x1000 }]).unwrap();
        assert!(out.cycles > 0);
        assert_eq!(m.state(T0), ThreadState::Idle);
        assert!(m.residency(Addr(0x1000)).l1i, "execute fills the L1i");
    }

    #[test]
    fn store_to_l1i_line_triggers_machine_clear() {
        let mut m = cl();
        let p = oracle_program(0x2000);
        m.load_program(&p);
        // Execute the oracle so its line is in L1i.
        m.run_sequence(T0, &[Instr::Call { target: 0x2000 }]).unwrap();
        assert!(m.residency(Addr(0x2000)).l1i);
        let before = m.counters(T0).snapshot();
        m.set_reg(T0, Reg::R1, 0x2000);
        m.run_sequence(T0, &[Instr::StoreImm { mem: MemRef::base(Reg::R1), imm: 0x90 }]).unwrap();
        let c = m.counters(T0);
        assert_eq!(c.delta(&before, PerfEvent::MachineClearsCount), 1);
        assert_eq!(c.delta(&before, PerfEvent::MachineClearsSmc), 1);
        assert!(!m.residency(Addr(0x2000)).l1i, "clear invalidates the L1i line");
    }

    #[test]
    fn probe_timing_separates_l1i_hit_from_evicted() {
        let mut m = cl();
        let p = oracle_program(0x3000);
        m.load_program(&p);
        m.set_reg(T0, Reg::R1, 0x3000);
        let probe = [
            Instr::Mfence,
            Instr::Rdtsc { dst: Reg::R14 },
            Instr::StoreImm { mem: MemRef::base(Reg::R1), imm: 0x90 },
            Instr::Mfence,
            Instr::Rdtsc { dst: Reg::R15 },
        ];
        // Hot: line in L1i -> SMC conflict -> slow.
        m.place_line(Addr(0x3000), Placement::L1i);
        m.warm_tlb(T0, Addr(0x3000));
        m.run_sequence(T0, &probe).unwrap();
        let hot = m.reg(T0, Reg::R15) - m.reg(T0, Reg::R14);
        // Cold: line in L2 only -> no SMC -> fast.
        m.place_line(Addr(0x3000), Placement::L2);
        m.run_sequence(T0, &probe).unwrap();
        let cold = m.reg(T0, Reg::R15) - m.reg(T0, Reg::R14);
        assert!(hot > cold + 150, "SMC hit must dominate: hot={hot} cold={cold}");
    }

    #[test]
    fn machine_clear_stalls_sibling_victim() {
        let mut m = cl();
        // Victim: tight arithmetic loop on T1.
        let mut a = Assembler::new(0x10_000);
        a.label("spin").add_imm(Reg::R0, 1).jmp("spin");
        let victim = a.assemble().unwrap();
        m.load_program(&victim);
        let oracle = oracle_program(0x20_000);
        m.load_program(&oracle);
        m.start_program(T1, 0x10_000, &[]);

        // Baseline: victim throughput while the attacker merely waits.
        let before = m.counters(T1).snapshot();
        m.advance(T0, 20_000).unwrap();
        let baseline = m.counters(T1).delta(&before, PerfEvent::InstRetired);

        // Attack: SMC machine-clear storm for a comparable cycle budget.
        m.set_reg(T0, Reg::R1, 0x20_000);
        let before = m.counters(T1).snapshot();
        let start = m.clock(T0);
        while m.clock(T0) - start < 20_000 {
            // Re-execute (fill L1i), then store (SMC clear).
            m.run_sequence(
                T0,
                &[
                    Instr::Call { target: 0x20_000 },
                    Instr::StoreImm { mem: MemRef::base(Reg::R1), imm: 0x90 },
                ],
            )
            .unwrap();
        }
        let attacked = m.counters(T1).delta(&before, PerfEvent::InstRetired);
        // The paper reports each clear stalling the sibling ~235 cycles; the
        // victim must make markedly less progress under the storm.
        assert!(
            attacked * 2 < baseline,
            "victim must slow down: baseline {baseline}, attacked {attacked}"
        );
        assert!(m.counters(T0).read(PerfEvent::MachineClearsSmc) > 10);
    }

    #[test]
    fn patched_code_executes_on_the_fast_path() {
        // A counting loop calls a routine that adds 1; mid-run the routine
        // is rewritten (same instruction length) to add 10. The decoded
        // fast path must pick the patch up exactly like the reference
        // interpreter (which re-reads the map every step).
        let routine = |imm: i64| -> Program {
            let mut a = Assembler::new(0x7_0000);
            a.add_imm(Reg::R0, imm).ret();
            a.assemble().unwrap()
        };
        let run = |decoded: bool| -> u64 {
            let mut m = cl();
            m.set_decoded_fast_path(decoded);
            m.load_program(&routine(1));
            for i in 0..6 {
                if i == 3 {
                    m.patch_program(&routine(10));
                }
                m.call(T0, 0x7_0000, &[]).unwrap();
            }
            m.reg(T0, Reg::R0)
        };
        assert_eq!(run(true), 3 + 30);
        assert_eq!(run(false), 3 + 30);
    }

    #[test]
    fn unsupported_probe_errors() {
        let mut m = Machine::new(MicroArch::SandyBridge.profile());
        m.set_reg(T0, Reg::R1, 0x5000);
        let err =
            m.run_sequence(T0, &[Instr::Clflushopt { mem: MemRef::base(Reg::R1) }]).unwrap_err();
        assert_eq!(err, StepError::Unsupported { kind: ProbeKind::FlushOpt });
    }

    #[test]
    fn speculative_wrong_path_fills_cache_then_rolls_back() {
        let mut m = cl();
        // data layout: [0x9000] = bounds (1), [0x9100] = array base
        let bounds_addr = 0x9000u64;
        let array = 0x9100u64;
        let oracle = 0x80_000u64;
        let mut a = Assembler::new(0x50_000);
        // victim(R1 = idx):
        //   R2 = bounds; cmp idx, R2; jge done
        //   R3 = array[idx]; R3 <<= 6; R3 += oracle; call *R3
        a.mov_imm(Reg::R4, bounds_addr)
            .load(Reg::R2, MemRef::base(Reg::R4))
            .cmp(Reg::R1, Reg::R2)
            .jge("done")
            .mov_imm(Reg::R5, array)
            .add(Reg::R5, Reg::R1)
            .load_byte(Reg::R3, MemRef::base(Reg::R5))
            .shl_imm(Reg::R3, 6)
            .add_imm(Reg::R3, oracle as i64)
            .call_reg(Reg::R3)
            .label("done")
            .ret();
        let victim = a.assemble().unwrap();
        m.load_program(&victim);
        // Oracle page: 4 lines of nop/ret.
        let mut o = Assembler::new(oracle);
        for i in 0..4 {
            o.org(oracle + i * 64).nop().ret();
        }
        m.load_program(&o.assemble().unwrap());
        m.write_u64(Addr(bounds_addr), 1);
        m.write_u8(Addr(array), 0); // in-bounds value -> slot 0
        m.write_u8(Addr(array + 2), 3); // "secret" at OOB index 2 -> slot 3

        // Train: in-bounds calls teach the branch predictor "not taken".
        for _ in 0..8 {
            m.call(T0, 0x50_000, &[0]).unwrap();
        }
        // Flush the bounds so the branch resolves late, flush the oracle.
        for i in 0..4 {
            m.flush_line(Addr(oracle + i * 64));
        }
        m.flush_line(Addr(bounds_addr));
        let r0_before = m.reg(T0, Reg::R0);
        // Out-of-bounds call: architecturally takes the `done` path...
        m.call(T0, 0x50_000, &[2]).unwrap();
        assert_eq!(m.reg(T0, Reg::R0), r0_before, "architectural state is clean");
        // ...but the wrong path fetched oracle slot 3 into the caches.
        assert!(
            m.residency(Addr(oracle + 3 * 64)).l1i,
            "speculative fetch must survive the squash"
        );
        assert!(!m.residency(Addr(oracle + 64)).l1i);
    }
}
