//! Microarchitecture profiles.
//!
//! Ten profiles — eight Intel generations and two AMD parts — matching the
//! machines evaluated in SMaCk. Each profile carries:
//!
//! * the cache hierarchy geometry and latencies,
//! * the **SMC behavior matrix** (paper Table 3): for each of the nine
//!   probe instruction classes, whether it triggers the SMC machine clear,
//!   leaks without SMC, has no usable effect, or is unsupported,
//! * the **probe cost tables** calibrated against Figure 1 (cycles per
//!   probe class and hierarchy level, plus the machine-clear surcharge),
//! * the **machine-clear penalty breakdown** from the Figure 2 reverse
//!   engineering (front-end bubbles, resteer cycles, back-end serialization,
//!   and the 235-cycle sibling-thread stall), and
//! * timer properties (`rdtsc` cost and resolution — 21 cycles on AMD,
//!   which is exactly why the paper's AMD covert channels are noisier).

use crate::hierarchy::{HierarchyConfig, Level};

/// CPU vendor.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Vendor {
    /// Intel.
    Intel,
    /// AMD.
    Amd,
}

/// The nine probe instruction classes of SMaCk Listing 2.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ProbeKind {
    /// `mov (%rdi), %rax` — plain data load.
    Load,
    /// `clflush (%rdi)`.
    Flush,
    /// `clflushopt (%rdi)`.
    FlushOpt,
    /// `movb $0x90, (%rdi)` — store.
    Store,
    /// `lock incb (%rdi)`.
    Lock,
    /// `prefetcht0 (%rdi)`.
    Prefetch,
    /// `prefetchnta (%rdi)`.
    PrefetchNta,
    /// `call *%rdi` — execute the target line.
    Execute,
    /// `clwb (%rdi)`.
    Clwb,
}

impl ProbeKind {
    /// All nine classes, in Listing 2 order.
    pub const ALL: [ProbeKind; 9] = [
        ProbeKind::Load,
        ProbeKind::Flush,
        ProbeKind::FlushOpt,
        ProbeKind::Store,
        ProbeKind::Lock,
        ProbeKind::Prefetch,
        ProbeKind::PrefetchNta,
        ProbeKind::Execute,
        ProbeKind::Clwb,
    ];

    /// Stable index (0..9).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("kind is in ALL")
    }

    /// Short human-readable name, as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ProbeKind::Load => "load",
            ProbeKind::Flush => "clflush",
            ProbeKind::FlushOpt => "clflushopt",
            ProbeKind::Store => "store",
            ProbeKind::Lock => "lock+inc",
            ProbeKind::Prefetch => "prefetcht0",
            ProbeKind::PrefetchNta => "prefetchnta",
            ProbeKind::Execute => "execute",
            ProbeKind::Clwb => "clwb",
        }
    }

    /// Whether this class semantically *writes* the target line (and can
    /// therefore never be used on read/execute-only shared pages, as the
    /// paper notes for Flush+iReload).
    pub fn writes_target(self) -> bool {
        matches!(self, ProbeKind::Store | ProbeKind::Lock)
    }
}

impl std::fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a probe class behaves on a given microarchitecture (paper Table 3).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SmcBehavior {
    /// ● — triggers the SMC machine clear; hit = slow.
    Triggers,
    /// ◐ — no machine clear, but plain timing still leaks; hit = fast.
    LeaksWithoutSmc,
    /// # — no machine clear and no reliable timing difference.
    NoEffect,
    /// × — the instruction does not exist on this part.
    Unsupported,
}

impl SmcBehavior {
    /// The symbol used in the paper's Table 3.
    pub fn symbol(self) -> &'static str {
        match self {
            SmcBehavior::Triggers => "●",
            SmcBehavior::LeaksWithoutSmc => "◐",
            SmcBehavior::NoEffect => "#",
            SmcBehavior::Unsupported => "×",
        }
    }
}

/// The per-probe-class SMC behavior matrix for one microarchitecture.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SmcMatrix {
    cells: [SmcBehavior; 9],
}

impl SmcMatrix {
    /// Build from an array in [`ProbeKind::ALL`] order.
    pub fn new(cells: [SmcBehavior; 9]) -> SmcMatrix {
        SmcMatrix { cells }
    }

    /// Behavior of `kind` on this microarchitecture.
    pub fn get(&self, kind: ProbeKind) -> SmcBehavior {
        self.cells[kind.index()]
    }
}

/// Calibrated cycle costs for one probe class.
///
/// A probe's measured cost is `base + level_extra(residency)`, or
/// `base + smc_extra` when the SMC detection unit fires (machine-clear
/// latency dominates the hierarchy latency in that case).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProbeCosts {
    /// Fixed issue cost.
    pub base: u32,
    /// Extra cycles when the target is in L1d.
    pub l1d: u32,
    /// Extra cycles when the target is in L2.
    pub l2: u32,
    /// Extra cycles when the target is in the LLC.
    pub llc: u32,
    /// Extra cycles when the target is only in DRAM.
    pub dram: u32,
    /// Surcharge when the probe triggers an SMC machine clear.
    pub smc_extra: u32,
}

impl ProbeCosts {
    /// Extra cycles for a hit at `level` (no SMC case).
    pub fn level_extra(&self, level: Level) -> u32 {
        match level {
            // A line resident in L1i but not L1d is serviced from L2 on the
            // data side (inclusive hierarchy).
            Level::L1i | Level::L2 => self.l2,
            Level::L1d => self.l1d,
            Level::Llc => self.llc,
            Level::Dram => self.dram,
        }
    }
}

/// Table of [`ProbeCosts`] for all nine probe classes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProbeCostTable {
    cells: [ProbeCosts; 9],
}

impl ProbeCostTable {
    /// Build from an array in [`ProbeKind::ALL`] order.
    pub fn new(cells: [ProbeCosts; 9]) -> ProbeCostTable {
        ProbeCostTable { cells }
    }

    /// Costs for one probe class.
    pub fn get(&self, kind: ProbeKind) -> ProbeCosts {
        self.cells[kind.index()]
    }

    /// Replace one probe class's costs (ablation studies).
    pub fn set(&mut self, kind: ProbeKind, costs: ProbeCosts) {
        self.cells[kind.index()] = costs;
    }
}

/// Machine-clear penalty breakdown (paper §4.2 / Figure 2).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ClearPenalties {
    /// Front-end bubble cycles (`FRONTEND_RETIRED.IDQ_4_BUBBLES` ≈ 30).
    pub frontend_bubbles: u32,
    /// Resteer cycles before the back-end issues again
    /// (`INT_MISC.CLEAR_RESTEER_CYCLES` ≈ 35–40).
    pub resteer: u32,
    /// Stall imposed on the *sibling* SMT thread per clear (≈ 235 cycles,
    /// §4.2 "Outcome").
    pub sibling_stall: u32,
    /// Total stall cycles per clear, per probe class
    /// (`CYCLE_ACTIVITY.STALLS_TOTAL`, up to ~580 for lock/clwb).
    pub stalls_total: [u32; 9],
    /// Back-end serialization cycles per clear, per probe class
    /// (`PARTIAL_RAT_STALLS.SCOREBOARD`, ≈ 200 for store).
    pub scoreboard: [u32; 9],
    /// AMD `INSTRUCTION_PIPE_STALL.BACK_PRESSURE` cycles per clear.
    pub amd_back_pressure: u32,
    /// AMD `CYCLES_WITH_FILL_PENDING_FROM_L2.L2_FILL_BUSY` cycles per clear
    /// for store/lock (the classes that refill the invalidated line).
    pub amd_l2_fill_busy: u32,
}

/// Speculative-execution parameters.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SpecConfig {
    /// Maximum wrong-path instructions before a forced squash (ROB bound).
    pub window_instrs: u32,
    /// Cycles lost on a branch-misprediction squash.
    pub mispredict_penalty: u32,
}

/// The ten microarchitectures evaluated in the paper (Table 3).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MicroArch {
    /// Intel Westmere EP.
    WestmereEp,
    /// Intel Sandy Bridge.
    SandyBridge,
    /// Intel Ivy Bridge.
    IvyBridge,
    /// Intel Broadwell.
    Broadwell,
    /// Intel Ice Lake.
    IceLake,
    /// Intel Cascade Lake (the paper's main characterization platform).
    CascadeLake,
    /// Intel Comet Lake.
    CometLake,
    /// AMD Ryzen 5.
    AmdRyzen5,
    /// AMD EPYC 7232P.
    AmdEpyc7232P,
    /// Intel Tiger Lake (the paper's RSA/SRP case-study platform).
    TigerLake,
}

impl MicroArch {
    /// All ten microarchitectures, in Table 3 column order.
    pub const ALL: [MicroArch; 10] = [
        MicroArch::WestmereEp,
        MicroArch::SandyBridge,
        MicroArch::IvyBridge,
        MicroArch::Broadwell,
        MicroArch::IceLake,
        MicroArch::CascadeLake,
        MicroArch::CometLake,
        MicroArch::AmdRyzen5,
        MicroArch::AmdEpyc7232P,
        MicroArch::TigerLake,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MicroArch::WestmereEp => "Westmere EP",
            MicroArch::SandyBridge => "Sandy Bridge",
            MicroArch::IvyBridge => "Ivy Bridge",
            MicroArch::Broadwell => "Broadwell",
            MicroArch::IceLake => "Ice Lake",
            MicroArch::CascadeLake => "Cascade Lake",
            MicroArch::CometLake => "Comet Lake",
            MicroArch::AmdRyzen5 => "AMD Ryzen 5",
            MicroArch::AmdEpyc7232P => "AMD EPYC 7232P",
            MicroArch::TigerLake => "Tiger Lake",
        }
    }

    /// Vendor of this part.
    pub fn vendor(self) -> Vendor {
        match self {
            MicroArch::AmdRyzen5 | MicroArch::AmdEpyc7232P => Vendor::Amd,
            _ => Vendor::Intel,
        }
    }

    /// Build the full profile for this microarchitecture.
    pub fn profile(self) -> UarchProfile {
        build_profile(self)
    }
}

impl std::fmt::Display for MicroArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the simulator needs to know about one microarchitecture.
#[derive(Clone, Debug)]
pub struct UarchProfile {
    /// Which part this is.
    pub arch: MicroArch,
    /// Vendor.
    pub vendor: Vendor,
    /// Nominal frequency, used to convert cycles to wall-clock time for
    /// bandwidth numbers.
    pub freq_ghz: f64,
    /// Cache hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// `rdtsc` reading granularity in cycles (1 on Intel, 21 on AMD).
    pub tsc_resolution: u32,
    /// Cycles consumed by executing `rdtsc`.
    pub rdtsc_cost: u32,
    /// Cycles consumed by `mfence` beyond draining outstanding operations.
    pub mfence_cost: u32,
    /// SMC behavior matrix (Table 3 row for this part).
    pub smc: SmcMatrix,
    /// Calibrated probe costs (Figure 1).
    pub probe_costs: ProbeCostTable,
    /// Machine-clear penalties (Figure 2).
    pub clear: ClearPenalties,
    /// Speculation parameters.
    pub spec: SpecConfig,
    /// iTLB entries.
    pub itlb_entries: usize,
    /// dTLB entries.
    pub dtlb_entries: usize,
    /// Page-walk latency in cycles.
    pub tlb_walk: u32,
}

impl UarchProfile {
    /// How much `MACHINE_CLEARS.SMC` increments per conflict for `kind`.
    ///
    /// Reproduces the counter quirk from §4.2: on Intel, `clflushopt` and
    /// `clwb` bump the SMC sub-counter twice per clear.
    pub fn smc_count_increment(&self, kind: ProbeKind) -> u64 {
        if self.vendor == Vendor::Intel && matches!(kind, ProbeKind::FlushOpt | ProbeKind::Clwb) {
            2
        } else {
            1
        }
    }

    /// Convert a cycle count to seconds at the nominal frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// A toolchain-stable digest of every behavior-relevant field, used to
    /// key machine pools and calibration caches (including the persistent
    /// `SMACK_CALIB_DIR` disk cache, so the encoding must never drift —
    /// it is computed with [`crate::stablehash::StableHasher`] and locked
    /// by the `fingerprint_compat` test). Two profiles with the same
    /// fingerprint simulate identically; ablation-perturbed profiles
    /// (e.g. a tweaked `probe_costs` cell) get distinct fingerprints and
    /// therefore never share pooled machines or cached calibrations with
    /// the stock profile they were derived from.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::stablehash::StableHasher::new();
        self.arch.hash(&mut h);
        self.vendor.hash(&mut h);
        self.freq_ghz.to_bits().hash(&mut h);
        self.hierarchy.hash(&mut h);
        self.tsc_resolution.hash(&mut h);
        self.rdtsc_cost.hash(&mut h);
        self.mfence_cost.hash(&mut h);
        self.smc.hash(&mut h);
        self.probe_costs.hash(&mut h);
        self.clear.hash(&mut h);
        self.spec.hash(&mut h);
        self.itlb_entries.hash(&mut h);
        self.dtlb_entries.hash(&mut h);
        self.tlb_walk.hash(&mut h);
        h.finish()
    }
}

// ---------------------------------------------------------------------------
// Profile data
// ---------------------------------------------------------------------------

use SmcBehavior::{LeaksWithoutSmc as L, NoEffect as N, Triggers as T, Unsupported as X};

fn matrix_for(arch: MicroArch) -> SmcMatrix {
    use MicroArch::*;
    // Order: Load, Flush, FlushOpt, Store, Lock, Prefetch, PrefetchNta,
    // Execute, Clwb — transcribed from paper Table 3.
    let cells = match arch {
        WestmereEp => [L, T, T, T, T, N, N, N, X],
        SandyBridge => [L, T, X, T, T, N, N, N, X],
        IvyBridge => [L, T, X, T, T, N, N, N, X],
        Broadwell => [L, T, T, T, T, T, N, N, X],
        IceLake => [L, T, T, T, T, N, N, N, X],
        CascadeLake => [L, T, T, T, T, T, L, N, T],
        CometLake => [L, T, T, T, T, T, L, N, N],
        AmdRyzen5 => [L, T, T, T, T, L, L, N, N],
        AmdEpyc7232P => [L, L, L, T, T, L, L, N, L],
        TigerLake => [L, T, T, T, T, N, N, N, T],
    };
    SmcMatrix::new(cells)
}

const fn pc(base: u32, l1d: u32, l2: u32, llc: u32, dram: u32, smc_extra: u32) -> ProbeCosts {
    ProbeCosts { base, l1d, l2, llc, dram, smc_extra }
}

/// A probe whose latency barely depends on where the line lives (async
/// hint semantics) — used for prefetch/clwb variants marked `#` in Table 3.
const fn flat(base: u32) -> ProbeCosts {
    pc(base, 2, 3, 4, 5, 0)
}

fn intel_costs(arch: MicroArch) -> ProbeCostTable {
    let prefetch = match matrix_for(arch).get(ProbeKind::Prefetch) {
        SmcBehavior::Triggers => pc(10, 3, 8, 20, 220, 370),
        _ => flat(10),
    };
    let prefetch_nta = match matrix_for(arch).get(ProbeKind::PrefetchNta) {
        SmcBehavior::LeaksWithoutSmc => pc(10, 3, 8, 20, 220, 0),
        _ => flat(10),
    };
    let clwb = match matrix_for(arch).get(ProbeKind::Clwb) {
        SmcBehavior::Triggers => pc(80, 30, 30, 30, 100, 200),
        _ => flat(80),
    };
    ProbeCostTable::new([
        pc(2, 4, 14, 50, 250, 0),     // Load: pure hierarchy latency
        pc(100, 80, 80, 80, 10, 240), // Flush: ~355 on L1i hit, ~200 on LLC
        pc(95, 75, 75, 75, 10, 235),  // FlushOpt
        pc(5, 1, 15, 75, 255, 275),   // Store: ~300 L1i, ~100 LLC, ~280 DRAM
        pc(25, 5, 15, 30, 230, 380),  // Lock: ~425 L1i, ~75 LLC, ~275 DRAM
        prefetch,
        prefetch_nta,
        pc(8, 0, 2, 25, 220, 0), // Execute: ifetch path (next-line prefetch hides L2)
        clwb,
    ])
}

fn amd_ryzen_costs() -> ProbeCostTable {
    ProbeCostTable::new([
        pc(2, 4, 14, 45, 230, 0),
        pc(90, 120, 120, 120, 220, 420), // Flush: L1i-LLC ≈ 300, L1i-DRAM ≈ 200
        pc(85, 115, 115, 115, 215, 415),
        pc(5, 2, 20, 120, 260, 270), // Store: L1i-LLC ≈ 150, L1i ≈ DRAM
        pc(30, 5, 30, 90, 250, 350), // Lock: every state observable
        pc(10, 3, 10, 25, 215, 0),   // Prefetch: leaks without SMC
        pc(10, 3, 10, 25, 215, 0),
        pc(8, 0, 2, 25, 215, 0),
        flat(80), // Clwb: not treated as SMC on Ryzen (§4.1)
    ])
}

fn amd_epyc_costs() -> ProbeCostTable {
    ProbeCostTable::new([
        pc(2, 4, 14, 45, 235, 0),
        pc(90, 30, 30, 30, 220, 0), // Flush: no machine clear, plain timing leak
        pc(85, 28, 28, 28, 215, 0),
        pc(5, 2, 20, 110, 255, 265),
        pc(30, 5, 30, 85, 245, 345),
        pc(10, 3, 10, 25, 210, 0),
        pc(10, 3, 10, 25, 210, 0),
        pc(8, 0, 2, 25, 210, 0),
        pc(80, 15, 20, 25, 140, 0), // Clwb: leaks without SMC on EPYC
    ])
}

fn intel_clear() -> ClearPenalties {
    // Indexed by ProbeKind::ALL order.
    ClearPenalties {
        frontend_bubbles: 30,
        resteer: 37,
        sibling_stall: 235,
        stalls_total: [0, 450, 440, 500, 580, 470, 0, 0, 560],
        scoreboard: [0, 150, 150, 200, 240, 170, 0, 0, 230],
        amd_back_pressure: 0,
        amd_l2_fill_busy: 0,
    }
}

fn amd_clear() -> ClearPenalties {
    ClearPenalties {
        frontend_bubbles: 25,
        resteer: 30,
        sibling_stall: 235,
        stalls_total: [0, 500, 490, 420, 520, 0, 0, 0, 0],
        scoreboard: [0, 0, 0, 0, 0, 0, 0, 0, 0],
        amd_back_pressure: 500,
        amd_l2_fill_busy: 480,
    }
}

fn build_profile(arch: MicroArch) -> UarchProfile {
    let vendor = arch.vendor();
    let freq_ghz = match arch {
        MicroArch::WestmereEp => 2.9,
        MicroArch::SandyBridge => 3.3,
        MicroArch::IvyBridge => 3.5,
        MicroArch::Broadwell => 3.4,
        MicroArch::IceLake => 3.9,
        MicroArch::CascadeLake => 3.6,
        MicroArch::CometLake => 4.1,
        MicroArch::AmdRyzen5 => 3.6,
        MicroArch::AmdEpyc7232P => 3.1,
        MicroArch::TigerLake => 4.2,
    };
    let probe_costs = match arch {
        MicroArch::AmdRyzen5 => amd_ryzen_costs(),
        MicroArch::AmdEpyc7232P => amd_epyc_costs(),
        _ => intel_costs(arch),
    };
    let (tsc_resolution, rdtsc_cost) = match vendor {
        Vendor::Intel => (1, 15),
        Vendor::Amd => (21, 28),
    };
    let clear = match vendor {
        Vendor::Intel => intel_clear(),
        Vendor::Amd => amd_clear(),
    };
    UarchProfile {
        arch,
        vendor,
        freq_ghz,
        hierarchy: HierarchyConfig::intel_like(),
        tsc_resolution,
        rdtsc_cost,
        mfence_cost: 5,
        smc: matrix_for(arch),
        probe_costs,
        clear,
        spec: SpecConfig { window_instrs: 64, mispredict_penalty: 17 },
        itlb_entries: 64,
        dtlb_entries: 64,
        tlb_walk: 100,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Locks the stable fingerprint encoding. These digests key the
    /// persistent `SMACK_CALIB_DIR` calibration cache; if this test fails,
    /// the hashing scheme changed and every on-disk cache entry will be
    /// orphaned — that is only acceptable in a PR that says so explicitly.
    #[test]
    fn fingerprint_compat() {
        assert_eq!(MicroArch::WestmereEp.profile().fingerprint(), 0x290384fde5c76ec5);
        assert_eq!(MicroArch::CascadeLake.profile().fingerprint(), 0xc3cbdc941e1b4e5f);
        assert_eq!(MicroArch::AmdRyzen5.profile().fingerprint(), 0x6c7408527579f347);
        assert_eq!(MicroArch::AmdEpyc7232P.profile().fingerprint(), 0x9aa47ae4ef03979f);
        assert_eq!(MicroArch::TigerLake.profile().fingerprint(), 0x7ee9242397e1ce5b);
    }

    #[test]
    fn table3_spot_checks() {
        // Store and Lock trigger SMC everywhere (paper: "Both lock and
        // store instructions are successful ... in all x86
        // microarchitectures").
        for arch in MicroArch::ALL {
            let m = matrix_for(arch);
            assert_eq!(m.get(ProbeKind::Store), SmcBehavior::Triggers, "{arch}");
            assert_eq!(m.get(ProbeKind::Lock), SmcBehavior::Triggers, "{arch}");
            // Load leaks without SMC everywhere; Execute never leaks.
            assert_eq!(m.get(ProbeKind::Load), SmcBehavior::LeaksWithoutSmc, "{arch}");
            assert_eq!(m.get(ProbeKind::Execute), SmcBehavior::NoEffect, "{arch}");
        }
        // clflushopt missing on Sandy Bridge / Ivy Bridge.
        assert_eq!(
            MicroArch::SandyBridge.profile().smc.get(ProbeKind::FlushOpt),
            SmcBehavior::Unsupported
        );
        // clwb exists only on the newest parts.
        assert_eq!(
            MicroArch::Broadwell.profile().smc.get(ProbeKind::Clwb),
            SmcBehavior::Unsupported
        );
        assert_eq!(
            MicroArch::CascadeLake.profile().smc.get(ProbeKind::Clwb),
            SmcBehavior::Triggers
        );
        // EPYC: flush does not create SMC conflicts (AMD-SB-7024 machine).
        assert_eq!(
            MicroArch::AmdEpyc7232P.profile().smc.get(ProbeKind::Flush),
            SmcBehavior::LeaksWithoutSmc
        );
    }

    #[test]
    fn cascade_lake_figure1_magnitudes() {
        let p = MicroArch::CascadeLake.profile();
        let store = p.probe_costs.get(ProbeKind::Store);
        // L1i-resident store ≈ 300 cycles within the probe sequence,
        // ≈ 200 more than an LLC-resident store.
        let l1i_hit = store.base + store.smc_extra;
        let llc_hit = store.base + store.llc;
        assert!(l1i_hit > llc_hit + 150, "{l1i_hit} vs {llc_hit}");
        // Store DRAM within ~30 cycles of the L1i case (paper: ~20).
        let dram = store.base + store.dram;
        assert!(l1i_hit.abs_diff(dram) < 40);
        // Lock is the slowest conflict.
        let lock = p.probe_costs.get(ProbeKind::Lock);
        assert!(lock.base + lock.smc_extra > l1i_hit);
    }

    #[test]
    fn amd_quantization_is_coarse() {
        let ryzen = MicroArch::AmdRyzen5.profile();
        assert_eq!(ryzen.tsc_resolution, 21);
        let intel = MicroArch::CascadeLake.profile();
        assert_eq!(intel.tsc_resolution, 1);
    }

    #[test]
    fn smc_counter_quirk() {
        let p = MicroArch::CascadeLake.profile();
        assert_eq!(p.smc_count_increment(ProbeKind::FlushOpt), 2);
        assert_eq!(p.smc_count_increment(ProbeKind::Clwb), 2);
        assert_eq!(p.smc_count_increment(ProbeKind::Store), 1);
        let amd = MicroArch::AmdRyzen5.profile();
        assert_eq!(amd.smc_count_increment(ProbeKind::FlushOpt), 1);
    }

    #[test]
    fn all_profiles_build() {
        for arch in MicroArch::ALL {
            let p = arch.profile();
            assert!(p.freq_ghz > 1.0);
            assert_eq!(p.vendor, arch.vendor());
            // Sibling stall is the paper's 235-cycle slowdown.
            assert_eq!(p.clear.sibling_stall, 235);
        }
    }

    #[test]
    fn cycles_to_seconds() {
        let p = MicroArch::CascadeLake.profile();
        let s = p.cycles_to_seconds(3_600_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
