//! A single set-associative cache with true-LRU replacement.

use crate::addr::Addr;

/// Geometry of one cache level (line size is globally 64 bytes).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * crate::LINE_SIZE as usize
    }
}

/// Sentinel for an empty way slot (no simulated address is line-aligned at
/// `u64::MAX`).
const EMPTY: u64 = u64::MAX;

/// A line evicted to make room for a fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// Line-aligned address that was evicted.
    pub line: Addr,
    /// Whether the evicted line was dirty.
    pub dirty: bool,
}

/// A set-associative, true-LRU cache over 64-byte lines.
///
/// ```
/// use smack_uarch::cache::{Cache, CacheGeometry};
/// use smack_uarch::Addr;
///
/// let mut c = Cache::new(CacheGeometry { sets: 64, ways: 8 });
/// c.insert(Addr(0x1000), false);
/// assert!(c.contains(Addr(0x1000)));
/// assert!(!c.contains(Addr(0x2000)));
/// ```
/// Storage is struct-of-arrays over fixed way slots (`set * ways + way`):
/// the tag scan — the single hottest loop in the simulator, run on every
/// fetch, load, store and probe — walks a contiguous `u64` slice the
/// compiler can unroll and vectorize, instead of chasing 24-byte entries.
/// Within a set the occupied slots form a prefix (`occ[set]` of them), so
/// lightly-filled sets — the common case right after a per-trace reset —
/// scan only the lines actually present, exactly like the old `Vec` sets.
/// LRU stamps live in a parallel array touched only on a hit.
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeometry,
    /// Line-aligned address per way slot; only the first `occ[set]` slots
    /// of each set are meaningful, the rest hold [`EMPTY`].
    lines: Vec<u64>,
    /// LRU stamp per way slot; larger is more recent, unique per cache.
    stamps: Vec<u64>,
    /// Dirty bit per way slot.
    dirty: Vec<bool>,
    /// Number of occupied way slots per set.
    occ: Vec<u8>,
    clock: u64,
}

impl Cache {
    /// Create an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(geom: CacheGeometry) -> Cache {
        assert!(geom.sets.is_power_of_two(), "sets must be a power of two");
        assert!(geom.ways > 0, "ways must be nonzero");
        assert!(geom.ways <= u8::MAX as usize, "way count fits the occupancy array");
        let slots = geom.sets * geom.ways;
        Cache {
            geom,
            lines: vec![EMPTY; slots],
            stamps: vec![0; slots],
            dirty: vec![false; slots],
            occ: vec![0; geom.sets],
            clock: 0,
        }
    }

    /// Geometry of this cache.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_of(&self, addr: Addr) -> usize {
        addr.set_index(self.geom.sets)
    }

    /// Range of *occupied* way-slot indices of the set containing `addr`.
    #[inline]
    fn slots_of(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = self.set_of(addr);
        let base = set * self.geom.ways;
        base..base + usize::from(self.occ[set])
    }

    /// Slot index holding `line` within `slots`, if present.
    #[inline]
    fn find(&self, slots: std::ops::Range<usize>, line: u64) -> Option<usize> {
        self.lines[slots.clone()].iter().position(|&l| l == line).map(|w| slots.start + w)
    }

    /// Whether the line containing `addr` is present.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        self.contains_line(addr.line())
    }

    /// [`Cache::contains`] for an already line-aligned address. The
    /// `*_line` variants let the hierarchy resolve an access's line mask
    /// once and share it across all four levels instead of re-masking in
    /// every call — the tag-scan loops themselves are unchanged.
    #[inline]
    pub fn contains_line(&self, line: Addr) -> bool {
        debug_assert_eq!(line.line(), line, "caller resolves the line mask");
        self.lines[self.slots_of(line)].contains(&line.0)
    }

    /// Whether the line containing `addr` is present and dirty.
    pub fn is_dirty(&self, addr: Addr) -> bool {
        let line = addr.line().0;
        self.find(self.slots_of(addr), line).is_some_and(|i| self.dirty[i])
    }

    /// Mark the line as most-recently-used. Returns `true` if it was present.
    #[inline]
    pub fn touch(&mut self, addr: Addr) -> bool {
        self.touch_line(addr.line())
    }

    /// [`Cache::touch`] for an already line-aligned address.
    #[inline]
    pub fn touch_line(&mut self, line: Addr) -> bool {
        debug_assert_eq!(line.line(), line, "caller resolves the line mask");
        self.clock += 1;
        match self.find(self.slots_of(line), line.0) {
            Some(i) => {
                self.stamps[i] = self.clock;
                true
            }
            None => false,
        }
    }

    /// Insert (fill) the line containing `addr`, evicting the LRU way if the
    /// set is full. Touching an already-present line updates LRU and ORs in
    /// the dirty bit.
    pub fn insert(&mut self, addr: Addr, dirty: bool) -> Option<Evicted> {
        self.insert_line(addr.line(), dirty)
    }

    /// [`Cache::insert`] for an already line-aligned address.
    pub fn insert_line(&mut self, line: Addr, dirty: bool) -> Option<Evicted> {
        debug_assert_eq!(line.line(), line, "caller resolves the line mask");
        let line = line.0;
        self.clock += 1;
        let stamp = self.clock;
        let slots = self.slots_of(Addr(line));
        if let Some(i) = self.find(slots.clone(), line) {
            self.stamps[i] = stamp;
            self.dirty[i] |= dirty;
            return None;
        }
        // Append into the free suffix if any, else replace the
        // (unique-stamped) LRU victim.
        let set = self.set_of(Addr(line));
        let (slot, evicted) = if usize::from(self.occ[set]) < self.geom.ways {
            self.occ[set] += 1;
            (slots.end, None)
        } else {
            let victim =
                slots.clone().min_by_key(|&i| self.stamps[i]).expect("set is full, so nonempty");
            let ev = Evicted { line: Addr(self.lines[victim]), dirty: self.dirty[victim] };
            (victim, Some(ev))
        };
        self.lines[slot] = line;
        self.stamps[slot] = stamp;
        self.dirty[slot] = dirty;
        evicted
    }

    /// Set the dirty bit on a present line. Returns `true` if present.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        self.mark_dirty_line(addr.line())
    }

    /// [`Cache::mark_dirty`] for an already line-aligned address.
    pub fn mark_dirty_line(&mut self, line: Addr) -> bool {
        debug_assert_eq!(line.line(), line, "caller resolves the line mask");
        let line = line.0;
        match self.find(self.slots_of(Addr(line)), line) {
            Some(i) => {
                self.dirty[i] = true;
                true
            }
            None => false,
        }
    }

    /// Clear the dirty bit on a present line (write-back). Returns `true`
    /// if the line was present and dirty.
    pub fn clean(&mut self, addr: Addr) -> bool {
        self.clean_line(addr.line())
    }

    /// [`Cache::clean`] for an already line-aligned address.
    pub fn clean_line(&mut self, line: Addr) -> bool {
        debug_assert_eq!(line.line(), line, "caller resolves the line mask");
        let line = line.0;
        match self.find(self.slots_of(Addr(line)), line) {
            Some(i) => {
                let was = self.dirty[i];
                self.dirty[i] = false;
                was
            }
            None => false,
        }
    }

    /// Remove the line containing `addr`. Returns the evicted entry if it
    /// was present.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Evicted> {
        self.invalidate_line(addr.line())
    }

    /// [`Cache::invalidate`] for an already line-aligned address.
    pub fn invalidate_line(&mut self, line: Addr) -> Option<Evicted> {
        debug_assert_eq!(line.line(), line, "caller resolves the line mask");
        let line = line.0;
        let slots = self.slots_of(Addr(line));
        match self.find(slots.clone(), line) {
            Some(i) => {
                let ev = Evicted { line: Addr(self.lines[i]), dirty: self.dirty[i] };
                // Keep the occupied prefix dense: move the last occupied
                // slot into the hole (slot order carries no meaning — LRU
                // is decided purely by the unique stamps).
                let last = slots.end - 1;
                self.lines[i] = self.lines[last];
                self.stamps[i] = self.stamps[last];
                self.dirty[i] = self.dirty[last];
                self.lines[last] = EMPTY;
                let set = self.set_of(Addr(line));
                self.occ[set] -= 1;
                Some(ev)
            }
            None => None,
        }
    }

    /// Invalidate every line (e.g. `wbinvd`).
    pub fn flush_all(&mut self) {
        self.lines.fill(EMPTY);
        self.occ.fill(0);
    }

    /// Lines currently resident in set `set`, in no particular order.
    /// Borrows instead of allocating — callers that need a `Vec` collect
    /// explicitly; diagnostic sweeps over many sets stay allocation-free.
    pub fn lines_in_set(&self, set: usize) -> impl Iterator<Item = Addr> + '_ {
        let base = set * self.geom.ways;
        self.lines[base..base + usize::from(self.occ[set])].iter().map(|&l| Addr(l))
    }

    /// Number of valid lines across all sets.
    pub fn occupancy(&self) -> usize {
        self.occ.iter().map(|&n| usize::from(n)).sum()
    }

    /// The least-recently-used line in `set`, if the set is nonempty.
    pub fn lru_line(&self, set: usize) -> Option<Addr> {
        let base = set * self.geom.ways;
        (base..base + usize::from(self.occ[set]))
            .min_by_key(|&i| self.stamps[i])
            .map(|i| Addr(self.lines[i]))
    }
}

/// Lines covered by one [`LineFilter`] page: 64 × 64 bits = 4096 lines,
/// i.e. 256 KiB of address space per page.
const FILTER_PAGE_LINES: u64 = 64 * 64;
/// Address-space cap precisely tracked by the filter: 4 GiB. Anything at
/// or above this is answered conservatively (`true`).
const FILTER_MAX_PAGES: usize = ((1u64 << 32) / (FILTER_PAGE_LINES * crate::LINE_SIZE)) as usize;

/// A one-bit-per-line membership *superset* filter over the address space.
///
/// The SMC detection unit must check, on **every** store / flush /
/// prefetch, whether the touched line might be code-resident
/// (`Engine::smc_conflict`). That exact check walks an L1i set plus both
/// threads' fetch windows — cheap in isolation, but it sits on the hot
/// path of data-heavy victims where essentially every store targets the
/// data segment and the answer is always "no". `LineFilter` makes that
/// common case one shift-and-mask: the hierarchy marks every line it ever
/// inserts into the L1i, never clears individual bits (only whole-machine
/// [`LineFilter::clear`]), so a clear bit *proves* the line was never
/// fetched as code and the exact probe can be skipped. Set bits say
/// nothing (the line may since have been evicted) and fall through to the
/// exact check, so stale bits cost a probe, never correctness.
///
/// Storage is a lazily-allocated paged bitmap (one 512-byte page per
/// 256 KiB of address space) capped at 4 GiB; beyond the cap queries are
/// unconditionally conservative and inserts are dropped.
///
/// ```
/// use smack_uarch::cache::LineFilter;
/// use smack_uarch::Addr;
///
/// let mut f = LineFilter::new();
/// assert!(!f.maybe_contains(Addr(0x1000)));
/// f.insert(Addr(0x1000));
/// assert!(f.maybe_contains(Addr(0x1008))); // same line
/// assert!(!f.maybe_contains(Addr(0x2000)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LineFilter {
    pages: Vec<Option<Box<[u64; 64]>>>,
}

impl LineFilter {
    /// An empty filter (no storage allocated yet).
    pub fn new() -> LineFilter {
        LineFilter::default()
    }

    #[inline]
    fn locate(addr: Addr) -> (usize, usize, u64) {
        let line_idx = addr.0 / crate::LINE_SIZE;
        let page = (line_idx / FILTER_PAGE_LINES) as usize;
        let bit = line_idx % FILTER_PAGE_LINES;
        (page, (bit / 64) as usize, 1u64 << (bit % 64))
    }

    /// Mark the line containing `addr` as possibly code-resident.
    /// Addresses beyond the 4 GiB tracking cap are ignored (queries there
    /// already answer conservatively).
    #[inline]
    pub fn insert(&mut self, addr: Addr) {
        let (page, word, mask) = Self::locate(addr);
        if page >= FILTER_MAX_PAGES {
            return;
        }
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
        }
        let words = self.pages[page].get_or_insert_with(|| Box::new([0u64; 64]));
        words[word] |= mask;
    }

    /// `false` proves the line containing `addr` was never inserted;
    /// `true` means "maybe" (or "beyond the tracked range").
    #[inline]
    pub fn maybe_contains(&self, addr: Addr) -> bool {
        let (page, word, mask) = Self::locate(addr);
        if page >= FILTER_MAX_PAGES {
            return true;
        }
        match self.pages.get(page) {
            Some(Some(words)) => words[word] & mask != 0,
            _ => false,
        }
    }

    /// Forget everything (whole-machine reset). Keeps allocated pages,
    /// zeroed in place, so steady-state resets don't churn the allocator.
    pub fn clear(&mut self) {
        for page in self.pages.iter_mut().flatten() {
            page.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheGeometry { sets: 4, ways: 2 })
    }

    #[test]
    fn insert_and_contains() {
        let mut c = small();
        assert!(c.insert(Addr(0), false).is_none());
        assert!(c.contains(Addr(0)));
        assert!(c.contains(Addr(63))); // same line
        assert!(!c.contains(Addr(64))); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 lines for a 4-set cache: stride = 4 * 64 = 256 bytes.
        c.insert(Addr(0), false);
        c.insert(Addr(256), false);
        c.touch(Addr(0)); // 256 is now LRU
        let ev = c.insert(Addr(512), false).expect("eviction");
        assert_eq!(ev.line, Addr(256));
        assert!(c.contains(Addr(0)));
        assert!(c.contains(Addr(512)));
    }

    #[test]
    fn dirty_bit_propagates_through_eviction() {
        let mut c = small();
        c.insert(Addr(0), true);
        c.insert(Addr(256), false);
        let ev = c.insert(Addr(512), false).unwrap();
        assert_eq!(ev, Evicted { line: Addr(0), dirty: true });
    }

    #[test]
    fn reinsert_ors_dirty() {
        let mut c = small();
        c.insert(Addr(0), false);
        c.insert(Addr(0), true);
        assert!(c.is_dirty(Addr(0)));
        assert!(c.clean(Addr(0)));
        assert!(!c.is_dirty(Addr(0)));
        assert!(c.contains(Addr(0)));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(Addr(64), true);
        let ev = c.invalidate(Addr(64)).unwrap();
        assert!(ev.dirty);
        assert!(!c.contains(Addr(64)));
        assert!(c.invalidate(Addr(64)).is_none());
    }

    #[test]
    fn occupancy_counts() {
        let mut c = small();
        for i in 0..8u64 {
            c.insert(Addr(i * 64), false);
        }
        assert_eq!(c.occupancy(), 8);
        c.flush_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn set_isolation() {
        let mut c = small();
        // Fill set 0 beyond capacity; set 1 must be untouched.
        c.insert(Addr(0), false);
        c.insert(Addr(256), false);
        c.insert(Addr(512), false);
        c.insert(Addr(64), false); // set 1
        assert!(c.contains(Addr(64)));
        assert_eq!(c.lines_in_set(1).collect::<Vec<_>>(), vec![Addr(64)]);
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn line_filter_tracks_lines_not_bytes() {
        let mut f = LineFilter::new();
        f.insert(Addr(0x10_0007));
        // Every byte of the same 64-byte line answers "maybe".
        assert!(f.maybe_contains(Addr(0x10_0000)));
        assert!(f.maybe_contains(Addr(0x10_003f)));
        // Neighboring lines stay provably absent.
        assert!(!f.maybe_contains(Addr(0x10_0040)));
        assert!(!f.maybe_contains(Addr(0x0f_ffc0)));
    }

    #[test]
    fn line_filter_page_boundaries() {
        let mut f = LineFilter::new();
        let page_bytes = FILTER_PAGE_LINES * crate::LINE_SIZE;
        // Last line of page 0 and first line of page 3.
        f.insert(Addr(page_bytes - 1));
        f.insert(Addr(3 * page_bytes));
        assert!(f.maybe_contains(Addr(page_bytes - 64)));
        assert!(!f.maybe_contains(Addr(page_bytes)));
        assert!(f.maybe_contains(Addr(3 * page_bytes + 63)));
        // Page 2 was never allocated: still a definite no.
        assert!(!f.maybe_contains(Addr(2 * page_bytes)));
    }

    #[test]
    fn line_filter_is_conservative_beyond_cap() {
        let mut f = LineFilter::new();
        let beyond = Addr(1u64 << 33);
        // Never inserted, but out of range → must answer "maybe".
        assert!(f.maybe_contains(beyond));
        // Inserting out of range is a no-op, not a huge allocation.
        f.insert(beyond);
        assert!(f.pages.is_empty());
    }

    #[test]
    fn line_filter_clear_forgets_in_place() {
        let mut f = LineFilter::new();
        f.insert(Addr(0x4000));
        let pages_before = f.pages.len();
        f.clear();
        assert!(!f.maybe_contains(Addr(0x4000)));
        assert_eq!(f.pages.len(), pages_before);
    }
}
