//! A single set-associative cache with true-LRU replacement.

use crate::addr::Addr;

/// Geometry of one cache level (line size is globally 64 bytes).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * crate::LINE_SIZE as usize
    }
}

#[derive(Copy, Clone, Debug)]
struct LineEntry {
    /// Line-aligned address stored in this way.
    line: u64,
    dirty: bool,
    /// LRU stamp; larger is more recent.
    stamp: u64,
}

/// A line evicted to make room for a fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Evicted {
    /// Line-aligned address that was evicted.
    pub line: Addr,
    /// Whether the evicted line was dirty.
    pub dirty: bool,
}

/// A set-associative, true-LRU cache over 64-byte lines.
///
/// ```
/// use smack_uarch::cache::{Cache, CacheGeometry};
/// use smack_uarch::Addr;
///
/// let mut c = Cache::new(CacheGeometry { sets: 64, ways: 8 });
/// c.insert(Addr(0x1000), false);
/// assert!(c.contains(Addr(0x1000)));
/// assert!(!c.contains(Addr(0x2000)));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geom: CacheGeometry,
    sets: Vec<Vec<LineEntry>>,
    clock: u64,
}

impl Cache {
    /// Create an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(geom: CacheGeometry) -> Cache {
        assert!(geom.sets.is_power_of_two(), "sets must be a power of two");
        assert!(geom.ways > 0, "ways must be nonzero");
        Cache {
            geom,
            sets: (0..geom.sets).map(|_| Vec::with_capacity(geom.ways)).collect(),
            clock: 0,
        }
    }

    /// Geometry of this cache.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_of(&self, addr: Addr) -> usize {
        addr.set_index(self.geom.sets)
    }

    /// Whether the line containing `addr` is present.
    pub fn contains(&self, addr: Addr) -> bool {
        let line = addr.line().0;
        self.sets[self.set_of(addr)].iter().any(|e| e.line == line)
    }

    /// Whether the line containing `addr` is present and dirty.
    pub fn is_dirty(&self, addr: Addr) -> bool {
        let line = addr.line().0;
        self.sets[self.set_of(addr)].iter().any(|e| e.line == line && e.dirty)
    }

    /// Mark the line as most-recently-used. Returns `true` if it was present.
    pub fn touch(&mut self, addr: Addr) -> bool {
        let line = addr.line().0;
        let set = self.set_of(addr);
        self.clock += 1;
        let stamp = self.clock;
        for e in &mut self.sets[set] {
            if e.line == line {
                e.stamp = stamp;
                return true;
            }
        }
        false
    }

    /// Insert (fill) the line containing `addr`, evicting the LRU way if the
    /// set is full. Touching an already-present line updates LRU and ORs in
    /// the dirty bit.
    pub fn insert(&mut self, addr: Addr, dirty: bool) -> Option<Evicted> {
        let line = addr.line().0;
        let set = self.set_of(addr);
        self.clock += 1;
        let stamp = self.clock;
        let ways = self.geom.ways;
        let entries = &mut self.sets[set];
        for e in entries.iter_mut() {
            if e.line == line {
                e.stamp = stamp;
                e.dirty |= dirty;
                return None;
            }
        }
        let mut evicted = None;
        if entries.len() >= ways {
            let (idx, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .expect("set is full, so nonempty");
            let victim = entries.swap_remove(idx);
            evicted = Some(Evicted { line: Addr(victim.line), dirty: victim.dirty });
        }
        entries.push(LineEntry { line, dirty, stamp });
        evicted
    }

    /// Set the dirty bit on a present line. Returns `true` if present.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let line = addr.line().0;
        let set = self.set_of(addr);
        for e in &mut self.sets[set] {
            if e.line == line {
                e.dirty = true;
                return true;
            }
        }
        false
    }

    /// Clear the dirty bit on a present line (write-back). Returns `true`
    /// if the line was present and dirty.
    pub fn clean(&mut self, addr: Addr) -> bool {
        let line = addr.line().0;
        let set = self.set_of(addr);
        for e in &mut self.sets[set] {
            if e.line == line {
                let was = e.dirty;
                e.dirty = false;
                return was;
            }
        }
        false
    }

    /// Remove the line containing `addr`. Returns the evicted entry if it
    /// was present.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Evicted> {
        let line = addr.line().0;
        let set = self.set_of(addr);
        let entries = &mut self.sets[set];
        if let Some(idx) = entries.iter().position(|e| e.line == line) {
            let victim = entries.swap_remove(idx);
            return Some(Evicted { line: Addr(victim.line), dirty: victim.dirty });
        }
        None
    }

    /// Invalidate every line (e.g. `wbinvd`).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Lines currently resident in set `set`, in no particular order.
    /// Borrows instead of allocating — callers that need a `Vec` collect
    /// explicitly; diagnostic sweeps over many sets stay allocation-free.
    pub fn lines_in_set(&self, set: usize) -> impl Iterator<Item = Addr> + '_ {
        self.sets[set].iter().map(|e| Addr(e.line))
    }

    /// Number of valid lines across all sets.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// The least-recently-used line in `set`, if the set is nonempty.
    pub fn lru_line(&self, set: usize) -> Option<Addr> {
        self.sets[set].iter().min_by_key(|e| e.stamp).map(|e| Addr(e.line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheGeometry { sets: 4, ways: 2 })
    }

    #[test]
    fn insert_and_contains() {
        let mut c = small();
        assert!(c.insert(Addr(0), false).is_none());
        assert!(c.contains(Addr(0)));
        assert!(c.contains(Addr(63))); // same line
        assert!(!c.contains(Addr(64))); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 lines for a 4-set cache: stride = 4 * 64 = 256 bytes.
        c.insert(Addr(0), false);
        c.insert(Addr(256), false);
        c.touch(Addr(0)); // 256 is now LRU
        let ev = c.insert(Addr(512), false).expect("eviction");
        assert_eq!(ev.line, Addr(256));
        assert!(c.contains(Addr(0)));
        assert!(c.contains(Addr(512)));
    }

    #[test]
    fn dirty_bit_propagates_through_eviction() {
        let mut c = small();
        c.insert(Addr(0), true);
        c.insert(Addr(256), false);
        let ev = c.insert(Addr(512), false).unwrap();
        assert_eq!(ev, Evicted { line: Addr(0), dirty: true });
    }

    #[test]
    fn reinsert_ors_dirty() {
        let mut c = small();
        c.insert(Addr(0), false);
        c.insert(Addr(0), true);
        assert!(c.is_dirty(Addr(0)));
        assert!(c.clean(Addr(0)));
        assert!(!c.is_dirty(Addr(0)));
        assert!(c.contains(Addr(0)));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(Addr(64), true);
        let ev = c.invalidate(Addr(64)).unwrap();
        assert!(ev.dirty);
        assert!(!c.contains(Addr(64)));
        assert!(c.invalidate(Addr(64)).is_none());
    }

    #[test]
    fn occupancy_counts() {
        let mut c = small();
        for i in 0..8u64 {
            c.insert(Addr(i * 64), false);
        }
        assert_eq!(c.occupancy(), 8);
        c.flush_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn set_isolation() {
        let mut c = small();
        // Fill set 0 beyond capacity; set 1 must be untouched.
        c.insert(Addr(0), false);
        c.insert(Addr(256), false);
        c.insert(Addr(512), false);
        c.insert(Addr(64), false); // set 1
        assert!(c.contains(Addr(64)));
        assert_eq!(c.lines_in_set(1).collect::<Vec<_>>(), vec![Addr(64)]);
        assert_eq!(c.occupancy(), 3);
    }
}
