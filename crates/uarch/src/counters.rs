//! Hardware performance counters.
//!
//! One unified event enumeration covers the Intel and AMD events that
//! SMaCk's reverse engineering (§4.2) and detection tool (§6.1) rely on.
//! Events specific to one vendor simply stay at zero on the other, exactly
//! like programming a raw event code the PMU does not implement.

use std::fmt;

/// A performance event, named after the vendor event it models.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PerfEvent {
    // ---- architectural / common ----------------------------------------
    /// Instructions retired.
    InstRetired,
    /// Conditional branches retired (`BR_INST_RETIRED.ALL_BRANCHES`).
    BrInstRetired,
    /// Mispredicted branches retired (`BR_MISP_RETIRED.ALL_BRANCHES`).
    BrMispRetired,
    /// L1 instruction cache misses.
    L1iMisses,
    /// L2 misses (either side).
    L2Misses,
    /// LLC references.
    LlcReferences,
    /// LLC misses.
    LlcMisses,
    /// iTLB misses causing a page walk.
    ItlbMisses,
    /// dTLB misses causing a page walk.
    DtlbMisses,

    // ---- Intel ----------------------------------------------------------
    /// `MACHINE_CLEARS.COUNT` — machine clears of any type.
    MachineClearsCount,
    /// `MACHINE_CLEARS.SMC` — clears attributed to self-modifying code.
    /// Note the hardware quirk reproduced from the paper: `clflushopt` and
    /// `clwb` bump this counter twice per conflict.
    MachineClearsSmc,
    /// `CYCLE_ACTIVITY.STALLS_TOTAL` — total execution stall cycles.
    CycleActivityStallsTotal,
    /// `FRONTEND_RETIRED.IDQ_4_BUBBLES` — cycles the front-end delivered no
    /// µops.
    FrontendIdq4Bubbles,
    /// `INT_MISC.CLEAR_RESTEER_CYCLES` — issue-stall cycles after a clear
    /// while the front-end resteers.
    IntMiscClearResteerCycles,
    /// `PARTIAL_RAT_STALLS.SCOREBOARD` — issue-pipeline stalls due to
    /// serializing operations.
    PartialRatStallsScoreboard,

    // ---- AMD ------------------------------------------------------------
    /// `INSTRUCTION_PIPE_STALL.BACK_PRESSURE`.
    AmdPipeStallBackPressure,
    /// `INSTRUCTION_CACHE_LINES_INVALIDATED.FILL_INVALIDATED`.
    AmdIcLinesInvalidated,
    /// `CYCLES_WITH_FILL_PENDING_FROM_L2.L2_FILL_BUSY`.
    AmdL2FillBusy,

    // ---- simulator-internal ----------------------------------------------
    /// Full `DecodedProgram` recompiles taken by [`patch_code`] when the
    /// in-place [`patch`] fast path refuses a write (unmapped pc or changed
    /// instruction length). Not a hardware event: it makes the engine's
    /// silent slow path visible in the counter bank and the engine bench.
    ///
    /// [`patch_code`]: crate::engine::Engine::patch_code
    /// [`patch`]: crate::decoded::DecodedProgram::patch
    SimPatchRecompiles,
    /// Probe sequences retired through the fused probe tier
    /// ([`run_fused_probe`]). Not a hardware event: together with
    /// [`SimProbeFallback`] it makes the fused-vs-per-step probe rate
    /// observable in tests and the engine bench.
    ///
    /// [`run_fused_probe`]: crate::engine::Engine::run_fused_probe
    /// [`SimProbeFallback`]: PerfEvent::SimProbeFallback
    SimProbeFastPath,
    /// Probe sequences that the fused tier refused (guards tripped:
    /// sibling runnable, tracing/fetch-log enabled, speculation live, or
    /// fusion disabled) and that fell back to per-step execution.
    SimProbeFallback,
}

impl PerfEvent {
    /// Every modeled event, in a stable order.
    pub const ALL: [PerfEvent; 21] = [
        PerfEvent::InstRetired,
        PerfEvent::BrInstRetired,
        PerfEvent::BrMispRetired,
        PerfEvent::L1iMisses,
        PerfEvent::L2Misses,
        PerfEvent::LlcReferences,
        PerfEvent::LlcMisses,
        PerfEvent::ItlbMisses,
        PerfEvent::DtlbMisses,
        PerfEvent::MachineClearsCount,
        PerfEvent::MachineClearsSmc,
        PerfEvent::CycleActivityStallsTotal,
        PerfEvent::FrontendIdq4Bubbles,
        PerfEvent::IntMiscClearResteerCycles,
        PerfEvent::PartialRatStallsScoreboard,
        PerfEvent::AmdPipeStallBackPressure,
        PerfEvent::AmdIcLinesInvalidated,
        PerfEvent::AmdL2FillBusy,
        PerfEvent::SimPatchRecompiles,
        PerfEvent::SimProbeFastPath,
        PerfEvent::SimProbeFallback,
    ];

    fn slot(self) -> usize {
        // Declaration order matches `ALL` (locked by the `all_slots_unique`
        // test), so the discriminant is the slot — counter bumps on the hot
        // step path must not scan a lookup table.
        self as usize
    }

    /// The vendor event-name string, as PAPI/perf would show it.
    pub fn name(self) -> &'static str {
        match self {
            PerfEvent::InstRetired => "INST_RETIRED.ANY",
            PerfEvent::BrInstRetired => "BR_INST_RETIRED.ALL_BRANCHES",
            PerfEvent::BrMispRetired => "BR_MISP_RETIRED.ALL_BRANCHES",
            PerfEvent::L1iMisses => "ICACHE_64B.IFTAG_MISS",
            PerfEvent::L2Misses => "L2_RQSTS.MISS",
            PerfEvent::LlcReferences => "LONGEST_LAT_CACHE.REFERENCE",
            PerfEvent::LlcMisses => "LONGEST_LAT_CACHE.MISS",
            PerfEvent::ItlbMisses => "ITLB_MISSES.WALK_COMPLETED",
            PerfEvent::DtlbMisses => "DTLB_LOAD_MISSES.WALK_COMPLETED",
            PerfEvent::MachineClearsCount => "MACHINE_CLEARS.COUNT",
            PerfEvent::MachineClearsSmc => "MACHINE_CLEARS.SMC",
            PerfEvent::CycleActivityStallsTotal => "CYCLE_ACTIVITY.STALLS_TOTAL",
            PerfEvent::FrontendIdq4Bubbles => "FRONTEND_RETIRED.IDQ_4_BUBBLES",
            PerfEvent::IntMiscClearResteerCycles => "INT_MISC.CLEAR_RESTEER_CYCLES",
            PerfEvent::PartialRatStallsScoreboard => "PARTIAL_RAT_STALLS.SCOREBOARD",
            PerfEvent::AmdPipeStallBackPressure => "INSTRUCTION_PIPE_STALL.BACK_PRESSURE",
            PerfEvent::AmdIcLinesInvalidated => {
                "INSTRUCTION_CACHE_LINES_INVALIDATED.FILL_INVALIDATED"
            }
            PerfEvent::AmdL2FillBusy => "CYCLES_WITH_FILL_PENDING_FROM_L2.L2_FILL_BUSY",
            PerfEvent::SimPatchRecompiles => "SIM.PATCH_RECOMPILES",
            PerfEvent::SimProbeFastPath => "SIM.PROBE_FAST_PATH",
            PerfEvent::SimProbeFallback => "SIM.PROBE_FALLBACK",
        }
    }
}

impl fmt::Display for PerfEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A read-only snapshot of every counter, for delta computation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CounterSnapshot {
    values: [u64; PerfEvent::ALL.len()],
}

impl CounterSnapshot {
    /// Value of `event` at snapshot time.
    pub fn read(&self, event: PerfEvent) -> u64 {
        self.values[event.slot()]
    }
}

/// A bank of always-on performance counters.
///
/// ```
/// use smack_uarch::{CounterBank, PerfEvent};
/// let mut b = CounterBank::new();
/// let before = b.snapshot();
/// b.add(PerfEvent::MachineClearsSmc, 2);
/// assert_eq!(b.delta(&before, PerfEvent::MachineClearsSmc), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CounterBank {
    values: [u64; PerfEvent::ALL.len()],
}

impl CounterBank {
    /// New bank with all counters at zero.
    pub fn new() -> CounterBank {
        CounterBank::default()
    }

    /// Increment `event` by `n`.
    ///
    /// Superblock retirement leans on this being a plain saturating-free
    /// addition: one `add(InstRetired, n)` at block retire must equal `n`
    /// per-step bumps (the `batched_add_equals_single_adds` test locks
    /// that contract).
    #[inline]
    pub fn add(&mut self, event: PerfEvent, n: u64) {
        self.values[event.slot()] += n;
    }

    /// Current value of `event`.
    pub fn read(&self, event: PerfEvent) -> u64 {
        self.values[event.slot()]
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot { values: self.values }
    }

    /// `event` delta since `before`.
    pub fn delta(&self, before: &CounterSnapshot, event: PerfEvent) -> u64 {
        self.read(event) - before.read(event)
    }

    /// Reset every counter to zero.
    pub fn reset(&mut self) {
        self.values = [0; PerfEvent::ALL.len()];
    }

    /// Merge another bank into this one (used for core-wide totals).
    pub fn accumulate(&mut self, other: &CounterBank) {
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read() {
        let mut b = CounterBank::new();
        b.add(PerfEvent::MachineClearsCount, 3);
        assert_eq!(b.read(PerfEvent::MachineClearsCount), 3);
        assert_eq!(b.read(PerfEvent::MachineClearsSmc), 0);
    }

    #[test]
    fn snapshot_deltas() {
        let mut b = CounterBank::new();
        b.add(PerfEvent::LlcMisses, 5);
        let snap = b.snapshot();
        b.add(PerfEvent::LlcMisses, 7);
        assert_eq!(b.delta(&snap, PerfEvent::LlcMisses), 7);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = CounterBank::new();
        let mut b = CounterBank::new();
        a.add(PerfEvent::InstRetired, 10);
        b.add(PerfEvent::InstRetired, 32);
        a.accumulate(&b);
        assert_eq!(a.read(PerfEvent::InstRetired), 42);
    }

    #[test]
    fn batched_add_equals_single_adds() {
        // The superblock path retires a whole fused run with one add();
        // snapshots and deltas taken around it must be indistinguishable
        // from per-step retirement.
        let mut batched = CounterBank::new();
        let mut stepped = CounterBank::new();
        let (b0, s0) = (batched.snapshot(), stepped.snapshot());
        batched.add(PerfEvent::InstRetired, 1000);
        for _ in 0..1000 {
            stepped.add(PerfEvent::InstRetired, 1);
        }
        assert_eq!(batched.read(PerfEvent::InstRetired), stepped.read(PerfEvent::InstRetired));
        assert_eq!(
            batched.delta(&b0, PerfEvent::InstRetired),
            stepped.delta(&s0, PerfEvent::InstRetired)
        );
        assert_eq!(batched.snapshot(), stepped.snapshot());
    }

    #[test]
    fn all_slots_unique() {
        for (i, e) in PerfEvent::ALL.iter().enumerate() {
            assert_eq!(e.slot(), i);
        }
    }

    #[test]
    fn names_are_nonempty_and_unique() {
        let mut names: Vec<_> = PerfEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
