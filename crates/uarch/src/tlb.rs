//! A small fully-associative LRU translation lookaside buffer.
//!
//! SMaCk's oracle preparation (Listing 1) warms the TLB entry for the oracle
//! page before timing anything, precisely so that page walks do not pollute
//! the measurements; modeling the TLB lets the reproduction show why that
//! step matters.

use crate::addr::Addr;

/// A fully-associative LRU TLB over 4 KiB pages.
///
/// ```
/// use smack_uarch::tlb::Tlb;
/// use smack_uarch::Addr;
///
/// let mut t = Tlb::new(4);
/// assert!(!t.access(Addr(0x1000)));
/// assert!(t.access(Addr(0x1fff))); // same page
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    capacity: usize,
    entries: Vec<(u64, u64)>, // (page, stamp)
    clock: u64,
}

impl Tlb {
    /// Create a TLB holding `capacity` page translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB capacity must be nonzero");
        Tlb { capacity, entries: Vec::with_capacity(capacity), clock: 0 }
    }

    /// Access the page containing `addr`. Returns `true` on a TLB hit;
    /// on a miss the translation is installed (evicting LRU if full).
    #[inline]
    pub fn access(&mut self, addr: Addr) -> bool {
        let page = addr.page().0;
        self.clock += 1;
        let stamp = self.clock;
        for e in &mut self.entries {
            if e.0 == page {
                e.1 = stamp;
                return true;
            }
        }
        if self.entries.len() >= self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .expect("full TLB is nonempty");
            self.entries.swap_remove(idx);
        }
        self.entries.push((page, stamp));
        false
    }

    /// Whether the page containing `addr` is currently mapped (no side
    /// effects).
    pub fn contains(&self, addr: Addr) -> bool {
        let page = addr.page().0;
        self.entries.iter().any(|e| e.0 == page)
    }

    /// Drop all translations.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Number of resident translations.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(2);
        assert!(!t.access(Addr(0)));
        assert!(t.access(Addr(100)));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(Addr(0x0000));
        t.access(Addr(0x1000));
        t.access(Addr(0x0000)); // 0x1000 is LRU
        t.access(Addr(0x2000)); // evicts 0x1000
        assert!(t.contains(Addr(0x0000)));
        assert!(!t.contains(Addr(0x1000)));
        assert!(t.contains(Addr(0x2000)));
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(2);
        t.access(Addr(0));
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert!(!t.access(Addr(0)));
    }
}
