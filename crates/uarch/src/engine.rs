//! The SMT execution engine.
//!
//! Two hardware threads share one physical core: the L1i/L1d/L2/LLC
//! hierarchy, the branch predictor, and — crucially — the pipeline that an
//! SMC machine clear flushes. Each thread owns a local cycle clock;
//! higher-level code (the [`crate::machine::Machine`] scheduler) always
//! advances the thread that is behind, so cross-thread interactions happen
//! in approximately causal order.
//!
//! ## Timing model
//!
//! Values are computed eagerly (architecturally correct immediately); *time*
//! is modeled with per-register readiness stamps. A load costs one issue
//! cycle and marks its destination ready `latency` cycles later; `mfence`
//! and `rdtsc`-bracketed probe sequences surface those latencies, exactly
//! like the paper's measurement harness (Listing 2). Conditional branches
//! whose flags are not ready yet consult the PHT; a wrong prediction
//! executes the wrong path with buffered stores until the flags arrive,
//! then rolls back architectural state — but cache and TLB fills survive,
//! which is the ISpectre transmission channel.
//!
//! ## SMC detection
//!
//! Store/flush/prefetch-class instructions aimed at a line that is resident
//! in the L1i (or in either thread's in-flight fetch window) trigger a
//! *machine clear* when the microarchitecture's [`crate::profile::SmcMatrix`]
//! says so: both threads' front-ends are flushed, the sibling is stalled for
//! `sibling_stall` (~235) cycles, the line is invalidated from the L1i, and
//! the vendor's performance counters are charged per the paper's Figure 2
//! reverse engineering.

use std::error::Error;
use std::fmt;

use crate::addr::Addr;
use crate::asm::Program;
use crate::bpu::BranchPredictor;
use crate::counters::{CounterBank, PerfEvent};
use crate::decoded::{DecodedProgram, MicroOp, NO_IDX};
use crate::hierarchy::{AccessInfo, CacheHierarchy, Level, Residency};
use crate::isa::{Cond, Flags, Instr, MemRef, MemSize, Reg};
use crate::mem::Memory;
use crate::noise::{NoiseConfig, NoiseSource};
use crate::profile::{ProbeKind, SmcBehavior, UarchProfile, Vendor};
use crate::tlb::Tlb;
use crate::trace::{Event, Tracer};

/// Return-address sentinel marking the boundary of an injected call: when a
/// `ret` pops this value the thread parks itself back in [`ThreadState::Idle`].
pub const RETURN_SENTINEL: u64 = 0xffff_ffff_0000_0000;

/// Identifier of one of the two SMT threads of the simulated physical core.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ThreadId {
    /// Logical processor 0.
    T0,
    /// Logical processor 1.
    T1,
}

impl ThreadId {
    /// Index (0 or 1).
    pub fn index(self) -> usize {
        match self {
            ThreadId::T0 => 0,
            ThreadId::T1 => 1,
        }
    }

    /// The other hardware thread on the same core.
    pub fn sibling(self) -> ThreadId {
        match self {
            ThreadId::T0 => ThreadId::T1,
            ThreadId::T1 => ThreadId::T0,
        }
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.index())
    }
}

/// Execution state of a thread.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ThreadState {
    /// Not running a program; accepts injected instructions.
    #[default]
    Idle,
    /// Executing a loaded program.
    Running,
    /// Executed `halt` (or returned with an empty call stack).
    Halted,
}

/// Errors surfaced while stepping the engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepError {
    /// No instruction is mapped at the program counter.
    NoInstruction {
        /// Offending address.
        pc: u64,
    },
    /// The probe instruction does not exist on this microarchitecture
    /// (an `×` cell in Table 3, e.g. `clwb` before Sky Lake).
    Unsupported {
        /// Probe class that is unavailable.
        kind: ProbeKind,
    },
    /// Tried to step a thread that is not running.
    NotRunning {
        /// The thread in question.
        tid: ThreadId,
    },
    /// An injected sequence contained a branch (only straight-line code and
    /// calls may be injected).
    ControlFlowInjected,
    /// A run exceeded its instruction budget.
    StepLimit,
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::NoInstruction { pc } => write!(f, "no instruction at {pc:#x}"),
            StepError::Unsupported { kind } => {
                write!(f, "`{kind}` is not supported on this microarchitecture")
            }
            StepError::NotRunning { tid } => write!(f, "thread {tid} is not running"),
            StepError::ControlFlowInjected => {
                write!(f, "injected sequences cannot contain branches")
            }
            StepError::StepLimit => write!(f, "instruction budget exhausted"),
        }
    }
}

impl Error for StepError {}

/// Result of running an injected sequence.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SeqOutcome {
    /// Cycles the sequence consumed on its thread.
    pub cycles: u64,
    /// Thread-local clock when the sequence finished.
    pub end_clock: u64,
}

#[derive(Clone, Debug)]
struct SpecState {
    ckpt_regs: [u64; Reg::COUNT],
    ckpt_ready: [u64; Reg::COUNT],
    ckpt_flags: Flags,
    ckpt_flags_ready: u64,
    ckpt_stack_len: usize,
    correct_pc: u64,
    resolve_at: u64,
    budget: u32,
    wrong_path: u32,
    branch_pc: u64,
    buffered_stores: Vec<(Addr, u64, MemSize)>,
}

#[derive(Clone, Debug)]
struct Thread {
    state: ThreadState,
    regs: [u64; Reg::COUNT],
    ready: [u64; Reg::COUNT],
    flags: Flags,
    flags_ready: u64,
    pc: u64,
    /// Index of the instruction at `pc` in the engine's decoded table, or
    /// [`NO_IDX`] when unknown (resolved lazily with one hash probe). Kept
    /// in lockstep with `pc`: sequential flow and static branches copy the
    /// pre-resolved successor index; every other `pc` writer invalidates it.
    pc_idx: u32,
    clock: u64,
    stack: Vec<u64>,
    last_fetch_line: u64,
    /// Lines in the in-flight fetch window, `u64::MAX` = empty slot
    /// (a fixed ring; see [`FETCH_WINDOW`]).
    fetch_window: [u64; FETCH_WINDOW],
    fetch_window_next: usize,
    pending_mem: u64,
    /// Active wrong-path speculation. Boxed: mispredictions are rare, and
    /// keeping the large checkpoint out of line both shrinks the thread
    /// (better locality for the hot fields) and turns the per-step
    /// `is_some` check into a null test.
    spec: Option<Box<SpecState>>,
    counters: CounterBank,
}

impl Thread {
    fn new() -> Thread {
        Thread {
            state: ThreadState::Idle,
            regs: [0; Reg::COUNT],
            ready: [0; Reg::COUNT],
            flags: Flags::default(),
            flags_ready: 0,
            pc: 0,
            pc_idx: NO_IDX,
            clock: 0,
            stack: Vec::new(),
            fetch_window: [u64::MAX; FETCH_WINDOW],
            fetch_window_next: 0,
            last_fetch_line: u64::MAX,
            pending_mem: 0,
            spec: None,
            counters: CounterBank::new(),
        }
    }

    /// Restore the power-on state in place, keeping the stack and
    /// fetch-window allocations.
    fn reset(&mut self) {
        self.state = ThreadState::Idle;
        self.regs = [0; Reg::COUNT];
        self.ready = [0; Reg::COUNT];
        self.flags = Flags::default();
        self.flags_ready = 0;
        self.pc = 0;
        self.pc_idx = NO_IDX;
        self.clock = 0;
        self.stack.clear();
        self.fetch_window = [u64::MAX; FETCH_WINDOW];
        self.fetch_window_next = 0;
        self.last_fetch_line = u64::MAX;
        self.pending_mem = 0;
        self.spec = None;
        self.counters.reset();
    }
}

/// Lines tracked in the in-flight fetch window used for SMC detection.
const FETCH_WINDOW: usize = 2;

/// Placeholder `AccessInfo` for batched-fetch out-parameters; every slot
/// handed to [`CacheHierarchy::fetch_lines`] is overwritten before use.
const COLD_ACCESS: AccessInfo = AccessInfo { level: Level::Dram, latency: 0, was_in_l1i: false };

enum Next {
    Seq,
    Jump(u64),
    Stop,
}

/// Signal returned by injected-instruction execution.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum InjectedNext {
    /// The instruction completed; continue with the next one.
    Done,
    /// The instruction was a call; the caller must run the thread's program
    /// until it returns to idle.
    EnterCall {
        /// Call target address.
        target: u64,
    },
}

/// Default superblock setting: on, unless the `SMACK_SUPERBLOCK`
/// environment variable is set to `0` (the CI determinism gate runs the
/// repro both ways and diffs CSVs, exactly like `SMACK_BURST`).
fn superblocks_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("SMACK_SUPERBLOCK").map(|v| v != "0").unwrap_or(true))
}

/// Default fused-probe setting: on, unless the `SMACK_FUSED_PROBES`
/// environment variable is set to `0` (the CI determinism gate runs the
/// repro both ways and diffs CSVs, exactly like `SMACK_SUPERBLOCK`).
fn fused_probes_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("SMACK_FUSED_PROBES").map(|v| v != "0").unwrap_or(true))
}

/// A probe sequence precompiled for the fused probe tier: the classic
/// `mfence; rdtsc; <op>; mfence; rdtsc` five-instruction template from
/// `probe_sequence`, recognized once at construction so
/// [`Engine::run_fused_probe`] can retire the whole sequence in one
/// specialized pass instead of five injected-instruction round trips.
///
/// `compile` returns `None` for sequences whose timed operation the fused
/// tier does not model (notably `Execute` probes, whose `call` enters the
/// victim program); those keep running per-step.
#[derive(Copy, Clone, Debug)]
pub struct CompiledProbe {
    /// The original five-instruction sequence — the per-step fallback
    /// executes exactly this.
    instrs: [Instr; 5],
    /// Destination register of the opening `rdtsc`.
    t_start: Reg,
    /// Destination register of the closing `rdtsc`.
    t_end: Reg,
    /// The timed middle operation.
    op: Instr,
}

impl CompiledProbe {
    /// Recognize the probe template, or `None` when the sequence must run
    /// per-step. The middle-op whitelist is exactly the set of operations
    /// [`Engine::run_fused_probe`] replicates bit-for-bit from `exec`.
    pub fn compile(instrs: &[Instr; 5]) -> Option<CompiledProbe> {
        let (t_start, t_end) = match (instrs[0], instrs[1], instrs[3], instrs[4]) {
            (Instr::Mfence, Instr::Rdtsc { dst: a }, Instr::Mfence, Instr::Rdtsc { dst: b }) => {
                (a, b)
            }
            _ => return None,
        };
        let op = instrs[2];
        match op {
            Instr::Load { .. }
            | Instr::StoreImm { .. }
            | Instr::LockInc { .. }
            | Instr::Clflush { .. }
            | Instr::Clflushopt { .. }
            | Instr::Clwb { .. }
            | Instr::PrefetchT0 { .. }
            | Instr::PrefetchNta { .. } => {}
            _ => return None,
        }
        Some(CompiledProbe { instrs: *instrs, t_start, t_end, op })
    }

    /// The original five-instruction sequence (the per-step fallback).
    pub fn instrs(&self) -> &[Instr; 5] {
        &self.instrs
    }
}

/// Slots in the direct-mapped [`Engine::call_shape`] memo table.
const CALL_SHAPE_SLOTS: usize = 64;

/// Empty call-shape slot (`u64::MAX` is never a decodable call target).
const EMPTY_SHAPE: (u64, u64, u64, u32) = (u64::MAX, 0, 0, 0);

/// Largest batch [`Engine::run_fused_calls`] fuses in one pass — an
/// eviction set's way count with headroom.
const CALL_BATCH_MAX: usize = 16;

/// The two-thread core simulator. Usually driven through
/// [`crate::machine::Machine`].
pub struct Engine {
    profile: UarchProfile,
    threads: [Thread; 2],
    code: Program,
    /// Dense side table compiled from `code` at load time: the steady-state
    /// step loop chases successor indices through it instead of walking the
    /// program's `BTreeMap` per instruction.
    decoded: DecodedProgram,
    /// Whether `step` uses the decoded table (default) or the original
    /// map-lookup reference interpreter (A/B equivalence testing).
    use_decoded: bool,
    /// Whether burst execution may retire fused superblocks (default; see
    /// [`Engine::set_superblocks`]). Requires `use_decoded`.
    use_superblocks: bool,
    /// Whether injected probe sequences may retire through the fused probe
    /// tier (default; see [`Engine::set_fused_probes`]).
    use_fused_probes: bool,
    /// Memoized [`Engine::call_shape`] walks — `(target, nops, ret_pc,
    /// ret_idx)`, direct-mapped by a multiply-hash of the target address,
    /// valid while `call_shapes_gen` matches `decode_gen`. Sized for
    /// attacker working sets (an 8-way eviction set plus a few oracle
    /// lines): priming calls the same handful of targets millions of
    /// times per campaign, and one hash probe beats re-hashing
    /// `pc → index` in the decoded table's map every call.
    call_shapes: [(u64, u64, u64, u32); CALL_SHAPE_SLOTS],
    call_shapes_gen: u64,
    /// Bumped whenever the decoded table changes (load / patch / reset),
    /// invalidating `call_shapes`.
    decode_gen: u64,
    /// Upper bound on the cycle cost of any fused probe's pre-timer body
    /// (opening `mfence` sans drain, `rdtsc`, and the worst-case middle
    /// op). Precomputed from the immutable profile; `run_fused_probe`
    /// compares it against the noise schedule to decide whether the five
    /// per-instruction eviction draws can be coalesced into one.
    probe_op_bound: u64,
    mem: Memory,
    hier: CacheHierarchy,
    itlb: [Tlb; 2],
    dtlb: [Tlb; 2],
    bpu: BranchPredictor,
    noise: NoiseSource,
    tracer: Tracer,
    /// When enabled, every line-granular instruction fetch (architectural
    /// *and* speculative wrong-path) appends its line address here. Used by
    /// the static analyzer's soundness tests to compare the observed fetch
    /// footprint against the statically predicted one. `None` (the default)
    /// keeps the hot fetch path branch-predictable and allocation-free.
    fetch_log: Option<Vec<u64>>,
}

impl Engine {
    /// Create an engine for `profile`, with noise seeded by `seed`.
    pub fn new(profile: UarchProfile, noise: NoiseConfig, seed: u64) -> Engine {
        let hier = CacheHierarchy::new(profile.hierarchy);
        let itlb = [Tlb::new(profile.itlb_entries), Tlb::new(profile.itlb_entries)];
        let dtlb = [Tlb::new(profile.dtlb_entries), Tlb::new(profile.dtlb_entries)];
        let worst_op = ProbeKind::ALL
            .iter()
            .map(|k| {
                let c = profile.probe_costs.get(*k);
                let extra = c.l1d.max(c.l2).max(c.llc).max(c.dram).max(c.smc_extra);
                (c.base + extra) as u64
            })
            .max()
            .unwrap_or(0);
        let probe_op_bound = profile.mfence_cost as u64
            + profile.rdtsc_cost as u64
            + 1
            + profile.tlb_walk as u64
            + worst_op;
        Engine {
            threads: [Thread::new(), Thread::new()],
            code: Program::default(),
            decoded: DecodedProgram::default(),
            use_decoded: true,
            use_superblocks: superblocks_default(),
            use_fused_probes: fused_probes_default(),
            call_shapes: [EMPTY_SHAPE; CALL_SHAPE_SLOTS],
            call_shapes_gen: 0,
            decode_gen: 0,
            probe_op_bound,
            mem: Memory::new(),
            hier,
            itlb,
            dtlb,
            bpu: BranchPredictor::new(4096),
            noise: NoiseSource::new(noise, seed),
            tracer: Tracer::new(),
            fetch_log: None,
            profile,
        }
    }

    /// The microarchitecture profile in use.
    pub fn profile(&self) -> &UarchProfile {
        &self.profile
    }

    /// Restore the power-on state in place — cold caches and TLBs, reset
    /// branch predictor, counters and clocks, no loaded code, zeroed
    /// memory — and reseed the noise source, **without** reallocating the
    /// cache hierarchy, the memory pages or the predictor tables. After
    /// `reset(noise, seed)` the engine behaves bit-identically to
    /// `Engine::new(profile, noise, seed)` for any workload.
    pub fn reset(&mut self, noise: NoiseConfig, seed: u64) {
        for t in &mut self.threads {
            t.reset();
        }
        self.code.clear();
        self.decoded.clear();
        self.decode_gen += 1;
        self.use_decoded = true;
        self.use_superblocks = superblocks_default();
        self.use_fused_probes = fused_probes_default();
        self.mem.clear();
        self.hier.clear();
        for tlb in self.itlb.iter_mut().chain(self.dtlb.iter_mut()) {
            tlb.flush();
        }
        self.bpu.reset();
        self.noise = NoiseSource::new(noise, seed);
        self.tracer.disable();
        self.fetch_log = None;
    }

    /// Start (or stop) recording every instruction-fetch line address.
    /// Enabling clears any previously recorded log.
    pub fn set_fetch_log(&mut self, on: bool) {
        self.fetch_log = if on { Some(Vec::new()) } else { None };
    }

    /// Take the recorded fetch-line log, leaving recording enabled with an
    /// empty log (no-op empty result when recording is off).
    pub fn take_fetch_log(&mut self) -> Vec<u64> {
        match &mut self.fetch_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Merge a program's code into the core's address space and recompile
    /// the decoded side table (linear in total program size — paid per
    /// load, never per step).
    pub fn load(&mut self, prog: &Program) {
        self.code.merge(prog);
        self.decoded = DecodedProgram::compile(&self.code);
        self.decode_gen += 1;
        for t in &mut self.threads {
            t.pc_idx = NO_IDX;
        }
    }

    /// Apply a self-modifying write-back: overwrite instructions in the
    /// core's address space with `prog`'s (replacing on conflict, unlike
    /// [`Engine::load`]'s merge-only semantics) and re-decode the affected
    /// entries of the decoded side table **in place** whenever instruction
    /// boundaries survive the rewrite — the patched pcs keep their
    /// indices, so every successor link and cached `pc_idx` stays valid
    /// and the steady-state step loop keeps chasing indices instead of
    /// degrading to per-step map lookups. A write-back that moves
    /// boundaries (instructions at new pcs, or changed encoded lengths)
    /// falls back to one full recompile.
    ///
    /// Architectural state only, like [`Engine::load`]: the *timing* side
    /// of a real SMC write-back (machine clear, L1i invalidation, sibling
    /// stall) is modeled by the store/flush instructions the workload
    /// executes against the line.
    pub fn patch_code(&mut self, prog: &Program) {
        self.code.overwrite(prog);
        self.decode_gen += 1;
        let in_place = prog.iter().all(|(pc, instr)| self.decoded.patch(pc, *instr));
        if !in_place {
            // Charge the recompile to T0's bank: the event is core-wide, so
            // attributing it to one thread keeps `counters_total` exact.
            self.threads[0].counters.add(PerfEvent::SimPatchRecompiles, 1);
            self.decoded = DecodedProgram::compile(&self.code);
            for t in &mut self.threads {
                t.pc_idx = NO_IDX;
            }
        }
    }

    /// Switch between the decoded fast path (the default) and the original
    /// `BTreeMap` reference interpreter. Both execute the identical `exec`
    /// body and produce bit-identical architectural state, clocks and
    /// counters; the reference path exists so equivalence tests and the
    /// engine throughput benchmark can compare against the pre-decoded
    /// interpreter. Reset restores the default.
    pub fn set_decoded_fast_path(&mut self, on: bool) {
        self.use_decoded = on;
        for t in &mut self.threads {
            t.pc_idx = NO_IDX;
        }
    }

    /// Whether the decoded fast path is active.
    pub fn decoded_fast_path(&self) -> bool {
        self.use_decoded
    }

    /// Enable or disable superblock retirement inside burst execution (the
    /// third interpreter tier; requires the decoded fast path). When on,
    /// [`Engine::run_burst`] and [`Engine::catch_up`] retire maximal
    /// straight-line runs of fusable instructions in one batched update —
    /// with guards that make the result bit-identical to per-step
    /// execution: batching stops at control transfers, at cache-line
    /// switches' worst-case causal-ordering bounds, and strictly before
    /// any scheduled noise eviction. Default: on, unless the
    /// `SMACK_SUPERBLOCK` environment variable is `0`. Reset restores the
    /// default.
    pub fn set_superblocks(&mut self, on: bool) {
        self.use_superblocks = on;
    }

    /// Whether superblock retirement is active.
    pub fn superblocks(&self) -> bool {
        self.use_superblocks
    }

    /// Enable or disable the fused probe tier. When on,
    /// [`Engine::run_fused_probe`] retires a whole compiled
    /// `mfence; rdtsc; <op>; mfence; rdtsc` probe sequence in one
    /// specialized pass — with guards that make the result bit-identical
    /// to injecting the five instructions per-step: fusion refuses to run
    /// (and the caller falls back) whenever either hardware thread is
    /// runnable, speculation is live, or tracing / fetch logging could
    /// observe intermediate state. Default: on, unless the
    /// `SMACK_FUSED_PROBES` environment variable is `0`. Reset restores
    /// the default.
    pub fn set_fused_probes(&mut self, on: bool) {
        self.use_fused_probes = on;
    }

    /// Whether the fused probe tier is active.
    pub fn fused_probes(&self) -> bool {
        self.use_fused_probes
    }

    /// Simulated memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Simulated memory, mutable.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The cache hierarchy (for inspection and experiment setup).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hier
    }

    /// The cache hierarchy, mutable.
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hier
    }

    /// The event tracer.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The noise source.
    pub fn noise_mut(&mut self) -> &mut NoiseSource {
        &mut self.noise
    }

    // ---- thread accessors -------------------------------------------------

    #[inline(always)]
    fn t(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.index()]
    }

    #[inline(always)]
    fn t_mut(&mut self, tid: ThreadId) -> &mut Thread {
        &mut self.threads[tid.index()]
    }

    /// Current state of a thread.
    pub fn state(&self, tid: ThreadId) -> ThreadState {
        self.t(tid).state
    }

    /// A thread's local cycle clock.
    pub fn clock(&self, tid: ThreadId) -> u64 {
        self.t(tid).clock
    }

    /// Read a register.
    pub fn reg(&self, tid: ThreadId, r: Reg) -> u64 {
        self.t(tid).regs[r.index()]
    }

    /// Write a register (value becomes ready immediately).
    pub fn set_reg(&mut self, tid: ThreadId, r: Reg, v: u64) {
        let clock = self.t(tid).clock;
        let t = self.t_mut(tid);
        t.regs[r.index()] = v;
        t.ready[r.index()] = clock;
    }

    /// Per-thread performance counters.
    pub fn counters(&self, tid: ThreadId) -> &CounterBank {
        &self.t(tid).counters
    }

    /// Core-wide counter totals (both threads summed).
    pub fn counters_total(&self) -> CounterBank {
        let mut total = self.threads[0].counters.clone();
        total.accumulate(&self.threads[1].counters);
        total
    }

    /// Reset both threads' counters.
    pub fn reset_counters(&mut self) {
        for t in &mut self.threads {
            t.counters.reset();
        }
    }

    /// Prepare a thread to run a program: set `pc`, clear the call stack,
    /// mark it running. Arguments go to `R1..`.
    pub fn start_program(&mut self, tid: ThreadId, entry: u64, args: &[u64]) {
        assert!(args.len() <= 5, "at most five register arguments");
        let clock = self.t(tid).clock;
        let t = self.t_mut(tid);
        t.pc = entry;
        t.pc_idx = NO_IDX;
        t.stack.clear();
        t.state = ThreadState::Running;
        t.spec = None;
        for (i, a) in args.iter().enumerate() {
            t.regs[Reg::from_index(1 + i).index()] = *a;
            t.ready[Reg::from_index(1 + i).index()] = clock;
        }
    }

    /// Set up an injected call: pushes the return sentinel and starts the
    /// thread at `target`. When the callee returns, the thread goes idle.
    pub fn begin_injected_call(&mut self, tid: ThreadId, target: u64) {
        let t = self.t_mut(tid);
        t.stack.push(RETURN_SENTINEL);
        t.pc = target;
        t.pc_idx = NO_IDX;
        t.state = ThreadState::Running;
    }

    /// Install TLB translations for the page containing `addr` on `tid`
    /// without charging any cycles (experiment setup, Listing 1 style).
    pub fn warm_tlb(&mut self, tid: ThreadId, addr: Addr) {
        self.itlb[tid.index()].access(addr);
        self.dtlb[tid.index()].access(addr);
    }

    /// Forcibly park a thread in the idle state (e.g. to stop a victim).
    pub fn park(&mut self, tid: ThreadId) {
        let t = self.t_mut(tid);
        t.state = ThreadState::Idle;
        t.spec = None;
        t.stack.clear();
    }

    // ---- execution ---------------------------------------------------------

    /// Execute one program instruction on a running thread.
    #[inline]
    pub fn step(&mut self, tid: ThreadId) -> Result<(), StepError> {
        if self.t(tid).state != ThreadState::Running {
            return Err(StepError::NotRunning { tid });
        }
        // Resolve speculation whose window has closed.
        if let Some(spec) = &self.t(tid).spec {
            if self.t(tid).clock >= spec.resolve_at || spec.budget == 0 {
                self.squash(tid);
                return Ok(());
            }
        }
        let pc = self.t(tid).pc;
        if pc == RETURN_SENTINEL {
            if self.t(tid).spec.is_some() {
                self.squash(tid);
            } else {
                self.t_mut(tid).state = ThreadState::Idle;
            }
            return Ok(());
        }
        // Locate the instruction. The fast path chases pre-resolved indices
        // through the decoded side table (zero map lookups in steady state);
        // the reference path repeats the original per-step `BTreeMap` lookup
        // and is kept only for A/B equivalence testing and benchmarking.
        let (instr, len, line, fall, target_idx) = if self.use_decoded {
            let idx = match self.t(tid).pc_idx {
                NO_IDX => self.decoded.index_of(pc),
                cached => cached,
            };
            if idx == NO_IDX {
                if self.t(tid).spec.is_some() {
                    self.squash(tid);
                    return Ok(());
                }
                return Err(StepError::NoInstruction { pc });
            }
            let d = self.decoded.get(idx);
            (d.instr, d.len, d.line, d.fall, d.target)
        } else {
            match self.code.instr_at(pc) {
                Some(i) => (*i, i.len(), Addr(pc).line().0, NO_IDX, NO_IDX),
                None => {
                    if self.t(tid).spec.is_some() {
                        self.squash(tid);
                        return Ok(());
                    }
                    return Err(StepError::NoInstruction { pc });
                }
            }
        };
        if self.t(tid).last_fetch_line != line {
            self.fetch(tid, line);
        }
        let next = self.exec(tid, &instr, false)?;
        let t = self.t_mut(tid);
        match next {
            Next::Seq => {
                t.pc = pc + len;
                t.pc_idx = fall;
            }
            Next::Jump(dest) => {
                t.pc = dest;
                // Static targets were resolved at decode time; dynamic
                // transfers (`ret`, `call *%reg`) resolve lazily next step.
                t.pc_idx = match instr {
                    Instr::Jmp { target } | Instr::Call { target } if dest == target => target_idx,
                    Instr::Jcc { target, .. } => {
                        if dest == target {
                            target_idx
                        } else {
                            fall
                        }
                    }
                    _ => NO_IDX,
                };
            }
            Next::Stop => {}
        }
        if let Some(spec) = &mut self.t_mut(tid).spec {
            spec.budget = spec.budget.saturating_sub(1);
            spec.wrong_path += 1;
        } else {
            self.t_mut(tid).counters.add(PerfEvent::InstRetired, 1);
        }
        Ok(())
    }

    /// Run up to `max_steps` causally-ordered program steps without leaving
    /// the engine. Each counted step executes one instruction on whichever
    /// runnable thread the causal-order rule picks — the sibling when it is
    /// running and behind `tid`'s clock, `tid` otherwise — which is exactly
    /// the per-instruction decision [`crate::machine::Machine`] historically
    /// made across the crate boundary. Burst execution is therefore
    /// bit-identical for every burst size, including 1.
    ///
    /// Returns the number of steps executed; stops early (without error)
    /// when `tid` leaves the running state.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from either thread.
    pub fn run_burst(&mut self, tid: ThreadId, max_steps: u64) -> Result<u64, StepError> {
        let sib = tid.sibling();
        let mut steps = 0u64;
        if self.t(sib).state != ThreadState::Running {
            // Lone-thread fast loop: nothing inside the burst can wake the
            // sibling (that takes an external start_program/call), so the
            // causal-order check is hoisted out entirely — and with no
            // sibling clock to respect, superblocks get unlimited slack.
            while steps < max_steps && self.t(tid).state == ThreadState::Running {
                let fused = self.try_superblock(tid, max_steps - steps, u64::MAX);
                if fused > 0 {
                    steps += fused;
                    continue;
                }
                self.step(tid)?;
                steps += 1;
            }
            return Ok(steps);
        }
        while steps < max_steps && self.t(tid).state == ThreadState::Running {
            if self.t(sib).state == ThreadState::Running && self.t(sib).clock < self.t(tid).clock {
                // The per-step rule keeps choosing the sibling while its
                // clock stays strictly behind `tid`'s.
                let slack = self.t(tid).clock - self.t(sib).clock - 1;
                let fused = self.try_superblock(sib, max_steps - steps, slack);
                if fused > 0 {
                    steps += fused;
                    continue;
                }
                self.step(sib)?;
            } else {
                // `tid` runs while the sibling is not strictly behind.
                let slack = if self.t(sib).state == ThreadState::Running {
                    self.t(sib).clock - self.t(tid).clock
                } else {
                    u64::MAX
                };
                let fused = self.try_superblock(tid, max_steps - steps, slack);
                if fused > 0 {
                    steps += fused;
                    continue;
                }
                self.step(tid)?;
            }
            steps += 1;
        }
        Ok(steps)
    }

    /// Step the sibling's program until it catches up with `tid`'s clock,
    /// it stops running, or `max_steps` run out. The clock comparison is
    /// re-evaluated every step because stepping the sibling can advance
    /// `tid`'s clock too (a machine clear stalls the other thread).
    ///
    /// Returns the number of sibling steps executed.
    ///
    /// # Errors
    ///
    /// Propagates [`StepError`] from the sibling's program.
    pub fn catch_up(&mut self, tid: ThreadId, max_steps: u64) -> Result<u64, StepError> {
        let sib = tid.sibling();
        let mut steps = 0u64;
        while steps < max_steps
            && self.t(sib).state == ThreadState::Running
            && self.t(sib).clock < self.t(tid).clock
        {
            // The loop continues only while the sibling's clock stays
            // strictly below `tid`'s; superblock retirement on the sibling
            // may not overshoot that (fused ops never stall `tid`, so its
            // clock is stable across the batch).
            let slack = self.t(tid).clock - self.t(sib).clock - 1;
            let fused = self.try_superblock(sib, max_steps - steps, slack);
            if fused > 0 {
                steps += fused;
                continue;
            }
            self.step(sib)?;
            steps += 1;
        }
        Ok(steps)
    }

    /// Try to retire a fused superblock on `tid`: up to `max_steps`
    /// instructions of the maximal straight-line fusable run starting at
    /// the current pc, executed with batched clock/counter/noise updates.
    /// Returns the number of instructions retired (0 = conditions not met;
    /// the caller falls back to [`Engine::step`]).
    ///
    /// **Bit-identity argument.** Fusable micro-ops touch only the owning
    /// thread's registers/ready/flags/clock (see [`MicroOp`]), so batching
    /// them is exact as long as three *external* observation channels stay
    /// silent across the block:
    ///
    /// * **Fetch** happens at exactly the same points as per-step
    ///   execution: once per cache-line segment, guarded by the same
    ///   `last_fetch_line` check. Nothing inside the block can evict code
    ///   lines (no probes, and the noise guard below), so per-segment
    ///   fetch outcomes match the per-step schedule exactly.
    /// * **Noise**: `exec` feeds each instruction's execution cost (never
    ///   fetch cost — `clock0` is taken after fetch) through
    ///   [`NoiseSource::evictions_for`]. The schedule is exactly
    ///   partition-invariant, so one batched call with the block's total
    ///   cost leaves identical RNG/schedule state — provided no eviction
    ///   fires *inside* the block, which the
    ///   [`NoiseSource::cycles_to_next_eviction`] guard enforces by
    ///   truncating the block strictly before the next scheduled eviction.
    /// * **Causal order**: the burst scheduler re-picks a thread before
    ///   every step by clock comparison. `clock_slack` is the number of
    ///   cycles `tid`'s clock may grow *before its last batched
    ///   instruction begins* without changing any of those decisions; the
    ///   worst-case bound (exact exec costs plus worst-case fetch per line
    ///   switch) is truncated against it. Fusable ops never touch the
    ///   sibling, so the slack computed at entry stays valid.
    ///
    /// The run/segment boundaries come from decode-time fusion metadata;
    /// SMC patches keep it current ([`DecodedProgram::patch`] re-fuses on
    /// any fusability or cost change), and probe/branch/speculation
    /// boundaries end runs by construction (those instructions are not
    /// fusable). All guard math is prefix-sum lookups and one binary
    /// search; the executor itself is a branchless-per-op register loop.
    #[inline]
    fn try_superblock(&mut self, tid: ThreadId, max_steps: u64, clock_slack: u64) -> u64 {
        // This prologue is the *failure* fast path: the burst loops call it
        // before every step, and most instructions sit at a control transfer
        // or probe boundary where no fusable run starts. Everything up to the
        // cold call is a handful of loads and compares.
        if !(self.use_superblocks && self.use_decoded) {
            return 0;
        }
        let t = &self.threads[tid.index()];
        if t.spec.is_some() || t.pc == RETURN_SENTINEL {
            return 0;
        }
        let idx = match t.pc_idx {
            NO_IDX => {
                let resolved = self.decoded.index_of(t.pc);
                if resolved == NO_IDX {
                    return 0;
                }
                // Cache the hash probe exactly as `step` would, so a
                // rejected attempt does not force `step` to repeat it.
                self.threads[tid.index()].pc_idx = resolved;
                resolved
            }
            cached => cached,
        };
        let run_end = self.decoded.run_end(idx);
        if u64::from(run_end - idx).min(max_steps) < 2 {
            // A one-instruction "batch" is pure overhead over `step`.
            return 0;
        }
        // Even n = 2 must fit the first instruction's exact exec cost in the
        // slack (the full guard only adds fetch pessimism on top), so this
        // one prefix-sum lookup conservatively kills lockstep-tight calls.
        if clock_slack < self.decoded.block_cost(idx, idx + 1) {
            return 0;
        }
        self.superblock_cold(tid, idx, run_end, max_steps, clock_slack)
    }

    /// Cold half of [`Engine::try_superblock`]: full guard evaluation and the
    /// batched executor, reached only when a fusable run of ≥ 2 instructions
    /// starts at the current pc and the slack passes the cheap pre-filter.
    #[inline(never)]
    fn superblock_cold(
        &mut self,
        tid: ThreadId,
        idx: u32,
        run_end: u32,
        max_steps: u64,
        clock_slack: u64,
    ) -> u64 {
        let t = &self.threads[tid.index()];
        let avail = u64::from(run_end - idx).min(max_steps);
        // Worst-case cycles a single line fetch can cost: full iTLB walk
        // plus a DRAM-serviced instruction fetch.
        let worst_fetch =
            self.profile.tlb_walk as u64 + self.hier.config().ifetch_extra_dram as u64;
        let init_fetch = u64::from(t.last_fetch_line != self.decoded.get(idx).line);
        let noise_budget = self.noise.cycles_to_next_eviction();
        // Predicate: retiring `n` instructions keeps every guard intact.
        // Both guard quantities grow monotonically with `n`, so the largest
        // admissible `n` is found by binary search.
        let ok = |n: u64| {
            let end = idx + n as u32;
            // Strict: the batched `evictions_for(total)` call must return 0.
            if self.decoded.block_cost(idx, end) >= noise_budget {
                return false;
            }
            if clock_slack == u64::MAX {
                return true;
            }
            // Clock growth before the last instruction begins: exact exec
            // costs of the first n−1, pessimistic fetch per line switch.
            let last = end - 1;
            let fetches = init_fetch + u64::from(self.decoded.block_breaks(idx, last));
            let growth = self.decoded.block_cost(idx, last) + worst_fetch * fetches;
            growth <= clock_slack
        };
        let n = if ok(avail) {
            avail
        } else if !ok(2) {
            return 0;
        } else {
            // Largest n in [2, avail] with ok(n): ok(lo) holds, ok(hi+1)
            // fails throughout.
            let (mut lo, mut hi) = (2u64, avail - 1);
            while lo < hi {
                let mid = lo + (hi - lo).div_ceil(2);
                if ok(mid) {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            lo
        };
        let end = idx + n as u32;
        // Execute, one cache-line segment at a time. Segment boundaries
        // are known up front, so the per-line fetches go through the
        // hierarchy's batched multi-line API in groups of up to
        // `FETCH_BATCH` lines — one resolution pass over the group — with
        // each segment's fetch cost charged at its boundary, exactly where
        // per-step execution charges it, before the tight register loop
        // over the segment's micro-ops runs with the clock in a local.
        // (Micro-ops touch only regs/flags/clock, never the hierarchy,
        // TLBs or counters, so hoisting the group's fetch effects ahead of
        // the intervening micro-ops is unobservable; the deferred clock
        // charge is what keeps the ready-stamp math bit-identical.)
        const FETCH_BATCH: usize = 8;
        let mut seg = idx;
        while seg < end {
            let mut seg_ends = [0u32; FETCH_BATCH];
            let mut lines = [0u64; FETCH_BATCH];
            let mut n_seg = 0usize;
            let mut s = seg;
            while s < end && n_seg < FETCH_BATCH {
                seg_ends[n_seg] = self.decoded.line_end(s).min(end);
                lines[n_seg] = self.decoded.get(s).line;
                s = seg_ends[n_seg];
                n_seg += 1;
            }
            // Lines strictly increase across a straight-line run, so only
            // the group's first segment can already be streaming.
            let skip = usize::from(self.threads[tid.index()].last_fetch_line == lines[0]);
            let mut infos = [COLD_ACCESS; FETCH_BATCH];
            self.hier.fetch_lines(&lines[skip..n_seg], &mut infos[skip..n_seg]);
            let mut costs = [0u64; FETCH_BATCH];
            for j in skip..n_seg {
                costs[j] = self.fetch_effects(tid, lines[j], infos[j]);
            }
            for (j, &seg_end) in seg_ends.iter().enumerate().take(n_seg) {
                let ops = self.decoded.micro_slice(seg, seg_end);
                let t = &mut self.threads[tid.index()];
                t.clock += costs[j];
                let mut clock = t.clock;
                for op in ops {
                    match *op {
                        MicroOp::Nop => clock += 1,
                        MicroOp::MovImm { dst, imm } => {
                            let d = usize::from(dst & 0xf);
                            clock += 1;
                            t.regs[d] = imm;
                            t.ready[d] = clock;
                        }
                        MicroOp::Mov { dst, src } => {
                            let d = usize::from(dst & 0xf);
                            let s = usize::from(src & 0xf);
                            clock += 1;
                            t.regs[d] = t.regs[s];
                            t.ready[d] = clock.max(t.ready[s]);
                        }
                        MicroOp::Add { dst, src } => {
                            let d = usize::from(dst & 0xf);
                            let s = usize::from(src & 0xf);
                            clock += 1;
                            t.regs[d] = t.regs[d].wrapping_add(t.regs[s]);
                            t.ready[d] = clock.max(t.ready[d]).max(t.ready[s]);
                        }
                        MicroOp::AddImm { dst, imm } => {
                            let d = usize::from(dst & 0xf);
                            clock += 1;
                            t.regs[d] = t.regs[d].wrapping_add(imm);
                            t.ready[d] = clock.max(t.ready[d]);
                        }
                        MicroOp::Sub { dst, src } => {
                            let d = usize::from(dst & 0xf);
                            let s = usize::from(src & 0xf);
                            clock += 1;
                            t.regs[d] = t.regs[d].wrapping_sub(t.regs[s]);
                            t.ready[d] = clock.max(t.ready[d]).max(t.ready[s]);
                        }
                        MicroOp::Mul { dst, src } => {
                            let d = usize::from(dst & 0xf);
                            let s = usize::from(src & 0xf);
                            clock += 3;
                            t.regs[d] = t.regs[d].wrapping_mul(t.regs[s]);
                            t.ready[d] = clock.max(t.ready[d]).max(t.ready[s]);
                        }
                        MicroOp::And { dst, src } => {
                            let d = usize::from(dst & 0xf);
                            let s = usize::from(src & 0xf);
                            clock += 1;
                            t.regs[d] &= t.regs[s];
                            t.ready[d] = clock.max(t.ready[d]).max(t.ready[s]);
                        }
                        MicroOp::Or { dst, src } => {
                            let d = usize::from(dst & 0xf);
                            let s = usize::from(src & 0xf);
                            clock += 1;
                            t.regs[d] |= t.regs[s];
                            t.ready[d] = clock.max(t.ready[d]).max(t.ready[s]);
                        }
                        MicroOp::Xor { dst, src } => {
                            let d = usize::from(dst & 0xf);
                            let s = usize::from(src & 0xf);
                            clock += 1;
                            t.regs[d] ^= t.regs[s];
                            t.ready[d] = clock.max(t.ready[d]).max(t.ready[s]);
                        }
                        MicroOp::ShlImm { dst, amount } => {
                            let d = usize::from(dst & 0xf);
                            clock += 1;
                            t.regs[d] = t.regs[d].wrapping_shl(amount);
                            t.ready[d] = clock.max(t.ready[d]);
                        }
                        MicroOp::ShrImm { dst, amount } => {
                            let d = usize::from(dst & 0xf);
                            clock += 1;
                            t.regs[d] = t.regs[d].wrapping_shr(amount);
                            t.ready[d] = clock.max(t.ready[d]);
                        }
                        MicroOp::Cmp { a, b } => {
                            let ia = usize::from(a & 0xf);
                            let ib = usize::from(b & 0xf);
                            clock += 1;
                            t.flags = Flags::compare(t.regs[ia], t.regs[ib]);
                            t.flags_ready = clock.max(t.ready[ia]).max(t.ready[ib]);
                        }
                        MicroOp::CmpImm { a, imm } => {
                            let ia = usize::from(a & 0xf);
                            clock += 1;
                            t.flags = Flags::compare(t.regs[ia], imm);
                            t.flags_ready = clock.max(t.ready[ia]);
                        }
                        MicroOp::Delay { cycles } => clock += cycles,
                        MicroOp::NotFused => unreachable!("inside a fused run"),
                    }
                }
                t.clock = clock;
                seg = seg_end;
            }
        }
        // Batched retire: pc/pc_idx from the last instruction's successor
        // links, one counter update, one noise-schedule advance (which the
        // guard proved emits nothing — but the schedule must still move).
        let last = self.decoded.get(end - 1);
        let t = &mut self.threads[tid.index()];
        t.pc = last.pc + last.len;
        t.pc_idx = last.fall;
        t.counters.add(PerfEvent::InstRetired, n);
        let evictions = self.noise.evictions_for(self.decoded.block_cost(idx, end));
        debug_assert_eq!(evictions, 0, "noise guard must stop the block before an eviction");
        n
    }

    /// Execute one injected instruction (attacker-style straight-line code;
    /// no fetch modeling for the injected code itself).
    ///
    /// # Errors
    ///
    /// Fails for branch instructions, unsupported probe classes and
    /// non-idle threads.
    pub fn exec_injected(
        &mut self,
        tid: ThreadId,
        instr: &Instr,
    ) -> Result<InjectedNext, StepError> {
        if self.t(tid).state == ThreadState::Running {
            return Err(StepError::NotRunning { tid });
        }
        // Injected attacker code executes from elsewhere: the front-end is
        // no longer streaming whatever program line was fetched last, so a
        // subsequent call re-checks the L1i like real re-entry would.
        self.t_mut(tid).last_fetch_line = u64::MAX;
        match instr {
            Instr::Jmp { .. } | Instr::Jcc { .. } => Err(StepError::ControlFlowInjected),
            Instr::Call { target } => Ok(InjectedNext::EnterCall { target: *target }),
            Instr::CallReg { target } => {
                let t = self.reg(tid, *target);
                Ok(InjectedNext::EnterCall { target: t })
            }
            _ => {
                self.t_mut(tid).counters.add(PerfEvent::InstRetired, 1);
                self.exec(tid, instr, true)?;
                Ok(InjectedNext::Done)
            }
        }
    }

    /// Retire a whole compiled probe sequence in one specialized pass: the
    /// fused probe tier. Returns `None` (after bumping `SimProbeFallback`)
    /// when a guard requires per-step execution — the caller then injects
    /// `probe.instrs()` one instruction at a time — and `Some(outcome)`
    /// with the same `SeqOutcome` five `exec_injected` calls would have
    /// produced.
    ///
    /// Bit-identical to per-step injection by construction: each of the
    /// five instructions is replicated from the corresponding `exec` arm
    /// (same cost formulas, counter bumps, hierarchy calls and noise-draw
    /// order; the equivalence proptests lock this). What fusion saves is
    /// the per-instruction machine/engine round trip — injected-state
    /// checks, sibling catch-up attempts and the outer dispatch — and,
    /// when the noise schedule provably fires no eviction before the
    /// closing `rdtsc`, the five per-instruction `evictions_for` draws,
    /// coalesced into one exact batched draw (see the body).
    ///
    /// Guards (any one forces fallback): fusion disabled, this thread or
    /// the sibling runnable (an interleaved sibling could observe
    /// intermediate hierarchy/clock state), live speculation, tracing, or
    /// fetch logging. There is no pending-SMC state to guard separately:
    /// a probe whose store/flush conflicts with the front-end takes the
    /// machine clear *inside* `probe_effects`, identically on both paths.
    ///
    /// # Errors
    ///
    /// `Some(Err(_))` propagates the middle operation's error (e.g. an
    /// [`StepError::Unsupported`] probe class) with the same partial state
    /// per-step execution leaves behind.
    pub fn run_fused_probe(
        &mut self,
        tid: ThreadId,
        probe: &CompiledProbe,
    ) -> Option<Result<SeqOutcome, StepError>> {
        let sib = tid.sibling();
        if !self.use_fused_probes
            || self.t(tid).state == ThreadState::Running
            || self.t(sib).state == ThreadState::Running
            || self.t(tid).spec.is_some()
            || self.tracer.is_enabled()
            || self.fetch_log.is_some()
        {
            self.t_mut(tid).counters.add(PerfEvent::SimProbeFallback, 1);
            return None;
        }
        let start = self.t(tid).clock;
        // Injected code executes from elsewhere; see `exec_injected`.
        self.t_mut(tid).last_fetch_line = u64::MAX;
        // Per-step, the RNG draw order is E(c1) J1 E(c2) E(c3) E(c4) J2
        // E(c5): an `evictions_for` draw per instruction interleaved with
        // the two `rdtsc` jitter draws. When E(c1)..E(c4) provably yield
        // zero evictions, the whole prefix collapses into the final draw —
        // `evictions_for` is exactly partition-invariant, the zero draws
        // touch no RNG state, and any eviction from E(c5) lands after J2
        // on both paths. `c1..c3` are bounded up front (`wait1` is exact,
        // the rest by `probe_op_bound`); `c4`'s drain of a Load's pending
        // DRAM fill is re-checked exactly once the op's cost is known.
        let wait1 = self.t(tid).pending_mem.saturating_sub(start);
        if wait1 + self.probe_op_bound < self.noise.cycles_to_next_eviction() {
            let mut acc = 0u64;
            self.fused_mfence(tid, Some(&mut acc));
            self.fused_rdtsc(tid, probe.t_start, Some(&mut acc));
            if let Err(e) = self.fused_probe_op(tid, &probe.op, Some(&mut acc)) {
                // Per-step execution skips the failing op's noise epilogue
                // but has drawn E(c1) and E(c2) — both provably zero here;
                // one batched call advances the schedule identically.
                let _ = self.noise.evictions_for(acc);
                return Some(Err(e));
            }
            let pre = acc;
            self.fused_mfence(tid, Some(&mut acc));
            if acc < self.noise.cycles_to_next_eviction() {
                self.fused_rdtsc(tid, probe.t_end, Some(&mut acc));
                let evictions = self.noise.evictions_for(acc);
                self.apply_evictions(evictions);
            } else {
                // Rare: draining the op's pending memory at the closing
                // `mfence` crossed the eviction boundary. Settle the
                // deferred draws in per-step order: E(c1+c2+c3) is zero by
                // the up-front bound, E(c4) fires, then J2 and E(c5).
                let _ = self.noise.evictions_for(pre);
                let evictions = self.noise.evictions_for(acc - pre);
                self.apply_evictions(evictions);
                self.fused_rdtsc(tid, probe.t_end, None);
            }
        } else {
            // An eviction is due within the probe: keep the per-
            // instruction draw interleaving.
            self.fused_mfence(tid, None);
            self.fused_rdtsc(tid, probe.t_start, None);
            if let Err(e) = self.fused_probe_op(tid, &probe.op, None) {
                return Some(Err(e));
            }
            self.fused_mfence(tid, None);
            self.fused_rdtsc(tid, probe.t_end, None);
        }
        self.t_mut(tid).counters.add(PerfEvent::SimProbeFastPath, 1);
        let end_clock = self.t(tid).clock;
        Some(Ok(SeqOutcome { cycles: end_clock - start, end_clock }))
    }

    /// Skip `cycles` idle cycles in one batched update — the fused
    /// replacement for injecting `Delay` chunks when nothing else can run.
    /// Returns `false` (caller falls back to per-step chunking) when
    /// either thread is runnable or fusion is disabled.
    ///
    /// Equivalent to the per-step path by construction: `Delay` draws no
    /// `rdtsc` jitter, `evictions_for` is exactly partition-invariant, and
    /// the chunked path retires `ceil(cycles / chunk)` delay instructions
    /// of 200 cycles each with nothing observing state between chunks.
    pub fn advance_idle(&mut self, tid: ThreadId, cycles: u64) -> bool {
        if !self.use_fused_probes
            || self.t(tid).state == ThreadState::Running
            || self.t(tid.sibling()).state == ThreadState::Running
        {
            return false;
        }
        if cycles == 0 {
            return true;
        }
        let t = self.t_mut(tid);
        t.last_fetch_line = u64::MAX;
        t.counters.add(PerfEvent::InstRetired, cycles.div_ceil(200));
        self.fused_retire(tid, cycles);
        true
    }

    /// Retire an injected `call` of an attacker-owned one-line `nop*; ret`
    /// routine in one fused pass — the shape of every eviction-set way and
    /// oracle line, whose priming calls dominate a covert-channel trial's
    /// injected-instruction count. Returns `None` (after bumping
    /// `SimProbeFallback`) when a guard or the callee's shape requires
    /// per-step execution; the caller then injects the `call` normally.
    ///
    /// Bit-identical to per-step injection by construction:
    ///
    /// * The injected `Call` itself retires nothing and charges nothing
    ///   (`exec_injected` returns `EnterCall` before reaching `exec`), and
    ///   the return sentinel push/pop nets out; the thread ends idle with
    ///   `pc`/`pc_idx` parked at the `ret` — the exact per-step end state.
    /// * The callee line is fetched once through the same
    ///   `fetch_lines`/`fetch_effects` pair the per-step path uses (the
    ///   injected-call reset of `last_fetch_line` forces that fetch on
    ///   both paths), so iTLB, fetch-window, hit-level counter and stall
    ///   effects match exactly.
    /// * `nop` (cost 1) and `ret` (cost 2, sentinel pop) draw no `rdtsc`
    ///   jitter, so batching their noise epilogues into one
    ///   `evictions_for` call is exact (partition invariance), and every
    ///   eviction draw lands after the block's lone hierarchy access (the
    ///   fetch) on both paths — no mid-block truncation guard needed.
    pub fn run_fused_call(&mut self, tid: ThreadId, target: u64) -> Option<SeqOutcome> {
        let sib = tid.sibling();
        if !self.use_fused_probes
            || !self.use_decoded
            || self.t(tid).state == ThreadState::Running
            || self.t(sib).state == ThreadState::Running
            || self.t(tid).spec.is_some()
            || self.tracer.is_enabled()
            || self.fetch_log.is_some()
        {
            self.t_mut(tid).counters.add(PerfEvent::SimProbeFallback, 1);
            return None;
        }
        let Some((nops, ret_pc, ret_idx)) = self.call_shape(target) else {
            self.t_mut(tid).counters.add(PerfEvent::SimProbeFallback, 1);
            return None;
        };
        let line = Addr(target).line().0;
        let start = self.t(tid).clock;
        // The one front-end fetch of the callee line (the per-step path's
        // first step after `begin_injected_call`).
        let mut info = [COLD_ACCESS];
        self.hier.fetch_lines(std::slice::from_ref(&line), &mut info);
        let fetch_cost = self.fetch_effects(tid, line, info[0]);
        let t = self.t_mut(tid);
        t.clock += fetch_cost;
        t.counters.add(PerfEvent::InstRetired, nops + 1);
        t.pc = ret_pc;
        t.pc_idx = ret_idx;
        // `nops` cost-1 retirements plus the cost-2 `ret`, noise batched.
        self.fused_retire(tid, nops + 2);
        self.t_mut(tid).counters.add(PerfEvent::SimProbeFastPath, 1);
        let end_clock = self.t(tid).clock;
        Some(SeqOutcome { cycles: end_clock - start, end_clock })
    }

    /// Retire a batch of injected calls to attacker-owned one-line
    /// `nop*; ret` routines in one fused pass — `EvictionSet::prime`'s
    /// eight way-calls land here as a single engine entry instead of
    /// eight. Returns `None` (with *no* counter side effects) when any
    /// guard, any callee's shape, or the noise schedule requires finer
    /// granularity; the caller then runs the calls one at a time, each of
    /// which may still fuse individually and counts its own fast-path or
    /// fallback event.
    ///
    /// Exact beyond the single-call argument (see
    /// [`Engine::run_fused_call`]): consecutive injected calls execute
    /// back-to-back with nothing observing thread state between them; the
    /// per-call hierarchy fetches keep their order inside one batched
    /// `fetch_lines` (retirements between them touch no hierarchy state —
    /// the schedule check guarantees zero evictions up to the last call);
    /// and the per-call `evictions_for` draws, jitter-free and provably
    /// zero, collapse into one batched draw by partition invariance.
    pub fn run_fused_calls(&mut self, tid: ThreadId, targets: &[u64]) -> Option<SeqOutcome> {
        let sib = tid.sibling();
        if targets.is_empty()
            || targets.len() > CALL_BATCH_MAX
            || !self.use_fused_probes
            || !self.use_decoded
            || self.t(tid).state == ThreadState::Running
            || self.t(sib).state == ThreadState::Running
            || self.t(tid).spec.is_some()
            || self.tracer.is_enabled()
            || self.fetch_log.is_some()
        {
            return None;
        }
        let n = targets.len();
        let mut shapes = [(0u64, 0u64, 0u32); CALL_BATCH_MAX];
        let mut lines = [0u64; CALL_BATCH_MAX];
        let mut sum_instr = 0u64;
        for (i, &target) in targets.iter().enumerate() {
            let shape = self.call_shape(target)?;
            shapes[i] = shape;
            lines[i] = Addr(target).line().0;
            sum_instr += shape.0 + 2;
        }
        if sum_instr >= self.noise.cycles_to_next_eviction() {
            return None;
        }
        let start = self.t(tid).clock;
        let mut infos = [COLD_ACCESS; CALL_BATCH_MAX];
        self.hier.fetch_lines(&lines[..n], &mut infos[..n]);
        for i in 0..n {
            let fetch_cost = self.fetch_effects(tid, lines[i], infos[i]);
            let nops = shapes[i].0;
            let t = self.t_mut(tid);
            t.clock += fetch_cost + nops + 2;
            t.counters.add(PerfEvent::InstRetired, nops + 1);
        }
        let (_, ret_pc, ret_idx) = shapes[n - 1];
        let t = self.t_mut(tid);
        t.pc = ret_pc;
        t.pc_idx = ret_idx;
        t.counters.add(PerfEvent::SimProbeFastPath, n as u64);
        // Provably zero evictions; the one call advances the schedule
        // exactly as the per-call draws would.
        let _ = self.noise.evictions_for(sum_instr);
        let end_clock = self.t(tid).clock;
        Some(SeqOutcome { cycles: end_clock - start, end_clock })
    }

    /// Resolve (and memoize) the fused-call shape of the routine at
    /// `target`: `Some((nops, ret_pc, ret_idx))` when the callee is
    /// `nop*; ret` entirely on its entry line, `None` for anything else —
    /// other opcodes, a line crossing, a decode hole left by a corrupting
    /// probe. Negative results are not memoized (they fall back to
    /// per-step execution, where one redundant walk is noise).
    fn call_shape(&mut self, target: u64) -> Option<(u64, u64, u32)> {
        if self.call_shapes_gen != self.decode_gen {
            self.call_shapes = [EMPTY_SHAPE; CALL_SHAPE_SLOTS];
            self.call_shapes_gen = self.decode_gen;
        }
        let slot = (target.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 58) as usize;
        let (t, nops, ret_pc, ret_idx) = self.call_shapes[slot];
        if t == target {
            return Some((nops, ret_pc, ret_idx));
        }
        let line = Addr(target).line().0;
        let shape = 'walk: {
            let mut idx = self.decoded.index_of(target);
            let mut nops = 0u64;
            let mut ret_pc = target;
            loop {
                if idx == NO_IDX {
                    break 'walk None;
                }
                let d = self.decoded.get(idx);
                if d.line != line {
                    break 'walk None;
                }
                match d.instr {
                    Instr::Nop => {
                        nops += 1;
                        ret_pc += d.len;
                        idx = d.fall;
                    }
                    Instr::Ret => break 'walk Some((nops, ret_pc, idx)),
                    _ => break 'walk None,
                }
            }
        };
        let (nops, ret_pc, ret_idx) = shape?;
        self.call_shapes[slot] = (target, nops, ret_pc, ret_idx);
        Some((nops, ret_pc, ret_idx))
    }

    /// Fused-tier `mfence`: the `exec` arm plus injected-retirement
    /// bookkeeping, with the clock/noise epilogue applied via
    /// [`Engine::fused_charge`].
    fn fused_mfence(&mut self, tid: ThreadId, deferred: Option<&mut u64>) {
        let mfence_cost = self.profile.mfence_cost as u64;
        let t = self.t_mut(tid);
        t.counters.add(PerfEvent::InstRetired, 1);
        let wait = t.pending_mem.saturating_sub(t.clock);
        if wait > 0 {
            t.counters.add(PerfEvent::CycleActivityStallsTotal, wait);
        }
        self.fused_charge(tid, wait + mfence_cost, deferred);
    }

    /// Fused-tier `rdtsc`. The jitter draw happens before the retire's
    /// eviction draw, matching per-step RNG order.
    fn fused_rdtsc(&mut self, tid: ThreadId, dst: Reg, deferred: Option<&mut u64>) {
        let cost = self.profile.rdtsc_cost as u64;
        let res = self.profile.tsc_resolution as u64;
        let jitter = self.noise.jitter();
        let t = self.t_mut(tid);
        t.counters.add(PerfEvent::InstRetired, 1);
        let clock0 = t.clock;
        let raw = (clock0 + cost).saturating_add_signed(jitter);
        t.regs[dst.index()] = (raw / res) * res;
        t.ready[dst.index()] = clock0 + cost;
        self.fused_charge(tid, cost, deferred);
    }

    /// Fused-tier timed middle operation: each arm replicates the
    /// non-speculative branch of the corresponding `exec` arm (fusion
    /// guards guarantee `spec.is_none()`). On error the partial state
    /// (retire counter, dTLB fills) matches per-step execution — the
    /// clock/noise epilogue is skipped exactly like `exec`'s early return.
    fn fused_probe_op(
        &mut self,
        tid: ThreadId,
        op: &Instr,
        deferred: Option<&mut u64>,
    ) -> Result<(), StepError> {
        self.t_mut(tid).counters.add(PerfEvent::InstRetired, 1);
        let clock0 = self.t(tid).clock;
        let mut cost: u64 = 1;
        match op {
            Instr::Load { dst, mem, size } => {
                let addr = self.mem_addr(tid, *mem);
                cost += self.dtlb_cost(tid, addr);
                let info = self.hier.read(addr.line());
                self.count_data_level(tid, info.level);
                let val = self.read_mem_value(addr, *size);
                let t = self.t_mut(tid);
                t.regs[dst.index()] = val;
                let done = (clock0 + cost).max(t.ready[mem.base.index()]) + info.latency as u64;
                t.ready[dst.index()] = done;
                t.pending_mem = t.pending_mem.max(done);
            }
            Instr::StoreImm { mem, imm } => {
                let addr = self.mem_addr(tid, *mem);
                cost += self.dtlb_cost(tid, addr);
                let res = self.hier.residency(addr.line());
                let (_fired, c) = self.probe_effects(tid, ProbeKind::Store, addr.line(), res)?;
                self.count_data_level(tid, res.data_level());
                self.hier.write_resident(addr.line(), res);
                self.write_mem_value(addr, *imm as u64, MemSize::Byte);
                cost += c;
            }
            Instr::LockInc { mem } => {
                let addr = self.mem_addr(tid, *mem);
                let t = self.t_mut(tid);
                let wait = t.pending_mem.saturating_sub(t.clock);
                cost += wait;
                cost += self.dtlb_cost(tid, addr);
                let res = self.hier.residency(addr.line());
                let (_fired, c) = self.probe_effects(tid, ProbeKind::Lock, addr.line(), res)?;
                self.count_data_level(tid, res.data_level());
                self.hier.write_resident(addr.line(), res);
                let val = self.mem.read_u8(addr).wrapping_add(1);
                self.mem.write_u8(addr, val);
                cost += c;
            }
            Instr::Clflush { mem } | Instr::Clflushopt { mem } => {
                let kind = if matches!(op, Instr::Clflush { .. }) {
                    ProbeKind::Flush
                } else {
                    ProbeKind::FlushOpt
                };
                let addr = self.mem_addr(tid, *mem);
                cost += self.dtlb_cost(tid, addr);
                let res = self.hier.residency(addr.line());
                let (_fired, c) = self.probe_effects(tid, kind, addr.line(), res)?;
                self.hier.flush(addr.line());
                cost += c;
            }
            Instr::Clwb { mem } => {
                let addr = self.mem_addr(tid, *mem);
                cost += self.dtlb_cost(tid, addr);
                let res = self.hier.residency(addr.line());
                let (_fired, c) = self.probe_effects(tid, ProbeKind::Clwb, addr.line(), res)?;
                self.hier.writeback(addr.line());
                cost += c;
            }
            Instr::PrefetchT0 { mem } | Instr::PrefetchNta { mem } => {
                let kind = if matches!(op, Instr::PrefetchT0 { .. }) {
                    ProbeKind::Prefetch
                } else {
                    ProbeKind::PrefetchNta
                };
                let addr = self.mem_addr(tid, *mem);
                cost += self.dtlb_cost(tid, addr);
                let res = self.hier.residency(addr.line());
                let (fired, c) = self.probe_effects(tid, kind, addr.line(), res)?;
                if !fired {
                    self.hier.prefetch(addr.line());
                }
                cost += c;
            }
            // `CompiledProbe::compile` whitelists the arms above.
            _ => unreachable!("non-probe op in CompiledProbe"),
        }
        self.fused_charge(tid, cost, deferred);
        Ok(())
    }

    /// Charge `cost` cycles; with `deferred` the noise epilogue is left to
    /// the caller's one batched draw (sound only under
    /// [`Engine::run_fused_probe`]'s no-eviction guard), without it the
    /// per-instruction epilogue applies via [`Engine::fused_retire`].
    fn fused_charge(&mut self, tid: ThreadId, cost: u64, deferred: Option<&mut u64>) {
        match deferred {
            Some(acc) => {
                self.t_mut(tid).clock += cost;
                *acc += cost;
            }
            None => self.fused_retire(tid, cost),
        }
    }

    /// Charge `cost` cycles and apply the per-instruction noise epilogue
    /// (`exec`'s last four lines). Callers either invoke this once per
    /// instruction (interleaving eviction draws with `rdtsc` jitter draws
    /// in per-step order) or batch several instructions' costs into one
    /// call where that is provably exact: `evictions_for` is partition-
    /// invariant, so batching is sound whenever no deferred segment's
    /// draws would interleave with a jitter draw or hierarchy access.
    fn fused_retire(&mut self, tid: ThreadId, cost: u64) {
        self.t_mut(tid).clock += cost;
        let evictions = self.noise.evictions_for(cost);
        self.apply_evictions(evictions);
    }

    /// Inject `n` spurious background L1i evictions (the noise epilogue's
    /// application half — one `random_set` draw per eviction).
    fn apply_evictions(&mut self, n: u32) {
        for _ in 0..n {
            let set = self.noise.random_set(self.profile.hierarchy.l1i.sets);
            self.hier.evict_lru_l1i(set);
        }
    }

    /// Model the front-end fetch of the (pre-computed) line holding the
    /// current instruction. Callers have already checked `last_fetch_line`,
    /// so this only runs on an actual line switch. Routed through the
    /// hierarchy's batched multi-line API (as a one-line batch) so every
    /// fetch path — per-step, injected calls, probes — shares the exact
    /// front-end sequence the superblock path batches over whole groups.
    fn fetch(&mut self, tid: ThreadId, line: u64) {
        let mut info = [COLD_ACCESS];
        self.hier.fetch_lines(std::slice::from_ref(&line), &mut info);
        let cost = self.fetch_effects(tid, line, info[0]);
        self.t_mut(tid).clock += cost;
    }

    /// Per-line bookkeeping for an already-performed hierarchy fetch,
    /// shared by the per-step path and the superblock batched path:
    /// fetch-log append, iTLB access, hit-level counters, the stall
    /// counter, and fetch-window tracking. Returns the fetch's cycle
    /// cost, which the caller charges to the thread clock at the point
    /// per-step execution would (immediately for [`Engine::fetch`], at
    /// the segment boundary for the superblock executor) — nothing here
    /// reads the thread clock, which is what makes deferring the charge
    /// exact.
    fn fetch_effects(&mut self, tid: ThreadId, line: u64, info: AccessInfo) -> u64 {
        if let Some(log) = &mut self.fetch_log {
            log.push(line);
        }
        let mut cost: u64 = 0;
        if !self.itlb[tid.index()].access(Addr(line)) {
            cost += self.profile.tlb_walk as u64;
            self.t_mut(tid).counters.add(PerfEvent::ItlbMisses, 1);
        }
        match info.level {
            Level::L1i => {}
            Level::L1d | Level::L2 => {
                self.t_mut(tid).counters.add(PerfEvent::L1iMisses, 1);
            }
            Level::Llc => {
                let c = &mut self.t_mut(tid).counters;
                c.add(PerfEvent::L1iMisses, 1);
                c.add(PerfEvent::L2Misses, 1);
                c.add(PerfEvent::LlcReferences, 1);
            }
            Level::Dram => {
                let c = &mut self.t_mut(tid).counters;
                c.add(PerfEvent::L1iMisses, 1);
                c.add(PerfEvent::L2Misses, 1);
                c.add(PerfEvent::LlcReferences, 1);
                c.add(PerfEvent::LlcMisses, 1);
            }
        }
        // For instruction fetches the hierarchy reports `ifetch_extra` as
        // the access latency.
        let extra = u64::from(info.latency);
        cost += extra;
        let t = self.t_mut(tid);
        if extra > 0 {
            t.counters.add(PerfEvent::CycleActivityStallsTotal, extra);
        }
        t.last_fetch_line = line;
        t.fetch_window[t.fetch_window_next] = line;
        t.fetch_window_next = (t.fetch_window_next + 1) % FETCH_WINDOW;
        cost
    }

    fn mem_addr(&self, tid: ThreadId, m: MemRef) -> Addr {
        Addr(self.reg(tid, m.base).wrapping_add(m.disp as u64))
    }

    fn dtlb_cost(&mut self, tid: ThreadId, addr: Addr) -> u64 {
        if self.dtlb[tid.index()].access(addr) {
            0
        } else {
            self.t_mut(tid).counters.add(PerfEvent::DtlbMisses, 1);
            self.profile.tlb_walk as u64
        }
    }

    fn count_data_level(&mut self, tid: ThreadId, level: Level) {
        match level {
            Level::L1i | Level::L1d | Level::L2 => {}
            Level::Llc => {
                let c = &mut self.t_mut(tid).counters;
                c.add(PerfEvent::L2Misses, 1);
                c.add(PerfEvent::LlcReferences, 1);
            }
            Level::Dram => {
                let c = &mut self.t_mut(tid).counters;
                c.add(PerfEvent::L2Misses, 1);
                c.add(PerfEvent::LlcReferences, 1);
                c.add(PerfEvent::LlcMisses, 1);
            }
        }
    }

    /// Does a write/flush/prefetch-class access to `line` conflict with the
    /// front-end? True when the line is in L1i or in either thread's
    /// in-flight fetch window.
    ///
    /// Prefiltered through [`CacheHierarchy::maybe_in_l1i`]: the filter is
    /// a superset of every line ever *fetched* (fetch-window entries all
    /// went through `Engine::fetch`, so they are marked too), which means a
    /// clear filter bit disproves both conditions at the cost of one
    /// shift-and-mask. Data-heavy victims issue nearly all their stores at
    /// provably-data lines, so the exact L1i set walk becomes cold.
    fn smc_conflict(&self, line: Addr, in_l1i: bool) -> bool {
        if !self.hier.maybe_in_l1i(line) {
            return false;
        }
        if in_l1i {
            return true;
        }
        self.threads.iter().any(|t| t.fetch_window.contains(&line.0))
    }

    /// Probe-class bookkeeping shared by stores, flushes, prefetches and
    /// clwb. Returns `(smc_fired, cost_cycles)`. `res` is the caller's
    /// residency snapshot of `line` — every probe arm reads it for the
    /// cost model anyway, so the SMC check reuses its L1i bit instead of
    /// re-scanning the set.
    fn probe_effects(
        &mut self,
        tid: ThreadId,
        kind: ProbeKind,
        line: Addr,
        res: Residency,
    ) -> Result<(bool, u64), StepError> {
        let behavior = self.profile.smc.get(kind);
        if behavior == SmcBehavior::Unsupported {
            return Err(StepError::Unsupported { kind });
        }
        let costs = self.profile.probe_costs.get(kind);
        let fires = behavior == SmcBehavior::Triggers && self.smc_conflict(line, res.l1i);
        let cost = if fires {
            (costs.base + costs.smc_extra) as u64
        } else {
            (costs.base + costs.level_extra(res.data_level())) as u64
        };
        if fires {
            self.machine_clear(tid, kind, line);
        }
        Ok((fires, cost))
    }

    /// Apply the architectural and counter effects of an SMC machine clear.
    fn machine_clear(&mut self, tid: ThreadId, kind: ProbeKind, line: Addr) {
        let clear = self.profile.clear;
        let smc_inc = self.profile.smc_count_increment(kind);
        let vendor = self.profile.vendor;
        let at = self.t(tid).clock;
        {
            let c = &mut self.t_mut(tid).counters;
            c.add(PerfEvent::CycleActivityStallsTotal, clear.stalls_total[kind.index()] as u64);
            match vendor {
                Vendor::Intel => {
                    c.add(PerfEvent::MachineClearsCount, 1);
                    c.add(PerfEvent::MachineClearsSmc, smc_inc);
                    c.add(PerfEvent::FrontendIdq4Bubbles, clear.frontend_bubbles as u64);
                    c.add(PerfEvent::IntMiscClearResteerCycles, clear.resteer as u64);
                    c.add(
                        PerfEvent::PartialRatStallsScoreboard,
                        clear.scoreboard[kind.index()] as u64,
                    );
                }
                Vendor::Amd => {
                    c.add(PerfEvent::AmdPipeStallBackPressure, clear.amd_back_pressure as u64);
                    if kind.writes_target() {
                        c.add(PerfEvent::AmdIcLinesInvalidated, 1);
                        c.add(PerfEvent::AmdL2FillBusy, clear.amd_l2_fill_busy as u64);
                    }
                }
            }
        }
        // The modified line leaves the instruction cache.
        self.hier.invalidate_l1i(line);
        // Pipeline flush: both threads refetch, and the sibling stalls.
        for t in &mut self.threads {
            t.fetch_window = [u64::MAX; FETCH_WINDOW];
            t.fetch_window_next = 0;
            t.last_fetch_line = u64::MAX;
        }
        let sib = tid.sibling();
        if self.t(sib).spec.is_some() {
            self.squash_silent(sib);
        }
        self.t_mut(sib).clock += clear.sibling_stall as u64;
        self.t_mut(sib)
            .counters
            .add(PerfEvent::CycleActivityStallsTotal, clear.sibling_stall as u64);
        if self.tracer.is_enabled() {
            self.tracer.record(Event::MachineClear { tid, kind, line, at });
        }
    }

    /// Roll back mispredicted speculation, with the misprediction penalty.
    fn squash(&mut self, tid: ThreadId) {
        let clock = self.t(tid).clock;
        let penalty = self.profile.spec.mispredict_penalty as u64;
        let t = self.t_mut(tid);
        let spec = t.spec.take().expect("squash requires active speculation");
        t.regs = spec.ckpt_regs;
        t.ready = spec.ckpt_ready;
        t.flags = spec.ckpt_flags;
        t.flags_ready = spec.ckpt_flags_ready;
        t.stack.truncate(spec.ckpt_stack_len);
        t.pc = spec.correct_pc;
        t.pc_idx = NO_IDX;
        t.clock = clock.max(spec.resolve_at) + penalty;
        t.last_fetch_line = u64::MAX;
        t.fetch_window = [u64::MAX; FETCH_WINDOW];
        t.fetch_window_next = 0;
        if self.tracer.is_enabled() {
            let at = self.t(tid).clock;
            self.tracer.record(Event::BranchSquash {
                tid,
                pc: spec.branch_pc,
                wrong_path_instrs: spec.wrong_path,
                at,
            });
        }
    }

    /// Roll back speculation without charging the misprediction penalty
    /// (used when a sibling machine clear flushes the pipeline).
    fn squash_silent(&mut self, tid: ThreadId) {
        let t = self.t_mut(tid);
        if let Some(spec) = t.spec.take() {
            t.regs = spec.ckpt_regs;
            t.ready = spec.ckpt_ready;
            t.flags = spec.ckpt_flags;
            t.flags_ready = spec.ckpt_flags_ready;
            t.stack.truncate(spec.ckpt_stack_len);
            t.pc = spec.correct_pc;
            t.pc_idx = NO_IDX;
            t.fetch_window = [u64::MAX; FETCH_WINDOW];
            t.fetch_window_next = 0;
            t.last_fetch_line = u64::MAX;
        }
    }

    fn read_mem_value(&self, addr: Addr, size: MemSize) -> u64 {
        match size {
            MemSize::Byte => self.mem.read_u8(addr) as u64,
            MemSize::Quad => self.mem.read_u64(addr),
        }
    }

    fn write_mem_value(&mut self, addr: Addr, val: u64, size: MemSize) {
        match size {
            MemSize::Byte => self.mem.write_u8(addr, val as u8),
            MemSize::Quad => self.mem.write_u64(addr, val),
        }
    }

    /// Execute one instruction's semantics and timing on thread `tid`.
    #[allow(clippy::too_many_lines)]
    // Force-inlined: `exec` has exactly two callers — the hot `step` loop
    // and the cold injected-sequence path. Left to its own devices the
    // optimizer sees the second caller and outlines this (large) match,
    // costing ~30% steady-state throughput; always-inlining restores the
    // single-caller codegen regardless of what else links in.
    #[inline(always)]
    fn exec(&mut self, tid: ThreadId, instr: &Instr, injected: bool) -> Result<Next, StepError> {
        let mut cost: u64 = 1;
        let mut next = Next::Seq;
        let clock0 = self.t(tid).clock;
        let in_spec = self.t(tid).spec.is_some();
        match instr {
            Instr::Nop => {}
            Instr::Halt => {
                if in_spec {
                    // Wrong-path halt: close the window; the squash happens
                    // on the next step.
                    if let Some(s) = &mut self.t_mut(tid).spec {
                        s.budget = 0;
                    }
                } else {
                    let t = self.t_mut(tid);
                    t.state = ThreadState::Halted;
                    let at = t.clock;
                    if self.tracer.is_enabled() {
                        self.tracer.record(Event::Halted { tid, at });
                    }
                    next = Next::Stop;
                }
            }
            Instr::MovImm { dst, imm } => {
                let t = self.t_mut(tid);
                t.regs[dst.index()] = *imm;
                t.ready[dst.index()] = clock0 + 1;
            }
            Instr::Mov { dst, src } => {
                let t = self.t_mut(tid);
                t.regs[dst.index()] = t.regs[src.index()];
                t.ready[dst.index()] = (clock0 + 1).max(t.ready[src.index()]);
            }
            Instr::Load { dst, mem, size } => {
                let addr = self.mem_addr(tid, *mem);
                cost += self.dtlb_cost(tid, addr);
                let info = self.hier.read(addr.line());
                self.count_data_level(tid, info.level);
                let val = self.read_mem_value(addr, *size);
                let t = self.t_mut(tid);
                t.regs[dst.index()] = val;
                let done = (clock0 + cost).max(t.ready[mem.base.index()]) + info.latency as u64;
                t.ready[dst.index()] = done;
                t.pending_mem = t.pending_mem.max(done);
            }
            Instr::Store { .. } | Instr::StoreImm { .. } => {
                let (mem, val, size) = match instr {
                    Instr::Store { src, mem, size } => (*mem, self.reg(tid, *src), *size),
                    Instr::StoreImm { mem, imm } => (*mem, *imm as u64, MemSize::Byte),
                    _ => unreachable!(),
                };
                let addr = self.mem_addr(tid, mem);
                if in_spec {
                    // Stores do not issue to the memory system speculatively.
                    if let Some(s) = &mut self.t_mut(tid).spec {
                        s.buffered_stores.push((addr, val, size));
                    }
                } else {
                    cost += self.dtlb_cost(tid, addr);
                    let res = self.hier.residency(addr.line());
                    let (_fired, c) =
                        self.probe_effects(tid, ProbeKind::Store, addr.line(), res)?;
                    self.count_data_level(tid, res.data_level());
                    self.hier.write_resident(addr.line(), res);
                    self.write_mem_value(addr, val, size);
                    cost += c;
                }
            }
            Instr::LockInc { mem } => {
                let addr = self.mem_addr(tid, *mem);
                if in_spec {
                    let val = (self.mem.read_u8(addr) as u64).wrapping_add(1);
                    if let Some(s) = &mut self.t_mut(tid).spec {
                        s.buffered_stores.push((addr, val, MemSize::Byte));
                    }
                } else {
                    // Atomic RMW: serializes outstanding memory operations.
                    let t = self.t_mut(tid);
                    let wait = t.pending_mem.saturating_sub(t.clock);
                    cost += wait;
                    cost += self.dtlb_cost(tid, addr);
                    let res = self.hier.residency(addr.line());
                    let (_fired, c) = self.probe_effects(tid, ProbeKind::Lock, addr.line(), res)?;
                    self.count_data_level(tid, res.data_level());
                    self.hier.write_resident(addr.line(), res);
                    let val = self.mem.read_u8(addr).wrapping_add(1);
                    self.mem.write_u8(addr, val);
                    cost += c;
                }
            }
            Instr::Add { dst, src } => {
                let t = self.t_mut(tid);
                let v = t.regs[dst.index()].wrapping_add(t.regs[src.index()]);
                t.regs[dst.index()] = v;
                t.ready[dst.index()] =
                    (clock0 + 1).max(t.ready[dst.index()]).max(t.ready[src.index()]);
            }
            Instr::AddImm { dst, imm } => {
                let t = self.t_mut(tid);
                let v = t.regs[dst.index()].wrapping_add(*imm as u64);
                t.regs[dst.index()] = v;
                t.ready[dst.index()] = (clock0 + 1).max(t.ready[dst.index()]);
            }
            Instr::Sub { dst, src } => {
                let t = self.t_mut(tid);
                let v = t.regs[dst.index()].wrapping_sub(t.regs[src.index()]);
                t.regs[dst.index()] = v;
                t.ready[dst.index()] =
                    (clock0 + 1).max(t.ready[dst.index()]).max(t.ready[src.index()]);
            }
            Instr::Mul { dst, src } => {
                cost += 2;
                let t = self.t_mut(tid);
                let v = t.regs[dst.index()].wrapping_mul(t.regs[src.index()]);
                t.regs[dst.index()] = v;
                t.ready[dst.index()] =
                    (clock0 + 3).max(t.ready[dst.index()]).max(t.ready[src.index()]);
            }
            Instr::And { dst, src } | Instr::Or { dst, src } | Instr::Xor { dst, src } => {
                let t = self.t_mut(tid);
                let a = t.regs[dst.index()];
                let b = t.regs[src.index()];
                let v = match instr {
                    Instr::And { .. } => a & b,
                    Instr::Or { .. } => a | b,
                    _ => a ^ b,
                };
                t.regs[dst.index()] = v;
                t.ready[dst.index()] =
                    (clock0 + 1).max(t.ready[dst.index()]).max(t.ready[src.index()]);
            }
            Instr::ShlImm { dst, amount } => {
                let t = self.t_mut(tid);
                t.regs[dst.index()] = t.regs[dst.index()].wrapping_shl(*amount as u32);
                t.ready[dst.index()] = (clock0 + 1).max(t.ready[dst.index()]);
            }
            Instr::ShrImm { dst, amount } => {
                let t = self.t_mut(tid);
                t.regs[dst.index()] = t.regs[dst.index()].wrapping_shr(*amount as u32);
                t.ready[dst.index()] = (clock0 + 1).max(t.ready[dst.index()]);
            }
            Instr::Cmp { a, b } => {
                let t = self.t_mut(tid);
                let fa = t.regs[a.index()];
                let fb = t.regs[b.index()];
                t.flags = Flags::compare(fa, fb);
                t.flags_ready = (clock0 + 1).max(t.ready[a.index()]).max(t.ready[b.index()]);
            }
            Instr::CmpImm { a, imm } => {
                let t = self.t_mut(tid);
                let fa = t.regs[a.index()];
                t.flags = Flags::compare(fa, *imm);
                t.flags_ready = (clock0 + 1).max(t.ready[a.index()]);
            }
            Instr::Jmp { target } => {
                if injected {
                    return Err(StepError::ControlFlowInjected);
                }
                next = Next::Jump(*target);
            }
            Instr::Jcc { cond, target } => {
                if injected {
                    return Err(StepError::ControlFlowInjected);
                }
                next = self.exec_jcc(tid, *cond, *target)?;
            }
            Instr::Call { target } => {
                cost += 1;
                let ret = self.t(tid).pc + instr.len();
                self.t_mut(tid).stack.push(ret);
                next = Next::Jump(*target);
            }
            Instr::CallReg { target } => {
                cost += 1;
                let dest = self.reg(tid, *target);
                let wait = self.t(tid).ready[target.index()].saturating_sub(clock0);
                cost += wait;
                let ret = self.t(tid).pc + instr.len();
                self.t_mut(tid).stack.push(ret);
                next = Next::Jump(dest);
            }
            Instr::Ret => {
                cost += 1;
                match self.t_mut(tid).stack.pop() {
                    Some(RETURN_SENTINEL) => {
                        if in_spec {
                            if let Some(s) = &mut self.t_mut(tid).spec {
                                s.budget = 0;
                            }
                        } else {
                            self.t_mut(tid).state = ThreadState::Idle;
                            next = Next::Stop;
                        }
                    }
                    Some(ret) => next = Next::Jump(ret),
                    None => {
                        if in_spec {
                            if let Some(s) = &mut self.t_mut(tid).spec {
                                s.budget = 0;
                            }
                        } else {
                            // Returning with an empty stack ends the program.
                            self.t_mut(tid).state = ThreadState::Halted;
                            if self.tracer.is_enabled() {
                                let at = self.t(tid).clock;
                                self.tracer.record(Event::Halted { tid, at });
                            }
                            next = Next::Stop;
                        }
                    }
                }
            }
            Instr::Rdtsc { dst } => {
                cost = self.profile.rdtsc_cost as u64;
                let jitter = self.noise.jitter();
                let raw = (clock0 + cost).saturating_add_signed(jitter);
                let res = self.profile.tsc_resolution as u64;
                let val = (raw / res) * res;
                let t = self.t_mut(tid);
                t.regs[dst.index()] = val;
                t.ready[dst.index()] = clock0 + cost;
            }
            Instr::Mfence => {
                let t = self.t_mut(tid);
                let wait = t.pending_mem.saturating_sub(t.clock);
                cost = wait + self.profile.mfence_cost as u64;
                if wait > 0 {
                    self.t_mut(tid).counters.add(PerfEvent::CycleActivityStallsTotal, wait);
                }
            }
            Instr::Lfence => {
                let t = self.t_mut(tid);
                let wait = t.pending_mem.saturating_sub(t.clock);
                cost = wait + 2;
            }
            Instr::Clflush { mem } | Instr::Clflushopt { mem } => {
                let kind = if matches!(instr, Instr::Clflush { .. }) {
                    ProbeKind::Flush
                } else {
                    ProbeKind::FlushOpt
                };
                if in_spec {
                    // Flushes are not executed speculatively.
                } else {
                    let addr = self.mem_addr(tid, *mem);
                    cost += self.dtlb_cost(tid, addr);
                    let res = self.hier.residency(addr.line());
                    let (_fired, c) = self.probe_effects(tid, kind, addr.line(), res)?;
                    self.hier.flush(addr.line());
                    cost += c;
                }
            }
            Instr::Clwb { mem } => {
                if !in_spec {
                    let addr = self.mem_addr(tid, *mem);
                    cost += self.dtlb_cost(tid, addr);
                    let res = self.hier.residency(addr.line());
                    let (_fired, c) = self.probe_effects(tid, ProbeKind::Clwb, addr.line(), res)?;
                    self.hier.writeback(addr.line());
                    cost += c;
                }
            }
            Instr::PrefetchT0 { mem } | Instr::PrefetchNta { mem } => {
                let kind = if matches!(instr, Instr::PrefetchT0 { .. }) {
                    ProbeKind::Prefetch
                } else {
                    ProbeKind::PrefetchNta
                };
                if !in_spec {
                    let addr = self.mem_addr(tid, *mem);
                    cost += self.dtlb_cost(tid, addr);
                    let res = self.hier.residency(addr.line());
                    let (fired, c) = self.probe_effects(tid, kind, addr.line(), res)?;
                    if !fired {
                        self.hier.prefetch(addr.line());
                    }
                    cost += c;
                }
            }
            Instr::Delay { cycles } => {
                cost = *cycles as u64;
            }
        }
        self.t_mut(tid).clock += cost;
        let delta = self.t(tid).clock - clock0;
        let evictions = self.noise.evictions_for(delta);
        for _ in 0..evictions {
            let set = self.noise.random_set(self.profile.hierarchy.l1i.sets);
            self.hier.evict_lru_l1i(set);
        }
        Ok(next)
    }

    #[inline]
    fn exec_jcc(&mut self, tid: ThreadId, cond: Cond, target: u64) -> Result<Next, StepError> {
        let pc = self.t(tid).pc;
        let fallthrough = pc + Instr::Jcc { cond, target }.len();
        let t = self.t(tid);
        let actual = t.flags.eval(cond);
        let resolved = t.flags_ready <= t.clock;
        let in_spec = t.spec.is_some();
        self.t_mut(tid).counters.add(PerfEvent::BrInstRetired, 1);
        let correct = if actual { target } else { fallthrough };
        if in_spec {
            // No nested speculation: wrong-path branches resolve eagerly.
            return Ok(Next::Jump(correct));
        }
        let predicted = self.bpu.predict(pc);
        self.bpu.update(pc, actual);
        if resolved {
            if predicted != actual {
                self.t_mut(tid).counters.add(PerfEvent::BrMispRetired, 1);
                let penalty = self.profile.spec.mispredict_penalty as u64;
                self.t_mut(tid).clock += penalty;
            }
            return Ok(Next::Jump(correct));
        }
        if predicted == actual {
            // Correct speculation: proceeds without a bubble.
            return Ok(Next::Jump(correct));
        }
        // Wrong-path speculation begins.
        self.t_mut(tid).counters.add(PerfEvent::BrMispRetired, 1);
        let wrong = if predicted { target } else { fallthrough };
        let window = self.profile.spec.window_instrs;
        let t = self.t_mut(tid);
        t.spec = Some(Box::new(SpecState {
            ckpt_regs: t.regs,
            ckpt_ready: t.ready,
            ckpt_flags: t.flags,
            ckpt_flags_ready: t.flags_ready,
            ckpt_stack_len: t.stack.len(),
            correct_pc: correct,
            resolve_at: t.flags_ready,
            budget: window,
            wrong_path: 0,
            branch_pc: pc,
            buffered_stores: Vec::new(),
        }));
        Ok(Next::Jump(wrong))
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("arch", &self.profile.arch)
            .field("t0_clock", &self.threads[0].clock)
            .field("t1_clock", &self.threads[1].clock)
            .finish()
    }
}
