//! Branch prediction: a pattern-history table of 2-bit saturating counters.
//!
//! This is the structure the ISpectre attack mistrains (SMaCk §5.4): the
//! conditional bounds check in the victim is trained with in-bounds indices
//! until the PHT confidently predicts the in-bounds direction, after which
//! an out-of-bounds call speculatively executes the indirect-call gadget.

/// Pattern-history-table predictor with 2-bit saturating counters indexed by
/// (hashed) branch PC.
///
/// ```
/// use smack_uarch::bpu::BranchPredictor;
/// let mut b = BranchPredictor::new(1024);
/// for _ in 0..4 { b.update(0x400, true); }
/// assert!(b.predict(0x400));
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mask: usize,
}

impl BranchPredictor {
    /// Create a predictor with `entries` PHT slots (power of two).
    ///
    /// Counters start weakly-taken (2), matching the common reset state.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> BranchPredictor {
        assert!(entries.is_power_of_two(), "PHT entries must be a power of two");
        BranchPredictor { counters: vec![2; entries], mask: entries - 1 }
    }

    fn index(&self, pc: u64) -> usize {
        // Mix the PC a little so nearby branches do not trivially alias.
        let h = pc ^ (pc >> 7) ^ (pc >> 13);
        (h as usize) & self.mask
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Train the predictor with the resolved direction of the branch at
    /// `pc`.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Reset every counter to weakly-taken.
    pub fn reset(&mut self) {
        self.counters.fill(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_not_taken() {
        let mut b = BranchPredictor::new(64);
        for _ in 0..3 {
            b.update(0x10, false);
        }
        assert!(!b.predict(0x10));
    }

    #[test]
    fn saturates_and_recovers() {
        let mut b = BranchPredictor::new(64);
        for _ in 0..10 {
            b.update(0x10, true);
        }
        assert!(b.predict(0x10));
        b.update(0x10, false);
        // One not-taken from saturated-taken stays predicted-taken.
        assert!(b.predict(0x10));
        b.update(0x10, false);
        assert!(!b.predict(0x10));
    }

    #[test]
    fn distinct_branches_distinct_state() {
        let mut b = BranchPredictor::new(1024);
        for _ in 0..4 {
            b.update(0x1000, false);
            b.update(0x2000, true);
        }
        assert!(!b.predict(0x1000));
        assert!(b.predict(0x2000));
    }

    #[test]
    fn mistraining_scenario() {
        // The ISpectre pattern: train not-taken (in-bounds falls through),
        // then the first out-of-bounds run is predicted not-taken.
        let mut b = BranchPredictor::new(1024);
        let branch_pc = 0x40_1234;
        for _ in 0..8 {
            b.update(branch_pc, false);
        }
        assert!(!b.predict(branch_pc), "bounds check predicted to fall through");
    }
}
