//! A pool of reusable [`Machine`]s keyed by `(profile, noise)`.
//!
//! Constructing a [`Machine`] allocates the full cache hierarchy, predictor
//! tables and sparse memory; an experiment campaign that runs thousands of
//! independent trials pays that cost per trial even though every trial of
//! the same scenario wants an identical cold machine. The pool keeps
//! finished machines on per-configuration shelves and hands them back out
//! after a [`Machine::reset`], which restores the cold power-on state in
//! place — so trial output is bit-identical to a freshly constructed
//! machine while the allocations are reused.
//!
//! Checkout returns a [`PooledMachine`] guard that dereferences to
//! [`Machine`] and returns the machine to its shelf on drop. The pool is
//! `Sync`: parallel trial runners share one pool, and because every
//! checkout resets to a caller-chosen seed, which physical machine a trial
//! receives is unobservable.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::machine::Machine;
use crate::noise::NoiseConfig;
use crate::profile::{MicroArch, UarchProfile};

/// Shelf key: which machines are interchangeable after a reset.
///
/// The profile fingerprint covers every behavior-relevant profile field,
/// so ablation-perturbed profiles never share machines with the stock
/// profile of the same [`MicroArch`]. Noise participates in the key only
/// for bookkeeping clarity: the reset reseeds the noise source anyway, but
/// keying by it keeps shelf contents interpretable in diagnostics.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct PoolKey {
    arch: MicroArch,
    profile_fp: u64,
    noise_fp: u64,
}

/// Construction/reuse counters for one pool (monotonic totals).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PoolStats {
    /// Machines built from scratch (pool misses).
    pub built: u64,
    /// Checkouts served by resetting a shelved machine (pool hits).
    pub reused: u64,
}

/// A shared pool of reset-and-reuse machines. See the
/// [module documentation](self).
#[derive(Debug, Default)]
pub struct MachinePool {
    shelves: Mutex<HashMap<PoolKey, Vec<Machine>>>,
    built: AtomicU64,
    reused: AtomicU64,
}

impl MachinePool {
    /// An empty pool.
    pub fn new() -> MachinePool {
        MachinePool::default()
    }

    /// Check out a machine for `profile` with the given noise model and
    /// seed: a shelved machine of the same configuration reset in place,
    /// or a newly built one when the shelf is empty. Either way the
    /// machine starts in the exact `Machine::with_noise(profile, noise,
    /// seed)` state. The returned guard shelves the machine again on drop.
    pub fn checkout(
        &self,
        profile: &UarchProfile,
        noise: NoiseConfig,
        seed: u64,
    ) -> PooledMachine<'_> {
        let key = PoolKey {
            arch: profile.arch,
            profile_fp: profile.fingerprint(),
            noise_fp: noise.fingerprint(),
        };
        let shelved =
            self.shelves.lock().expect("machine pool poisoned").get_mut(&key).and_then(Vec::pop);
        let machine = match shelved {
            Some(mut m) => {
                m.reset(noise, seed);
                self.reused.fetch_add(1, Ordering::Relaxed);
                m
            }
            None => {
                self.built.fetch_add(1, Ordering::Relaxed);
                Machine::with_noise(profile.clone(), noise, seed)
            }
        };
        PooledMachine { machine: Some(machine), key, pool: self }
    }

    /// Construction/reuse totals so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            built: self.built.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
        }
    }

    /// Machines currently shelved (idle) across all configurations.
    pub fn shelved(&self) -> usize {
        self.shelves.lock().expect("machine pool poisoned").values().map(Vec::len).sum()
    }

    fn put_back(&self, key: PoolKey, machine: Machine) {
        // A panicking trial can poison the mutex; losing the machine is
        // fine then (the process is unwinding), so don't double-panic.
        if let Ok(mut shelves) = self.shelves.lock() {
            shelves.entry(key).or_default().push(machine);
        }
    }
}

/// Checkout guard: dereferences to [`Machine`] and returns the machine to
/// its pool shelf when dropped.
#[derive(Debug)]
pub struct PooledMachine<'p> {
    machine: Option<Machine>,
    key: PoolKey,
    pool: &'p MachinePool,
}

impl PooledMachine<'_> {
    /// Detach the machine from the pool (it will not be shelved on drop).
    pub fn into_inner(mut self) -> Machine {
        self.machine.take().expect("machine present until drop")
    }
}

impl Deref for PooledMachine<'_> {
    type Target = Machine;

    fn deref(&self) -> &Machine {
        self.machine.as_ref().expect("machine present until drop")
    }
}

impl DerefMut for PooledMachine<'_> {
    fn deref_mut(&mut self) -> &mut Machine {
        self.machine.as_mut().expect("machine present until drop")
    }
}

impl Drop for PooledMachine<'_> {
    fn drop(&mut self) {
        if let Some(m) = self.machine.take() {
            self.pool.put_back(self.key, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, MemRef, Reg};
    use crate::machine::Placement;
    use crate::{Addr, ThreadId};

    const T0: ThreadId = ThreadId::T0;

    /// The store-probe timing dance from the machine tests, as a
    /// behavioral fingerprint of a machine's full state.
    fn probe_dance(m: &mut Machine) -> (u64, u64) {
        let mut a = crate::asm::Assembler::new(0x3000);
        a.nop().nop().ret();
        m.load_program(&a.assemble().unwrap());
        m.set_reg(T0, Reg::R1, 0x3000);
        let probe = [
            Instr::Mfence,
            Instr::Rdtsc { dst: Reg::R14 },
            Instr::StoreImm { mem: MemRef::base(Reg::R1), imm: 0x90 },
            Instr::Mfence,
            Instr::Rdtsc { dst: Reg::R15 },
        ];
        m.place_line(Addr(0x3000), Placement::L1i);
        m.warm_tlb(T0, Addr(0x3000));
        m.run_sequence(T0, &probe).unwrap();
        let hot = m.reg(T0, Reg::R15) - m.reg(T0, Reg::R14);
        m.place_line(Addr(0x3000), Placement::L2);
        m.run_sequence(T0, &probe).unwrap();
        let cold = m.reg(T0, Reg::R15) - m.reg(T0, Reg::R14);
        (hot, cold)
    }

    #[test]
    fn checkout_reuses_shelved_machines() {
        let pool = MachinePool::new();
        let profile = MicroArch::CascadeLake.profile();
        {
            let _m = pool.checkout(&profile, NoiseConfig::quiet(), 1);
        }
        {
            let _m = pool.checkout(&profile, NoiseConfig::quiet(), 2);
        }
        let stats = pool.stats();
        assert_eq!(stats.built, 1);
        assert_eq!(stats.reused, 1);
        assert_eq!(pool.shelved(), 1);
    }

    #[test]
    fn concurrent_checkouts_build_separate_machines() {
        let pool = MachinePool::new();
        let profile = MicroArch::CascadeLake.profile();
        let a = pool.checkout(&profile, NoiseConfig::quiet(), 1);
        let b = pool.checkout(&profile, NoiseConfig::quiet(), 1);
        drop(a);
        drop(b);
        assert_eq!(pool.stats().built, 2);
        assert_eq!(pool.shelved(), 2);
    }

    #[test]
    fn distinct_profiles_use_distinct_shelves() {
        let pool = MachinePool::new();
        let stock = MicroArch::CascadeLake.profile();
        let mut perturbed = MicroArch::CascadeLake.profile();
        perturbed.tsc_resolution += 1;
        {
            let _m = pool.checkout(&stock, NoiseConfig::quiet(), 1);
        }
        {
            let m = pool.checkout(&perturbed, NoiseConfig::quiet(), 1);
            assert_eq!(m.profile().tsc_resolution, perturbed.tsc_resolution);
        }
        // The perturbed checkout must not have reused the stock machine.
        assert_eq!(pool.stats().built, 2);
    }

    #[test]
    fn reused_machine_behaves_like_fresh() {
        let pool = MachinePool::new();
        let profile = MicroArch::CascadeLake.profile();
        let fresh =
            probe_dance(&mut Machine::with_noise(profile.clone(), NoiseConfig::realistic(), 0xabc));
        {
            // Dirty a machine thoroughly, then shelve it.
            let mut m = pool.checkout(&profile, NoiseConfig::realistic(), 7);
            probe_dance(&mut m);
            m.write_u64(Addr(0x3000), u64::MAX);
        }
        let mut m = pool.checkout(&profile, NoiseConfig::realistic(), 0xabc);
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(m.read_u64(Addr(0x3000)), 0, "reset zeroes memory");
        assert_eq!(probe_dance(&mut m), fresh, "reset machine times identically");
    }

    #[test]
    fn into_inner_detaches_from_pool() {
        let pool = MachinePool::new();
        let profile = MicroArch::CascadeLake.profile();
        let m = pool.checkout(&profile, NoiseConfig::quiet(), 1);
        let _machine: Machine = m.into_inner();
        assert_eq!(pool.shelved(), 0);
    }
}
