//! Sparse byte-addressable simulated memory.

use std::collections::HashMap;

use crate::addr::{Addr, PAGE_SIZE};

/// Sparse 64-bit memory backed by 4 KiB pages allocated on demand.
///
/// Reads from unallocated memory return zero, which keeps victim setup
/// simple and deterministic.
///
/// ```
/// use smack_uarch::mem::Memory;
/// use smack_uarch::Addr;
///
/// let mut m = Memory::new();
/// m.write_u64(Addr(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(Addr(0x1000)), 0xdead_beef);
/// assert_eq!(m.read_u8(Addr(0x9999)), 0);
/// ```
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// New empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages.entry(page).or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.pages.get(&addr.page().0) {
            Some(p) => p[(addr.0 - addr.page().0) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: Addr, val: u8) {
        let page = addr.page().0;
        self.page_mut(page)[(addr.0 - page) as usize] = val;
    }

    /// Read a little-endian u64 (may straddle pages).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.offset(i as i64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Write a little-endian u64 (may straddle pages).
    pub fn write_u64(&mut self, addr: Addr, val: u64) {
        for (i, b) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.offset(i as i64), *b);
        }
    }

    /// Copy a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.offset(i as i64), *b);
        }
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.offset(i as i64))).collect()
    }

    /// Number of allocated pages (for tests and diagnostics).
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Zero every allocated page **in place**, keeping the page allocations
    /// for reuse. Behaviorally identical to a fresh [`Memory`] (reads of
    /// unallocated pages already return zero), but a reset machine re-runs
    /// a same-shaped workload without re-allocating its working set.
    pub fn clear(&mut self) {
        for p in self.pages.values_mut() {
            p.fill(0);
        }
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory").field("allocated_pages", &self.pages.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unallocated_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(Addr(0xdead_0000)), 0);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = Memory::new();
        m.write_u64(Addr(8), u64::MAX - 3);
        assert_eq!(m.read_u64(Addr(8)), u64::MAX - 3);
    }

    #[test]
    fn straddles_page_boundary() {
        let mut m = Memory::new();
        m.write_u64(Addr(PAGE_SIZE - 4), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(Addr(PAGE_SIZE - 4)), 0x1122_3344_5566_7788);
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn bytes_round_trip() {
        let mut m = Memory::new();
        m.write_bytes(Addr(100), b"smack");
        assert_eq!(m.read_bytes(Addr(100), 5), b"smack");
    }
}
