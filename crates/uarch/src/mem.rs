//! Sparse byte-addressable simulated memory.

use std::cell::Cell;
use std::collections::HashMap;

use crate::addr::{Addr, PAGE_SIZE};

/// Sentinel page base marking the last-page memo as empty.
const NO_PAGE: u64 = u64::MAX;

/// Sparse 64-bit memory backed by 4 KiB pages allocated on demand.
///
/// Pages live in an indexed arena: a dense `Vec` of page frames plus a
/// `page base → frame` map consulted only on a page switch. Accesses show
/// strong page locality (a victim hammers its operand buffers, a probe its
/// oracle line), so the common case is a single compare against the
/// last-resolved page memo rather than a hash lookup per byte.
///
/// Reads from unallocated memory return zero, which keeps victim setup
/// simple and deterministic.
///
/// ```
/// use smack_uarch::mem::Memory;
/// use smack_uarch::Addr;
///
/// let mut m = Memory::new();
/// m.write_u64(Addr(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(Addr(0x1000)), 0xdead_beef);
/// assert_eq!(m.read_u8(Addr(0x9999)), 0);
/// ```
pub struct Memory {
    frames: Vec<Box<[u8; PAGE_SIZE as usize]>>,
    index: HashMap<u64, u32>,
    /// `(page base, frame)` of the most recently resolved page — a `Cell`
    /// so read paths can refresh it through `&self`.
    last: Cell<(u64, u32)>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory { frames: Vec::new(), index: HashMap::new(), last: Cell::new((NO_PAGE, 0)) }
    }
}

impl Memory {
    /// New empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Frame slot of the page at `page` base, if allocated. One compare on
    /// the hot (same page as last access) path, one hash probe otherwise.
    fn frame_of(&self, page: u64) -> Option<u32> {
        let (last_page, last_frame) = self.last.get();
        if last_page == page {
            return Some(last_frame);
        }
        let frame = *self.index.get(&page)?;
        self.last.set((page, frame));
        Some(frame)
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let frame = match self.frame_of(page) {
            Some(f) => f,
            None => {
                let f = u32::try_from(self.frames.len()).expect("fewer than 2^32 pages");
                self.frames.push(Box::new([0; PAGE_SIZE as usize]));
                self.index.insert(page, f);
                self.last.set((page, f));
                f
            }
        };
        &mut self.frames[frame as usize]
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let page = addr.page().0;
        match self.frame_of(page) {
            Some(f) => self.frames[f as usize][(addr.0 - page) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: Addr, val: u8) {
        let page = addr.page().0;
        self.page_mut(page)[(addr.0 - page) as usize] = val;
    }

    /// Read a little-endian u64 (may straddle pages).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let page = addr.page().0;
        let off = (addr.0 - page) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            match self.frame_of(page) {
                Some(f) => {
                    let bytes = &self.frames[f as usize][off..off + 8];
                    u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
                }
                None => 0,
            }
        } else {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr.offset(i as i64));
            }
            u64::from_le_bytes(bytes)
        }
    }

    /// Write a little-endian u64 (may straddle pages).
    pub fn write_u64(&mut self, addr: Addr, val: u64) {
        let page = addr.page().0;
        let off = (addr.0 - page) as usize;
        if off + 8 <= PAGE_SIZE as usize {
            self.page_mut(page)[off..off + 8].copy_from_slice(&val.to_le_bytes());
        } else {
            for (i, b) in val.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.offset(i as i64), *b);
            }
        }
    }

    /// Copy a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.offset(i as i64), *b);
        }
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.offset(i as i64))).collect()
    }

    /// Number of allocated pages (for tests and diagnostics).
    pub fn allocated_pages(&self) -> usize {
        self.frames.len()
    }

    /// Zero every allocated page **in place**, keeping the page frames and
    /// their index for reuse. Behaviorally identical to a fresh [`Memory`]
    /// (reads of unallocated pages already return zero), but a reset
    /// machine re-runs a same-shaped workload without re-allocating its
    /// working set.
    pub fn clear(&mut self) {
        for p in &mut self.frames {
            p.fill(0);
        }
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory").field("allocated_pages", &self.frames.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unallocated_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(Addr(0xdead_0000)), 0);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = Memory::new();
        m.write_u64(Addr(8), u64::MAX - 3);
        assert_eq!(m.read_u64(Addr(8)), u64::MAX - 3);
    }

    #[test]
    fn straddles_page_boundary() {
        let mut m = Memory::new();
        m.write_u64(Addr(PAGE_SIZE - 4), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(Addr(PAGE_SIZE - 4)), 0x1122_3344_5566_7788);
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn bytes_round_trip() {
        let mut m = Memory::new();
        m.write_bytes(Addr(100), b"smack");
        assert_eq!(m.read_bytes(Addr(100), 5), b"smack");
    }

    #[test]
    fn page_memo_survives_interleaved_pages() {
        let mut m = Memory::new();
        // Alternate between two pages so the memo is repeatedly displaced.
        for i in 0..32u64 {
            m.write_u8(Addr(i), i as u8);
            m.write_u8(Addr(5 * PAGE_SIZE + i), (i + 1) as u8);
        }
        for i in 0..32u64 {
            assert_eq!(m.read_u8(Addr(i)), i as u8);
            assert_eq!(m.read_u8(Addr(5 * PAGE_SIZE + i)), (i + 1) as u8);
        }
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn clear_zeroes_but_keeps_frames() {
        let mut m = Memory::new();
        m.write_u64(Addr(0x4000), 7);
        m.write_u64(Addr(0x9000), 9);
        assert_eq!(m.allocated_pages(), 2);
        m.clear();
        assert_eq!(m.allocated_pages(), 2, "frames stay allocated");
        assert_eq!(m.read_u64(Addr(0x4000)), 0);
        assert_eq!(m.read_u64(Addr(0x9000)), 0);
        m.write_u64(Addr(0x4000), 11);
        assert_eq!(m.read_u64(Addr(0x4000)), 11, "frames are reusable after clear");
        assert_eq!(m.allocated_pages(), 2);
    }
}
