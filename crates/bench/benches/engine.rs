//! Engine throughput: what does the decoded fast path actually buy?
//!
//! Every SMaCk experiment is millions of `Engine::step` calls, so the
//! steady-state cost of one simulated instruction bounds every campaign.
//! This benchmark times victim-shaped loop programs (straight-line ALU
//! bodies closed by a backward branch, like `mul_n`) under the three
//! interpreter tiers — superblock execution (the default), the per-step
//! decoded fast path (`Machine::set_superblocks(false)`), and the
//! original per-step `BTreeMap` reference interpreter
//! (`Machine::set_decoded_fast_path(false)`) — plus a full covert-channel
//! trial to translate instructions/sec into trials/sec, and one quick
//! repro (`all`) wall-time sample when the binary is available.
//!
//! Results go to stdout and to `BENCH_engine.json` at the workspace root
//! (CI uploads it as an artifact). `SMACK_BENCH_QUICK=1` cuts the
//! repetition count for smoke runs; the measurement is a best-of-N
//! minimum, so quick numbers are noisier but not biased.

use std::time::Instant;

use smack::channel::{random_payload, run_channel_in, ChannelSpec};
use smack::session::{Scenario, Sessions};
use smack::{OraclePage, Prober};
use smack_uarch::asm::Assembler;
use smack_uarch::isa::Reg;
use smack_uarch::{Addr, Machine, MicroArch, PerfEvent, ProbeKind, ThreadId};

/// A victim-shaped loop: `body` ALU instructions closed by
/// `add/cmp/jne`, iterated `iters` times, then `halt`. Mirrors the modexp
/// victims' shape (dense straight-line multiply bodies under a backward
/// branch) without their setup cost.
fn loop_program(body: usize, iters: u64) -> (smack_uarch::asm::Program, u64) {
    let mut a = Assembler::new(0x40_0000);
    a.mov_imm(Reg::R0, 0).mov_imm(Reg::R2, 1).label("loop");
    for i in 0..body {
        match i % 3 {
            0 => {
                a.add(Reg::R0, Reg::R2);
            }
            1 => {
                a.xor(Reg::R3, Reg::R0);
            }
            _ => {
                a.mul(Reg::R4, Reg::R2);
            }
        }
    }
    a.add_imm(Reg::R2, 1).cmp_imm(Reg::R2, iters).jne("loop").halt();
    (a.assemble().expect("loop program assembles"), (body as u64 + 3) * iters)
}

/// The three interpreter tiers, fastest first.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Tier {
    /// Decoded fast path + superblock batched retirement (the default).
    Superblock,
    /// Decoded fast path, per-step retirement.
    Decoded,
    /// Original per-step `BTreeMap` reference interpreter.
    Reference,
}

/// One timed run of `steps` instructions of `prog` on a fresh machine
/// under the given interpreter tier.
fn one_run(prog: &smack_uarch::asm::Program, steps: u64, tier: Tier) -> f64 {
    let mut m = Machine::new(MicroArch::CascadeLake.profile());
    match tier {
        Tier::Superblock => m.set_superblocks(true),
        Tier::Decoded => m.set_superblocks(false),
        Tier::Reference => m.set_decoded_fast_path(false),
    }
    m.load_program(prog);
    m.start_program(ThreadId::T0, prog.entry(), &[]);
    let t = Instant::now();
    m.run_until_halt(ThreadId::T0, 10 * steps).expect("loop program halts");
    t.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall time for the three interpreter tiers, interleaved
/// (superblock, decoded, reference, superblock, …) so transient system
/// load biases every tier equally and the speedup ratios stay stable even
/// on a busy host.
fn time_interpreters(prog: &smack_uarch::asm::Program, steps: u64, reps: usize) -> (f64, f64, f64) {
    let (mut sb, mut fast, mut refr) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..reps {
        sb = sb.min(one_run(prog, steps, Tier::Superblock));
        fast = fast.min(one_run(prog, steps, Tier::Decoded));
        refr = refr.min(one_run(prog, steps, Tier::Reference));
    }
    (sb, fast, refr)
}

/// Best-of-`reps` wall time for one pooled covert-channel trial
/// (Prime+iProbe, store probe, `bits`-bit payload) — the end-to-end unit
/// the experiment harnesses repeat thousands of times. `fused` toggles the
/// fused probe tier on the checked-out machine (pool checkout resets the
/// flag to the process default, so the override goes after checkout).
fn time_trial(sessions: &Sessions, bits: usize, reps: usize, fused: bool) -> f64 {
    let scenario = Scenario::new(MicroArch::CascadeLake);
    let spec = ChannelSpec::prime_probe(ProbeKind::Store);
    let payload = random_payload(bits, 7);
    // Warm the calibration cache so the loop times steady-state trials.
    let mut session = sessions.session(&scenario);
    session.machine().set_fused_probes(fused);
    run_channel_in(&mut session, &spec, &payload, false).expect("channel runs");
    let mut best = f64::MAX;
    for _ in 0..reps {
        let mut session = sessions.session(&scenario);
        session.machine().set_fused_probes(fused);
        let t = Instant::now();
        run_channel_in(&mut session, &spec, &payload, false).expect("channel runs");
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`reps` ns per probe for each probe class, fused vs per-step:
/// the phase the fused probe tier targets, isolated from prime/send/wait
/// cost. The probed line holds a real routine (like the channels' oracle
/// pages), so the `Execute` class — which can never fuse — has something
/// to call and serves as the built-in control.
fn time_probes(reps: usize) -> Vec<(ProbeKind, f64, f64)> {
    const SCRATCH: Addr = Addr(0x3_0000);
    let n = 4_000u32;
    let mut out = Vec::new();
    for kind in ProbeKind::ALL {
        let mut best = [f64::MAX; 2];
        for _ in 0..reps {
            for (slot, fused) in [(0usize, true), (1, false)] {
                let mut m = Machine::new(MicroArch::CascadeLake.profile());
                m.set_fused_probes(fused);
                let page = OraclePage::build(SCRATCH, 1);
                page.install(&mut m);
                let line = page.line(0);
                m.warm_tlb(ThreadId::T0, line);
                let mut prober = Prober::new(ThreadId::T0);
                prober.measure(&mut m, kind, line).expect("probe warms up");
                let t = Instant::now();
                for _ in 0..n {
                    prober.measure(&mut m, kind, line).expect("probe runs");
                }
                best[slot] = best[slot].min(t.elapsed().as_secs_f64() / f64::from(n));
            }
        }
        out.push((kind, best[0] * 1e9, best[1] * 1e9));
    }
    out
}

const PATCH_CODE: u64 = 0x50_0000;
const PATCH_HELPER: u64 = 0x50_1000;

/// The SMC patch victim: a call loop around a helper routine that the
/// patch variants rewrite. Variant 0 is the base (`add/nop/ret`),
/// variant 1 the same-length `xor` swap (re-decodes in place), variant 2
/// a boundary-moving rewrite (forces the full-recompile fallback that
/// `SimPatchRecompiles` counts).
fn patch_victim() -> smack_uarch::asm::Program {
    let mut a = Assembler::new(PATCH_CODE);
    a.mov_imm(Reg::R0, 0)
        .label("loop")
        .call("helper")
        .add_imm(Reg::R0, 1)
        .cmp_imm(Reg::R0, 64)
        .jne("loop")
        .halt();
    a.org(PATCH_HELPER).label("helper").add(Reg::R1, Reg::R2).nop().ret();
    a.assemble().expect("patch victim assembles")
}

fn helper_variant(kind: u8) -> smack_uarch::asm::Program {
    let mut a = Assembler::new(PATCH_HELPER);
    match kind {
        0 => a.label("helper").add(Reg::R1, Reg::R2).nop().ret(),
        1 => a.label("helper").xor(Reg::R1, Reg::R2).nop().ret(),
        _ => a.label("helper").add_imm(Reg::R1, 7).ret(),
    };
    a.assemble().expect("helper variant assembles")
}

/// Best-of-`reps` cost of one `Machine::patch_program` call alternating
/// between helper variants `a` and `b`, plus the `SimPatchRecompiles`
/// delta per patch — 0.0 when the rewrite re-decodes in place, ≥ 1.0 when
/// every patch falls back to a full recompile.
fn time_patches(a_kind: u8, b_kind: u8, n: u64, reps: usize) -> (f64, f64) {
    let base = patch_victim();
    let (pa, pb) = (helper_variant(a_kind), helper_variant(b_kind));
    let mut best = f64::MAX;
    let mut per_patch = 0.0;
    for _ in 0..reps {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        m.load_program(&base);
        m.start_program(ThreadId::T0, base.entry(), &[]);
        m.run_burst(ThreadId::T0, 16).expect("warm-up runs");
        let before = m.counters(ThreadId::T0).read(PerfEvent::SimPatchRecompiles);
        let t = Instant::now();
        for _ in 0..n {
            m.patch_program(&pa);
            m.patch_program(&pb);
        }
        best = best.min(t.elapsed().as_secs_f64() / (2 * n) as f64);
        let delta = m.counters(ThreadId::T0).read(PerfEvent::SimPatchRecompiles) - before;
        per_patch = delta as f64 / (2 * n) as f64;
    }
    (best, per_patch)
}

/// Time one quick repro (`all` into a temp dir), returning wall
/// milliseconds, or `None` when the release binary is missing. A separate
/// process keeps the measurement honest: it includes process start-up,
/// calibration-cache misses, and CSV writing, exactly like CI.
fn time_quick_all() -> Option<f64> {
    let bin = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/release/all");
    if !bin.exists() {
        return None;
    }
    let out = std::env::temp_dir().join(format!("smack-bench-all-{}", std::process::id()));
    let t = Instant::now();
    let status = std::process::Command::new(&bin)
        .arg("--out")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .ok()?;
    let elapsed = t.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&out);
    status.success().then_some(elapsed)
}

fn main() {
    let quick = std::env::var("SMACK_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 3 } else { 9 };

    // Steady state: big enough that load-time compilation amortizes to
    // noise; two program sizes show the map-lookup path degrading with
    // program size while the decoded path stays flat.
    let sizes = [(120usize, 20_000u64), (1200, 2_000), (4800, 500)];
    println!("engine/interpreter (best of {reps}, CascadeLake, ns per simulated instruction)");
    let mut rows = Vec::new();
    for (body, iters) in sizes {
        let (prog, steps) = loop_program(body, iters);
        let (sb, fast, refr) = time_interpreters(&prog, steps, reps);
        let sb_ips = steps as f64 / sb;
        let fast_ips = steps as f64 / fast;
        let ref_ips = steps as f64 / refr;
        println!(
            "  body={body:<5} superblock {:>6.2} ns ({sb_ips:.3e}/s)   decoded {:>6.2} ns ({fast_ips:.3e}/s)   reference {:>6.2} ns ({ref_ips:.3e}/s)   speedup {:.2}x/{:.2}x",
            sb / steps as f64 * 1e9,
            fast / steps as f64 * 1e9,
            refr / steps as f64 * 1e9,
            sb_ips / fast_ips,
            sb_ips / ref_ips,
        );
        rows.push((body, sb_ips, fast_ips, ref_ips));
    }

    let sessions = Sessions::new();
    let bits = 64;
    let trial = time_trial(&sessions, bits, reps, true);
    let trial_stepped = time_trial(&sessions, bits, reps, false);
    let trials_per_sec = 1.0 / trial;
    let trials_per_sec_per_step = 1.0 / trial_stepped;
    println!(
        "engine/trial: {bits}-bit Prime+iProbe channel trial {:.3} ms ({trials_per_sec:.1} trials/s)   \
         per-step probes {:.3} ms ({trials_per_sec_per_step:.1} trials/s)   fused speedup {:.2}x",
        trial * 1e3,
        trial_stepped * 1e3,
        trial_stepped / trial,
    );

    // Probe-phase cost per class: the instruction sequences the fused tier
    // collapses into one engine pass, timed in isolation.
    let probe_rows = time_probes(reps);
    println!("engine/probe (best of {reps}, ns per timed probe, fused vs per-step)");
    for (kind, fused_ns, stepped_ns) in &probe_rows {
        println!(
            "  {kind:<12} fused {fused_ns:>7.1} ns   per-step {stepped_ns:>7.1} ns   speedup {:.2}x",
            stepped_ns / fused_ns
        );
    }

    // SMC patch cost: the in-place re-decode vs the full-recompile
    // fallback, with the recompile rate from the perf counter proving
    // which path each variant actually hit.
    let (inplace_ns, inplace_rate) = time_patches(0, 1, 1000, reps);
    let (recompile_ns, recompile_rate) = time_patches(0, 2, 250, reps);
    println!(
        "engine/patch: in-place {:.0} ns/patch ({inplace_rate:.1} recompiles/patch)   \
         boundary-moving {:.0} ns/patch ({recompile_rate:.1} recompiles/patch)",
        inplace_ns * 1e9,
        recompile_ns * 1e9,
    );

    // One quick repro wall-time sample: the end-to-end number the
    // superblock work is meant to move. Skipped (null) when the repro
    // binary has not been built.
    let quick_all_ms = time_quick_all();
    match quick_all_ms {
        Some(ms) => println!("engine/quick-all: {ms:.1} ms"),
        None => println!("engine/quick-all: skipped (release `all` binary not found)"),
    }

    // Headline steady-state numbers: the victim-scale (1200-instr body)
    // program, the size class the modexp victims live in.
    let (_, sb_ips, fast_ips, ref_ips) = rows[1];
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"arch\": \"CascadeLake\",\n  \"quick\": {quick},\n  \
         \"superblock_instrs_per_sec\": {sb_ips:.0},\n  \
         \"decoded_instrs_per_sec\": {fast_ips:.0},\n  \
         \"reference_instrs_per_sec\": {ref_ips:.0},\n  \
         \"superblock_speedup\": {:.2},\n  \
         \"speedup\": {:.2},\n  \
         \"quick_all_wall_ms\": {},\n  \
         \"trials_per_sec\": {trials_per_sec:.1},\n  \
         \"trials_per_sec_per_step\": {trials_per_sec_per_step:.1},\n  \
         \"trial_fused_speedup\": {:.2},\n  \
         \"trial_payload_bits\": {bits},\n  \
         \"probe_classes\": [\n{}\n  ],\n  \
         \"patch_inplace_ns\": {:.1},\n  \
         \"patch_recompile_ns\": {:.1},\n  \
         \"patch_recompiles_per_boundary_patch\": {recompile_rate:.2},\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        sb_ips / fast_ips,
        fast_ips / ref_ips,
        quick_all_ms.map_or("null".to_string(), |ms| format!("{ms:.1}")),
        trial_stepped / trial,
        probe_rows
            .iter()
            .map(|(kind, fused_ns, stepped_ns)| format!(
                "    {{ \"kind\": \"{kind:?}\", \"fused_ns\": {fused_ns:.1}, \
                 \"per_step_ns\": {stepped_ns:.1}, \"speedup\": {:.2} }}",
                stepped_ns / fused_ns
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        inplace_ns * 1e9,
        recompile_ns * 1e9,
        rows.iter()
            .map(|(body, s, f, r)| format!(
                "    {{ \"body_instrs\": {body}, \"superblock_instrs_per_sec\": {s:.0}, \
                 \"decoded_instrs_per_sec\": {f:.0}, \
                 \"reference_instrs_per_sec\": {r:.0} }}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_engine.json: {e}"),
    }
}
