//! Session-layer micro-benches: what does the machine pool actually save?
//!
//! Compares a cold `Machine::new` per trial against a `MachinePool`
//! checkout (reset-in-place reuse), and a full inline calibration against
//! a calibration-cache hit — the two per-trial costs the session layer
//! amortizes across an experiment campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use smack::session::{Scenario, Sessions};
use smack_uarch::{Machine, MachinePool, MicroArch, NoiseConfig, Placement, ProbeKind};

fn bench_machine_acquisition(c: &mut Criterion) {
    let mut g = c.benchmark_group("session");
    let profile = MicroArch::CascadeLake.profile();

    g.bench_function("machine_new", |b| b.iter(|| Machine::new(MicroArch::CascadeLake.profile())));

    let pool = MachinePool::new();
    // Warm one shelf so the loop measures the steady-state reuse path.
    drop(pool.checkout(&profile, NoiseConfig::quiet(), 0));
    g.bench_function("pool_checkout", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            pool.checkout(&profile, NoiseConfig::quiet(), seed)
        })
    });
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibration");
    let sessions = Sessions::new();
    let scenario = Scenario::new(MicroArch::CascadeLake);

    g.bench_function("inline_recalibrate", |b| {
        let session = sessions.session(&scenario);
        b.iter(|| session.recalibrate(ProbeKind::Store, Placement::L2).unwrap())
    });

    g.bench_function("cache_hit", |b| {
        let session = sessions.session(&scenario);
        session.calibrated(ProbeKind::Store, Placement::L2).unwrap();
        b.iter(|| session.calibrated(ProbeKind::Store, Placement::L2).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_machine_acquisition, bench_calibration);
criterion_main!(benches);
