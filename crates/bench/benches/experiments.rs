//! Criterion benches over the experiment building blocks — one per paper
//! artifact family — so attack-layer performance regressions surface. The
//! printing harnesses live in `src/bin/`; these bench the underlying
//! (quiet) pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::channel::{random_payload, run_channel, ChannelSpec};
use smack::characterize::{figure1, figure2};
use smack::ispectre::{leak_secret, ISpectreConfig};
use smack::rsa::{self, RsaAttackConfig};
use smack::srp::{self, SrpAttackConfig};
use smack_crypto::Bignum;
use smack_uarch::{Machine, MicroArch, ProbeKind, ThreadId};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    // Figure 1 family: the timing characterization sweep.
    g.bench_function("fig1_characterization", |b| {
        b.iter(|| {
            let mut m = Machine::new(MicroArch::CascadeLake.profile());
            figure1(&mut m, ThreadId::T0, 20).unwrap()
        })
    });

    // Figure 2 family: the counter profiling sweep.
    g.bench_function("fig2_counters", |b| {
        b.iter(|| {
            let mut m = Machine::new(MicroArch::CascadeLake.profile());
            figure2(&mut m, ThreadId::T0, 50).unwrap()
        })
    });

    // Table 1 / Figure 3 family: a covert-channel transmission.
    let payload = random_payload(64, 3);
    g.bench_function("table1_channel_64bits", |b| {
        b.iter(|| {
            let mut m = Machine::new(MicroArch::CascadeLake.profile());
            run_channel(&mut m, &ChannelSpec::flush_reload(ProbeKind::Flush), &payload, false)
                .unwrap()
        })
    });

    // Figures 4-5 family: one RSA attack trace + decode.
    let mut rng = SmallRng::seed_from_u64(5);
    let exp = Bignum::random_bits(&mut rng, 96);
    let rsa_cfg = RsaAttackConfig::new(ProbeKind::Flush);
    let victim = rsa::build_victim(&rsa_cfg);
    g.bench_function("fig5_rsa_trace_96b", |b| {
        b.iter(|| {
            let t = rsa::collect_trace(MicroArch::TigerLake, &victim, &exp, &rsa_cfg, 9).unwrap();
            rsa::decode_trace(&t, exp.bit_len())
        })
    });

    // Table 2 / Figure 6 family: one SRP single-trace attack.
    let srp_b = Bignum::random_bits(&mut rng, 96);
    let srp_cfg = SrpAttackConfig::new(2048);
    g.bench_function("table2_srp_trace_96b", |b| b.iter(|| single_trace(&srp_b, &srp_cfg)));

    // Tables 3-4 family: one ISpectre byte.
    let spectre_cfg = ISpectreConfig::new(ProbeKind::Store);
    g.bench_function("table4_ispectre_byte", |b| {
        b.iter(|| leak_secret(MicroArch::CascadeLake, b"A", &spectre_cfg, 12).unwrap())
    });

    // Section 6.1 family: one detection window pair.
    let det_cfg = smack_detection::DetectionConfig {
        window_cycles: 40_000,
        windows_per_run: 2,
        ..Default::default()
    };
    g.bench_function("table5_detection_windows", |b| {
        b.iter(|| {
            smack_detection::attack_windows(
                MicroArch::CascadeLake,
                smack_detection::AttackLoop::PrimeProbe(ProbeKind::Store),
                &det_cfg,
                13,
            )
            .unwrap()
        })
    });

    g.finish();
}

fn single_trace(b: &Bignum, cfg: &SrpAttackConfig) -> f64 {
    srp::single_trace_attack(MicroArch::TigerLake, b, cfg, 7).unwrap().leakage
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
