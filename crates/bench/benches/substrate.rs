//! Criterion micro-benches for the substrates: simulator stepping, cache
//! operations, probe primitives, bignum/Montgomery arithmetic, SHA-256 and
//! kNN classification.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::oracle::{EvictionSet, OraclePage};
use smack::probe::Prober;
use smack_crypto::{Bignum, MontCtx, Sha256};
use smack_ml::{KnnClassifier, Sample};
use smack_uarch::asm::Assembler;
use smack_uarch::isa::Reg;
use smack_uarch::{Addr, Machine, MicroArch, ProbeKind, ThreadId};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    // Tight arithmetic loop throughput.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("engine_arith_loop_10k", |b| {
        b.iter(|| {
            let mut m = Machine::new(MicroArch::CascadeLake.profile());
            let mut a = Assembler::new(0x40_0000);
            a.mov_imm(Reg::R1, 10_000)
                .label("l")
                .add_imm(Reg::R2, 3)
                .add_imm(Reg::R1, -1)
                .cmp_imm(Reg::R1, 0)
                .jne("l")
                .halt();
            let p = a.assemble().unwrap();
            m.load_program(&p);
            m.start_program(ThreadId::T1, p.entry(), &[]);
            m.run_until_halt(ThreadId::T1, 100_000).unwrap();
        })
    });
    g.finish();

    let mut g = c.benchmark_group("attack_primitives");
    g.bench_function("prime_probe_round", |b| {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        let ev = EvictionSet::for_machine(&m, 0x10_0000, 9);
        ev.install(&mut m);
        let mut p = Prober::new(ThreadId::T0);
        b.iter(|| {
            ev.prime(&mut m, &mut p).unwrap();
            ev.probe(&mut m, &mut p, ProbeKind::Store).unwrap()
        })
    });
    g.bench_function("smc_probe_measure", |b| {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        OraclePage::build(Addr(0x2_0000), 1).install(&mut m);
        let mut p = Prober::new(ThreadId::T0);
        b.iter(|| p.measure(&mut m, ProbeKind::Flush, Addr(0x2_0000)).unwrap())
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let mut rng = SmallRng::seed_from_u64(1);
    let mut n = Bignum::random_bits(&mut rng, 1024);
    if n.is_even() {
        n = n.add(&Bignum::one());
    }
    let ctx = MontCtx::new(&n);
    let a = ctx.to_mont(&Bignum::random_below(&mut rng, &n));
    let bb = ctx.to_mont(&Bignum::random_below(&mut rng, &n));
    g.bench_function("mont_mul_1024", |b| b.iter(|| ctx.mul(&a, &bb)));
    let e = Bignum::random_bits(&mut rng, 256);
    let base = Bignum::random_below(&mut rng, &n);
    g.bench_function("modexp_sliding_window_256e_1024m", |b| {
        b.iter(|| smack_crypto::modexp::sliding_window(&base, &e, &n))
    });
    let data = vec![0xa5u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha256_4k", |b| b.iter(|| Sha256::digest(&data)));
    g.finish();
}

fn bench_ml(c: &mut Criterion) {
    let mut g = c.benchmark_group("ml");
    let train: Vec<Sample> = (0..200)
        .map(|i| {
            let x = (i % 10) as f64;
            Sample::new(vec![x, x * 0.5, 64.0 - x], i % 4)
        })
        .collect();
    let knn = KnnClassifier::fit(3, train);
    g.bench_function("knn_predict_200x3", |b| b.iter(|| knn.predict(&[3.0, 1.5, 61.0])));
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_crypto, bench_ml);
criterion_main!(benches);
