//! Ablation studies: SMC margin, front-end latency hiding, timer
//! resolution, τ_w, τ_w jitter, the §6.2 constant-time countermeasure,
//! and sibling slowdown — via the shared registry CLI.
use std::process::ExitCode;

fn main() -> ExitCode {
    smack_bench::cli::run(smack_bench::cli::Selection::Ablations)
}
