//! Ablation studies: SMC margin, front-end latency hiding, timer
//! resolution, τ_w, the §6.2 constant-time countermeasure, and sibling
//! slowdown. Pass `--full` for larger sample counts.
fn main() {
    let mode = smack_bench::Mode::from_args();
    smack_bench::ablations::all(mode);
}
