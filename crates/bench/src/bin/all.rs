//! Regenerate every table and figure in sequence (run the `fingerprint`
//! and `ablations` binaries separately for Case Study II step 1 and the
//! ablation studies). Pass `--full` for paper-scale sample counts.
//!
//! Ends with a wall-time summary per figure/table so interpreter or
//! scheduler regressions show up in the repro log itself (the CSVs under
//! `target/repro/` carry no timing and stay bit-identical across
//! machines).
use std::time::Instant;

use smack_bench::experiments as e;
use smack_bench::report;

fn main() {
    let mode = smack_bench::Mode::from_args();
    let jobs: [(&str, &dyn Fn(smack_bench::Mode)); 11] = [
        ("fig1", &|m| {
            e::fig1(m);
        }),
        ("fig2", &|m| {
            e::fig2(m);
        }),
        ("table1", &|m| {
            e::table1(m);
        }),
        ("fig3", &|m| {
            e::fig3(m);
        }),
        ("fig4", &|m| {
            e::fig4(m);
        }),
        ("fig5", &|m| {
            e::fig5(m);
        }),
        ("table2", &|m| {
            e::table2(m);
        }),
        ("fig6", &|m| {
            e::fig6(m);
        }),
        ("table3", &|m| {
            e::table3(m);
        }),
        ("table4", &|m| {
            e::table4(m);
        }),
        ("table5", &|m| {
            e::table5(m);
        }),
    ];
    let total = Instant::now();
    let mut times = Vec::with_capacity(jobs.len());
    for (name, job) in jobs {
        let t = Instant::now();
        job(mode);
        times.push((name, t.elapsed()));
    }
    let total = total.elapsed();

    report::banner("wall time");
    let mut table = report::Table::new(&["figure", "wall ms", "share"]);
    for (name, d) in &times {
        table.row(vec![
            report::s(name),
            report::f(d.as_secs_f64() * 1e3, 1),
            format!("{:.0}%", d.as_secs_f64() / total.as_secs_f64() * 100.0),
        ]);
    }
    table.row(vec!["total".to_owned(), report::f(total.as_secs_f64() * 1e3, 1), String::new()]);
    table.print();
}
