//! Regenerate every paper table and figure in sequence via the shared
//! registry CLI (run `fingerprint` and `ablations` for the case-study
//! and ablation bundles; any experiment name can also be given
//! explicitly — `--list` enumerates them).
//!
//! Unsharded runs end with a wall-time summary per figure/table so
//! interpreter or scheduler regressions show up in the repro log itself.
//! `--shards N` spawns one process per shard, shares the persistent
//! calibration cache between them, and merges the per-shard CSVs into
//! output bit-identical to the unsharded run.
use std::process::ExitCode;

fn main() -> ExitCode {
    smack_bench::cli::run(smack_bench::cli::Selection::Paper)
}
