//! Regenerate every table and figure in sequence (run the `fingerprint`
//! and `ablations` binaries separately for Case Study II step 1 and the
//! ablation studies). Pass `--full` for paper-scale sample counts.
use smack_bench::experiments as e;

fn main() {
    let mode = smack_bench::Mode::from_args();
    e::fig1(mode);
    e::fig2(mode);
    e::table1(mode);
    e::fig3(mode);
    e::fig4(mode);
    e::fig5(mode);
    e::table2(mode);
    e::fig6(mode);
    e::table3(mode);
    e::table4(mode);
    e::table5(mode);
}
