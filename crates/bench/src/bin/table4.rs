//! Regenerate the paper's table4 (see `smack-bench` docs). Pass `--full`
//! for paper-scale sample counts.
fn main() {
    let mode = smack_bench::Mode::from_args();
    smack_bench::experiments::table4(mode);
}
