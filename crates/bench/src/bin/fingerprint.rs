//! Case Study II steps 1–2 (paper §5.2): identify the victim's crypto
//! library version from L1i-set activity fingerprints, and locate the
//! multiplication set. Pass `--full` for the complete 34-version corpus.
use smack::fingerprint::{library_id_experiment, mul_set_detection_accuracy, SweepConfig};
use smack_bench::report::{banner, f, s, Table};
use smack_bench::Mode;
use smack_uarch::MicroArch;
use smack_victims::corpus::corpus;

fn main() {
    let mode = Mode::from_args();
    banner("Case Study II step 1 — library version fingerprinting (Tiger Lake)");
    let full = corpus();
    let versions: Vec<_> = match mode {
        Mode::Quick => full.iter().cloned().step_by(4).collect(), // 9 versions
        Mode::Full => full.clone(),
    };
    let cfg = SweepConfig::default();
    let report = library_id_experiment(
        MicroArch::TigerLake,
        &versions,
        mode.pick(5, 8),
        mode.pick(1, 2),
        &cfg,
    )
    .expect("experiment runs");
    let mut t = Table::new(&["metric", "measured", "paper"]);
    t.row(vec![s("versions classified"), s(report.versions), s("34 (20 OpenSSL + 14 Libgcrypt)")]);
    t.row(vec![s("offline cross-validation accuracy"), f(report.cv_accuracy, 3), s("1.00")]);
    t.row(vec![s("online identification accuracy"), f(report.online_accuracy, 3), s("0.97")]);
    t.print();
    t.write_csv("fingerprint");

    banner("Case Study II step 2 — multiplication-set detection");
    let acc = mul_set_detection_accuracy(MicroArch::TigerLake, mode.pick(8, 24), &cfg)
        .expect("experiment runs");
    println!("binary kNN accuracy: {acc:.3}   (paper: 0.96)");
}
