//! Case Study II steps 1–2 (paper §5.2): identify the victim's crypto
//! library version from L1i-set activity fingerprints, and locate the
//! multiplication set — via the shared registry CLI.
use std::process::ExitCode;

fn main() -> ExitCode {
    smack_bench::cli::run(smack_bench::cli::Selection::Named("fingerprint"))
}
