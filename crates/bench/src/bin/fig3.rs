//! Regenerate the paper's fig3 (see `smack-bench` docs). Pass `--full`
//! for paper-scale sample counts.
fn main() {
    let mode = smack_bench::Mode::from_args();
    smack_bench::experiments::fig3(mode);
}
