//! Regenerate the paper's fig5 via the shared registry CLI (see the
//! `smack-bench` docs; `--list` enumerates every experiment).
use std::process::ExitCode;

fn main() -> ExitCode {
    smack_bench::cli::run(smack_bench::cli::Selection::Named("fig5"))
}
