//! Deterministic fault injection for the experiment service.
//!
//! The `SMACK_CHAOS` environment variable holds a comma-separated list of
//! directives, each optionally scoped to one worker with `@<index>`
//! (workers learn their one-based index from `SMACK_WORKER_INDEX`, set by
//! the coordinator when it spawns the fleet):
//!
//! ```text
//! SMACK_CHAOS="kill-after-unit=1@1,torn-write=1@2,stall-heartbeat=1@3,drop-result=2"
//! ```
//!
//! * `kill-after-unit=K` — the worker exits (code 17) immediately after
//!   *executing* its K-th lease, before reporting the result: a crash
//!   mid-unit. The lease expires and the unit re-runs elsewhere.
//! * `stall-heartbeat=K` — on its K-th lease the worker sends no
//!   heartbeats and sleeps past the lease deadline before executing: a
//!   hang. The coordinator re-queues the unit; the stalled worker's late
//!   result is deduplicated by unit id.
//! * `drop-result=K` — the K-th result frame is silently not sent: a lost
//!   message. The lease expires and the unit re-runs.
//! * `torn-write=K` — the partial CSVs of the K-th lease are truncated
//!   mid-file before being reported: a kill mid-write. The coordinator
//!   rejects the torn payload and re-queues the unit.
//!
//! Every directive counts *leases of one worker process*, so a given
//! `SMACK_CHAOS` value replays the exact same fault schedule on every
//! run — which is what lets CI assert byte-identical output under faults.

/// One parsed directive.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Exit after executing lease `K` (1-based), before reporting.
    KillAfterUnit(u64),
    /// Send no heartbeats for lease `K` and sleep past the deadline.
    StallHeartbeat(u64),
    /// Do not send the result frame of lease `K`.
    DropResult(u64),
    /// Truncate the partial CSVs of lease `K` before reporting them.
    TornWrite(u64),
}

/// The chaos schedule one worker process operates under.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    faults: Vec<Fault>,
}

impl ChaosPlan {
    /// An empty plan: no injected faults.
    pub fn none() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Parse a `SMACK_CHAOS` value, keeping only the directives that
    /// apply to worker `worker_index` (one-based; unscoped directives
    /// apply to every worker).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed directive.
    pub fn parse(spec: &str, worker_index: u64) -> Result<ChaosPlan, String> {
        let mut faults = Vec::new();
        for directive in spec.split(',').map(str::trim).filter(|d| !d.is_empty()) {
            let (name, rest) = directive
                .split_once('=')
                .ok_or_else(|| format!("chaos directive `{directive}` is missing `=K`"))?;
            let (k, scope) = match rest.split_once('@') {
                Some((k, w)) => {
                    let w = w
                        .parse::<u64>()
                        .map_err(|_| format!("chaos directive `{directive}`: bad worker `{w}`"))?;
                    (k, Some(w))
                }
                None => (rest, None),
            };
            let k =
                k.parse::<u64>().ok().filter(|k| *k > 0).ok_or_else(|| {
                    format!("chaos directive `{directive}`: K must be a positive")
                })?;
            if scope.is_some_and(|w| w != worker_index) {
                continue;
            }
            faults.push(match name {
                "kill-after-unit" => Fault::KillAfterUnit(k),
                "stall-heartbeat" => Fault::StallHeartbeat(k),
                "drop-result" => Fault::DropResult(k),
                "torn-write" => Fault::TornWrite(k),
                _ => return Err(format!("unknown chaos directive `{name}`")),
            });
        }
        Ok(ChaosPlan { faults })
    }

    /// The plan for this process: `SMACK_CHAOS` filtered by
    /// `SMACK_WORKER_INDEX` (malformed specs are reported and ignored —
    /// chaos must never break a production run it was not aimed at).
    pub fn from_env() -> ChaosPlan {
        let Ok(spec) = std::env::var("SMACK_CHAOS") else {
            return ChaosPlan::none();
        };
        let worker = std::env::var("SMACK_WORKER_INDEX")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        match ChaosPlan::parse(&spec, worker) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("warning: ignoring SMACK_CHAOS: {e}");
                ChaosPlan::none()
            }
        }
    }

    /// Whether any fault is scheduled at all.
    pub fn is_none(&self) -> bool {
        self.faults.is_empty()
    }

    /// Kill the process after executing lease `lease_no` (1-based)?
    pub fn kill_after(&self, lease_no: u64) -> bool {
        self.faults.contains(&Fault::KillAfterUnit(lease_no))
    }

    /// Stall (no heartbeats, sleep past deadline) on lease `lease_no`?
    pub fn stall(&self, lease_no: u64) -> bool {
        self.faults.contains(&Fault::StallHeartbeat(lease_no))
    }

    /// Drop the result frame of lease `lease_no`?
    pub fn drop_result(&self, lease_no: u64) -> bool {
        self.faults.contains(&Fault::DropResult(lease_no))
    }

    /// Tear the partial CSVs of lease `lease_no`?
    pub fn tear(&self, lease_no: u64) -> bool {
        self.faults.contains(&Fault::TornWrite(lease_no))
    }
}

/// Truncate CSV text the way a kill mid-write would: keep roughly half
/// the bytes, cutting mid-row (and never leaving a trailing newline).
pub fn tear_csv(text: &str) -> String {
    let cut = (text.len() / 2).max(1).min(text.len());
    let mut torn: String = text.chars().take(cut).collect();
    while torn.ends_with('\n') {
        torn.pop();
    }
    torn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scoped_and_unscoped_directives() {
        let spec = "kill-after-unit=1@1, torn-write=2@2 ,drop-result=3,stall-heartbeat=4@1";
        let w1 = ChaosPlan::parse(spec, 1).unwrap();
        assert!(w1.kill_after(1) && !w1.kill_after(2));
        assert!(w1.drop_result(3), "unscoped applies everywhere");
        assert!(w1.stall(4));
        assert!(!w1.tear(2), "scoped to worker 2");

        let w2 = ChaosPlan::parse(spec, 2).unwrap();
        assert!(w2.tear(2) && w2.drop_result(3));
        assert!(!w2.kill_after(1) && !w2.stall(4));

        assert!(ChaosPlan::parse("", 1).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_directives() {
        for bad in ["kill-after-unit", "kill-after-unit=0", "kill-after-unit=x", "explode=1"] {
            assert!(ChaosPlan::parse(bad, 1).is_err(), "{bad}");
        }
    }

    #[test]
    fn tear_cuts_mid_file_without_trailing_newline() {
        let text = "unit,a,b\n0,x,y\n0,p,q\n";
        let torn = tear_csv(text);
        assert!(torn.len() < text.len());
        assert!(!torn.ends_with('\n'));
        assert!(text.starts_with(&torn));
    }
}
