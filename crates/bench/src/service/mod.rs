//! The fault-tolerant distributed experiment service.
//!
//! `all --shards N` historically spawned N shard children and died with
//! the first hang or crash, losing every completed unit. This module
//! replaces that with a lease-based coordinator/worker split built for
//! large measurement campaigns that must survive worker death, torn
//! partial CSVs and hung shards **without** giving up the bit-identical
//! merge guarantee the sharding layer established:
//!
//! * the [`coordinator`] owns a [`lease::LeaseQueue`] of (experiment,
//!   unit) leases with heartbeat-extended deadlines, accepts workers over
//!   a loopback TCP socket ([`proto`]), deduplicates re-leased results by
//!   unit id, persists every accepted partial CSV atomically, and merges
//!   the parts with `report::merge_shard_dirs` when the queue drains;
//! * [`worker`]s pull leases, execute units through the existing registry
//!   `Ctx` (the disk calibration cache makes re-entry nearly free),
//!   stream unit-tagged partial CSVs back, heartbeat while executing, and
//!   retry transient connection failures with capped exponential backoff;
//! * a lease whose deadline passes without a heartbeat is re-queued, so a
//!   killed or hung worker only costs its in-flight units' wall time;
//! * if no worker ever connects (or the whole fleet dies), the
//!   coordinator degrades gracefully and executes the remaining units
//!   in-process — a service run always terminates with either complete
//!   output or a named error, never a silently partial tree;
//! * the [`chaos`] harness (`SMACK_CHAOS`) injects worker kills, stalled
//!   heartbeats, dropped results and torn CSV writes deterministically,
//!   so every recovery path above is driven by tests and CI.
//!
//! Because each unit derives its seeds from its own index, a unit's rows
//! are identical wherever and however often it executes; with duplicates
//! dropped by unit id, the merged CSVs are byte-identical to an unfaulted
//! solo run under every injected fault.

pub mod chaos;
pub mod coordinator;
pub mod lease;
pub mod proto;
pub mod worker;

use crate::Mode;

/// One schedulable atom of work: experiment `exp`, local unit `local`,
/// globally numbered `global` across the run's whole selection (the same
/// numbering `registry::run_selection` uses for shard round-robin).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitTask {
    /// Global unit id — the dedup key.
    pub global: usize,
    /// Registry name of the owning experiment.
    pub exp: String,
    /// Unit index within the experiment.
    pub local: usize,
}

/// Encode a [`Mode`] for the wire.
pub fn mode_token(mode: Mode) -> &'static str {
    match mode {
        Mode::Quick => "quick",
        Mode::Full => "full",
    }
}

/// Decode a [`Mode`] from the wire.
pub fn parse_mode(token: &str) -> Option<Mode> {
    match token {
        "quick" => Some(Mode::Quick),
        "full" => Some(Mode::Full),
        _ => None,
    }
}

/// Capped exponential backoff for transient worker failures: attempt 0
/// waits `base_ms`, each retry doubles, clamped to `cap_ms`.
pub fn backoff_ms(attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    base_ms.saturating_mul(1u64 << attempt.min(32)).min(cap_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        assert_eq!(backoff_ms(0, 50, 2000), 50);
        assert_eq!(backoff_ms(1, 50, 2000), 100);
        assert_eq!(backoff_ms(2, 50, 2000), 200);
        assert_eq!(backoff_ms(5, 50, 2000), 1600);
        assert_eq!(backoff_ms(6, 50, 2000), 2000, "capped");
        assert_eq!(backoff_ms(63, 50, 2000), 2000, "no overflow at large attempts");
    }

    #[test]
    fn mode_tokens_round_trip() {
        for mode in [Mode::Quick, Mode::Full] {
            assert_eq!(parse_mode(mode_token(mode)), Some(mode));
        }
        assert_eq!(parse_mode("nope"), None);
    }
}
