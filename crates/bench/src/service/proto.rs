//! Wire protocol between workers and the coordinator.
//!
//! One loopback TCP connection per message, newline-framed headers with
//! byte-counted CSV payloads — deliberately HTTP-shaped so a half-dead
//! worker can never wedge a long-lived stream: every request is a fresh
//! connect, one request frame, one response line, close. The coordinator
//! serves each connection on a short-lived thread under socket read
//! timeouts, so a client that stalls mid-frame costs one thread for the
//! timeout, never the service.
//!
//! Requests:
//!
//! ```text
//! POLL <worker>                          → LEASE …  | WAIT <ms> | DONE
//! BEAT <worker> <unit>                   → OK | LOST
//! RESULT <worker> <unit> <nfiles>
//!   FILE <name> <nbytes>\n<raw bytes>\n  (× nfiles)                → OK | DUP | BAD <msg>
//! FAIL <worker> <unit> <message…>        → OK
//! ```
//!
//! The `LEASE` response carries everything a worker needs to execute a
//! unit: `LEASE <unit> <exp> <local> <mode> <tau_jitter> <lease_ms>`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use super::{mode_token, parse_mode, UnitTask};
use crate::Mode;

/// Socket read/write timeout: generous against scheduler hiccups, small
/// enough that a wedged peer releases its handler thread promptly.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A request a worker sends the coordinator.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Ask for a lease.
    Poll { worker: String },
    /// Extend a held lease.
    Beat { worker: String, unit: usize },
    /// Deliver a unit's partial CSVs: `(file name, file text)`.
    Result { worker: String, unit: usize, files: Vec<(String, String)> },
    /// Report a failed unit.
    Fail { worker: String, unit: usize, error: String },
}

/// A coordinator response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A lease: the unit plus the execution parameters it needs.
    Lease { task: UnitTask, mode: Mode, tau_jitter: u64, lease_ms: u64 },
    /// Nothing pending right now; poll again after `ms`.
    Wait { ms: u64 },
    /// The run is over; the worker should exit cleanly.
    Done,
    /// Beat/result/fail acknowledged.
    Ok,
    /// The result was a duplicate and was discarded.
    Dup,
    /// The lease was lost (beat) or the payload was rejected (result).
    Bad { reason: String },
}

fn io_err(e: std::io::Error, what: &str) -> String {
    format!("{what}: {e}")
}

/// Percent-encode spaces/newlines so error texts survive line framing.
fn enc(s: &str) -> String {
    s.replace('%', "%25").replace(' ', "%20").replace('\n', "%0a")
}

fn dec(s: &str) -> String {
    s.replace("%0a", "\n").replace("%20", " ").replace("%25", "%")
}

/// Write `req` onto `stream` as one frame.
///
/// # Errors
///
/// Propagates socket I/O failures, stringified.
pub fn write_request(stream: &mut TcpStream, req: &Request) -> Result<(), String> {
    let mut frame = String::new();
    match req {
        Request::Poll { worker } => frame.push_str(&format!("POLL {}\n", enc(worker))),
        Request::Beat { worker, unit } => frame.push_str(&format!("BEAT {} {unit}\n", enc(worker))),
        Request::Result { worker, unit, files } => {
            frame.push_str(&format!("RESULT {} {unit} {}\n", enc(worker), files.len()));
            for (name, text) in files {
                frame.push_str(&format!("FILE {} {}\n", enc(name), text.len()));
                frame.push_str(text);
                frame.push('\n');
            }
        }
        Request::Fail { worker, unit, error } => {
            frame.push_str(&format!("FAIL {} {unit} {}\n", enc(worker), enc(error)));
        }
    }
    stream.write_all(frame.as_bytes()).map_err(|e| io_err(e, "sending request"))
}

/// Read one request frame.
///
/// # Errors
///
/// Returns a description of I/O failures or malformed frames.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, String> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| io_err(e, "reading request"))?;
    let mut f = line.split_ascii_whitespace();
    let verb = f.next().ok_or("empty request")?;
    let worker = dec(f.next().ok_or("request missing worker id")?);
    let parse_unit = |f: &mut std::str::SplitAsciiWhitespace| -> Result<usize, String> {
        f.next()
            .ok_or("request missing unit")?
            .parse::<usize>()
            .map_err(|e| format!("bad unit: {e}"))
    };
    match verb {
        "POLL" => Ok(Request::Poll { worker }),
        "BEAT" => Ok(Request::Beat { worker, unit: parse_unit(&mut f)? }),
        "FAIL" => {
            let unit = parse_unit(&mut f)?;
            let error = dec(f.next().unwrap_or(""));
            Ok(Request::Fail { worker, unit, error })
        }
        "RESULT" => {
            let unit = parse_unit(&mut f)?;
            let nfiles = f
                .next()
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|n| *n <= 64)
                .ok_or("bad file count")?;
            let mut files = Vec::with_capacity(nfiles);
            for _ in 0..nfiles {
                let mut header = String::new();
                reader.read_line(&mut header).map_err(|e| io_err(e, "reading file header"))?;
                let mut h = header.split_ascii_whitespace();
                if h.next() != Some("FILE") {
                    return Err(format!("expected FILE header, got {header:?}"));
                }
                let name = dec(h.next().ok_or("FILE header missing name")?);
                let nbytes = h
                    .next()
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|n| *n <= 64 << 20)
                    .ok_or("bad FILE byte count")?;
                let mut buf = vec![0u8; nbytes + 1];
                reader.read_exact(&mut buf).map_err(|e| io_err(e, "reading file payload"))?;
                if buf.pop() != Some(b'\n') {
                    return Err("file payload missing frame terminator".to_owned());
                }
                let text =
                    String::from_utf8(buf).map_err(|e| format!("file payload not UTF-8: {e}"))?;
                files.push((name, text));
            }
            Ok(Request::Result { worker, unit, files })
        }
        other => Err(format!("unknown request verb {other:?}")),
    }
}

/// Write `resp` as one line.
///
/// # Errors
///
/// Propagates socket I/O failures, stringified.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> Result<(), String> {
    let line = match resp {
        Response::Lease { task, mode, tau_jitter, lease_ms } => format!(
            "LEASE {} {} {} {} {tau_jitter} {lease_ms}\n",
            task.global,
            enc(&task.exp),
            task.local,
            mode_token(*mode)
        ),
        Response::Wait { ms } => format!("WAIT {ms}\n"),
        Response::Done => "DONE\n".to_owned(),
        Response::Ok => "OK\n".to_owned(),
        Response::Dup => "DUP\n".to_owned(),
        Response::Bad { reason } => format!("BAD {}\n", enc(reason)),
    };
    stream.write_all(line.as_bytes()).map_err(|e| io_err(e, "sending response"))
}

/// Read one response line.
///
/// # Errors
///
/// Returns a description of I/O failures or malformed responses.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Response, String> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| io_err(e, "reading response"))?;
    let mut f = line.split_ascii_whitespace();
    match f.next().ok_or("empty response")? {
        "LEASE" => {
            fn num(field: Option<&str>, what: &str) -> Result<u64, String> {
                field
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| format!("LEASE missing {what}"))
            }
            let global = num(f.next(), "unit")? as usize;
            let exp = dec(f.next().ok_or("LEASE missing experiment")?);
            let local = num(f.next(), "local unit")? as usize;
            let mode =
                parse_mode(f.next().ok_or("LEASE missing mode")?).ok_or("LEASE has a bad mode")?;
            let tau_jitter = num(f.next(), "tau jitter")?;
            let lease_ms = num(f.next(), "lease period")?;
            Ok(Response::Lease {
                task: UnitTask { global, exp, local },
                mode,
                tau_jitter,
                lease_ms,
            })
        }
        "WAIT" => {
            let ms =
                f.next().and_then(|v| v.parse::<u64>().ok()).ok_or("WAIT missing milliseconds")?;
            Ok(Response::Wait { ms })
        }
        "DONE" => Ok(Response::Done),
        "OK" => Ok(Response::Ok),
        "DUP" => Ok(Response::Dup),
        "BAD" => Ok(Response::Bad { reason: dec(f.next().unwrap_or("")) }),
        other => Err(format!("unknown response {other:?}")),
    }
}

/// One full client exchange: connect to `addr`, send `req`, read the
/// response, close.
///
/// # Errors
///
/// Returns a description of connection or framing failures — callers
/// treat these as transient and retry with backoff.
pub fn exchange(addr: &str, req: &Request) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connecting to coordinator {addr}: {e}"))?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(|e| io_err(e, "setting read timeout"))?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(|e| io_err(e, "setting write timeout"))?;
    write_request(&mut stream, req)?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trip `req` over a real loopback socket, answering `resp`.
    fn round_trip(req: Request, resp: Response) -> (Request, Response) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let got = read_request(&mut reader).unwrap();
            let mut stream = reader.into_inner();
            write_response(&mut stream, &resp).unwrap();
            got
        });
        let got_resp = exchange(&addr, &req).unwrap();
        (server.join().unwrap(), got_resp)
    }

    #[test]
    fn poll_and_lease_round_trip() {
        let lease = Response::Lease {
            task: UnitTask { global: 7, exp: "fig5".into(), local: 3 },
            mode: Mode::Full,
            tau_jitter: 16,
            lease_ms: 5000,
        };
        let (req, resp) = round_trip(Request::Poll { worker: "w 1".into() }, lease.clone());
        assert_eq!(req, Request::Poll { worker: "w 1".into() });
        assert_eq!(resp, lease);
    }

    #[test]
    fn result_frames_carry_multi_line_payloads() {
        let files = vec![
            ("fig2_intel.csv".into(), "unit,a\n0,1\n0,2\n".into()),
            ("fig2_amd.csv".into(), "unit,a\n0,9\n".into()),
        ];
        let sent = Request::Result { worker: "w".into(), unit: 4, files };
        let (req, resp) = round_trip(sent.clone(), Response::Ok);
        assert_eq!(req, sent);
        assert_eq!(resp, Response::Ok);
    }

    #[test]
    fn torn_payloads_survive_framing_byte_for_byte() {
        // A torn CSV (no trailing newline) must arrive exactly as sent —
        // the framing adds its own terminator so the payload length is
        // explicit, not newline-delimited.
        let torn = "unit,a\n0,1\n0,tr";
        let sent = Request::Result {
            worker: "w".into(),
            unit: 0,
            files: vec![("x.csv".into(), torn.into())],
        };
        let (req, _) = round_trip(sent, Response::Bad { reason: "torn".into() });
        match req {
            Request::Result { files, .. } => assert_eq!(files[0].1, torn),
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn fail_and_error_texts_escape_whitespace() {
        let sent = Request::Fail {
            worker: "w".into(),
            unit: 2,
            error: "panic: index 5% out\nof bounds".into(),
        };
        let (req, resp) =
            round_trip(sent.clone(), Response::Bad { reason: "lost lease on unit 2".into() });
        assert_eq!(req, sent);
        assert_eq!(resp, Response::Bad { reason: "lost lease on unit 2".into() });
    }

    #[test]
    fn wait_done_dup_round_trip() {
        for resp in [Response::Wait { ms: 50 }, Response::Done, Response::Dup] {
            let (_, got) = round_trip(Request::Poll { worker: "w".into() }, resp.clone());
            assert_eq!(got, resp);
        }
    }
}
