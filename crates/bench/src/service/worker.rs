//! The worker half of the experiment service.
//!
//! A worker is a loop over the coordinator protocol: poll for a lease,
//! execute the leased (experiment, unit) through the registry `Ctx` with
//! a single-unit filter, stream the unit-tagged partial CSVs back, and
//! heartbeat from a side thread while the unit runs so the lease deadline
//! keeps moving. Workers are deliberately stateless: all run parameters
//! (mode, τ jitter, lease period) arrive with each lease, so one warm
//! fleet can serve arbitrary trial traffic, and a worker that dies loses
//! nothing but its in-flight unit — the calibration cache on disk
//! (`SMACK_CALIB_DIR`) makes a replacement worker's re-entry nearly free.
//!
//! Transient failures (connection refused while the coordinator restarts,
//! timeouts) retry with capped exponential backoff; a unit that panics is
//! reported as `FAIL` so the coordinator can re-queue it against its
//! attempt budget. The [`ChaosPlan`] hooks let tests and CI inject kills,
//! stalls, dropped results and torn writes at exact lease ordinals.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::registry::{self, Ctx};
use crate::runner::Runner;
use crate::Mode;

use super::chaos::{tear_csv, ChaosPlan};
use super::proto::{exchange, Request, Response};
use super::{backoff_ms, UnitTask};

/// Consecutive failed exchanges before the worker gives up on the
/// coordinator entirely.
const MAX_CONNECT_ATTEMPTS: u32 = 8;

/// Backoff base / cap for transient failures (ms).
const BACKOFF_BASE_MS: u64 = 50;
const BACKOFF_CAP_MS: u64 = 2000;

/// Worker configuration — the `work` CLI subcommand parses into this and
/// hands it to [`run_worker`] (config-into-run, periscope style).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Trial-runner worker threads (`None` = environment default).
    pub threads: Option<usize>,
    /// Identity reported in every message (shows up in lease ownership).
    pub id: String,
    /// Injected fault schedule (parsed from `SMACK_CHAOS`).
    pub chaos: ChaosPlan,
}

/// What a worker did over its lifetime.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Units executed and accepted.
    pub completed: u64,
    /// Results the coordinator discarded as duplicates.
    pub duplicates: u64,
    /// Failed units (panics, rejected payloads).
    pub failures: u64,
}

/// Execute one unit of `exp_name` in-process: run the experiment with a
/// single-unit filter into a scratch directory, then collect the
/// unit-tagged partial CSVs it wrote. Used by workers for leased units
/// and by the coordinator for its in-process degradation path — the two
/// execution paths are one code path.
///
/// # Errors
///
/// Returns a description when the experiment is unknown, panics, or
/// produces no CSVs.
pub fn execute_unit(
    exp_name: &str,
    local: usize,
    mode: Mode,
    tau_jitter: u64,
    threads: Option<usize>,
) -> Result<Vec<(String, String)>, String> {
    static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);
    let exp = registry::find(exp_name).ok_or_else(|| format!("unknown experiment {exp_name:?}"))?;
    let scratch = std::env::temp_dir().join(format!(
        "smack-lease-{}-{}",
        std::process::id(),
        SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let runner = threads.map_or_else(Runner::from_env, Runner::with_threads);
    let ctx = Ctx::solo(mode, runner)
        .with_out_dir(Some(scratch.clone()))
        .with_tau_jitter(tau_jitter)
        .with_unit_filter(vec![local])
        .with_forced_tagging();
    let run = catch_unwind(AssertUnwindSafe(|| (exp.run)(&ctx)));
    let collected = match run {
        Ok(()) => collect_csvs(&scratch, exp.csvs),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_owned());
            Err(format!("unit panicked: {msg}"))
        }
    };
    let _ = std::fs::remove_dir_all(&scratch);
    collected
}

/// Gather the CSVs an experiment wrote into its scratch directory.
fn collect_csvs(scratch: &Path, csvs: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::with_capacity(csvs.len());
    for name in csvs {
        let file = format!("{name}.csv");
        match std::fs::read_to_string(scratch.join(&file)) {
            Ok(text) => files.push((file, text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("reading {file}: {e}")),
        }
    }
    if files.is_empty() {
        return Err("unit produced no CSVs".to_owned());
    }
    Ok(files)
}

/// Run the worker loop until the coordinator reports the run done.
///
/// # Errors
///
/// Returns a description when the coordinator stays unreachable past the
/// backoff budget.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerSummary, String> {
    let mut summary = WorkerSummary::default();
    let mut attempt = 0u32;
    let mut lease_no = 0u64;
    loop {
        match exchange(&cfg.connect, &Request::Poll { worker: cfg.id.clone() }) {
            Ok(Response::Done) => return Ok(summary),
            Ok(Response::Wait { ms }) => {
                attempt = 0;
                std::thread::sleep(Duration::from_millis(ms.clamp(10, 1000)));
            }
            Ok(Response::Lease { task, mode, tau_jitter, lease_ms }) => {
                attempt = 0;
                lease_no += 1;
                serve_lease(cfg, &mut summary, lease_no, &task, mode, tau_jitter, lease_ms);
            }
            Ok(other) => {
                return Err(format!("unexpected poll response {other:?}"));
            }
            Err(e) => {
                attempt += 1;
                if attempt >= MAX_CONNECT_ATTEMPTS {
                    return Err(format!("coordinator unreachable after {attempt} attempts: {e}"));
                }
                std::thread::sleep(Duration::from_millis(backoff_ms(
                    attempt - 1,
                    BACKOFF_BASE_MS,
                    BACKOFF_CAP_MS,
                )));
            }
        }
    }
}

/// Execute one lease end to end: heartbeats, execution, chaos hooks,
/// result delivery.
fn serve_lease(
    cfg: &WorkerConfig,
    summary: &mut WorkerSummary,
    lease_no: u64,
    task: &UnitTask,
    mode: Mode,
    tau_jitter: u64,
    lease_ms: u64,
) {
    let stalled = cfg.chaos.stall(lease_no);
    let heartbeat = if stalled {
        // Injected hang: no heartbeats, and sleep well past the deadline
        // so the coordinator re-leases the unit before we report.
        std::thread::sleep(Duration::from_millis(lease_ms + lease_ms / 2 + 200));
        None
    } else {
        Some(start_heartbeat(cfg, task.global, lease_ms))
    };

    let outcome = execute_unit(&task.exp, task.local, mode, tau_jitter, cfg.threads);

    if let Some((stop, handle)) = heartbeat {
        stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }

    // Injected crash: die after executing, before reporting — the
    // worst-timed kill, losing a whole unit of work.
    if cfg.chaos.kill_after(lease_no) {
        eprintln!("[chaos] worker {} exiting after lease {lease_no}", cfg.id);
        std::process::exit(17);
    }

    match outcome {
        Err(error) => {
            summary.failures += 1;
            let _ = exchange(
                &cfg.connect,
                &Request::Fail { worker: cfg.id.clone(), unit: task.global, error },
            );
        }
        Ok(mut files) => {
            if cfg.chaos.tear(lease_no) {
                // Injected torn write: deliver truncated CSVs, as if this
                // process had been killed mid-write without the atomic
                // rename discipline.
                for (_, text) in &mut files {
                    *text = tear_csv(text);
                }
            }
            if cfg.chaos.drop_result(lease_no) {
                return; // injected message loss; the lease will expire
            }
            send_result(cfg, summary, task.global, files);
        }
    }
}

/// Deliver a result frame, retrying transient failures with backoff.
fn send_result(
    cfg: &WorkerConfig,
    summary: &mut WorkerSummary,
    unit: usize,
    files: Vec<(String, String)>,
) {
    let req = Request::Result { worker: cfg.id.clone(), unit, files };
    for attempt in 0..MAX_CONNECT_ATTEMPTS {
        match exchange(&cfg.connect, &req) {
            Ok(Response::Ok) => {
                summary.completed += 1;
                return;
            }
            Ok(Response::Dup) => {
                summary.duplicates += 1;
                return;
            }
            Ok(_) => {
                // Rejected (torn payload, lost lease): the coordinator
                // has re-queued the unit; nothing more to deliver.
                summary.failures += 1;
                return;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(backoff_ms(
                attempt,
                BACKOFF_BASE_MS,
                BACKOFF_CAP_MS,
            ))),
        }
    }
    // Undeliverable: the lease will expire and the unit re-runs.
    summary.failures += 1;
}

/// Start the heartbeat side thread: extend the lease every quarter
/// period until stopped. Failures are ignored — a missed beat only costs
/// an early expiry, which the dedup layer absorbs.
fn start_heartbeat(
    cfg: &WorkerConfig,
    unit: usize,
    lease_ms: u64,
) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let connect = cfg.connect.clone();
    let worker = cfg.id.clone();
    let interval = Duration::from_millis((lease_ms / 4).max(25));
    let handle = std::thread::spawn(move || {
        while !flag.load(Ordering::Relaxed) {
            let _ = exchange(&connect, &Request::Beat { worker: worker.clone(), unit });
            // Sleep in small steps so stop requests take effect quickly.
            let mut slept = Duration::ZERO;
            while slept < interval && !flag.load(Ordering::Relaxed) {
                let step = Duration::from_millis(10).min(interval - slept);
                std::thread::sleep(step);
                slept += step;
            }
        }
    });
    (stop, handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_unit_produces_tagged_partials() {
        let files = execute_unit("fig5", 1, Mode::Quick, 0, Some(2)).expect("fig5 unit 1 runs");
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].0, "fig5.csv");
        let text = &files[0].1;
        assert!(text.starts_with("unit,"), "partial is unit-tagged: {text:?}");
        assert!(text.lines().skip(1).all(|l| l.starts_with("1,")), "only unit 1 rows");
        crate::report::validate_partial_csv(text).expect("partial validates");
    }

    #[test]
    fn execute_unit_rejects_unknown_experiments() {
        let err = execute_unit("nope", 0, Mode::Quick, 0, Some(1)).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
    }
}
