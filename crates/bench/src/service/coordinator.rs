//! The coordinator half of the experiment service.
//!
//! [`Service::bind`] turns a selection of registry experiments into a
//! [`LeaseQueue`] of (experiment, unit) leases and opens a loopback TCP
//! listener; [`Service::run`] then serves the protocol until every unit
//! has exactly one accepted result, optionally spawning a worker fleet
//! (`all --shards N` is exactly this with N spawned workers).
//!
//! Robustness properties, in the order they matter:
//!
//! * **No lost work.** Results are accepted per *unit*, not per worker; a
//!   worker crash only returns its in-flight lease to the queue.
//! * **No hangs.** Leases expire unless heartbeated; the whole run is
//!   bounded by a wall-clock timeout that reports every outstanding unit
//!   and every worker's exit status by name instead of blocking forever.
//! * **No torn output.** Incoming partials are validated
//!   (`report::validate_partial_csv`) before acceptance and persisted
//!   with atomic tmp+rename writes; the final merge re-validates.
//! * **No double counting.** The first accepted result per unit wins;
//!   anything later is discarded as a duplicate, so re-leases can never
//!   duplicate rows in the merged CSVs.
//! * **No required fleet.** If no worker ever connects within the grace
//!   period — or the whole fleet goes silent — the coordinator executes
//!   the remaining units in-process through the same single-unit path.

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use smack::session::Sessions;

use crate::registry::Experiment;
use crate::report::{self, validate_partial_csv, write_atomic};
use crate::Mode;

use super::lease::{Accept, LeaseQueue, LeaseStats};
use super::proto::{read_request, write_response, Request, Response, IO_TIMEOUT};
use super::worker::execute_unit;
use super::UnitTask;

/// Default lease period: a worker must heartbeat (every quarter of this)
/// or its units re-queue.
pub const DEFAULT_LEASE_MS: u64 = 5_000;

/// Default grace before the coordinator degrades to in-process execution.
pub const DEFAULT_GRACE_MS: u64 = 2_000;

/// Default whole-run wall-clock timeout.
pub const DEFAULT_TIMEOUT_MS: u64 = 600_000;

/// Coordinator configuration — the `coordinate` CLI subcommand (and the
/// `--shards N` client) parse into this and hand it to a bound
/// [`Service`] (config-into-run, periscope style).
pub struct ServiceConfig {
    /// Experiments whose units form the work queue, in registry order.
    pub selection: Vec<&'static Experiment>,
    /// Quick or paper-scale sample counts.
    pub mode: Mode,
    /// Trial-runner threads forwarded to spawned workers and used inline.
    pub threads: Option<usize>,
    /// τ_w jitter amplitude forwarded with every lease.
    pub tau_jitter: u64,
    /// Output root for the merged CSVs (and `service/` scratch).
    pub out_root: PathBuf,
    /// Listen address (`127.0.0.1:0` = loopback, ephemeral port).
    pub bind: String,
    /// Worker processes to spawn (0 = external workers / inline only).
    pub workers: usize,
    /// Lease period in milliseconds.
    pub lease_ms: u64,
    /// Grace before in-process degradation kicks in.
    pub grace_ms: u64,
    /// Whole-run wall-clock timeout.
    pub timeout_ms: u64,
    /// Persistent calibration cache directory shared with the fleet.
    pub calib_dir: PathBuf,
}

/// What a completed service run did.
#[derive(Clone, Debug, Default)]
pub struct ServiceSummary {
    /// Total units in the queue.
    pub units: usize,
    /// Lease-queue counters (leases, expiries, duplicates, failures).
    pub stats: LeaseStats,
    /// Units the coordinator executed in-process (degraded mode).
    pub inline_units: u64,
    /// Workers spawned by this run.
    pub workers_spawned: usize,
    /// Human-readable notes about workers that exited abnormally.
    pub worker_notes: Vec<String>,
    /// Merged CSV paths, in name order.
    pub merged: Vec<PathBuf>,
    /// Wall time of the whole run.
    pub wall_ms: f64,
}

/// Accepted partial results on disk: one directory per completed unit,
/// written atomically, merged with `report::merge_shard_dirs` at the end.
#[derive(Debug)]
struct PartStore {
    root: PathBuf,
    dirs: BTreeMap<usize, PathBuf>,
}

impl PartStore {
    fn new(root: PathBuf) -> PartStore {
        PartStore { root, dirs: BTreeMap::new() }
    }

    /// Validate and persist one unit's files. Any error leaves no partial
    /// state behind that a later merge could trust by accident: files are
    /// written tmp+rename, and the unit is only recorded once every file
    /// landed.
    fn accept(&mut self, unit: usize, files: &[(String, String)]) -> Result<(), String> {
        for (name, text) in files {
            if name.contains('/') || name.contains('\\') || name.contains("..") {
                return Err(format!("suspicious file name {name:?}"));
            }
            validate_partial_csv(text).map_err(|e| format!("{name}: {e}"))?;
        }
        let dir = self.root.join(format!("unit-{unit:04}"));
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        for (name, text) in files {
            write_atomic(&dir.join(name), text.as_bytes())
                .map_err(|e| format!("persisting {name}: {e}"))?;
        }
        self.dirs.insert(unit, dir);
        Ok(())
    }

    fn part_dirs(&self) -> Vec<PathBuf> {
        self.dirs.values().cloned().collect()
    }
}

/// Shared state between the protocol handlers and the main loop.
struct Shared {
    queue: Mutex<LeaseQueue>,
    store: Mutex<PartStore>,
    start: Instant,
    /// `now_ms + 1` of the last worker contact (0 = never).
    last_contact: AtomicU64,
    /// Tells the accept loop to wind down.
    shutdown: AtomicBool,
    mode: Mode,
    tau_jitter: u64,
    inline_units: AtomicU64,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn touch(&self) {
        self.last_contact.store(self.now_ms() + 1, Ordering::Relaxed);
    }

    /// Serve one request against the queue + store.
    fn respond(&self, req: Request) -> Response {
        match req {
            Request::Poll { worker } => {
                self.touch();
                let mut q = self.queue.lock().expect("lease queue poisoned");
                if q.settled() {
                    return Response::Done;
                }
                match q.next(&worker, self.now_ms()) {
                    Some(task) => Response::Lease {
                        task,
                        mode: self.mode,
                        tau_jitter: self.tau_jitter,
                        lease_ms: q.lease_ms(),
                    },
                    None => Response::Wait { ms: 50 },
                }
            }
            Request::Beat { worker, unit } => {
                self.touch();
                let mut q = self.queue.lock().expect("lease queue poisoned");
                if q.heartbeat(unit, &worker, self.now_ms()) {
                    Response::Ok
                } else {
                    Response::Bad { reason: format!("lease on unit {unit} was lost") }
                }
            }
            Request::Result { worker: _, unit, files } => {
                self.touch();
                self.offer(unit, &files)
            }
            Request::Fail { worker, unit, error } => {
                self.touch();
                let mut q = self.queue.lock().expect("lease queue poisoned");
                eprintln!("[service] worker {worker} failed unit {unit}: {error}");
                q.fail(unit, &error);
                Response::Ok
            }
        }
    }

    /// Offer one unit result: dedup, validate, persist, complete —
    /// all under the queue lock so concurrent duplicates serialize.
    fn offer(&self, unit: usize, files: &[(String, String)]) -> Response {
        let mut q = self.queue.lock().expect("lease queue poisoned");
        if q.is_done(unit) {
            let _ = q.complete(unit); // counts the duplicate
            return Response::Dup;
        }
        let mut store = self.store.lock().expect("part store poisoned");
        if let Err(e) = store.accept(unit, files) {
            q.fail(unit, &e);
            return Response::Bad { reason: e };
        }
        match q.complete(unit) {
            Accept::First => Response::Ok,
            Accept::Duplicate => Response::Dup,
        }
    }
}

/// A bound, not-yet-running service. Splitting bind from run lets
/// callers (and tests) learn the listen address before workers start.
pub struct Service {
    cfg: ServiceConfig,
    listener: TcpListener,
    addr: String,
    shared: Arc<Shared>,
}

/// Build the global unit queue for a selection: the same numbering
/// `registry::run_selection` uses for shard round-robin.
pub fn unit_tasks(selection: &[&Experiment], mode: Mode) -> Vec<UnitTask> {
    let mut tasks = Vec::new();
    for exp in selection {
        for local in 0..(exp.units)(mode) {
            tasks.push(UnitTask { global: tasks.len(), exp: exp.name.to_owned(), local });
        }
    }
    tasks
}

impl Service {
    /// Bind the listener and build the lease queue.
    ///
    /// # Errors
    ///
    /// Returns a description when the bind address is unusable or the
    /// selection has no units.
    pub fn bind(cfg: ServiceConfig) -> Result<Service, String> {
        let tasks = unit_tasks(&cfg.selection, cfg.mode);
        if tasks.is_empty() {
            return Err("nothing to do: the selection has no units".to_owned());
        }
        let listener = TcpListener::bind(&cfg.bind)
            .map_err(|e| format!("binding coordinator socket {}: {e}", cfg.bind))?;
        listener.set_nonblocking(true).map_err(|e| format!("nonblocking listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("coordinator local address: {e}"))?
            .to_string();
        let shared = Arc::new(Shared {
            queue: Mutex::new(LeaseQueue::new(tasks, cfg.lease_ms)),
            store: Mutex::new(PartStore::new(cfg.out_root.join("service").join("parts"))),
            start: Instant::now(),
            last_contact: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            mode: cfg.mode,
            tau_jitter: cfg.tau_jitter,
            inline_units: AtomicU64::new(0),
        });
        Ok(Service { cfg, listener, addr, shared })
    }

    /// The bound listen address (`host:port`), for workers to connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Serve until every unit has a result (or the run times out), then
    /// merge the accepted partials into the output root.
    ///
    /// # Errors
    ///
    /// Returns a named description on timeout (listing outstanding units
    /// and worker exit statuses), on units that exhausted their attempt
    /// budget, and on merge failures. Worker crashes that the lease layer
    /// absorbed are *not* errors; they surface in the summary's notes.
    pub fn run(self) -> Result<ServiceSummary, String> {
        // The coordinator shares the fleet's calibration cache: its
        // inline degradation path then reuses (and contributes) warm
        // calibrations exactly like any worker.
        Sessions::global().attach_disk_cache(&self.cfg.calib_dir);

        let accept_thread = spawn_accept_loop(&self.listener, &self.shared);
        let mut children = self.spawn_workers()?;
        let mut worker_notes = Vec::new();

        let grace_deadline = self.cfg.grace_ms;
        let result = loop {
            let now = self.shared.now_ms();
            {
                let mut q = self.shared.queue.lock().expect("lease queue poisoned");
                q.expire(now);
                if q.settled() {
                    break Ok(());
                }
            }
            if now >= self.cfg.timeout_ms {
                break Err(self.timeout_report(&mut children));
            }
            reap_exited_workers(&mut children, &mut worker_notes);
            if self.should_run_inline(now, grace_deadline, &children) {
                self.run_one_inline();
                continue;
            }
            std::thread::sleep(Duration::from_millis(20));
        };

        // Wind down: answer remaining polls with DONE long enough for
        // live workers (even a chaos-stalled one) to exit cleanly, then
        // stop accepting and kill stragglers.
        let reap_deadline = Instant::now() + Duration::from_millis(2 * self.cfg.lease_ms + 1000);
        while !children.is_empty() && Instant::now() < reap_deadline {
            reap_exited_workers(&mut children, &mut worker_notes);
            std::thread::sleep(Duration::from_millis(20));
        }
        for (index, mut child) in children {
            let _ = child.kill();
            let _ = child.wait();
            worker_notes.push(format!("worker {index} was still running at shutdown and killed"));
        }
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let _ = accept_thread.join();
        result?;

        let queue = self.shared.queue.lock().expect("lease queue poisoned");
        let exhausted = queue.exhausted();
        if !exhausted.is_empty() {
            let list: Vec<String> = exhausted
                .iter()
                .map(|(t, e)| format!("{} unit {} ({e})", t.exp, t.local))
                .collect();
            return Err(format!("units failed every attempt: {}", list.join("; ")));
        }

        let store = self.shared.store.lock().expect("part store poisoned");
        let merged = report::merge_shard_dirs(&store.part_dirs(), &self.cfg.out_root)
            .map_err(|e| format!("merging unit partials: {e}"))?;
        Ok(ServiceSummary {
            units: queue.len(),
            stats: queue.stats(),
            inline_units: self.shared.inline_units.load(Ordering::Relaxed),
            workers_spawned: self.cfg.workers,
            worker_notes,
            merged,
            wall_ms: self.shared.start.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// Spawn the configured worker fleet, logs under `<out>/service/`.
    fn spawn_workers(&self) -> Result<Vec<(usize, Child)>, String> {
        if self.cfg.workers == 0 {
            return Ok(Vec::new());
        }
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let log_dir = self.cfg.out_root.join("service");
        std::fs::create_dir_all(&log_dir)
            .map_err(|e| format!("creating {}: {e}", log_dir.display()))?;
        let mut children = Vec::with_capacity(self.cfg.workers);
        for k in 1..=self.cfg.workers {
            let log_path = log_dir.join(format!("worker-{k}.log"));
            let log = std::fs::File::create(&log_path)
                .map_err(|e| format!("creating {}: {e}", log_path.display()))?;
            let log_err = log.try_clone().map_err(|e| format!("cloning log handle: {e}"))?;
            let mut cmd = Command::new(&exe);
            cmd.arg("work")
                .arg(format!("--connect={}", self.addr))
                .env("SMACK_WORKER_INDEX", k.to_string())
                .env("SMACK_CALIB_DIR", &self.cfg.calib_dir)
                .stdin(Stdio::null())
                .stdout(log)
                .stderr(log_err);
            if let Some(t) = self.cfg.threads {
                cmd.arg(format!("--threads={t}"));
            }
            let child = cmd.spawn().map_err(|e| format!("spawning worker {k}: {e}"))?;
            children.push((k, child));
        }
        Ok(children)
    }

    /// Degrade to in-process execution when no worker has ever connected
    /// within the grace period, or the whole fleet has gone silent for a
    /// lease period past the grace.
    fn should_run_inline(&self, now: u64, grace: u64, children: &[(usize, Child)]) -> bool {
        let last = self.shared.last_contact.load(Ordering::Relaxed);
        if last == 0 {
            // Never contacted: wait out the grace period (but not at all
            // if there is no fleet to wait for).
            let fleet_expected = self.cfg.workers > 0 || !children.is_empty();
            now >= grace || !fleet_expected && now >= grace.min(200)
        } else {
            now.saturating_sub(last - 1) >= self.cfg.lease_ms + grace
        }
    }

    /// Lease one unit to the coordinator itself and execute it inline —
    /// the same execute/validate/accept path a worker result takes.
    fn run_one_inline(&self) {
        let task = {
            let mut q = self.shared.queue.lock().expect("lease queue poisoned");
            q.next("coordinator-inline", self.shared.now_ms())
        };
        let Some(task) = task else {
            // Nothing pending (work in flight elsewhere): brief pause so
            // the main loop does not spin.
            std::thread::sleep(Duration::from_millis(20));
            return;
        };
        match execute_unit(
            &task.exp,
            task.local,
            self.cfg.mode,
            self.cfg.tau_jitter,
            self.cfg.threads,
        ) {
            Ok(files) => {
                self.shared.inline_units.fetch_add(1, Ordering::Relaxed);
                let resp = self.shared.offer(task.global, &files);
                if let Response::Bad { reason } = resp {
                    eprintln!("[service] inline unit {} rejected: {reason}", task.global);
                }
            }
            Err(e) => {
                let mut q = self.shared.queue.lock().expect("lease queue poisoned");
                eprintln!("[service] inline unit {} failed: {e}", task.global);
                q.fail(task.global, &e);
            }
        }
    }

    /// Build the timeout error: every outstanding unit and every worker's
    /// status, by name — the opposite of blocking forever or silently
    /// merging a partial tree.
    fn timeout_report(&self, children: &mut Vec<(usize, Child)>) -> String {
        let outstanding = {
            let q = self.shared.queue.lock().expect("lease queue poisoned");
            q.outstanding()
        };
        let units: Vec<String> =
            outstanding.iter().map(|t| format!("{} unit {}", t.exp, t.local)).collect();
        let mut workers = Vec::new();
        for (index, child) in children.iter_mut() {
            let status = match child.try_wait() {
                Ok(Some(status)) => format!("exited with {status}"),
                Ok(None) => "still running (killed)".to_owned(),
                Err(e) => format!("unknown ({e})"),
            };
            workers.push(format!("worker {index}: {status}"));
            let _ = child.kill();
            let _ = child.wait();
        }
        children.clear();
        format!(
            "service timed out after {} ms; outstanding units: [{}]; workers: [{}]",
            self.cfg.timeout_ms,
            units.join(", "),
            workers.join(", ")
        )
    }
}

/// Reap workers that have exited, noting abnormal exits. A crashed
/// worker is *not* an error — its leases expire and re-queue — but the
/// summary names it so partial fleets never pass silently.
fn reap_exited_workers(children: &mut Vec<(usize, Child)>, notes: &mut Vec<String>) {
    children.retain_mut(|(index, child)| match child.try_wait() {
        Ok(Some(status)) => {
            if !status.success() {
                notes.push(format!("worker {index} exited abnormally with {status}"));
            }
            false
        }
        Ok(None) => true,
        Err(e) => {
            notes.push(format!("worker {index} unreapable: {e}"));
            false
        }
    });
}

/// Accept connections until shutdown, one short-lived handler thread per
/// connection.
fn spawn_accept_loop(listener: &TcpListener, shared: &Arc<Shared>) -> std::thread::JoinHandle<()> {
    let listener = listener.try_clone().expect("cloning listener");
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        while !shared.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_connection(stream, &shared));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    })
}

/// Serve one request/response exchange.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(req) => shared.respond(req),
        Err(e) => Response::Bad { reason: format!("malformed request: {e}") },
    };
    let mut stream = reader.into_inner();
    let _ = write_response(&mut stream, &response);
}
