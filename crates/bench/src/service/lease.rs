//! The coordinator's work queue: (experiment, unit) leases with
//! heartbeat-extended deadlines.
//!
//! Every unit of the run's selection is one slot. A worker *leases* a
//! pending slot and must heartbeat before the deadline or the lease
//! expires and the slot returns to the pending queue — that is the whole
//! fault model: a dead, hung or partitioned worker merely delays its
//! units by one lease period. Results are accepted exactly once per unit
//! (first writer wins); late results from expired leases are reported as
//! duplicates and discarded, which keeps merged output free of
//! double-counted units no matter how often a unit was re-leased.
//!
//! A unit that *fails* (worker-reported error or torn payload) re-queues
//! with an attempt budget; exhausting [`MAX_ATTEMPTS`] parks it in
//! `Exhausted`, so a deterministically broken unit can never spin the
//! service forever.
//!
//! Time is an explicit `now_ms` argument on every method — the queue
//! never reads a clock — so expiry logic is unit-testable to the
//! millisecond.

use super::UnitTask;

/// Attempts (initial + retries) before a unit is declared exhausted.
pub const MAX_ATTEMPTS: u32 = 5;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Slot {
    /// Waiting for a worker.
    Pending,
    /// Leased out; expires at `deadline_ms` unless heartbeated.
    Leased { worker: String, deadline_ms: u64 },
    /// Result accepted.
    Done,
    /// Failed [`MAX_ATTEMPTS`] times; `last_error` names the latest cause.
    Exhausted { last_error: String },
}

/// Outcome of offering a result to the queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Accept {
    /// First result for this unit — caller should persist it.
    First,
    /// The unit already completed — caller must discard the payload.
    Duplicate,
}

/// Monotonic counters describing everything the queue has seen.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Leases handed out (including re-leases).
    pub leased: u64,
    /// Leases that expired without a result.
    pub expired: u64,
    /// Results discarded as duplicates.
    pub duplicates: u64,
    /// Failure reports (worker errors, torn payloads).
    pub failures: u64,
}

/// The lease queue. See the [module documentation](self).
#[derive(Debug)]
pub struct LeaseQueue {
    tasks: Vec<UnitTask>,
    slots: Vec<Slot>,
    attempts: Vec<u32>,
    lease_ms: u64,
    stats: LeaseStats,
}

impl LeaseQueue {
    /// A queue over `tasks` (indexed by their `global` id, which must be
    /// `0..tasks.len()` in order) with the given lease period.
    ///
    /// # Panics
    ///
    /// Panics if task `i` does not carry global id `i` — the queue's
    /// slot indexing *is* the global unit numbering.
    pub fn new(tasks: Vec<UnitTask>, lease_ms: u64) -> LeaseQueue {
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.global, i, "task {i} carries global id {}", t.global);
        }
        let n = tasks.len();
        LeaseQueue {
            tasks,
            slots: vec![Slot::Pending; n],
            attempts: vec![0; n],
            lease_ms,
            stats: LeaseStats::default(),
        }
    }

    /// The lease period.
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms
    }

    /// Counters so far.
    pub fn stats(&self) -> LeaseStats {
        self.stats
    }

    /// Re-queue every lease whose deadline has passed, returning the
    /// re-queued unit ids. Called internally by [`LeaseQueue::next`];
    /// exposed for coordinator ticks between polls.
    pub fn expire(&mut self, now_ms: u64) -> Vec<usize> {
        let mut expired = Vec::new();
        for i in 0..self.slots.len() {
            let overdue = matches!(&self.slots[i],
                Slot::Leased { deadline_ms, .. } if now_ms >= *deadline_ms);
            if overdue {
                self.stats.expired += 1;
                self.attempts[i] += 1;
                self.slots[i] = if self.attempts[i] >= MAX_ATTEMPTS {
                    Slot::Exhausted { last_error: "lease expired repeatedly".to_owned() }
                } else {
                    Slot::Pending
                };
                expired.push(i);
            }
        }
        expired
    }

    /// Lease the lowest pending unit to `worker`, after expiring overdue
    /// leases. `None` when nothing is pending (work may still be in
    /// flight — see [`LeaseQueue::all_done`]).
    pub fn next(&mut self, worker: &str, now_ms: u64) -> Option<UnitTask> {
        self.expire(now_ms);
        let i = self.slots.iter().position(|s| *s == Slot::Pending)?;
        self.slots[i] =
            Slot::Leased { worker: worker.to_owned(), deadline_ms: now_ms + self.lease_ms };
        self.stats.leased += 1;
        Some(self.tasks[i].clone())
    }

    /// Extend the lease on `unit` if `worker` still holds it. `false`
    /// means the lease was lost (expired and possibly re-leased) — the
    /// worker may finish anyway; its result will be deduplicated.
    pub fn heartbeat(&mut self, unit: usize, worker: &str, now_ms: u64) -> bool {
        match self.slots.get_mut(unit) {
            Some(Slot::Leased { worker: w, deadline_ms }) if w == worker => {
                *deadline_ms = now_ms + self.lease_ms;
                true
            }
            _ => false,
        }
    }

    /// Offer a result for `unit`. The first offer wins; any later offer
    /// (re-leased duplicate, late result from an expired lease) is
    /// reported as [`Accept::Duplicate`] and must be discarded.
    pub fn complete(&mut self, unit: usize) -> Accept {
        match self.slots.get(unit) {
            Some(Slot::Done) => {
                self.stats.duplicates += 1;
                Accept::Duplicate
            }
            _ => {
                self.slots[unit] = Slot::Done;
                Accept::First
            }
        }
    }

    /// Report a failed attempt on `unit` (worker error, torn payload).
    /// Re-queues the unit until its attempt budget runs out.
    pub fn fail(&mut self, unit: usize, error: &str) {
        if matches!(self.slots.get(unit), Some(Slot::Done)) {
            return;
        }
        self.stats.failures += 1;
        self.attempts[unit] += 1;
        self.slots[unit] = if self.attempts[unit] >= MAX_ATTEMPTS {
            Slot::Exhausted { last_error: error.to_owned() }
        } else {
            Slot::Pending
        };
    }

    /// Whether `unit` already has an accepted result.
    pub fn is_done(&self, unit: usize) -> bool {
        matches!(self.slots.get(unit), Some(Slot::Done))
    }

    /// Whether every unit has a result.
    pub fn all_done(&self) -> bool {
        self.slots.iter().all(|s| *s == Slot::Done)
    }

    /// Whether no further progress is possible or needed: every unit is
    /// either done or exhausted.
    pub fn settled(&self) -> bool {
        self.slots.iter().all(|s| matches!(s, Slot::Done | Slot::Exhausted { .. }))
    }

    /// Units that exhausted their attempt budget, with their last error.
    pub fn exhausted(&self) -> Vec<(UnitTask, String)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Exhausted { last_error } => Some((self.tasks[i].clone(), last_error.clone())),
                _ => None,
            })
            .collect()
    }

    /// Units not yet done (pending or in flight), for timeout reports.
    pub fn outstanding(&self) -> Vec<UnitTask> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, Slot::Done))
            .map(|(i, _)| self.tasks[i].clone())
            .collect()
    }

    /// Total unit count.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the queue holds no units at all.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: usize) -> Vec<UnitTask> {
        (0..n).map(|i| UnitTask { global: i, exp: format!("exp{i}"), local: 0 }).collect()
    }

    #[test]
    fn leases_in_unit_order_and_tracks_deadlines() {
        let mut q = LeaseQueue::new(tasks(2), 100);
        let a = q.next("w1", 0).unwrap();
        let b = q.next("w2", 0).unwrap();
        assert_eq!((a.global, b.global), (0, 1));
        assert!(q.next("w3", 50).is_none(), "nothing pending while both leased");
        assert_eq!(q.stats().leased, 2);
    }

    #[test]
    fn expired_leases_requeue_and_heartbeats_extend() {
        let mut q = LeaseQueue::new(tasks(1), 100);
        q.next("w1", 0).unwrap();
        // A heartbeat at 80 pushes the deadline to 180.
        assert!(q.heartbeat(0, "w1", 80));
        assert!(q.next("w2", 120).is_none(), "lease still live at 120");
        // No further heartbeat: at 180 the lease expires and re-leases.
        let release = q.next("w2", 180).expect("expired lease re-queues");
        assert_eq!(release.global, 0);
        assert_eq!(q.stats().expired, 1);
        // The original holder has lost it.
        assert!(!q.heartbeat(0, "w1", 190));
        assert!(q.heartbeat(0, "w2", 190));
    }

    #[test]
    fn results_deduplicate_by_unit_id() {
        let mut q = LeaseQueue::new(tasks(1), 100);
        q.next("w1", 0).unwrap();
        assert_eq!(q.complete(0), Accept::First);
        assert_eq!(q.complete(0), Accept::Duplicate, "late duplicate discarded");
        assert_eq!(q.stats().duplicates, 1);
        assert!(q.all_done());
        // A failure report after completion changes nothing.
        q.fail(0, "too late");
        assert!(q.all_done());
        assert_eq!(q.stats().failures, 0);
    }

    #[test]
    fn late_result_from_an_expired_lease_still_counts_once() {
        let mut q = LeaseQueue::new(tasks(1), 100);
        q.next("w1", 0).unwrap();
        q.next("w2", 200).expect("re-leased after expiry");
        // The stalled original worker reports first; the re-lease's
        // result then arrives and is dropped.
        assert_eq!(q.complete(0), Accept::First);
        assert_eq!(q.complete(0), Accept::Duplicate);
        assert!(q.all_done());
    }

    #[test]
    fn failures_requeue_until_the_attempt_budget_runs_out() {
        let mut q = LeaseQueue::new(tasks(1), 100);
        for attempt in 0..MAX_ATTEMPTS {
            assert!(!q.settled(), "attempt {attempt} should still be possible");
            q.next("w1", 0).expect("re-queued after failure");
            q.fail(0, "torn payload");
        }
        assert!(q.settled(), "attempt budget exhausted");
        assert!(!q.all_done());
        assert!(q.next("w1", 0).is_none(), "exhausted units never re-lease");
        let exhausted = q.exhausted();
        assert_eq!(exhausted.len(), 1);
        assert_eq!(exhausted[0].1, "torn payload");
    }

    #[test]
    fn repeated_expiry_also_exhausts() {
        let mut q = LeaseQueue::new(tasks(1), 10);
        let mut now = 0;
        for _ in 0..MAX_ATTEMPTS {
            assert!(q.next("w1", now).is_some());
            now += 20;
        }
        assert!(q.next("w1", now).is_none());
        assert!(q.settled());
        assert_eq!(q.outstanding().len(), 1);
    }
}
