//! The per-table/per-figure experiment implementations.
//!
//! Each function prints the paper-comparable rows, writes a CSV through
//! its [`Ctx`], and returns its headline numbers so the integration tests
//! can assert on shapes.
//!
//! Every experiment receives a [`Ctx`] from the registry: the run mode,
//! the one shard-aware [`Runner`](crate::runner::Runner) threaded down
//! from the CLI (so `--threads` and `--shard` apply uniformly — no
//! harness consults the environment on its own), CSV routing, and the
//! flag-gated τ_w jitter. Trials fan out through
//! [`Runner::run_scenarios`](crate::runner::Runner::run_scenarios), so
//! each trial closure receives a pooled [`Session`](smack::Session):
//! machine construction is amortized across trials and a probe threshold
//! is calibrated at most once per
//! `(profile, probe class, cold placement, noise)` for the whole process
//! (and, with the persistent calibration cache attached, for the whole
//! sharded campaign).
//!
//! Sharding happens at *unit* granularity — a probe class for [`fig5`],
//! an SRP group for [`table2`], a (processor, probe) cell for [`table4`],
//! the whole experiment otherwise. Units derive every seed from their own
//! index, so the rows a shard produces are bit-identical to the same rows
//! of an unsharded run.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::channel::{random_payload, run_channel_in, ChannelSpec};
use smack::characterize::{figure1, figure1_mastik_row, figure2};
use smack::fingerprint::{library_id_experiment, mul_set_detection_accuracy, SweepConfig};
use smack::ispectre::{applicability_in, leak_secret_in, Applicability, ISpectreConfig};
use smack::rsa::{self, RsaAttackConfig};
use smack::session::{Scenario, Session, Sessions};
use smack::srp::{self, SrpAttackConfig};
use smack_analysis::{AnalysisReport, Verdict};
use smack_crypto::Bignum;
use smack_mastik::MastikMonitor;
use smack_uarch::{Machine, MicroArch, NoiseConfig, Placement, ProbeKind, ThreadId};
use smack_victims::corpus::{self, corpus};
use smack_victims::modexp::{ModexpAlgorithm, ModexpVictimBuilder};
use smack_victims::{BenignWorkload, SpectreVictim};

use crate::registry::Ctx;
use crate::report::{banner, f, s, Table};
use crate::runner::Runner;
use crate::Mode;

/// The probe classes Figure 5 sweeps — one shardable unit each.
pub const FIG5_KINDS: [ProbeKind; 4] =
    [ProbeKind::Flush, ProbeKind::Store, ProbeKind::Lock, ProbeKind::Clwb];

/// Table 4's (processor, probe) grid size — one shardable unit per cell.
pub const TABLE4_CELLS: usize = 2 * 6;

/// Figure 1: probe latency per cache state on Cascade Lake, plus the
/// Mastik comparison row. Returns the store L1i/LLC margin (NaN when this
/// shard does not own the experiment).
pub fn fig1(ctx: &Ctx) -> f64 {
    if !ctx.owns(0) {
        return f64::NAN;
    }
    banner("Figure 1 — probe timing per microarchitectural state (Cascade Lake)");
    let samples = ctx.mode().pick(100, 10_000);
    let mut results =
        ctx.runner().run_scenarios(Scenario::new(MicroArch::CascadeLake), 2, |session, i| {
            let m = session.machine();
            if i == 0 {
                figure1(m, ThreadId::T0, samples).expect("characterization runs")
            } else {
                figure1_mastik_row(m, ThreadId::T0, samples).expect("mastik row runs")
            }
        });
    let mastik = results.pop().expect("two jobs ran");
    let cells = results.pop().expect("two jobs ran");

    let mut t = Table::new(&["probe", "L1i", "L1d", "L2", "LLC", "DRAM"]);
    let mean = |cells: &[smack::characterize::Figure1Cell], k: ProbeKind, st: Placement| -> f64 {
        cells
            .iter()
            .find(|c| c.kind == k && c.state == st)
            .map(|c| c.stats.mean)
            .unwrap_or(f64::NAN)
    };
    for kind in ProbeKind::ALL {
        if !cells.iter().any(|c| c.kind == kind) {
            continue;
        }
        t.row(vec![
            s(kind),
            f(mean(&cells, kind, Placement::L1i), 0),
            f(mean(&cells, kind, Placement::L1d), 0),
            f(mean(&cells, kind, Placement::L2), 0),
            f(mean(&cells, kind, Placement::Llc), 0),
            f(mean(&cells, kind, Placement::DramOnly), 0),
        ]);
    }
    t.row(vec![
        "mastik (execute)".to_owned(),
        f(mean(&mastik, ProbeKind::Execute, Placement::L1i), 0),
        f(mean(&mastik, ProbeKind::Execute, Placement::L1d), 0),
        f(mean(&mastik, ProbeKind::Execute, Placement::L2), 0),
        f(mean(&mastik, ProbeKind::Execute, Placement::Llc), 0),
        f(mean(&mastik, ProbeKind::Execute, Placement::DramOnly), 0),
    ]);
    t.print();
    ctx.write_csv(&t, "fig1");
    println!();
    println!(
        "paper shape: clflush/store/lock/prefetch/clwb spike on L1i-resident lines \
         (SMC machine clear); Mastik's execute probe sees a 1-2 cycle L1i/L2 gap."
    );
    mean(&cells, ProbeKind::Store, Placement::L1i) - mean(&cells, ProbeKind::Store, Placement::Llc)
}

/// Figure 2: counter deltas per conflicting probe, Intel + AMD.
pub fn fig2(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Figure 2 — SMC reverse engineering via performance counters");
    let reps = ctx.mode().pick(200, 10_000);
    let arches = [MicroArch::CascadeLake, MicroArch::AmdRyzen5];
    let per_arch = ctx.runner().run_scenarios(
        |i: usize| Scenario::new(arches[i]),
        arches.len(),
        |session, _| {
            figure2(session.machine(), ThreadId::T0, reps).expect("counter profiling runs")
        },
    );
    for (arch, profiles) in arches.iter().zip(per_arch) {
        println!("--- {arch} ---");
        let events = smack::characterize::FIGURE2_EVENTS;
        let mut header: Vec<&str> = vec!["probe"];
        let names: Vec<String> = events.iter().map(|e| e.name().to_owned()).collect();
        header.extend(names.iter().map(|n| n.as_str()));
        let mut t = Table::new(&header);
        for p in &profiles {
            let mut row = vec![s(p.kind)];
            for (_, v) in &p.deltas {
                row.push(f(*v, 1));
            }
            t.row(row);
        }
        t.print();
        ctx.write_csv(
            &t,
            &format!("fig2_{}", if *arch == MicroArch::CascadeLake { "intel" } else { "amd" }),
        );
        println!();
    }
    println!(
        "paper shape: one MACHINE_CLEARS.COUNT per conflict; MACHINE_CLEARS.SMC \
         double-counts clflushopt/clwb; store serializes ~200 cycles in the \
         scoreboard; AMD shows ~500 back-pressure stall cycles and refills via L2."
    );
}

/// One Table 1 row.
#[derive(Clone, Debug)]
pub struct ChannelRow {
    /// Channel name.
    pub name: String,
    /// Applicability.
    pub applicable: bool,
    /// Bandwidth (kbit/s), if applicable.
    pub kbit_per_s: f64,
    /// Error rate (%), if applicable.
    pub error_pct: f64,
}

/// Table 1: the twelve covert channels on Cascade Lake (plus the paper's
/// AMD Prime+iLock note). Returns the rows.
pub fn table1(ctx: &Ctx) -> Vec<ChannelRow> {
    if !ctx.owns(0) {
        return Vec::new();
    }
    banner("Table 1 — SMC covert channels (Cascade Lake)");
    let bits = ctx.mode().pick(300, 4_000);
    let payload = random_payload(bits, 0x7ab1e1);
    let specs = ChannelSpec::table1();
    // One trial per channel spec, plus the paper's AMD note as a final
    // trial: Prime+iLock on Ryzen 5 is slower and noisier. Channels
    // transmit under the noisy model, so the scenarios carry it (the
    // machine seed and RNG stream are unchanged: the old path flipped a
    // fresh quiet machine to noisy before its first random draw).
    let spec_for = |i: usize| -> Scenario {
        let arch = if i < specs.len() { MicroArch::CascadeLake } else { MicroArch::AmdRyzen5 };
        Scenario::new(arch).with_noise(NoiseConfig::noisy())
    };
    let outcomes = ctx.runner().run_scenarios(spec_for, specs.len() + 1, |session, i| {
        if i < specs.len() {
            run_channel_in(session, &specs[i], &payload, false)
        } else {
            run_channel_in(session, &ChannelSpec::prime_probe(ProbeKind::Lock), &payload, false)
        }
    });
    let mut rows = Vec::new();
    let mut t = Table::new(&["covert channel", "app.", "bit rate (kbit/s)", "error rate (%)"]);
    for (spec, outcome) in specs.iter().zip(&outcomes) {
        match outcome {
            Ok(r) => {
                t.row(vec![r.name.clone(), s("yes"), f(r.kbit_per_s, 1), f(r.error_rate_pct, 1)]);
                rows.push(ChannelRow {
                    name: r.name.clone(),
                    applicable: true,
                    kbit_per_s: r.kbit_per_s,
                    error_pct: r.error_rate_pct,
                });
            }
            Err(_) => {
                t.row(vec![spec.name(), s("no"), s("N/A"), s("N/A")]);
                rows.push(ChannelRow {
                    name: spec.name(),
                    applicable: false,
                    kbit_per_s: 0.0,
                    error_pct: 0.0,
                });
            }
        }
    }
    if let Some(Ok(r)) = outcomes.last() {
        t.row(vec![
            format!("{} (AMD Ryzen 5)", r.name),
            s("yes"),
            f(r.kbit_per_s, 1),
            f(r.error_rate_pct, 1),
        ]);
        rows.push(ChannelRow {
            name: format!("{} (AMD)", r.name),
            applicable: true,
            kbit_per_s: r.kbit_per_s,
            error_pct: r.error_rate_pct,
        });
    }
    t.print();
    ctx.write_csv(&t, "table1");
    println!();
    println!(
        "paper shape: Flush+iReload channels are several times faster than \
         Prime+iProbe; Flush+iLock and Flush+iStore are N/A (read-only shared \
         page); error rates stay in the low percent."
    );
    rows
}

/// Figure 3: receiver trace with assigned bits (Tiger Lake, Prime+iStore).
pub fn fig3(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Figure 3 — covert-channel receiver trace (Tiger Lake, Prime+iStore)");
    let bits = ctx.mode().pick(24, 48);
    // A recognizable pattern, as in the paper's plot.
    let payload: Vec<bool> = (0..bits).map(|i| matches!(i % 4, 0 | 2 | 3)).collect();
    let mut session = Sessions::global()
        .session(&Scenario::new(MicroArch::TigerLake).with_noise(NoiseConfig::noisy()));
    let r =
        run_channel_in(&mut session, &ChannelSpec::prime_probe(ProbeKind::Store), &payload, true)
            .expect("channel runs");
    let mut t = Table::new(&["sample", "clock", "min way timing", "activity", "slot", "sent bit"]);
    for (i, p) in r.trace.iter().enumerate() {
        t.row(vec![
            s(i),
            s(p.at),
            s(p.timing),
            s(if p.activity { "*" } else { "" }),
            s(p.slot),
            s(payload[p.slot] as u8),
        ]);
    }
    t.print();
    ctx.write_csv(&t, "fig3");
    println!();
    println!(
        "decoded {} bits with {} errors ({:.1}%); low-timing samples mark the \
         sender's evictions, exactly like the paper's low peaks.",
        r.bits, r.errors, r.error_rate_pct
    );
}

/// Figure 4: per-sample minimum probe timing while an RSA victim runs —
/// low dips are multiplication activity.
pub fn fig4(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Figure 4 — multiplication activity via Prime+iStore (Tiger Lake)");
    let bits = ctx.mode().pick(96, 256);
    let mut rng = SmallRng::seed_from_u64(0xf19);
    let exp = Bignum::random_bits(&mut rng, bits);
    let cfg = RsaAttackConfig::new(ProbeKind::Store);
    let victim = rsa::build_victim(&cfg);
    let mut session = Sessions::global()
        .session(&Scenario::new(MicroArch::TigerLake).with_noise(cfg.noise).with_seed(0xf4));
    let trace = rsa::collect_trace_in(&mut session, &victim, &exp, &cfg).expect("trace");
    let mut t = Table::new(&["sample", "min timing", "activity"]);
    for (i, sample) in trace.samples.iter().enumerate().take(400) {
        t.row(vec![s(i), s(sample.min_timing), s(if sample.active { "*" } else { "" })]);
    }
    t.print();
    ctx.write_csv(&t, "fig4");
    let events = rsa::events_from_samples(&trace.samples);
    println!();
    println!(
        "{} samples, {} activity events for {} true multiplications — low \
         timings are evictions by the victim's mul_n calls (paper: \"low timing \
         values indicate multiplication activity\").",
        trace.samples.len(),
        events.len(),
        (0..exp.bit_len()).filter(|i| exp.bit(*i)).count(),
    );
}

/// One Figure 5 row.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Probe class.
    pub kind: ProbeKind,
    /// Single-trace recovery rate (aligned scoring).
    pub single_trace: f64,
    /// Single-trace recovery rate (positional scoring).
    pub positional_single: f64,
    /// Traces needed for 70% (None = not reached within the budget).
    pub traces_for_70: Option<usize>,
    /// Best recovery achieved.
    pub best: f64,
}

/// Figure 5: traces needed for 70% key recovery per probe class. One unit
/// per probe class; returns the rows for this shard's units.
pub fn fig5(ctx: &Ctx) -> Vec<Fig5Row> {
    let owned = ctx.units(FIG5_KINDS.len());
    if owned.is_empty() {
        return Vec::new();
    }
    banner("Figure 5 — traces needed for 70% RSA key recovery (Tiger Lake)");
    let bits = ctx.mode().pick(160, 512);
    let max_traces = ctx.mode().pick(12, 25);
    let mut rng = SmallRng::seed_from_u64(0xf5);
    let exp = Bignum::random_bits(&mut rng, bits);
    let tau_jitter = ctx.tau_jitter();
    // One trial per probe class; each trial's trace sequence keeps its
    // sequential early-exit semantics (stop at the first 70% vote). The
    // trial renews its one pooled session per trace instead of building a
    // machine per trace.
    // All four probe classes attack under the default realistic noise.
    let scenario = Scenario::new(MicroArch::TigerLake).with_noise(NoiseConfig::realistic());
    let rows: Vec<Fig5Row> = ctx.runner().run_scenarios(scenario, owned.len(), |session, trial| {
        let kind = FIG5_KINDS[owned[trial]];
        let cfg = RsaAttackConfig { wait_jitter: tau_jitter, ..RsaAttackConfig::new(kind) };
        let victim = rsa::build_victim(&cfg);
        let mut decodes: Vec<Vec<bool>> = Vec::new();
        let mut aligned_rates = Vec::new();
        let mut positional_single = 0.0;
        let mut used = None;
        for trace_idx in 0..max_traces {
            session.renew(2_000 + trace_idx as u64);
            let trace = rsa::collect_trace_in(session, &victim, &exp, &cfg).expect("attack runs");
            let decoded = rsa::decode_trace(&trace, exp.bit_len());
            if trace_idx == 0 {
                positional_single = rsa::score_bits(&decoded, &exp);
            }
            decodes.push(decoded);
            let combined = rsa::majority_vote(&decodes, exp.bit_len());
            let rate = rsa::score_bits_aligned(&combined, &exp);
            aligned_rates.push(rate);
            if rate >= 0.70 && used.is_none() {
                used = Some(trace_idx + 1);
                break;
            }
        }
        let single = aligned_rates.first().copied().unwrap_or(0.0);
        let best = aligned_rates.iter().cloned().fold(0.0f64, f64::max);
        Fig5Row { kind, single_trace: single, positional_single, traces_for_70: used, best }
    });
    let mut t = Table::new(&[
        "probe",
        "single-trace (aligned)",
        "single-trace (positional)",
        "traces for 70% (aligned)",
        "best (aligned)",
    ]);
    for (unit, row) in owned.iter().zip(&rows) {
        t.unit(*unit).row(vec![
            s(row.kind),
            f(row.single_trace, 3),
            f(row.positional_single, 3),
            row.traces_for_70.map_or_else(|| format!(">{max_traces}"), |u| u.to_string()),
            f(row.best, 3),
        ]);
    }
    t.print();
    ctx.write_csv(&t, "fig5");
    println!();
    println!(
        "paper shape: a single trace leaks ~63% of the key; Flush needs the \
         fewest traces (10), Store ~13, Lock ~20, Clwb the most."
    );
    rows
}

/// One Table 2 cell result.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Group size in bits.
    pub group_bits: usize,
    /// Mean Prime+iStore leakage.
    pub smack: f64,
    /// Mean Mastik leakage.
    pub mastik: f64,
}

/// The full Table 2 measurement grid — every group, every key — fanned
/// out over `runner` and averaged per group. Exposed so tests can check
/// parallel/sequential result equality.
pub fn table2_rows(mode: Mode, runner: &Runner) -> Vec<Table2Row> {
    let all: Vec<usize> = (0..smack_crypto::SrpGroup::PAPER_SIZES.len()).collect();
    table2_rows_for(mode, runner, &all, 0)
}

/// The Table 2 grid restricted to the group-size units in `groups` (by
/// index into `SrpGroup::PAPER_SIZES`): every (group, key) cell is one
/// independent trial whose seeds derive from the key index alone, so a
/// group's row is identical no matter which shard computes it.
fn table2_rows_for(
    mode: Mode,
    runner: &Runner,
    groups: &[usize],
    tau_jitter: u64,
) -> Vec<Table2Row> {
    let keys = mode.pick(3, 100);
    let exp_bits = mode.pick(160, 0); // 0 = full group size
    let sizes = smack_crypto::SrpGroup::PAPER_SIZES;
    // Both monitors run under the noisy model with the key index as the
    // machine seed; the trial renews its session between the SMaCk attack
    // and the Mastik baseline (same seed → same machine state either way).
    let spec_for = |t: usize| -> Scenario {
        Scenario::new(MicroArch::TigerLake)
            .with_noise(NoiseConfig::noisy())
            .with_seed((t % keys) as u64)
    };
    let cells = runner.run_scenarios(spec_for, groups.len() * keys, |session, t| {
        let (group, key) = (sizes[groups[t / keys]], t % keys);
        let mut rng = SmallRng::seed_from_u64(0x7b + key as u64);
        let nbits = if exp_bits == 0 { group } else { exp_bits };
        let b = Bignum::random_bits(&mut rng, nbits);
        let cfg = SrpAttackConfig {
            noise: NoiseConfig::noisy(),
            wait_jitter: tau_jitter,
            ..SrpAttackConfig::new(group)
        };
        let out = srp::single_trace_attack_in(session, &b, &cfg).expect("smc attack runs");
        session.renew(key as u64);
        (out.leakage, mastik_srp_leakage_on(session.machine(), group, &b))
    });
    groups
        .iter()
        .zip(cells.chunks(keys))
        .map(|(group, chunk)| Table2Row {
            group_bits: sizes[*group],
            smack: chunk.iter().map(|c| c.0).sum::<f64>() / keys as f64,
            mastik: chunk.iter().map(|c| c.1).sum::<f64>() / keys as f64,
        })
        .collect()
}

/// Table 2: SRP single-trace leakage, Prime+iStore vs Mastik. One unit
/// per group size; returns the rows for this shard's units.
pub fn table2(ctx: &Ctx) -> Vec<Table2Row> {
    let owned = ctx.units(smack_crypto::SrpGroup::PAPER_SIZES.len());
    if owned.is_empty() {
        return Vec::new();
    }
    banner("Table 2 — SRP single-trace leakage per group size (Tiger Lake)");
    let rows = table2_rows_for(ctx.mode(), ctx.runner(), &owned, ctx.tau_jitter());
    let mut t = Table::new(&["group size", "Prime+iStore", "Mastik (PnP)"]);
    for (unit, row) in owned.iter().zip(&rows) {
        t.unit(*unit).row(vec![
            s(row.group_bits),
            f(row.smack * 100.0, 0) + "%",
            f(row.mastik * 100.0, 0) + "%",
        ]);
    }
    t.print();
    ctx.write_csv(&t, "table2");
    println!();
    println!(
        "paper shape: Prime+iStore leakage rises with group size (65->90%); \
         Mastik trails badly (22->48%) because its 1-2 cycle margin drowns in \
         noise."
    );
    rows
}

/// Collect the §6.1 dataset with every workload run as its own trial —
/// the parallel equivalent of `smack_detection::collect_dataset`, built
/// on the same [`smack_detection::dataset_units`] (identical workloads
/// and seeds, so the dataset is identical).
fn collect_detection_dataset(
    runner: &Runner,
    arch: MicroArch,
    cfg: &smack_detection::DetectionConfig,
) -> (Vec<smack_detection::CounterDelta>, Vec<smack_detection::CounterDelta>) {
    let units = smack_detection::dataset_units();
    let spec_for = |i: usize| Scenario::new(arch).with_noise(cfg.noise).with_seed(units[i].seed());
    let windows = runner.run_scenarios(spec_for, units.len(), |session, i| {
        smack_detection::collect_unit_on(session.machine(), units[i], cfg)
            .expect("dataset unit collects")
    });
    let mut benign = Vec::new();
    let mut attacks = Vec::new();
    for (unit, w) in units.iter().zip(windows) {
        let Some(w) = w else { continue };
        if unit.is_benign() {
            benign.extend(w);
        } else {
            attacks.extend(w);
        }
    }
    (benign, attacks)
}

/// Run the Mastik baseline against the SRP victim on a machine in its
/// cold start state; returns the leakage.
fn mastik_srp_leakage_on(machine: &mut Machine, group_bits: usize, b: &Bignum) -> f64 {
    let victim = srp::build_victim(group_bits, b.bit_len());
    machine.load_program(&victim.program);
    let mut monitor =
        match MastikMonitor::new(machine, ThreadId::T0, 0x0a50_0000, victim.mul_set, 600) {
            Ok(m) => m,
            Err(_) => return 0.0,
        };
    let sampler = move |m: &mut Machine| -> Result<bool, String> {
        monitor.sample(m).map_err(|e| e.to_string())
    };
    let max_samples = group_bits * 60 + 10_000;
    let samples = match srp::collect_events(machine, &victim, b, sampler, max_samples) {
        Ok(s) => s,
        Err(_) => return 0.0,
    };
    let measured = srp::measured_square_runs(&samples);
    let schedule = smack_crypto::modexp::sliding_window_schedule(b);
    let truth = srp::truth_spans(&schedule);
    srp::leakage_rate(&measured, &truth)
}

/// Figure 6: the SRP single-trace pattern timeline at group size 6144.
pub fn fig6(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Figure 6 — SRP single-trace window patterns (6144-bit group)");
    let exp_bits = ctx.mode().pick(128, 6144);
    let mut rng = SmallRng::seed_from_u64(0xf6);
    let b = Bignum::random_bits(&mut rng, exp_bits);
    let cfg = SrpAttackConfig::new(6144);
    let mut session = Sessions::global()
        .session(&Scenario::new(MicroArch::TigerLake).with_noise(cfg.noise).with_seed(0xf6));
    let out = srp::single_trace_attack_in(&mut session, &b, &cfg).expect("attack runs");
    let events = srp::event_times(&out.samples);
    let measured = srp::measured_square_runs(&out.samples);
    let schedule = smack_crypto::modexp::sliding_window_schedule(&b);
    let truth = srp::truth_spans(&schedule);
    let pattern = |squares: u32| -> String {
        match squares {
            1 => "11".to_owned(),
            2 => "1X1 / 101".to_owned(),
            n => format!("1{}1 (+zeros)", "X".repeat((n as usize).saturating_sub(1).min(5))),
        }
    };
    let mut t =
        Table::new(&["mult #", "event clock", "measured squares", "pattern", "truth squares"]);
    for (i, at) in events.iter().enumerate().take(60) {
        let m = measured.get(i.wrapping_sub(1)).copied();
        let tr = truth.get(i.wrapping_sub(1)).map(|x| x.squares);
        t.row(vec![
            s(i),
            s(at),
            m.map_or_else(|| "-".into(), |v| v.to_string()),
            m.map_or_else(|| "-".into(), pattern),
            tr.map_or_else(|| "-".into(), |v| v.to_string()),
        ]);
    }
    t.print();
    ctx.write_csv(&t, "fig6");
    println!();
    println!(
        "leakage {:.0}% of recoverable bits — the paper's seven patterns \
         ('0','1','11','1X1',...,'1XXXX1') appear as distinct square-run \
         lengths between multiply events.",
        out.leakage * 100.0
    );
}

/// Table 3: the ISpectre applicability matrix across all ten parts.
pub fn table3(ctx: &Ctx) -> Vec<(MicroArch, Vec<Applicability>)> {
    if !ctx.owns(0) {
        return Vec::new();
    }
    banner("Table 3 — ISpectre applicability: microarchitecture x probe class");
    let mut header: Vec<&str> = vec!["probe"];
    let names: Vec<String> = MicroArch::ALL.iter().map(|a| a.name().to_owned()).collect();
    header.extend(names.iter().map(|n| n.as_str()));
    let mut t = Table::new(&header);
    // One trial per microarchitecture, each sweeping all probe classes on
    // one pooled session renewed (reset to the canonical seed) per class.
    let spec_for = |i: usize| -> Scenario {
        Scenario::new(MicroArch::ALL[i]).with_noise(NoiseConfig::realistic()).with_seed(0x7ab3)
    };
    let columns = ctx.runner().run_scenarios(spec_for, MicroArch::ALL.len(), |session, _| {
        ProbeKind::ALL
            .iter()
            .map(|kind| {
                session.renew(0x7ab3);
                applicability_in(session, *kind).unwrap_or(Applicability::NoLeak)
            })
            .collect::<Vec<Applicability>>()
    });
    let per_arch: Vec<(MicroArch, Vec<Applicability>)> =
        MicroArch::ALL.iter().copied().zip(columns).collect();
    for (ki, kind) in ProbeKind::ALL.iter().enumerate() {
        let mut row = vec![s(kind)];
        for (_, col) in &per_arch {
            row.push(col[ki].symbol().to_owned());
        }
        t.row(row);
    }
    t.print();
    ctx.write_csv(&t, "table3");
    println!();
    println!(
        "legend: ● SMC-powered leak, ◐ leaks without SMC, # no leak, × \
         unsupported. Paper shape: store/lock work everywhere; execute never \
         works; EPYC's flushes leak without machine clears; clwb only on the \
         newest parts."
    );
    per_arch
}

/// One Table 4 row.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Processor.
    pub arch: MicroArch,
    /// Probe class.
    pub kind: ProbeKind,
    /// Leak rate in bytes/second.
    pub bytes_per_s: f64,
    /// Recovery success rate.
    pub success: f64,
}

/// Table 4: ISpectre leakage rates on Cascade Lake and Ryzen 5. One unit
/// per (processor, probe) cell; returns this shard's applicable rows.
pub fn table4(ctx: &Ctx) -> Vec<Table4Row> {
    let kinds = [
        ProbeKind::Flush,
        ProbeKind::FlushOpt,
        ProbeKind::Store,
        ProbeKind::Lock,
        ProbeKind::Prefetch,
        ProbeKind::Clwb,
    ];
    let arches = [MicroArch::CascadeLake, MicroArch::AmdRyzen5];
    debug_assert_eq!(TABLE4_CELLS, arches.len() * kinds.len());
    let owned = ctx.units(TABLE4_CELLS);
    if owned.is_empty() {
        return Vec::new();
    }
    banner("Table 4 — ISpectre leakage rates (B/s)");
    let secret_len = ctx.mode().pick(8, 64);
    let secret: Vec<u8> =
        (0..secret_len).map(|i| (i as u8).wrapping_mul(73).wrapping_add(19)).collect();
    // One trial per owned (processor, probe) cell.
    let spec_for = |t: usize| -> Scenario {
        Scenario::new(arches[owned[t] / kinds.len()])
            .with_noise(NoiseConfig::realistic())
            .with_seed(0x7ab4)
    };
    let cells = ctx.runner().run_scenarios(spec_for, owned.len(), |session, t| {
        let cell = owned[t];
        let (arch, kind) = (arches[cell / kinds.len()], kinds[cell % kinds.len()]);
        let cfg = ISpectreConfig::new(kind);
        (arch, kind, leak_secret_in(session, &secret, &cfg))
    });
    let mut rows = Vec::new();
    let mut t = Table::new(&["processor", "probe", "B/s", "success (%)"]);
    for (unit, (arch, kind, outcome)) in owned.iter().zip(cells) {
        t.unit(*unit);
        match outcome {
            Ok(r) if r.success_rate >= 0.5 => {
                t.row(vec![s(arch), s(kind), f(r.bytes_per_s, 0), f(r.success_rate * 100.0, 1)]);
                rows.push(Table4Row {
                    arch,
                    kind,
                    bytes_per_s: r.bytes_per_s,
                    success: r.success_rate,
                });
            }
            _ => {
                t.row(vec![s(arch), s(kind), s("N/A"), s("N/A")]);
            }
        }
    }
    t.print();
    ctx.write_csv(&t, "table4");
    println!();
    println!(
        "paper shape: thousands of bytes per second with high success; \
         prefetch/clwb are unavailable or ineffective on AMD Ryzen 5."
    );
    rows
}

/// §6.1 detection: accuracy/F1/FPR per counter feature set.
pub fn table5(ctx: &Ctx) -> Vec<smack_detection::DetectionReport> {
    if !ctx.owns(0) {
        return Vec::new();
    }
    banner("Section 6.1 — counter-based detection of SMC attacks (Cascade Lake)");
    let cfg = smack_detection::DetectionConfig {
        window_cycles: ctx.mode().pick(80_000, 200_000) as u64,
        windows_per_run: ctx.mode().pick(6, 14),
        noise: NoiseConfig::realistic(),
    };
    let (benign, attacks) = collect_detection_dataset(ctx.runner(), MicroArch::CascadeLake, &cfg);
    let mut t = Table::new(&["feature set", "accuracy", "F1", "FPR"]);
    let mut out = Vec::new();
    for fs in smack_detection::FeatureSet::ALL {
        let r = smack_detection::evaluate(fs, &benign, &attacks, 0x7ab5);
        t.row(vec![s(fs), f(r.accuracy, 4), f(r.f1, 4), f(r.fpr, 4)]);
        out.push(r);
    }
    t.print();
    ctx.write_csv(&t, "table5");
    println!();
    println!(
        "paper shape: machine_clears.smc detects the attacks almost perfectly \
         (F1 ~0.99, FPR <1%, residual false positives from the self-modifying \
         amg workload); branch-misprediction and LLC-miss counters from prior \
         work are much weaker."
    );
    out
}

/// Case Study II steps 1–2 (paper §5.2): identify the victim's crypto
/// library version from L1i-set activity fingerprints, and locate the
/// multiplication set.
pub fn fingerprint(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Case Study II step 1 — library version fingerprinting (Tiger Lake)");
    let full = corpus();
    let versions: Vec<_> = match ctx.mode() {
        Mode::Quick => full.iter().cloned().step_by(4).collect(), // 9 versions
        Mode::Full => full.clone(),
    };
    let cfg = SweepConfig::default();
    let report = library_id_experiment(
        MicroArch::TigerLake,
        &versions,
        ctx.mode().pick(5, 8),
        ctx.mode().pick(1, 2),
        &cfg,
    )
    .expect("experiment runs");
    let mut t = Table::new(&["metric", "measured", "paper"]);
    t.row(vec![s("versions classified"), s(report.versions), s("34 (20 OpenSSL + 14 Libgcrypt)")]);
    t.row(vec![s("offline cross-validation accuracy"), f(report.cv_accuracy, 3), s("1.00")]);
    t.row(vec![s("online identification accuracy"), f(report.online_accuracy, 3), s("0.97")]);

    banner("Case Study II step 2 — multiplication-set detection");
    let acc = mul_set_detection_accuracy(MicroArch::TigerLake, ctx.mode().pick(8, 24), &cfg)
        .expect("experiment runs");
    println!("binary kNN accuracy: {acc:.3}   (paper: 0.96)");
    t.row(vec![s("mul-set detection accuracy"), f(acc, 3), s("0.96")]);
    t.print();
    ctx.write_csv(&t, "fingerprint");
}

/// The corpus versions the `analyze` experiment spot-checks (indices into
/// [`corpus()`], one per family region).
const ANALYZE_CORPUS_PICKS: [usize; 4] = [0, 10, 20, 30];

/// Shardable unit count of the `analyze` experiment: the four attack
/// victims, every benign workload, and four corpus versions.
pub const ANALYZE_UNITS: usize = 4 + BenignWorkload::ALL.len() + ANALYZE_CORPUS_PICKS.len();

/// One `analyze` row: a victim's static verdict joined with its dynamic
/// measurement.
#[derive(Clone, Debug)]
pub struct AnalyzeRow {
    /// Victim name.
    pub victim: String,
    /// The static analyzer's verdict.
    pub verdict: Verdict,
    /// Number of statically leaky cache lines.
    pub leaky_lines: usize,
    /// Number of superblock/SMC audit violations.
    pub audit_violations: usize,
    /// Whether the observed victim-only fetch-line log was a subset of the
    /// static footprint (the soundness obligation, checked in production).
    pub sound: bool,
    /// What the dynamic column measures for this victim.
    pub metric: &'static str,
    /// The measured value.
    pub value: f64,
    /// The value a secret-blind guesser would score.
    pub chance: f64,
    /// Whether the measurement shows a real leak (≫ chance).
    pub signal: bool,
}

impl AnalyzeRow {
    /// Static and dynamic agree: `Leaky` iff the measurement leaks.
    pub fn agrees(&self) -> bool {
        (self.verdict == Verdict::Leaky) == self.signal
    }
}

/// Whether every observed fetch line is covered by the (sorted) static
/// footprint.
fn footprint_covers(footprint: &[u64], observed: &[u64]) -> bool {
    observed.iter().all(|l| footprint.binary_search(l).is_ok())
}

/// Run the victim-only program currently staged on `m` from `start` to
/// halt with the fetch log on; returns the sorted deduplicated fetched
/// lines. `start` must already have staged program + data.
fn observed_lines(m: &mut Machine, start: impl FnOnce(&mut Machine)) -> Vec<u64> {
    m.set_fetch_log(true);
    start(m);
    m.run_until_halt(ThreadId::T0, 50_000_000).expect("victim halts");
    let mut lines = m.take_fetch_log();
    lines.sort_unstable();
    lines.dedup();
    lines
}

fn analyze_rsa_unit(
    session: &mut Session<'_>,
    mode: Mode,
    algorithm: ModexpAlgorithm,
    name: &str,
) -> AnalyzeRow {
    let bits = mode.pick(128, 512);
    let mut rng = SmallRng::seed_from_u64(0xa71);
    let exp = Bignum::random_bits(&mut rng, bits);
    let cfg =
        RsaAttackConfig { noise: NoiseConfig::quiet(), ..RsaAttackConfig::new(ProbeKind::Flush) };
    let mut b = ModexpVictimBuilder::new(algorithm);
    b.operand_bits(cfg.operand_bits);
    let victim = b.build();
    let report = smack_analysis::analyze(&victim.program, victim.entry, &victim.secret_spec());

    let m = session.machine();
    m.load_program(&victim.program);
    let observed = observed_lines(m, |m| victim.start(m, ThreadId::T0, &exp));
    let sound = footprint_covers(&report.footprint, &observed);

    // The paper's recovery method (fig5): majority-vote a few traces and
    // score the aligned combination, stopping once it clears 70%.
    let mut decodes: Vec<Vec<bool>> = Vec::new();
    let mut value: f64 = 0.0;
    for trace_idx in 0..mode.pick(8, 12) {
        session.renew(0xa72 + trace_idx as u64);
        let trace = rsa::collect_trace_in(session, &victim, &exp, &cfg).expect("trace collects");
        decodes.push(rsa::decode_trace(&trace, exp.bit_len()));
        let combined = rsa::majority_vote(&decodes, exp.bit_len());
        value = value.max(rsa::score_bits_aligned(&combined, &exp));
        if value >= 0.70 {
            break;
        }
    }
    AnalyzeRow {
        victim: name.to_owned(),
        verdict: report.verdict,
        leaky_lines: report.leaky_lines.len(),
        audit_violations: report.audit.len(),
        sound,
        metric: "voted bit recovery (aligned)",
        value,
        chance: 0.5,
        signal: value >= 0.70,
    }
}

fn analyze_srp_unit(session: &mut Session<'_>, mode: Mode) -> AnalyzeRow {
    // Group 4096: the size where the single-trace attack is near-perfect
    // even with quick-mode exponents (table2's top row territory).
    let group_bits = 4096;
    let mut rng = SmallRng::seed_from_u64(0xa73);
    let b = Bignum::random_bits(&mut rng, mode.pick(160, 1024));
    let victim = srp::build_victim(group_bits, b.bit_len());
    let report = smack_analysis::analyze(&victim.program, victim.entry, &victim.secret_spec());

    let m = session.machine();
    m.load_program(&victim.program);
    let observed = observed_lines(m, |m| victim.start(m, ThreadId::T0, &b));
    let sound = footprint_covers(&report.footprint, &observed);

    session.renew(0xa74);
    let cfg = SrpAttackConfig { noise: NoiseConfig::noisy(), ..SrpAttackConfig::new(group_bits) };
    let out = srp::single_trace_attack_in(session, &b, &cfg).expect("srp attack runs");
    AnalyzeRow {
        victim: "srp-sliding-window".to_owned(),
        verdict: report.verdict,
        leaky_lines: report.leaky_lines.len(),
        audit_violations: report.audit.len(),
        sound,
        metric: "single-trace leakage",
        value: out.leakage,
        chance: 0.0,
        signal: out.leakage >= 0.5,
    }
}

fn analyze_spectre_unit(session: &mut Session<'_>, mode: Mode) -> AnalyzeRow {
    let victim = SpectreVictim::build();
    let report = smack_analysis::analyze(&victim.program, victim.entry, &victim.secret_spec());

    let m = session.machine();
    victim.stage(m, b"K");
    let entry = victim.entry;
    let observed = observed_lines(m, |m| {
        m.call(ThreadId::T0, entry, &[3]).expect("in-bounds call runs");
        // `call` runs to completion on its own; park the thread so the
        // generic run-to-halt wait returns immediately.
        m.park(ThreadId::T0);
    });
    let sound = footprint_covers(&report.footprint, &observed);

    session.renew(0xa75);
    let secret_len = mode.pick(4, 16);
    let secret: Vec<u8> =
        (0..secret_len).map(|i| (i as u8).wrapping_mul(73).wrapping_add(19)).collect();
    let r = leak_secret_in(session, &secret, &ISpectreConfig::new(ProbeKind::Flush))
        .expect("ispectre runs");
    AnalyzeRow {
        victim: "ispectre-gadget".to_owned(),
        verdict: report.verdict,
        leaky_lines: report.leaky_lines.len(),
        audit_violations: report.audit.len(),
        sound,
        metric: "byte recovery success",
        value: r.success_rate,
        chance: 1.0 / 256.0,
        signal: r.success_rate >= 0.5,
    }
}

/// Differential dynamic check for victims without secrets: run the program
/// to halt at two different iteration counts and compare the fetched line
/// sets — a constant-footprint program touches the same lines either way.
fn analyze_differential_unit(
    session: &mut Session<'_>,
    name: String,
    report: &AnalysisReport,
    stage: impl Fn(&mut Machine),
    entry: u64,
) -> AnalyzeRow {
    let mut footprints = Vec::new();
    let mut sound = true;
    for iters in [2u64, 3] {
        session.renew(iters);
        let m = session.machine();
        stage(m);
        let observed = observed_lines(m, |m| m.start_program(ThreadId::T0, entry, &[iters]));
        sound &= footprint_covers(&report.footprint, &observed);
        footprints.push(observed);
    }
    let distinct = if footprints[0] == footprints[1] { 1.0 } else { 2.0 };
    AnalyzeRow {
        victim: name,
        verdict: report.verdict,
        leaky_lines: report.leaky_lines.len(),
        audit_violations: report.audit.len(),
        sound,
        metric: "distinct footprints (2 inputs)",
        value: distinct,
        chance: 1.0,
        signal: distinct > 1.5,
    }
}

/// The static analyzer joined with dynamic ground truth: every victim is
/// analyzed (verdict, leaky lines, fusion audit) and then *measured* — the
/// attacks' recovery for the secret-processing victims, a differential
/// fetch-footprint comparison for the no-secret ones — and the `join`
/// column must read `ok` on every row. The observed fetch-line log is also
/// checked against the static footprint on every unit (the soundness
/// obligation the proptests lock, re-verified on the real victims).
pub fn analyze(ctx: &Ctx) -> Vec<AnalyzeRow> {
    let owned = ctx.units(ANALYZE_UNITS);
    if owned.is_empty() {
        return Vec::new();
    }
    banner("Static leakage analysis — taint verdicts vs measured recovery");
    let mode = ctx.mode();
    let n_benign = BenignWorkload::ALL.len();
    let arch_for = |unit: usize| match unit {
        3 => MicroArch::CascadeLake,
        _ => MicroArch::TigerLake,
    };
    let spec_for = |t: usize| -> Scenario {
        let unit = owned[t];
        let scenario = Scenario::new(arch_for(unit)).with_seed(0xa70 + unit as u64);
        // The pooled session's noise must match each attack's noise
        // model: the SRP attack runs under table2's noisy model, the
        // ISpectre attack under its default realistic one.
        match unit {
            2 => scenario.with_noise(NoiseConfig::noisy()),
            3 => scenario.with_noise(NoiseConfig::realistic()),
            _ => scenario,
        }
    };
    let rows = ctx.runner().run_scenarios(spec_for, owned.len(), |session, t| {
        let unit = owned[t];
        match unit {
            0 => analyze_rsa_unit(session, mode, ModexpAlgorithm::BinaryLtr, "rsa-binary-ltr"),
            1 => analyze_rsa_unit(
                session,
                mode,
                ModexpAlgorithm::MontgomeryLadder,
                "rsa-montgomery-ladder",
            ),
            2 => analyze_srp_unit(session, mode),
            3 => analyze_spectre_unit(session, mode),
            u if u < 4 + n_benign => {
                let w = BenignWorkload::ALL[u - 4];
                let (code, data) = (0x0500_0000, 0x0600_0000);
                let prog = w.build(code, data);
                let report = smack_analysis::analyze(&prog, code, &w.secret_spec());
                analyze_differential_unit(
                    session,
                    format!("benign-{w}"),
                    &report,
                    |m| {
                        m.load_program(&prog);
                        w.stage_data(m, data);
                    },
                    code,
                )
            }
            u => {
                let version = &corpus()[ANALYZE_CORPUS_PICKS[u - 4 - n_benign]];
                let victim = corpus::build_victim(version, 0x0700_0000, 1);
                let report =
                    smack_analysis::analyze(&victim.program, victim.entry, &victim.secret_spec());
                analyze_differential_unit(
                    session,
                    format!("corpus-{}", version.label()),
                    &report,
                    |m| m.load_program(&victim.program),
                    victim.entry,
                )
            }
        }
    });

    let mut t = Table::new(&[
        "victim",
        "static verdict",
        "leaky lines",
        "audit",
        "soundness",
        "probes",
        "dynamic metric",
        "value",
        "chance",
        "join",
    ]);
    for (unit, row) in owned.iter().zip(&rows) {
        let probes = smack_analysis::observing_probes(&arch_for(*unit).profile()).len();
        t.unit(*unit).row(vec![
            row.victim.clone(),
            s(row.verdict.label()),
            s(row.leaky_lines),
            s(row.audit_violations),
            s(if row.sound { "ok" } else { "UNSOUND" }),
            s(probes),
            s(row.metric),
            f(row.value, 3),
            f(row.chance, 3),
            s(if row.agrees() { "ok" } else { "DISAGREE" }),
        ]);
    }
    t.print();
    ctx.write_csv(&t, "analyze");
    println!();
    println!(
        "expected shape: every secret-processing victim is statically leaky \
         and dynamically recovered; the constant-time ladder and every \
         no-secret workload is proven constant-footprint and measures at \
         chance. Any DISAGREE or UNSOUND cell is an analyzer bug."
    );
    rows
}
