//! Table rendering and CSV export for the experiment harnesses.

use std::fmt::Display;
use std::fs;
use std::io;
use std::path::PathBuf;

/// A simple markdown-ish table printer.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| (*s).to_owned()).collect(), rows: Vec::new() }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        println!("{}", fmt_row(&self.header));
        println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-|-"));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Write as CSV under `target/repro/<name>.csv`, reporting (but not
    /// aborting on) I/O failures — a harness run's printed tables are
    /// still useful when the filesystem is read-only.
    pub fn write_csv(&self, name: &str) {
        match self.try_write_csv(name) {
            Ok(path) => println!("[csv] {}", path.display()),
            Err(e) => eprintln!("warning: could not write {name}.csv: {e}"),
        }
    }

    /// Write as CSV under `target/repro/<name>.csv`, returning the path
    /// written or the underlying I/O error (directory creation included).
    ///
    /// # Errors
    ///
    /// Propagates failures from creating `target/repro/` or writing the
    /// file.
    pub fn try_write_csv(&self, name: &str) -> io::Result<PathBuf> {
        let path = repro_path(name)?;
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(&path, out)?;
        Ok(path)
    }
}

/// Location of a CSV in the output directory (`target/repro/`), creating
/// the directory if needed.
///
/// # Errors
///
/// Propagates the `create_dir_all` failure instead of swallowing it — a
/// missing `target/repro/` must not silently drop every CSV.
pub fn repro_path(name: &str) -> io::Result<PathBuf> {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_owned()))
            .join("repro");
    fs::create_dir_all(&dir)
        .map_err(|e| io::Error::new(e.kind(), format!("creating {}: {e}", dir.display())))?;
    Ok(dir.join(format!("{name}.csv")))
}

/// Format a float with the given precision.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format any displayable value.
pub fn s(v: impl Display) -> String {
    v.to_string()
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}
